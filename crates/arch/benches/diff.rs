//! Lockstep differential throughput: the fuzzing loop's true hot path.
//!
//! `Hart::step` alone understates campaign cost — every lockstep step
//! also digests *both* sides' full architectural state. This bench
//! measures exactly that path with the real `tf_fuzz` machinery:
//!
//! * **diff** — `DiffEngine::diff` of the golden hart against itself on
//!   a chaos workload, reported as ns per lockstep step (two `step`s and
//!   two digests per step). This is the number the incremental
//!   `Memory::digest` / cached `ArchState::digest` work moves.
//! * **campaign-jobs1 / campaign-jobsN** — whole coordinated campaigns
//!   (generation, lockstep diffing, coverage, corpus) driven through
//!   `CampaignDriver`, reported as aggregate steps per wall-clock
//!   second, 1 worker vs N.
//! * **campaign_live_share** — jobs-N throughput with live cross-worker
//!   seed admission on (default sync cadence) over the same campaign
//!   with sharing off: the coordination tax the round barriers charge.
//!
//! Medians land in `BENCH_arch.json` next to the interpreter numbers
//! (see `benches/json.rs`); `TF_BENCH_SMOKE=1` shrinks everything to a
//! completes-and-emits-valid-JSON check for CI.

mod json;

use std::hint::black_box;
use std::time::Instant;

use tf_arch::Hart;
use tf_fuzz::{
    CampaignConfig, CampaignDriver, DiffConfig, DiffEngine, DiffVerdict, DEFAULT_SYNC_EVERY,
    DEFAULT_WINDOW,
};
use tf_riscv::{Instruction, InstructionLibrary, LibraryConfig, Opcode};

const MEM_SIZE: u64 = 1 << 20;
const JOBS: usize = 4;

/// A deterministic random instruction stream over the full library —
/// the same chaos recipe as the `step` bench, so numbers line up.
fn chaos_program(len: usize) -> Vec<Instruction> {
    let mut library = InstructionLibrary::new(LibraryConfig::all(), 0xC4A0_5BEE);
    let mut program = library.sample_program(len).expect("full library");
    program.push(Instruction::system(Opcode::Ebreak));
    program
}

/// Median ns per lockstep step of reference-vs-reference diffing at the
/// given window. Window 1 is the exhaustive per-step loop; the default
/// window is the batched path campaigns actually run.
fn bench_diff(samples: usize, max_steps: u64, window: u64) -> f64 {
    let program = chaos_program(2_048);
    let engine = DiffEngine::new(
        DiffConfig::default()
            .with_max_steps(max_steps)
            .with_window(window),
    );
    let mut reference = Hart::new(MEM_SIZE);
    let mut dut = Hart::new(MEM_SIZE);
    let mut run_once = || {
        let start = Instant::now();
        let verdict = engine
            .diff(&mut reference, &mut dut, &program)
            .expect("program loads");
        let elapsed = start.elapsed();
        let DiffVerdict::Agree { steps, .. } = black_box(verdict) else {
            panic!("reference diverged from itself");
        };
        elapsed.as_nanos() as f64 / steps as f64
    };
    run_once(); // warm-up
    let mut per_step: Vec<f64> = (0..samples).map(|_| run_once()).collect();
    per_step.sort_by(f64::total_cmp);
    let median = per_step[per_step.len() / 2];
    println!(
        "diff-w{window:<3} {median:8.1} ns/lockstep-step  (min {:.1}, max {:.1} over {} samples)",
        per_step[0],
        per_step[per_step.len() - 1],
        per_step.len(),
    );
    median
}

/// Median ns per `Hart::digest` call on a hart with `pages` resident
/// dirty pages and a settled cache — the cost every lockstep step pays
/// twice. With the incremental cache this stays flat as `pages` grows;
/// the from-scratch rescan (the pre-incremental algorithm) is measured
/// alongside as the contrast.
fn bench_digest_resident(pages: u64, iters: u32) -> (f64, f64) {
    let mut hart = Hart::new(pages * 2 * tf_arch::PAGE_SIZE);
    for page in 0..pages {
        hart.mem_mut()
            .store_u64(page * tf_arch::PAGE_SIZE, page + 1)
            .expect("in bounds");
    }
    black_box(hart.digest()); // settle the page-hash cache
    let start = Instant::now();
    for _ in 0..iters {
        black_box(hart.digest());
    }
    let cached = start.elapsed().as_nanos() as f64 / f64::from(iters);
    // The rescan is O(resident) per call; a handful of iterations gives a
    // stable mean without dominating the bench's runtime.
    let rescan_iters = (iters / 20).max(3);
    let start = Instant::now();
    for _ in 0..rescan_iters {
        black_box(hart.mem().digest_from_scratch());
        black_box(hart.state().digest_uncached());
    }
    let rescan = start.elapsed().as_nanos() as f64 / f64::from(rescan_iters);
    println!(
        "digest   {cached:8.1} ns cached vs {rescan:10.1} ns full-rescan  ({pages} resident pages)"
    );
    (cached, rescan)
}

/// Aggregate steps/sec of a whole coordinated campaign over `jobs`
/// workers at the given synchronisation cadence (`0` = live sharing
/// off, one round per worker).
fn bench_campaign(jobs: usize, budget: u64, sync_every: u64) -> f64 {
    let config = CampaignConfig::default()
        .with_seed(0xBE9C)
        .with_instruction_budget(budget)
        .with_mem_size(1 << 16);
    let outcome = CampaignDriver::new(config)
        .with_jobs(jobs)
        .with_sync_every(sync_every)
        .run(|_| Ok(Hart::new(1 << 16)))
        .expect("reference campaign drives");
    assert!(outcome.report.is_clean(), "reference campaign diverged");
    let throughput = outcome.steps_per_sec();
    println!(
        "campaign-jobs{jobs}-sync{sync_every} {throughput:12.0} steps/sec  \
         ({} programs, {} steps, {:.2} s wall)",
        outcome.report.programs,
        outcome.report.steps_executed,
        outcome.elapsed.as_secs_f64(),
    );
    throughput
}

fn main() {
    let smoke = json::smoke();
    // Smoke keeps the sample count and campaign budget small but the
    // lockstep step budget full-size: per-run reset/load overhead (~1 ms
    // for a 1 MiB hart) would otherwise swamp ns-per-step and make the
    // CI regression ratio meaningless.
    let (samples, max_steps, budget) = if smoke {
        (3, 100_000, 2_000)
    } else {
        (15, 100_000, 200_000)
    };
    let iters = if smoke { 10 } else { 2_000 };
    println!("tf_arch lockstep differential throughput (DiffEngine over Dut)");
    let diff = bench_diff(samples, max_steps, 1);
    let windowed = bench_diff(samples, max_steps, DEFAULT_WINDOW);
    let (digest_small, _) = bench_digest_resident(8, iters);
    let (digest_large, rescan_large) = bench_digest_resident(512, iters);
    let jobs1 = bench_campaign(1, budget, DEFAULT_SYNC_EVERY);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut entries = vec![
        ("diff_ns_per_step", diff),
        // The batched path campaigns run by default (window = 16).
        ("lockstep_windowed", windowed),
        ("digest_ns_resident8", digest_small),
        ("digest_ns_resident512", digest_large),
        ("digest_rescan_ns_resident512", rescan_large),
        ("campaign_steps_per_sec_jobs1", jobs1),
        ("host_cores", cores as f64),
    ];
    // A jobs-1-vs-N comparison only measures scaling when the host can
    // actually run the workers in parallel; on a single hardware thread
    // it just re-times jobs-1 plus scheduler noise, so skip it and label
    // the document instead of recording a misleading "speedup".
    let stale: &[&str] = if cores > 1 {
        let share_on = bench_campaign(JOBS, budget, DEFAULT_SYNC_EVERY);
        let share_off = bench_campaign(JOBS, budget, 0);
        // Key carries the worker count so trajectories stay comparable.
        entries.push(("campaign_steps_per_sec_jobs4", share_on));
        // Same-run ratio, so host speed cancels: live admission on over
        // off. A drop means the round barriers got more expensive.
        entries.push(("campaign_live_share", share_on / share_off));
        println!(
            "campaign_live_share {:.3} (sharing-on/sharing-off throughput, {JOBS} workers)",
            share_on / share_off
        );
        &["campaign_single_core"]
    } else {
        println!(
            "campaign-jobs{JOBS}: skipped — single-core host, a scaling comparison would mislead"
        );
        entries.push(("campaign_single_core", 1.0));
        &["campaign_steps_per_sec_jobs4", "campaign_live_share"]
    };
    json::update(&entries, stale);
}
