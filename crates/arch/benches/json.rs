//! Shared bench-result emitter: a flat JSON object of metric name to
//! number, merged across bench binaries so `BENCH_arch.json` tracks the
//! perf trajectory from PR to PR.
//!
//! The format is deliberately minimal (the environment is offline, no
//! serde): one top-level object, string keys, numeric values, written
//! sorted. `update` re-reads the existing file so the `step` and `diff`
//! benches — separate processes — compose into one document.
//!
//! * Output path: `BENCH_arch.json` at the workspace root, overridable
//!   with `TF_BENCH_JSON`.
//! * Smoke mode: set `TF_BENCH_SMOKE=1` to make the benches run a few
//!   iterations only — CI uses this to assert the harness completes and
//!   emits valid JSON without burning minutes on real measurement.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// Where the merged bench JSON lives.
pub fn path() -> PathBuf {
    match std::env::var("TF_BENCH_JSON") {
        Ok(custom) if !custom.is_empty() => PathBuf::from(custom),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_arch.json"),
    }
}

/// True when CI asked for the quick smoke run.
pub fn smoke() -> bool {
    std::env::var("TF_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Parse the flat `"key": number` pairs out of a previous emission.
/// Anything unparsable is dropped (and rewritten on the next update).
fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let Some((key_part, value_part)) = line.split_once(':') else {
            continue;
        };
        let key = key_part.trim().trim_matches('"');
        if key.is_empty() {
            continue;
        }
        let value = value_part.trim().trim_end_matches(',');
        if let Ok(value) = value.parse::<f64>() {
            map.insert(key.to_string(), value);
        }
    }
    map
}

/// Merge `entries` into the JSON document, overwriting same-named keys
/// and preserving the rest — minus the `stale` keys, which are dropped.
/// A bench marks a key stale when the metric is meaningless in this
/// environment (e.g. multi-worker scaling on a single-core host) so a
/// leftover number doesn't masquerade as a fresh measurement.
pub fn update(entries: &[(&str, f64)], stale: &[&str]) {
    let path = path();
    let mut map = std::fs::read_to_string(&path)
        .map(|text| parse(&text))
        .unwrap_or_default();
    for key in stale {
        map.remove(*key);
    }
    for (key, value) in entries {
        map.insert((*key).to_string(), *value);
    }
    let mut out = String::from("{\n");
    let mut first = true;
    for (key, value) in &map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{key}\": {value:.3}"));
    }
    out.push_str("\n}\n");
    if let Err(error) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        println!("bench json updated: {}", path.display());
    }
}
