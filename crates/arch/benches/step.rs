//! Throughput baseline for `Hart::step` / `Hart::run`.
//!
//! Two workloads, matching the golden e2e suite:
//!
//! * **fib** — a tight integer loop (branches + adds), the interpreter's
//!   best case: hot pages, no traps.
//! * **chaos** — a library-sampled random instruction stream re-run from
//!   reset, the fuzzing workload: FP, CSR accesses, frequent traps.
//!
//! The harness is hand-rolled (criterion is unavailable in the offline
//! build environment) but keeps its shape: a warm-up pass, `SAMPLES`
//! timed samples, and the median reported alongside min/max so a single
//! scheduler hiccup cannot move the headline number. Run with
//! `cargo bench -p tf_arch`; CI compiles it via `cargo bench --no-run`
//! and executes it in smoke mode (`TF_BENCH_SMOKE=1`, a few iterations).
//!
//! Results are also appended to the machine-readable `BENCH_arch.json`
//! at the workspace root (see `benches/json.rs`) so the perf trajectory
//! is tracked across PRs.

mod json;

use std::hint::black_box;
use std::time::{Duration, Instant};

use tf_arch::Hart;
use tf_riscv::{BranchOffset, Gpr, Instruction, InstructionLibrary, LibraryConfig, Opcode};

const MEM_SIZE: u64 = 1 << 20;
const SAMPLES: usize = 15;
const WARMUP: usize = 3;

fn x(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

/// Iterative Fibonacci: `rounds * 4096` iterations of the add/swap loop.
fn fib_program(rounds: i64) -> Vec<Instruction> {
    vec![
        // x1 = 0, x2 = 1, x3 = counter (rounds << 12, via lui)
        Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 0).unwrap(),
        Instruction::i_type(Opcode::Addi, x(2), Gpr::ZERO, 1).unwrap(),
        Instruction::u_type(Opcode::Lui, x(3), rounds).unwrap(),
        // loop: x4 = x1 + x2; x1 = x2; x2 = x4; x3 -= 1; bne x3, x0, loop
        Instruction::r_type(Opcode::Add, x(4), x(1), x(2)),
        Instruction::r_type(Opcode::Add, x(1), Gpr::ZERO, x(2)),
        Instruction::r_type(Opcode::Add, x(2), Gpr::ZERO, x(4)),
        Instruction::i_type(Opcode::Addi, x(3), x(3), -1).unwrap(),
        Instruction::b_type(
            Opcode::Bne,
            x(3),
            Gpr::ZERO,
            BranchOffset::new(-16).unwrap(),
        ),
        Instruction::system(Opcode::Ebreak),
    ]
}

/// A deterministic random instruction stream over the full library.
fn chaos_program(len: usize) -> Vec<Instruction> {
    let mut library = InstructionLibrary::new(LibraryConfig::all(), 0xC4A0_5BEE);
    let mut program = library.sample_program(len).expect("full library");
    program.push(Instruction::system(Opcode::Ebreak));
    program
}

/// Run `workload` once per sample and report median/min/max ns per step.
/// Returns the median for the JSON emission.
fn bench(name: &str, program: &[Instruction], max_steps: u64, samples: usize) -> f64 {
    let mut hart = Hart::new(MEM_SIZE);
    let mut sample = || -> (Duration, u64) {
        hart.reset();
        hart.load_program(0, program).expect("program fits");
        let start = Instant::now();
        let exit = hart.run(max_steps);
        let elapsed = start.elapsed();
        black_box(exit);
        black_box(hart.digest());
        let steps = hart
            .state()
            .csrs()
            .read(tf_riscv::csr::MCYCLE)
            .expect("mcycle exists");
        (elapsed, steps)
    };
    for _ in 0..WARMUP.min(samples) {
        sample();
    }
    let mut per_step: Vec<f64> = (0..samples)
        .map(|_| {
            let (elapsed, steps) = sample();
            elapsed.as_nanos() as f64 / steps as f64
        })
        .collect();
    per_step.sort_by(f64::total_cmp);
    let median = per_step[samples / 2];
    println!(
        "{name:<8} {median:8.1} ns/step  ({:.1} Msteps/s; min {:.1}, max {:.1} over {samples} samples)",
        1000.0 / median,
        per_step[0],
        per_step[samples - 1],
    );
    median
}

fn main() {
    // `cargo bench` passes `--bench` (and test-filter args); none apply
    // to this hand-rolled harness.
    let smoke = json::smoke();
    let samples = if smoke { 1 } else { SAMPLES };
    let (fib_steps, chaos_steps) = if smoke {
        (5_000, 5_000)
    } else {
        (200_000, 100_000)
    };
    println!("tf_arch interpreter throughput (Hart::run over Hart::step)");
    let fib = bench("fib", &fib_program(5), fib_steps, samples);
    let chaos = bench("chaos", &chaos_program(4_096), chaos_steps, samples);
    json::update(
        &[("fib_ns_per_step", fib), ("chaos_ns_per_step", chaos)],
        &[],
    );
}
