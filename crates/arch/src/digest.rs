//! Stable state hashing shared by the reference model and the fuzzer.
//!
//! Everything differential coverage compares — register files, memory
//! pages, execution traces — is reduced to a 64-bit fingerprint by the
//! [`Fnv`] hasher in this module. The fuzzer layers key their coverage
//! map and corpus entries on these fingerprints, so the hash must stay
//! stable across Rust versions, processes and machines; the regression
//! test below pins the constants.

/// Stability fingerprint of the digest scheme: the [`Fnv`] hash of the
/// byte string `"turbofuzz-digest-v2"`.
///
/// Persistent artifacts that embed digests — on-disk fuzzing corpora
/// above all — record this value in their header. A reader whose own
/// hasher produces a different fingerprint must reject the file: its
/// stored digests were minted under a different scheme and would
/// silently mis-replay as coverage. The regression test below ties the
/// constant to the live hasher, so any change to the FNV constants
/// shows up as both a failing test and a changed fingerprint.
///
/// The suffix names the digest-scheme generation and moves *only* on a
/// deliberate scheme change, together with the corpus format version
/// (`tf_fuzz::persist::FORMAT_VERSION`):
///
/// * `v1` (`"turbofuzz"`, `0x2450_D8E2_0861_381A`) — byte-at-a-time
///   FNV-1a over the full register file and memory pages.
/// * `v2` — architectural state digested as an XOR of per-slot
///   [`WideFnv`] hashes (so a sample costs only the registers written
///   since the last one) and memory pages folded a word at a time.
pub const STABILITY_FINGERPRINT: u64 = 0xC15E_8971_720F_8F70;

/// Incremental FNV-1a (64-bit) hasher.
///
/// Chosen over `DefaultHasher` because the digest must be stable across
/// Rust versions and processes — digests are recorded in fuzzing corpora
/// and compared between independent runs.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one little-endian 64-bit value.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The current 64-bit digest. The hasher can keep absorbing after.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a variant that folds one little-endian 64-bit word per round
/// instead of one byte, for bulk state hashing where the byte loop's
/// serial multiply chain dominates (a 4 KiB page costs 512 rounds
/// instead of 4096).
///
/// Same offset basis and prime as [`Fnv`], but the two hashers are *not*
/// interchangeable: `WideFnv` over `[w]` differs from `Fnv` over
/// `w.to_le_bytes()`. Like [`Fnv`] it must stay stable across Rust
/// versions, processes and machines; the regression test below pins it.
#[derive(Debug, Clone, Copy)]
pub struct WideFnv(u64);

impl WideFnv {
    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        WideFnv(Fnv::OFFSET)
    }

    /// Absorb one 64-bit word in a single xor-multiply round.
    pub fn write_u64(&mut self, value: u64) {
        self.0 = (self.0 ^ value).wrapping_mul(Fnv::PRIME);
    }

    /// The current 64-bit digest. The hasher can keep absorbing after.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for WideFnv {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`WideFnv`] accumulator that defers its xor-multiply rounds.
///
/// The write-history accumulators fold a handful of words on *every*
/// architectural write — for the program counter alone that is two
/// serial multiply rounds per retired instruction. `DeferredFold`
/// buffers writes in a small fixed array and folds them into the
/// underlying hasher only when the buffer fills or a digest is taken,
/// moving the serial FNV dependency chain off the execution hot path.
///
/// Words are folded in exactly the order they were written, so for any
/// write sequence `finish()` returns bit-for-bit what a bare
/// [`WideFnv`] would have returned; the flush boundary is unobservable.
/// `finish(&self)` folds the pending words into a *copy* of the
/// accumulator, so it needs no interior mutability and the committed
/// state never depends on when digests were taken.
#[derive(Debug, Clone)]
pub struct DeferredFold {
    fnv: WideFnv,
    len: usize,
    buf: [u64; Self::CAP],
}

impl DeferredFold {
    /// Pending-buffer capacity, in words. Sized so several straight-line
    /// blocks of register writes fit between flushes while the buffer
    /// stays comfortably within one cache line pair.
    const CAP: usize = 64;

    /// An empty accumulator at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        DeferredFold {
            fnv: WideFnv::new(),
            len: 0,
            buf: [0; Self::CAP],
        }
    }

    /// Buffer one 64-bit word; folds the buffer down when it is full.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        if self.len == Self::CAP {
            self.flush();
        }
        self.buf[self.len] = value;
        self.len += 1;
    }

    /// Commit every pending word into the underlying hasher.
    fn flush(&mut self) {
        for &word in &self.buf[..self.len] {
            self.fnv.write_u64(word);
        }
        self.len = 0;
    }

    /// The digest of everything written so far, as a bare [`WideFnv`]
    /// fed the same sequence would report it. Pending words are folded
    /// into a local copy, so this is a pure read.
    #[must_use]
    pub fn finish(&self) -> u64 {
        let mut fnv = self.fnv;
        for &word in &self.buf[..self.len] {
            fnv.write_u64(word);
        }
        fnv.finish()
    }
}

impl Default for DeferredFold {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference values computed independently; guards against silent
        // constant drift, which would invalidate stored corpus digests.
        let mut fnv = Fnv::new();
        fnv.write_bytes(b"turbofuzz");
        assert_eq!(fnv.finish(), 0x2450_D8E2_0861_381A);
        let mut fnv = Fnv::new();
        fnv.write_bytes(b"turbofuzz-digest-v2");
        assert_eq!(
            fnv.finish(),
            STABILITY_FINGERPRINT,
            "the published stability fingerprint must match the live hasher"
        );
    }

    #[test]
    fn wide_fnv_is_stable_and_distinct_from_byte_fnv() {
        // Reference values computed independently.
        assert_eq!(WideFnv::new().finish(), 0xCBF2_9CE4_8422_2325);
        let mut w = WideFnv::new();
        w.write_u64(0);
        assert_eq!(w.finish(), 0xAF63_BD4C_8601_B7DF);
        let mut w = WideFnv::new();
        w.write_u64(1);
        w.write_u64(2);
        assert_eq!(w.finish(), 0x082F_2407_B4E8_902A);
        // One word per round, not one byte per round: the two hashers
        // must never be mixed up by callers.
        let mut wide = WideFnv::new();
        wide.write_u64(0xDEAD_BEEF);
        let mut byte = Fnv::new();
        byte.write_u64(0xDEAD_BEEF);
        assert_eq!(wide.finish(), 0x1CDE_6205_E209_1E3E);
        assert_ne!(wide.finish(), byte.finish());
    }

    #[test]
    fn deferred_fold_matches_wide_fnv_across_flush_boundaries() {
        // Lengths straddling 0, one flush, several flushes, and exact
        // multiples of the buffer capacity.
        for len in [0usize, 1, 63, 64, 65, 127, 128, 200, 1024] {
            let mut wide = WideFnv::new();
            let mut deferred = DeferredFold::new();
            for i in 0..len {
                let word = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5;
                wide.write_u64(word);
                deferred.write_u64(word);
            }
            assert_eq!(deferred.finish(), wide.finish(), "len {len}");
            // `finish` is a pure read: repeated calls and interleaved
            // writes keep agreeing with the bare hasher.
            assert_eq!(deferred.finish(), wide.finish(), "len {len} (again)");
            wide.write_u64(7);
            deferred.write_u64(7);
            assert_eq!(deferred.finish(), wide.finish(), "len {len} + 1");
        }
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv::new();
        b.write_bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
