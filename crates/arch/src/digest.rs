//! Stable state hashing shared by the reference model and the fuzzer.
//!
//! Everything differential coverage compares — register files, memory
//! pages, execution traces — is reduced to a 64-bit fingerprint by the
//! [`Fnv`] hasher in this module. The fuzzer layers key their coverage
//! map and corpus entries on these fingerprints, so the hash must stay
//! stable across Rust versions, processes and machines; the regression
//! test below pins the constants.

/// Stability fingerprint of the digest scheme: the [`Fnv`] hash of the
/// byte string `"turbofuzz"`.
///
/// Persistent artifacts that embed digests — on-disk fuzzing corpora
/// above all — record this value in their header. A reader whose own
/// hasher produces a different fingerprint must reject the file: its
/// stored trace digests were minted under a different hash function and
/// would silently mis-replay as coverage. The regression test below ties
/// the constant to the live hasher, so any change to the FNV constants
/// shows up as both a failing test and a changed fingerprint.
pub const STABILITY_FINGERPRINT: u64 = 0x2450_D8E2_0861_381A;

/// Incremental FNV-1a (64-bit) hasher.
///
/// Chosen over `DefaultHasher` because the digest must be stable across
/// Rust versions and processes — digests are recorded in fuzzing corpora
/// and compared between independent runs.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one little-endian 64-bit value.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The current 64-bit digest. The hasher can keep absorbing after.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        let mut fnv = Fnv::new();
        fnv.write_bytes(b"turbofuzz");
        // Reference value computed independently; guards against silent
        // constant drift, which would invalidate stored corpus digests.
        assert_eq!(fnv.finish(), 0x2450_D8E2_0861_381A);
        assert_eq!(
            fnv.finish(),
            STABILITY_FINGERPRINT,
            "the published stability fingerprint must match the live hasher"
        );
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv::new();
        b.write_bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
