//! The device-under-test boundary: the [`Dut`] trait.
//!
//! The fuzzing loop never talks to a concrete machine. It drives the
//! abstract [`Dut`] interface — reset, program load, single-step, state
//! digest and trace hooks — and differences any implementation against
//! the golden [`Hart`]. The reference model itself implements the trait
//! (so reference-vs-reference campaigns are the zero-divergence sanity
//! baseline), [`MutantHart`](crate::MutantHart) implements it with
//! injected bug scenarios for end-to-end fuzzer validation, and future
//! backends — RTL simulators, external ISS processes, faulty models —
//! plug in behind the same boundary without touching the fuzzer.

use tf_riscv::Instruction;

use crate::digest::Fnv;
use crate::hart::{Hart, RunExit};
use crate::trace::{ExecutionTrace, StepOutcome};
use crate::trap::Trap;

/// What one batched [`Dut::run`] produced: how the run ended plus the
/// digest samples taken along the way.
///
/// Two devices executed the same program equivalently — to the
/// resolution of the sampling window — iff their outcomes compare
/// equal: same step count, same exit, same trap-cause set and the same
/// digest sample at every sample point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Steps executed, including a trapping final one.
    pub steps: u64,
    /// Why the run ended.
    pub exit: RunExit,
    /// Bitmask of privileged-spec trap-cause codes raised during the
    /// run: bit `c` is set iff a trap with cause code `c` occurred.
    pub trap_causes: u64,
    /// Digest samples in step order: one at every `digest_every`-step
    /// boundary plus, always, one after the final step (so the vector is
    /// never empty and a trailing partial window is still checked). Each
    /// sample is [`fold_sample`] of the state digest, the write history
    /// and the retired instruction count at that point.
    pub samples: Vec<u64>,
}

/// One digest sample of a batched run: the stable [`Fnv`] fold of the
/// device's architectural digest, its cumulative write history and its
/// run-local retired-instruction count.
///
/// The digest alone would leave a sampling blind spot: a divergence
/// whose every architectural side effect cancels out again before the
/// next sample point would compare equal there. The write history
/// ([`Dut::write_history`]) closes it — a cumulative fold of the write
/// *sequence* never reconverges once two devices first wrote
/// differently, so any window containing a divergence yields a
/// mismatching sample and is replayed exactly. The retired count is a
/// cheap extra discriminator for backends whose `write_history` is the
/// constant default. External backends implementing [`Dut::run`]
/// directly must use this exact fold for their samples to compare
/// against the reference's.
#[must_use]
pub fn fold_sample(digest: u64, history: u64, retired: u64) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write_u64(digest);
    fnv.write_u64(history);
    fnv.write_u64(retired);
    fnv.finish()
}

/// A device under test: anything that can execute RV64 programs and
/// expose its architectural state for differential comparison.
///
/// The contract mirrors the reference model's semantics:
///
/// * [`Dut::step`] must be total — abnormal conditions surface as
///   [`StepOutcome::Trapped`], never as panics.
/// * [`Dut::digest`] must be a deterministic function of architectural
///   state (registers, CSRs and memory), computed with the stable scheme
///   pinned by [`STABILITY_FINGERPRINT`](crate::digest::STABILITY_FINGERPRINT)
///   so fingerprints can be compared across processes and recorded in
///   corpora.
/// * [`Dut::run`] executes a whole batch with digests sampled every `k`
///   steps — the windowed differential loop's contract — and has a
///   default implementation in terms of [`Dut::step`].
/// * Tracing is opt-in: campaigns that only need end-state digests skip
///   the per-step storage.
pub trait Dut {
    /// Short human-readable identifier for campaign reports.
    fn name(&self) -> &'static str;

    /// Return to the reset state: zeroed registers and memory, CSRs at
    /// their reset values, any recorded trace discarded.
    fn reset(&mut self);

    /// Encode `program` and store it contiguously starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] a fetch of the offending word would raise
    /// when the program does not fit in memory or fails to encode.
    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap>;

    /// Execute one instruction, trapping (never panicking) on abnormal
    /// conditions.
    fn step(&mut self) -> StepOutcome;

    /// Deterministic fingerprint of the complete architectural state —
    /// registers, CSRs and memory. Two devices agree architecturally iff
    /// their digests agree.
    fn digest(&self) -> u64;

    /// Cumulative fingerprint of the *sequence* of architectural writes
    /// since reset — the path-sensitive companion of [`Dut::digest`]
    /// that batched sampling folds into every sample (see
    /// [`fold_sample`]). The default returns a constant: correct for
    /// any backend, but every window diffed against a history-bearing
    /// reference then mismatches and is replayed step by step, costing
    /// the windowed speedup. Backends that want the speedup implement
    /// it as a running fold over their writes, as [`Hart`] does.
    fn write_history(&self) -> u64 {
        0
    }

    /// Start recording an [`ExecutionTrace`] (replacing any previous
    /// one).
    fn enable_tracing(&mut self);

    /// Stop tracing and take the recorded trace.
    fn take_trace(&mut self) -> Option<ExecutionTrace>;

    /// Execute a batch of up to `max_steps` steps, stopping early at an
    /// `ebreak`/`ecall` trap, and sample the state digest every
    /// `digest_every` steps (`0` disables interior samples; a final
    /// sample is always taken after the last step).
    ///
    /// This is the contract windowed differential comparison drives: the
    /// engine runs reference and DUT each as one batch and compares the
    /// returned [`BatchOutcome`]s instead of digesting after every step.
    /// The default implementation is in terms of [`Dut::step`] and
    /// [`Dut::digest`], so any single-stepping backend gets batching for
    /// free; backends that override it (subprocess DUTs batching their
    /// IPC, for instance) must reproduce the exact sampling schedule —
    /// interior samples at step numbers divisible by `digest_every`
    /// (skipping a sample that would coincide with the final one), each
    /// computed with [`fold_sample`] — or their outcomes will spuriously
    /// mismatch the reference's.
    fn run(&mut self, max_steps: u64, digest_every: u64) -> BatchOutcome {
        let mut steps = 0;
        let mut retired = 0;
        let mut trap_causes = 0u64;
        let mut exit = RunExit::OutOfGas;
        let mut samples = Vec::new();
        while steps < max_steps {
            let outcome = self.step();
            steps += 1;
            match outcome {
                StepOutcome::Retired(_) => retired += 1,
                StepOutcome::Trapped(trap) => {
                    trap_causes |= 1 << (trap.cause().code() & 63);
                    match trap {
                        Trap::Breakpoint { .. } => {
                            exit = RunExit::Breakpoint { steps };
                            break;
                        }
                        Trap::EnvironmentCall => {
                            exit = RunExit::EnvironmentCall { steps };
                            break;
                        }
                        _ => {}
                    }
                }
            }
            if digest_every != 0 && steps % digest_every == 0 && steps < max_steps {
                samples.push(fold_sample(self.digest(), self.write_history(), retired));
            }
        }
        samples.push(fold_sample(self.digest(), self.write_history(), retired));
        BatchOutcome {
            steps,
            exit,
            trap_causes,
            samples,
        }
    }
}

impl Dut for Hart {
    fn name(&self) -> &'static str {
        "hart"
    }

    fn reset(&mut self) {
        Hart::reset(self);
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.load_program(base, program)
    }

    fn step(&mut self) -> StepOutcome {
        Hart::step(self)
    }

    fn digest(&self) -> u64 {
        Hart::digest(self)
    }

    fn write_history(&self) -> u64 {
        Hart::write_history(self)
    }

    fn enable_tracing(&mut self) {
        Hart::enable_tracing(self);
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        Hart::take_trace(self)
    }

    /// Native batched run over predecoded basic blocks — bit-identical
    /// to the default trait implementation (the property test
    /// `tests/run_native.rs` proves it), but without the per-step trait
    /// dispatch, outcome construction and bookkeeping in the inner loop.
    fn run(&mut self, max_steps: u64, digest_every: u64) -> BatchOutcome {
        self.run_batch(max_steps, digest_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Gpr, Instruction, Opcode};

    /// The trait is object-safe: campaign drivers may hold boxed DUTs.
    #[test]
    fn dut_is_object_safe() {
        let mut dut: Box<dyn Dut> = Box::new(Hart::new(1 << 16));
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(1).unwrap(), Gpr::ZERO, 3).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        dut.load(0, &program).unwrap();
        let batch = dut.run(10, 0);
        assert_eq!(batch.exit, RunExit::Breakpoint { steps: 2 });
        assert_eq!(batch.steps, 2);
        assert_eq!(dut.name(), "hart");
    }

    #[test]
    fn reset_restores_the_initial_digest() {
        let mut hart = Hart::new(1 << 16);
        let baseline = Dut::digest(&hart);
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(5).unwrap(), Gpr::ZERO, 99).unwrap(),
            Instruction::s_type(Opcode::Sd, Gpr::ZERO, Gpr::new(5).unwrap(), 0x100).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        Dut::load(&mut hart, 0, &program).unwrap();
        Dut::run(&mut hart, 10, 0);
        assert_ne!(Dut::digest(&hart), baseline);
        Dut::reset(&mut hart);
        assert_eq!(Dut::digest(&hart), baseline);
    }

    #[test]
    fn trait_and_inherent_run_agree() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ecall)];
        let mut a = Hart::new(1 << 16);
        a.load_program(0, &program).unwrap();
        let mut b = Hart::new(1 << 16);
        b.load_program(0, &program).unwrap();
        assert_eq!(a.run(10), Dut::run(&mut b, 10, 0).exit);
    }

    #[test]
    fn batch_samples_follow_the_documented_schedule() {
        let load = |hart: &mut Hart| {
            let mut program =
                vec![
                    Instruction::i_type(Opcode::Addi, Gpr::new(1).unwrap(), Gpr::ZERO, 1).unwrap();
                    6
                ];
            program.push(Instruction::system(Opcode::Ebreak));
            hart.load_program(0, &program).unwrap();
        };
        // 7 steps with digest_every=2: interior samples after steps 2, 4
        // and 6, plus the final sample after the trapping step 7.
        let mut hart = Hart::new(1 << 16);
        load(&mut hart);
        let batch = Dut::run(&mut hart, 100, 2);
        assert_eq!(batch.steps, 7);
        assert_eq!(batch.exit, RunExit::Breakpoint { steps: 7 });
        assert_eq!(batch.samples.len(), 4);
        // The final sample is the documented fold of the end state; the
        // breakpoint trap did not retire, so 6 instructions retired.
        assert_eq!(
            *batch.samples.last().unwrap(),
            fold_sample(Dut::digest(&hart), Dut::write_history(&hart), 6)
        );
        // digest_every=0: exactly the one final sample, same end value.
        let mut again = Hart::new(1 << 16);
        load(&mut again);
        let whole = Dut::run(&mut again, 100, 0);
        assert_eq!(whole.samples.len(), 1);
        assert_eq!(whole.samples[0], *batch.samples.last().unwrap());
        assert_eq!(whole.trap_causes, batch.trap_causes);
        // A sample boundary coinciding with the budget is not doubled:
        // 4 steps of budget at digest_every=2 samples after step 2 and
        // once more at the end.
        let mut capped = Hart::new(1 << 16);
        load(&mut capped);
        let capped = Dut::run(&mut capped, 4, 2);
        assert_eq!(capped.steps, 4);
        assert_eq!(capped.exit, RunExit::OutOfGas);
        assert_eq!(capped.samples.len(), 2);
        // Equal devices running the same schedule compare equal.
        let mut c = Hart::new(1 << 16);
        let mut d = Hart::new(1 << 16);
        load(&mut c);
        load(&mut d);
        assert_eq!(Dut::run(&mut c, 100, 2), Dut::run(&mut d, 100, 2));
    }
}
