//! The device-under-test boundary: the [`Dut`] trait.
//!
//! The fuzzing loop never talks to a concrete machine. It drives the
//! abstract [`Dut`] interface — reset, program load, single-step, state
//! digest and trace hooks — and differences any implementation against
//! the golden [`Hart`]. The reference model itself implements the trait
//! (so reference-vs-reference campaigns are the zero-divergence sanity
//! baseline), [`MutantHart`](crate::MutantHart) implements it with
//! injected bug scenarios for end-to-end fuzzer validation, and future
//! backends — RTL simulators, external ISS processes, faulty models —
//! plug in behind the same boundary without touching the fuzzer.

use tf_riscv::Instruction;

use crate::hart::{Hart, RunExit};
use crate::trace::{ExecutionTrace, StepOutcome};
use crate::trap::Trap;

/// A device under test: anything that can execute RV64 programs and
/// expose its architectural state for differential comparison.
///
/// The contract mirrors the reference model's semantics:
///
/// * [`Dut::step`] must be total — abnormal conditions surface as
///   [`StepOutcome::Trapped`], never as panics.
/// * [`Dut::digest`] must be a deterministic function of architectural
///   state (registers, CSRs and memory), computed with the stable
///   [`Fnv`](crate::digest::Fnv) hash so fingerprints can be compared
///   across processes and recorded in corpora.
/// * Tracing is opt-in: campaigns that only need end-state digests skip
///   the per-step storage.
pub trait Dut {
    /// Short human-readable identifier for campaign reports.
    fn name(&self) -> &'static str;

    /// Return to the reset state: zeroed registers and memory, CSRs at
    /// their reset values, any recorded trace discarded.
    fn reset(&mut self);

    /// Encode `program` and store it contiguously starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] a fetch of the offending word would raise
    /// when the program does not fit in memory or fails to encode.
    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap>;

    /// Execute one instruction, trapping (never panicking) on abnormal
    /// conditions.
    fn step(&mut self) -> StepOutcome;

    /// Deterministic fingerprint of the complete architectural state —
    /// registers, CSRs and memory. Two devices agree architecturally iff
    /// their digests agree.
    fn digest(&self) -> u64;

    /// Start recording an [`ExecutionTrace`] (replacing any previous
    /// one).
    fn enable_tracing(&mut self);

    /// Stop tracing and take the recorded trace.
    fn take_trace(&mut self) -> Option<ExecutionTrace>;

    /// Step until an `ebreak`/`ecall` trap or until `max_steps` is
    /// spent.
    fn run(&mut self, max_steps: u64) -> RunExit {
        for steps in 1..=max_steps {
            match self.step() {
                StepOutcome::Trapped(Trap::Breakpoint { .. }) => {
                    return RunExit::Breakpoint { steps }
                }
                StepOutcome::Trapped(Trap::EnvironmentCall) => {
                    return RunExit::EnvironmentCall { steps }
                }
                _ => {}
            }
        }
        RunExit::OutOfGas
    }
}

impl Dut for Hart {
    fn name(&self) -> &'static str {
        "hart"
    }

    fn reset(&mut self) {
        Hart::reset(self);
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.load_program(base, program)
    }

    fn step(&mut self) -> StepOutcome {
        Hart::step(self)
    }

    fn digest(&self) -> u64 {
        Hart::digest(self)
    }

    fn enable_tracing(&mut self) {
        Hart::enable_tracing(self);
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        Hart::take_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Gpr, Instruction, Opcode};

    /// The trait is object-safe: campaign drivers may hold boxed DUTs.
    #[test]
    fn dut_is_object_safe() {
        let mut dut: Box<dyn Dut> = Box::new(Hart::new(1 << 16));
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(1).unwrap(), Gpr::ZERO, 3).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        dut.load(0, &program).unwrap();
        assert_eq!(dut.run(10), RunExit::Breakpoint { steps: 2 });
        assert_eq!(dut.name(), "hart");
    }

    #[test]
    fn reset_restores_the_initial_digest() {
        let mut hart = Hart::new(1 << 16);
        let baseline = Dut::digest(&hart);
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(5).unwrap(), Gpr::ZERO, 99).unwrap(),
            Instruction::s_type(Opcode::Sd, Gpr::ZERO, Gpr::new(5).unwrap(), 0x100).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        Dut::load(&mut hart, 0, &program).unwrap();
        Dut::run(&mut hart, 10);
        assert_ne!(Dut::digest(&hart), baseline);
        Dut::reset(&mut hart);
        assert_eq!(Dut::digest(&hart), baseline);
    }

    #[test]
    fn trait_and_inherent_run_agree() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ecall)];
        let mut a = Hart::new(1 << 16);
        a.load_program(0, &program).unwrap();
        let mut b = Hart::new(1 << 16);
        b.load_program(0, &program).unwrap();
        assert_eq!(a.run(10), Dut::run(&mut b, 10));
    }
}
