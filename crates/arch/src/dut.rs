//! The device-under-test boundary: the [`Dut`] trait.
//!
//! The fuzzing loop never talks to a concrete machine. It drives the
//! abstract [`Dut`] interface — reset, program load, single-step, state
//! digest and trace hooks — and differences any implementation against
//! the golden [`Hart`]. The reference model itself implements the trait
//! (so reference-vs-reference campaigns are the zero-divergence sanity
//! baseline), [`MutantHart`](crate::MutantHart) implements it with
//! injected bug scenarios for end-to-end fuzzer validation, and future
//! backends — RTL simulators, external ISS processes, faulty models —
//! plug in behind the same boundary without touching the fuzzer.

use tf_riscv::Instruction;

use crate::digest::Fnv;
use crate::hart::{Hart, RunExit};
use crate::trace::{ExecutionTrace, StepOutcome};
use crate::trap::Trap;

/// What one batched [`Dut::run`] produced: how the run ended plus the
/// digest samples taken along the way.
///
/// Two devices executed the same program equivalently — to the
/// resolution of the sampling window — iff their outcomes compare
/// equal: same step count, same exit, same trap-cause set and the same
/// digest sample at every sample point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Steps executed, including a trapping final one.
    pub steps: u64,
    /// Why the run ended.
    pub exit: RunExit,
    /// Bitmask of privileged-spec trap-cause codes raised during the
    /// run: bit `c` is set iff a trap with cause code `c` occurred.
    pub trap_causes: u64,
    /// Digest samples in step order: one at every `digest_every`-step
    /// boundary plus, always, one after the final step (so the vector is
    /// never empty and a trailing partial window is still checked). Each
    /// sample is [`fold_sample`] of the state digest, the write history
    /// and the retired instruction count at that point.
    pub samples: Vec<u64>,
    /// Running [`fold_pc_pair`] over every step's control-flow
    /// transition (fetch pc → post-step pc), trapped steps included.
    /// Starts at [`PC_PAIRS_SEED`]; two runs with the same `pc_pairs`
    /// took the same path to the resolution of the fold. Campaigns use
    /// it as a cheap path-coverage key.
    pub pc_pairs: u64,
    /// [`fold_op_classes`] of the retired-instruction opcode-class
    /// histogram (major-opcode buckets; trapped steps count nothing).
    /// Campaigns use it as an instruction-mix coverage key.
    pub op_classes: u64,
}

impl Default for BatchOutcome {
    /// Scratch-initialisation values for [`Dut::run_into`]; a default
    /// outcome is *not* what a zero-step run produces (that still takes
    /// its final sample).
    fn default() -> Self {
        BatchOutcome {
            steps: 0,
            exit: RunExit::OutOfGas,
            trap_causes: 0,
            samples: Vec::new(),
            pc_pairs: PC_PAIRS_SEED,
            op_classes: fold_op_classes(&[0; OP_CLASS_BUCKETS]),
        }
    }
}

/// Opcode-class histogram buckets: one per RISC-V major-opcode value
/// (instruction bits `[6:2]`), which cleanly separates loads, stores,
/// branches, jumps, ALU, AMO, FP and system classes without a
/// per-mnemonic table.
pub const OP_CLASS_BUCKETS: usize = 32;

/// Seed for the running [`fold_pc_pair`] accumulator (the FNV-1a offset
/// basis, shared with the other stable folds).
pub const PC_PAIRS_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one control-flow transition into a running pc-pair accumulator.
///
/// Every step folds its fetch pc and its post-step pc (the trap vector
/// for trapped steps), so the accumulator fingerprints the executed
/// path, branches and traps included. Batched backends must use this
/// exact fold or their [`BatchOutcome::pc_pairs`] will spuriously
/// mismatch the reference's.
#[inline]
#[must_use]
pub fn fold_pc_pair(acc: u64, from: u64, to: u64) -> u64 {
    (acc ^ from.rotate_left(32) ^ to).wrapping_mul(FNV_PRIME)
}

/// Fold a retired-instruction opcode-class histogram into the stable
/// digest scheme (see [`op_class`] for the bucketing).
#[must_use]
pub fn fold_op_classes(counts: &[u32; OP_CLASS_BUCKETS]) -> u64 {
    let mut fnv = Fnv::new();
    for &count in counts {
        fnv.write_u64(u64::from(count));
    }
    fnv.finish()
}

/// The opcode-class bucket of a retired instruction: its major-opcode
/// field (encoded-word bits `[6:2]`). Encoding is exact for every
/// decodable instruction, so this matches the fetched word's major
/// opcode bit for bit.
#[must_use]
pub fn op_class(insn: &Instruction) -> usize {
    insn.encode()
        .map_or(0, |word| ((word >> 2) & 0x1F) as usize)
}

/// One digest sample of a batched run: the stable [`Fnv`] fold of the
/// device's architectural digest, its cumulative write history and its
/// run-local retired-instruction count.
///
/// The digest alone would leave a sampling blind spot: a divergence
/// whose every architectural side effect cancels out again before the
/// next sample point would compare equal there. The write history
/// ([`Dut::write_history`]) closes it — a cumulative fold of the write
/// *sequence* never reconverges once two devices first wrote
/// differently, so any window containing a divergence yields a
/// mismatching sample and is replayed exactly. The retired count is a
/// cheap extra discriminator for backends whose `write_history` is the
/// constant default. External backends implementing [`Dut::run`]
/// directly must use this exact fold for their samples to compare
/// against the reference's.
#[must_use]
pub fn fold_sample(digest: u64, history: u64, retired: u64) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write_u64(digest);
    fnv.write_u64(history);
    fnv.write_u64(retired);
    fnv.finish()
}

/// How an out-of-process device under test failed (see
/// [`DutFailure`]). In-process backends never fail this way; subprocess
/// backends surface every child-process pathology as one of these three
/// kinds so campaigns can record it as a first-class finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DutFailureKind {
    /// The child process died: exited, was killed by a signal, or closed
    /// its protocol stream at a frame boundary.
    Crash,
    /// The child failed to answer within the supervisor's per-request
    /// wall-clock deadline.
    Hang,
    /// The child sent bytes that are not a well-formed protocol frame —
    /// the stream can no longer be trusted and is torn down.
    Desync,
}

impl std::fmt::Display for DutFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DutFailureKind::Crash => "crash",
            DutFailureKind::Hang => "hang",
            DutFailureKind::Desync => "desync",
        })
    }
}

/// A failure an out-of-process backend observed while servicing [`Dut`]
/// operations, reported out of band through [`Dut::take_failure`].
///
/// The trait methods themselves stay total: a failing backend returns
/// inert placeholder results (which the differential engine discards)
/// and parks the failure here until the campaign drains it. `detail`
/// must be a deterministic function of the failure — it is deduplicated,
/// persisted and displayed, so wall-clock times, pids and addresses do
/// not belong in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DutFailure {
    /// What went wrong.
    pub kind: DutFailureKind,
    /// Deterministic, human-readable cause ("exited with code 117",
    /// "no response within 5000ms", …).
    pub detail: String,
    /// Whether the backend recovered (respawned within its policy) and
    /// the campaign may keep fuzzing. `false` means the backend is
    /// permanently inert and the campaign should stop gracefully.
    pub can_continue: bool,
}

/// Lifetime statistics of an out-of-process DUT backend: how many run
/// batches its child-process lineage has been issued, how often the
/// child had to be respawned, and whether the respawn budget is spent.
/// Reported through [`Dut::remote_stats`] so campaign drivers can
/// persist the batch counter into checkpoints (deterministic chaos
/// schedules are keyed on it) and print lineage epilogues without
/// knowing the concrete supervisor type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteDutStats {
    /// Cumulative `run` batches issued to the child lineage, including
    /// any offset carried over from a resumed campaign.
    pub batches_issued: u64,
    /// Child respawns performed so far.
    pub respawns: u64,
    /// The respawn budget is exhausted: the backend is permanently inert.
    pub dead: bool,
}

/// A device under test: anything that can execute RV64 programs and
/// expose its architectural state for differential comparison.
///
/// The contract mirrors the reference model's semantics:
///
/// * [`Dut::step`] must be total — abnormal conditions surface as
///   [`StepOutcome::Trapped`], never as panics.
/// * [`Dut::digest`] must be a deterministic function of architectural
///   state (registers, CSRs and memory), computed with the stable scheme
///   pinned by [`STABILITY_FINGERPRINT`](crate::digest::STABILITY_FINGERPRINT)
///   so fingerprints can be compared across processes and recorded in
///   corpora.
/// * [`Dut::run`] executes a whole batch with digests sampled every `k`
///   steps — the windowed differential loop's contract — and has a
///   default implementation in terms of [`Dut::step`].
/// * Tracing is opt-in: campaigns that only need end-state digests skip
///   the per-step storage.
pub trait Dut {
    /// Short human-readable identifier for campaign reports.
    fn name(&self) -> &'static str;

    /// Return to the reset state: zeroed registers and memory, CSRs at
    /// their reset values, any recorded trace discarded.
    fn reset(&mut self);

    /// Encode `program` and store it contiguously starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] a fetch of the offending word would raise
    /// when the program does not fit in memory or fails to encode.
    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap>;

    /// Execute one instruction, trapping (never panicking) on abnormal
    /// conditions.
    fn step(&mut self) -> StepOutcome;

    /// Deterministic fingerprint of the complete architectural state —
    /// registers, CSRs and memory. Two devices agree architecturally iff
    /// their digests agree.
    fn digest(&self) -> u64;

    /// Cumulative fingerprint of the *sequence* of architectural writes
    /// since reset — the path-sensitive companion of [`Dut::digest`]
    /// that batched sampling folds into every sample (see
    /// [`fold_sample`]). The default returns a constant: correct for
    /// any backend, but every window diffed against a history-bearing
    /// reference then mismatches and is replayed step by step, costing
    /// the windowed speedup. Backends that want the speedup implement
    /// it as a running fold over their writes, as [`Hart`] does.
    fn write_history(&self) -> u64 {
        0
    }

    /// Start recording an [`ExecutionTrace`] (replacing any previous
    /// one).
    fn enable_tracing(&mut self);

    /// Stop tracing and take the recorded trace.
    fn take_trace(&mut self) -> Option<ExecutionTrace>;

    /// The pc the next fetch will use. Feeds the [`fold_pc_pair`]
    /// path-coverage fold of batched runs. The default returns a
    /// constant: correct for any backend, but its `pc_pairs` fold then
    /// degenerates and every window diffed against a pc-bearing
    /// reference is replayed step by step — the same graceful
    /// degradation as the [`Dut::write_history`] default.
    fn pc(&self) -> u64 {
        0
    }

    /// Take the failure (if any) the backend observed since this was
    /// last called. In-process backends never fail — the default always
    /// returns `None`. Out-of-process backends park crash/hang/desync
    /// events here (their [`Dut`] methods meanwhile return inert
    /// results); campaign drivers must drain this after every
    /// differential run, discard that run's verdict when a failure
    /// surfaced, and stop when
    /// [`can_continue`](DutFailure::can_continue) is `false`.
    fn take_failure(&mut self) -> Option<DutFailure> {
        None
    }

    /// Lineage statistics when this backend drives an out-of-process
    /// child ([`RemoteDutStats`]); `None` — the default — for in-process
    /// backends. Campaign drivers use this to fill the checkpointed
    /// batch-counter offset and to print remote epilogues without
    /// downcasting to a concrete supervisor type.
    fn remote_stats(&self) -> Option<RemoteDutStats> {
        None
    }

    /// Execute a batch of up to `max_steps` steps, stopping early at an
    /// `ebreak`/`ecall` trap, and sample the state digest every
    /// `digest_every` steps (`0` disables interior samples; a final
    /// sample is always taken after the last step).
    ///
    /// This is the contract windowed differential comparison drives: the
    /// engine runs reference and DUT each as one batch and compares the
    /// returned [`BatchOutcome`]s instead of digesting after every step.
    /// Convenience wrapper over [`Dut::run_into`], which is the method
    /// backends override.
    fn run(&mut self, max_steps: u64, digest_every: u64) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        self.run_into(max_steps, digest_every, &mut out);
        out
    }

    /// [`Dut::run`] into a caller-owned [`BatchOutcome`], so hot loops
    /// (one batch per generated program) reuse the sample buffer instead
    /// of reallocating it. Every field of `out` is overwritten; the
    /// previous `samples` allocation is kept and cleared.
    ///
    /// The default implementation is in terms of [`Dut::step`] and
    /// [`Dut::digest`], so any single-stepping backend gets batching for
    /// free; backends that override it (subprocess DUTs batching their
    /// IPC, for instance) must reproduce the exact sampling schedule —
    /// interior samples at step numbers divisible by `digest_every`
    /// (skipping a sample that would coincide with the final one), each
    /// computed with [`fold_sample`] — and the exact [`fold_pc_pair`] /
    /// [`fold_op_classes`] coverage folds, or their outcomes will
    /// spuriously mismatch the reference's.
    fn run_into(&mut self, max_steps: u64, digest_every: u64, out: &mut BatchOutcome) {
        out.steps = 0;
        out.exit = RunExit::OutOfGas;
        out.trap_causes = 0;
        out.samples.clear();
        let mut retired = 0;
        let mut pc_pairs = PC_PAIRS_SEED;
        let mut classes = [0u32; OP_CLASS_BUCKETS];
        while out.steps < max_steps {
            let from = self.pc();
            let outcome = self.step();
            out.steps += 1;
            pc_pairs = fold_pc_pair(pc_pairs, from, self.pc());
            match outcome {
                StepOutcome::Retired(insn) => {
                    retired += 1;
                    classes[op_class(&insn)] += 1;
                }
                StepOutcome::Trapped(trap) => {
                    out.trap_causes |= 1 << (trap.cause().code() & 63);
                    match trap {
                        Trap::Breakpoint { .. } => {
                            out.exit = RunExit::Breakpoint { steps: out.steps };
                            break;
                        }
                        Trap::EnvironmentCall => {
                            out.exit = RunExit::EnvironmentCall { steps: out.steps };
                            break;
                        }
                        _ => {}
                    }
                }
            }
            if digest_every != 0 && out.steps % digest_every == 0 && out.steps < max_steps {
                out.samples
                    .push(fold_sample(self.digest(), self.write_history(), retired));
            }
        }
        out.samples
            .push(fold_sample(self.digest(), self.write_history(), retired));
        out.pc_pairs = pc_pairs;
        out.op_classes = fold_op_classes(&classes);
    }
}

impl Dut for Hart {
    fn name(&self) -> &'static str {
        "hart"
    }

    fn reset(&mut self) {
        Hart::reset(self);
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.load_program(base, program)
    }

    fn step(&mut self) -> StepOutcome {
        Hart::step(self)
    }

    fn digest(&self) -> u64 {
        Hart::digest(self)
    }

    fn write_history(&self) -> u64 {
        Hart::write_history(self)
    }

    fn enable_tracing(&mut self) {
        Hart::enable_tracing(self);
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        Hart::take_trace(self)
    }

    fn pc(&self) -> u64 {
        self.state().pc()
    }

    /// Native batched run over predecoded basic blocks — bit-identical
    /// to the default trait implementation (the property test
    /// `tests/run_native.rs` proves it), but without the per-step trait
    /// dispatch, outcome construction and bookkeeping in the inner loop.
    fn run_into(&mut self, max_steps: u64, digest_every: u64, out: &mut BatchOutcome) {
        self.run_batch_into(max_steps, digest_every, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Gpr, Instruction, Opcode};

    /// The trait is object-safe: campaign drivers may hold boxed DUTs.
    #[test]
    fn dut_is_object_safe() {
        let mut dut: Box<dyn Dut> = Box::new(Hart::new(1 << 16));
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(1).unwrap(), Gpr::ZERO, 3).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        dut.load(0, &program).unwrap();
        let batch = dut.run(10, 0);
        assert_eq!(batch.exit, RunExit::Breakpoint { steps: 2 });
        assert_eq!(batch.steps, 2);
        assert_eq!(dut.name(), "hart");
    }

    #[test]
    fn reset_restores_the_initial_digest() {
        let mut hart = Hart::new(1 << 16);
        let baseline = Dut::digest(&hart);
        let program = [
            Instruction::i_type(Opcode::Addi, Gpr::new(5).unwrap(), Gpr::ZERO, 99).unwrap(),
            Instruction::s_type(Opcode::Sd, Gpr::ZERO, Gpr::new(5).unwrap(), 0x100).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        Dut::load(&mut hart, 0, &program).unwrap();
        Dut::run(&mut hart, 10, 0);
        assert_ne!(Dut::digest(&hart), baseline);
        Dut::reset(&mut hart);
        assert_eq!(Dut::digest(&hart), baseline);
    }

    #[test]
    fn trait_and_inherent_run_agree() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ecall)];
        let mut a = Hart::new(1 << 16);
        a.load_program(0, &program).unwrap();
        let mut b = Hart::new(1 << 16);
        b.load_program(0, &program).unwrap();
        assert_eq!(a.run(10), Dut::run(&mut b, 10, 0).exit);
    }

    #[test]
    fn batch_samples_follow_the_documented_schedule() {
        let load = |hart: &mut Hart| {
            let mut program =
                vec![
                    Instruction::i_type(Opcode::Addi, Gpr::new(1).unwrap(), Gpr::ZERO, 1).unwrap();
                    6
                ];
            program.push(Instruction::system(Opcode::Ebreak));
            hart.load_program(0, &program).unwrap();
        };
        // 7 steps with digest_every=2: interior samples after steps 2, 4
        // and 6, plus the final sample after the trapping step 7.
        let mut hart = Hart::new(1 << 16);
        load(&mut hart);
        let batch = Dut::run(&mut hart, 100, 2);
        assert_eq!(batch.steps, 7);
        assert_eq!(batch.exit, RunExit::Breakpoint { steps: 7 });
        assert_eq!(batch.samples.len(), 4);
        // The final sample is the documented fold of the end state; the
        // breakpoint trap did not retire, so 6 instructions retired.
        assert_eq!(
            *batch.samples.last().unwrap(),
            fold_sample(Dut::digest(&hart), Dut::write_history(&hart), 6)
        );
        // digest_every=0: exactly the one final sample, same end value.
        let mut again = Hart::new(1 << 16);
        load(&mut again);
        let whole = Dut::run(&mut again, 100, 0);
        assert_eq!(whole.samples.len(), 1);
        assert_eq!(whole.samples[0], *batch.samples.last().unwrap());
        assert_eq!(whole.trap_causes, batch.trap_causes);
        // A sample boundary coinciding with the budget is not doubled:
        // 4 steps of budget at digest_every=2 samples after step 2 and
        // once more at the end.
        let mut capped = Hart::new(1 << 16);
        load(&mut capped);
        let capped = Dut::run(&mut capped, 4, 2);
        assert_eq!(capped.steps, 4);
        assert_eq!(capped.exit, RunExit::OutOfGas);
        assert_eq!(capped.samples.len(), 2);
        // Equal devices running the same schedule compare equal.
        let mut c = Hart::new(1 << 16);
        let mut d = Hart::new(1 << 16);
        load(&mut c);
        load(&mut d);
        assert_eq!(Dut::run(&mut c, 100, 2), Dut::run(&mut d, 100, 2));
    }
}
