//! IEEE 754 arithmetic with RISC-V exception flags and rounding modes.
//!
//! The host FPU computes round-to-nearest-even results. Every operation
//! here recovers the *exact* rounding residual — via Knuth two-sum for
//! addition and fused-multiply-add identities for multiplication, division
//! and square root — and uses it to (a) set the `fflags` bits (`NX`, `UF`,
//! `OF`, `DZ`, `NV`) and (b) correct the result by one ulp for the
//! directed rounding modes (`RTZ`, `RDN`, `RUP`) and for `RMM` ties.
//!
//! Known approximations, documented rather than hidden:
//!
//! * Fused multiply-add residuals are computed with a two-product /
//!   two-sum chain that can misjudge `NX` when the intermediate product
//!   over- or underflows; the result value itself is always the host's
//!   correctly rounded (RNE) fused result.
//! * Residual-based `NX` detection can be off when the residual term
//!   itself underflows (products deep in the subnormal range).
//! * `RMM` tie detection is skipped for division and square root, whose
//!   results are never exact ties between representable values.
//!
//! Each function returns `(value, fflags)`; flags use the bit positions of
//! [`tf_riscv::csr::fflags`]. Rounding modes must be pre-resolved: `Dyn`
//! is treated as RNE, the hart resolves it through `fcsr.frm` (and traps
//! on reserved values) before calling in.

use tf_riscv::csr::fflags::{DZ, NV, NX, OF, UF};
use tf_riscv::RoundingMode;

macro_rules! float_impl {
    ($mod:ident, $t:ty, $b:ty, $scale_shift:expr, $doc:literal) => {
        #[doc = $doc]
        pub mod $mod {
            use super::*;

            /// Bit pattern width of the format.
            const BITS: u32 = <$b>::BITS;
            /// Exact power-of-two scale that lifts subnormal products into
            /// the normal range, where the FMA residual trick is reliable.
            const SCALE: $t = (1_u128 << $scale_shift) as $t;
            /// The quiet bit: top bit of the mantissa field.
            const QUIET_BIT: $b = 1 << (<$t>::MANTISSA_DIGITS - 2);
            /// Canonical quiet NaN of the format.
            pub const CANONICAL_NAN: $t = <$t>::from_bits(
                ((1 << (BITS - <$t>::MANTISSA_DIGITS)) - 1) << (<$t>::MANTISSA_DIGITS - 1)
                    | QUIET_BIT,
            );

            /// True for a signalling NaN (quiet bit clear).
            pub fn is_snan(v: $t) -> bool {
                v.is_nan() && v.to_bits() & QUIET_BIT == 0
            }

            /// The next representable value towards `+inf`.
            fn next_up(v: $t) -> $t {
                if v.is_nan() || v == <$t>::INFINITY {
                    return v;
                }
                if v == 0.0 {
                    return <$t>::from_bits(1);
                }
                let bits = v.to_bits();
                if bits >> (BITS - 1) == 1 {
                    <$t>::from_bits(bits - 1)
                } else {
                    <$t>::from_bits(bits + 1)
                }
            }

            /// Step one ulp in direction `dir` (`>0` up, `<0` down).
            pub(crate) fn step(v: $t, dir: i32) -> $t {
                if dir > 0 {
                    next_up(v)
                } else if dir < 0 {
                    -next_up(-v)
                } else {
                    v
                }
            }

            /// Residual direction and RMM-tie flag from the exact rounding
            /// error `err` of the RNE result `r` (`err = exact - r`).
            fn dir_tie(r: $t, err: $t) -> (i32, bool) {
                if err == 0.0 {
                    return (0, false);
                }
                let dir = if err > 0.0 { 1 } else { -1 };
                // A tie sits exactly halfway to the neighbour in `dir`.
                let half = (step(r, dir) - r) / 2.0;
                (dir, err == half)
            }

            /// Move the RNE result `r` to the directed-rounding result.
            pub(crate) fn directed(r: $t, dir: i32, tie: bool, rm: RoundingMode) -> $t {
                if dir == 0 {
                    return r;
                }
                match rm {
                    RoundingMode::Rne | RoundingMode::Dyn => r,
                    // RNE differs from RMM only on ties it resolved
                    // towards zero.
                    RoundingMode::Rmm => {
                        let away =
                            (dir > 0 && r.is_sign_positive()) || (dir < 0 && r.is_sign_negative());
                        if tie && away {
                            step(r, dir)
                        } else {
                            r
                        }
                    }
                    RoundingMode::Rtz => {
                        if r.is_sign_positive() && dir < 0 {
                            step(r, -1)
                        } else if r.is_sign_negative() && dir > 0 {
                            step(r, 1)
                        } else {
                            r
                        }
                    }
                    RoundingMode::Rdn => {
                        if dir < 0 {
                            step(r, -1)
                        } else {
                            r
                        }
                    }
                    RoundingMode::Rup => {
                        if dir > 0 {
                            step(r, 1)
                        } else {
                            r
                        }
                    }
                }
            }

            /// Finish a finite-path operation: directed correction plus
            /// `NX`/`UF` accrual.
            fn finish(r_rne: $t, dir: i32, tie: bool, rm: RoundingMode) -> ($t, u64) {
                let r = directed(r_rne, dir, tie, rm);
                let mut flags = 0;
                if dir != 0 {
                    flags |= NX;
                    if r == 0.0 || r.is_subnormal() {
                        flags |= UF;
                    }
                }
                (r, flags)
            }

            /// An overflowed result (RNE gave ±inf from finite operands):
            /// directed modes clamp to the largest finite magnitude.
            pub(crate) fn overflow(r: $t, rm: RoundingMode) -> ($t, u64) {
                let max = <$t>::MAX.copysign(r);
                let r = match rm {
                    RoundingMode::Rne | RoundingMode::Rmm | RoundingMode::Dyn => r,
                    RoundingMode::Rtz => max,
                    RoundingMode::Rdn => {
                        if r > 0.0 {
                            max
                        } else {
                            r
                        }
                    }
                    RoundingMode::Rup => {
                        if r < 0.0 {
                            max
                        } else {
                            r
                        }
                    }
                };
                (r, OF | NX)
            }

            /// Propagate NaN operands: canonical NaN out, `NV` iff any
            /// input signals.
            fn nan_result(inputs: &[$t]) -> ($t, u64) {
                let nv = inputs.iter().any(|&v| is_snan(v));
                (CANONICAL_NAN, if nv { NV } else { 0 })
            }

            /// IEEE zero-sign rule: an exact-zero sum rounds to `-0` only
            /// in round-down, unless every addend is a positive zero.
            fn fix_exact_zero_sign(r: $t, rm: RoundingMode, any_negative_term: bool) -> $t {
                if rm == RoundingMode::Rdn && r == 0.0 && r.is_sign_positive() && any_negative_term
                {
                    -0.0
                } else {
                    r
                }
            }

            /// `a + b`.
            pub fn add(a: $t, b: $t, rm: RoundingMode) -> ($t, u64) {
                if a.is_nan() || b.is_nan() {
                    return nan_result(&[a, b]);
                }
                let s = a + b;
                if s.is_nan() {
                    // inf + (-inf)
                    return (CANONICAL_NAN, NV);
                }
                if a.is_infinite() || b.is_infinite() {
                    return (s, 0);
                }
                if s.is_infinite() {
                    return overflow(s, rm);
                }
                // Knuth two-sum: exact rounding error of the addition.
                let bb = s - a;
                let err = (a - (s - bb)) + (b - bb);
                let (dir, tie) = dir_tie(s, err);
                let (r, flags) = finish(s, dir, tie, rm);
                let r = fix_exact_zero_sign(r, rm, a.is_sign_negative() || b.is_sign_negative());
                (r, flags)
            }

            /// `a - b`.
            pub fn sub(a: $t, b: $t, rm: RoundingMode) -> ($t, u64) {
                add(a, -b, rm)
            }

            /// `a * b`.
            pub fn mul(a: $t, b: $t, rm: RoundingMode) -> ($t, u64) {
                if a.is_nan() || b.is_nan() {
                    return nan_result(&[a, b]);
                }
                let p = a * b;
                if p.is_nan() {
                    // 0 * inf
                    return (CANONICAL_NAN, NV);
                }
                if a.is_infinite() || b.is_infinite() {
                    return (p, 0);
                }
                if p.is_infinite() {
                    return overflow(p, rm);
                }
                let (dir, tie) = if p.is_subnormal() || p == 0.0 {
                    // The residual of a subnormal product underflows, so
                    // redo it with the smaller operand exactly scaled into
                    // the normal range; only tie detection is lost there.
                    let (small, big) = if a.abs() <= b.abs() { (a, b) } else { (b, a) };
                    let err_s = (small * SCALE).mul_add(big, -(p * SCALE));
                    let dir = if err_s == 0.0 {
                        0
                    } else if err_s > 0.0 {
                        1
                    } else {
                        -1
                    };
                    (dir, false)
                } else {
                    // FMA identity: exact rounding error of the product.
                    let err = a.mul_add(b, -p);
                    dir_tie(p, err)
                };
                finish(p, dir, tie, rm)
            }

            /// `a / b`.
            pub fn div(a: $t, b: $t, rm: RoundingMode) -> ($t, u64) {
                if a.is_nan() || b.is_nan() {
                    return nan_result(&[a, b]);
                }
                let q = a / b;
                if q.is_nan() {
                    // 0/0 or inf/inf
                    return (CANONICAL_NAN, NV);
                }
                if b == 0.0 {
                    // Finite nonzero dividend over zero: exact infinity.
                    return (q, if a.is_finite() { DZ } else { 0 });
                }
                if a.is_infinite() || b.is_infinite() {
                    return (q, 0);
                }
                if q.is_infinite() {
                    return overflow(q, rm);
                }
                // rem = q*b - a, exactly; exact - q = -rem / b. A
                // subnormal quotient needs the scaled domain, as in `mul`.
                let rem = if q.is_subnormal() || q == 0.0 {
                    (q * SCALE).mul_add(b, -(a * SCALE))
                } else {
                    q.mul_add(b, -a)
                };
                let dir = if rem == 0.0 {
                    0
                } else if (rem > 0.0) == (b > 0.0) {
                    -1
                } else {
                    1
                };
                // Quotients are never exact ties between representables.
                finish(q, dir, false, rm)
            }

            /// `sqrt(a)`.
            pub fn sqrt(a: $t, rm: RoundingMode) -> ($t, u64) {
                if a.is_nan() {
                    return nan_result(&[a]);
                }
                if a == 0.0 || a == <$t>::INFINITY {
                    return (a, 0);
                }
                if a < 0.0 {
                    return (CANONICAL_NAN, NV);
                }
                let r = a.sqrt();
                // rem = r*r - a, exactly; exact - r has the opposite sign.
                let rem = r.mul_add(r, -a);
                let dir = if rem == 0.0 {
                    0
                } else if rem > 0.0 {
                    -1
                } else {
                    1
                };
                // Square roots are never exact ties between representables.
                finish(r, dir, false, rm)
            }

            /// Fused `a * b + c` with a single rounding.
            pub fn fma(a: $t, b: $t, c: $t, rm: RoundingMode) -> ($t, u64) {
                // 0 * inf is invalid even when the addend is a quiet NaN.
                if (a == 0.0 && b.is_infinite()) || (a.is_infinite() && b == 0.0) {
                    return (CANONICAL_NAN, NV);
                }
                if a.is_nan() || b.is_nan() || c.is_nan() {
                    return nan_result(&[a, b, c]);
                }
                let r = a.mul_add(b, c);
                if r.is_nan() {
                    // inf * x + (-inf)
                    return (CANONICAL_NAN, NV);
                }
                if a.is_infinite() || b.is_infinite() || c.is_infinite() {
                    return (r, 0);
                }
                if r.is_infinite() {
                    return overflow(r, rm);
                }
                // Residual via two-product + two-sum; unreliable when the
                // intermediate product leaves the normal range.
                let p = a * b;
                if a != 0.0 && b != 0.0 && (p.is_infinite() || p.is_subnormal() || p == 0.0) {
                    let uf = if r == 0.0 || r.is_subnormal() { UF } else { 0 };
                    return (r, NX | uf);
                }
                let p_err = a.mul_add(b, -p);
                let s = p + c;
                let bb = s - p;
                let e1 = (p - (s - bb)) + (c - bb);
                let resid = (s - r) + (e1 + p_err);
                let dir = if resid == 0.0 {
                    0
                } else if resid > 0.0 {
                    1
                } else {
                    -1
                };
                let (r, flags) = finish(r, dir, false, rm);
                let prod_negative = a.is_sign_negative() != b.is_sign_negative();
                let r = fix_exact_zero_sign(r, rm, prod_negative || c.is_sign_negative());
                (r, flags)
            }

            /// `fmin`: the smaller operand, IEEE minimumNumber semantics.
            pub fn min(a: $t, b: $t) -> ($t, u64) {
                let nv = if is_snan(a) || is_snan(b) { NV } else { 0 };
                let v = match (a.is_nan(), b.is_nan()) {
                    (true, true) => CANONICAL_NAN,
                    (true, false) => b,
                    (false, true) => a,
                    (false, false) => {
                        if a == b {
                            // min(+0, -0) is -0.
                            if a.is_sign_negative() {
                                a
                            } else {
                                b
                            }
                        } else if a < b {
                            a
                        } else {
                            b
                        }
                    }
                };
                (v, nv)
            }

            /// `fmax`: the larger operand, IEEE maximumNumber semantics.
            pub fn max(a: $t, b: $t) -> ($t, u64) {
                let nv = if is_snan(a) || is_snan(b) { NV } else { 0 };
                let v = match (a.is_nan(), b.is_nan()) {
                    (true, true) => CANONICAL_NAN,
                    (true, false) => b,
                    (false, true) => a,
                    (false, false) => {
                        if a == b {
                            // max(+0, -0) is +0.
                            if a.is_sign_positive() {
                                a
                            } else {
                                b
                            }
                        } else if a > b {
                            a
                        } else {
                            b
                        }
                    }
                };
                (v, nv)
            }

            /// `feq`: quiet equality — NaNs compare unequal, only
            /// signalling NaNs raise `NV`.
            pub fn feq(a: $t, b: $t) -> (bool, u64) {
                let nv = if is_snan(a) || is_snan(b) { NV } else { 0 };
                (a == b, nv)
            }

            /// `flt`: signalling less-than — any NaN raises `NV`.
            pub fn flt(a: $t, b: $t) -> (bool, u64) {
                if a.is_nan() || b.is_nan() {
                    (false, NV)
                } else {
                    (a < b, 0)
                }
            }

            /// `fle`: signalling less-or-equal — any NaN raises `NV`.
            pub fn fle(a: $t, b: $t) -> (bool, u64) {
                if a.is_nan() || b.is_nan() {
                    (false, NV)
                } else {
                    (a <= b, 0)
                }
            }

            /// `fclass` bit mask (bits 0..=9 per the unprivileged spec).
            pub fn fclass(v: $t) -> u64 {
                let bit = if v.is_nan() {
                    if is_snan(v) {
                        8
                    } else {
                        9
                    }
                } else if v.is_sign_negative() {
                    if v.is_infinite() {
                        0
                    } else if v == 0.0 {
                        3
                    } else if v.is_subnormal() {
                        2
                    } else {
                        1
                    }
                } else if v.is_infinite() {
                    7
                } else if v == 0.0 {
                    4
                } else if v.is_subnormal() {
                    5
                } else {
                    6
                };
                1 << bit
            }

            /// Convert to a float of this format from an `i128` integer
            /// that is exactly representable in at most 64 bits, honouring
            /// the rounding mode and `NX`.
            pub fn from_int(v: i128, rm: RoundingMode) -> ($t, u64) {
                let r = v as $t;
                // |r| <= 2^64, so the round-trip through i128 is exact.
                let back = r as i128;
                let dir = match v.cmp(&back) {
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Less => -1,
                };
                let tie = dir != 0 && {
                    let gap = (step(r, dir) as i128).abs_diff(back);
                    2 * v.abs_diff(back) == gap
                };
                let r = directed(r, dir, tie, rm);
                (r, if dir != 0 { NX } else { 0 })
            }
        }
    };
}

float_impl!(
    sp,
    f32,
    u32,
    50,
    "Single-precision (RV64F) operations with flags."
);
float_impl!(
    dp,
    f64,
    u64,
    110,
    "Double-precision (RV64D) operations with flags."
);

/// Round a float to an integral value per the RISC-V rounding mode.
macro_rules! round_by_mode {
    ($v:expr, $rm:expr) => {
        match $rm {
            RoundingMode::Rne | RoundingMode::Dyn => $v.round_ties_even(),
            RoundingMode::Rtz => $v.trunc(),
            RoundingMode::Rdn => $v.floor(),
            RoundingMode::Rup => $v.ceil(),
            RoundingMode::Rmm => $v.round(),
        }
    };
}

/// Generate a float→integer conversion with RISC-V saturation semantics:
/// NaN and out-of-range inputs raise `NV` and clamp; in-range inexact
/// inputs raise `NX`.
macro_rules! cvt_to_int {
    ($name:ident, $ft:ty, $it:ty, $lo:expr, $hi:expr, $doc:literal) => {
        #[doc = $doc]
        #[must_use]
        pub fn $name(v: $ft, rm: RoundingMode) -> ($it, u64) {
            if v.is_nan() {
                return (<$it>::MAX, NV);
            }
            let rounded = round_by_mode!(v, rm);
            // The bounds are exact powers of two in the float domain, so
            // these comparisons are precise.
            if rounded < $lo {
                return (<$it>::MIN, NV);
            }
            if rounded >= $hi {
                return (<$it>::MAX, NV);
            }
            let flags = if rounded == v { 0 } else { NX };
            (rounded as $it, flags)
        }
    };
}

cvt_to_int!(
    f32_to_i32,
    f32,
    i32,
    -2_147_483_648.0_f32,
    2_147_483_648.0_f32,
    "`fcvt.w.s`."
);
cvt_to_int!(
    f32_to_u32,
    f32,
    u32,
    0.0_f32,
    4_294_967_296.0_f32,
    "`fcvt.wu.s`."
);
cvt_to_int!(
    f32_to_i64,
    f32,
    i64,
    -9_223_372_036_854_775_808.0_f32,
    9_223_372_036_854_775_808.0_f32,
    "`fcvt.l.s`."
);
cvt_to_int!(
    f32_to_u64,
    f32,
    u64,
    0.0_f32,
    18_446_744_073_709_551_616.0_f32,
    "`fcvt.lu.s`."
);
cvt_to_int!(
    f64_to_i32,
    f64,
    i32,
    -2_147_483_648.0_f64,
    2_147_483_648.0_f64,
    "`fcvt.w.d`."
);
cvt_to_int!(
    f64_to_u32,
    f64,
    u32,
    0.0_f64,
    4_294_967_296.0_f64,
    "`fcvt.wu.d`."
);
cvt_to_int!(
    f64_to_i64,
    f64,
    i64,
    -9_223_372_036_854_775_808.0_f64,
    9_223_372_036_854_775_808.0_f64,
    "`fcvt.l.d`."
);
cvt_to_int!(
    f64_to_u64,
    f64,
    u64,
    0.0_f64,
    18_446_744_073_709_551_616.0_f64,
    "`fcvt.lu.d`."
);

/// `fcvt.s.d`: narrow a double to single precision.
#[must_use]
pub fn f64_to_f32(v: f64, rm: RoundingMode) -> (f32, u64) {
    if v.is_nan() {
        let nv = if dp::is_snan(v) { NV } else { 0 };
        return (sp::CANONICAL_NAN, nv);
    }
    let r = v as f32;
    if v.is_infinite() {
        return (r, 0);
    }
    if r.is_infinite() {
        return sp::overflow(r, rm);
    }
    // f64 represents every f32 exactly, so the residual comparison and the
    // midpoint test are both precise.
    let back = f64::from(r);
    let (dir, tie) = if back == v {
        (0, false)
    } else {
        let dir = if v > back { 1 } else { -1 };
        let neighbour = sp::step(r, dir);
        let tie = neighbour.is_finite() && (back + f64::from(neighbour)) / 2.0 == v;
        (dir, tie)
    };
    let r = sp::directed(r, dir, tie, rm);
    let mut flags = 0;
    if dir != 0 {
        flags |= NX;
        if r == 0.0 || r.is_subnormal() {
            flags |= UF;
        }
    }
    (r, flags)
}

/// `fcvt.d.s`: widen a single to double precision — always exact.
#[must_use]
pub fn f32_to_f64(v: f32) -> (f64, u64) {
    if v.is_nan() {
        let nv = if sp::is_snan(v) { NV } else { 0 };
        return (dp::CANONICAL_NAN, nv);
    }
    (f64::from(v), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::csr::fflags;

    #[test]
    fn exact_addition_raises_nothing() {
        assert_eq!(dp::add(1.5, 2.25, RoundingMode::Rne), (3.75, 0));
        assert_eq!(sp::add(1.0, 2.0, RoundingMode::Rtz), (3.0, 0));
    }

    #[test]
    fn inexact_addition_sets_nx_and_rounds_directed() {
        // 1 + 2^-60 is inexact in f64; RNE keeps 1.0, RUP steps up.
        let tiny = (2.0_f64).powi(-60);
        assert_eq!(dp::add(1.0, tiny, RoundingMode::Rne), (1.0, NX));
        let (up, flags) = dp::add(1.0, tiny, RoundingMode::Rup);
        assert_eq!(flags, NX);
        assert!(up > 1.0);
        assert_eq!(dp::add(1.0, tiny, RoundingMode::Rdn), (1.0, NX));
        let (down, flags) = dp::add(-1.0, -tiny, RoundingMode::Rdn);
        assert_eq!(flags, NX);
        assert!(down < -1.0);
        assert_eq!(dp::add(-1.0, -tiny, RoundingMode::Rtz), (-1.0, NX));
    }

    #[test]
    fn rne_ties_go_to_even_and_rmm_away() {
        // 1 + 2^-53 is an exact tie in f64.
        let half_ulp = (2.0_f64).powi(-53);
        assert_eq!(dp::add(1.0, half_ulp, RoundingMode::Rne), (1.0, NX));
        let (away, flags) = dp::add(1.0, half_ulp, RoundingMode::Rmm);
        assert_eq!(flags, NX);
        assert!(away > 1.0);
    }

    #[test]
    fn exact_zero_sum_sign_follows_rdn() {
        let (z, _) = dp::add(5.0, -5.0, RoundingMode::Rne);
        assert!(z == 0.0 && z.is_sign_positive());
        let (z, _) = dp::add(5.0, -5.0, RoundingMode::Rdn);
        assert!(z == 0.0 && z.is_sign_negative());
        let (z, _) = dp::add(0.0, 0.0, RoundingMode::Rdn);
        assert!(z.is_sign_positive());
    }

    #[test]
    fn division_flags() {
        assert_eq!(dp::div(1.0, 0.0, RoundingMode::Rne), (f64::INFINITY, DZ));
        let (v, f) = dp::div(0.0, 0.0, RoundingMode::Rne);
        assert!(v.is_nan());
        assert_eq!(f, NV);
        let (v, f) = dp::div(f64::INFINITY, 0.0, RoundingMode::Rne);
        assert_eq!((v, f), (f64::INFINITY, 0));
        // 1/3 is inexact; RUP must exceed RDN by one ulp.
        let (up, _) = dp::div(1.0, 3.0, RoundingMode::Rup);
        let (dn, _) = dp::div(1.0, 3.0, RoundingMode::Rdn);
        assert!(up > dn);
        assert_eq!(dp::div(6.0, 2.0, RoundingMode::Rup), (3.0, 0));
    }

    #[test]
    fn sqrt_flags() {
        assert_eq!(dp::sqrt(4.0, RoundingMode::Rne), (2.0, 0));
        let (v, f) = dp::sqrt(-1.0, RoundingMode::Rne);
        assert!(v.is_nan());
        assert_eq!(f, NV);
        let (v, f) = dp::sqrt(2.0, RoundingMode::Rne);
        assert_eq!(f, NX);
        // RTZ sqrt(2) must not exceed the RNE value.
        let (tz, _) = dp::sqrt(2.0, RoundingMode::Rtz);
        assert!(tz <= v);
        assert!(tz * tz <= 2.0);
    }

    #[test]
    fn overflow_clamps_in_directed_modes() {
        let (v, f) = dp::mul(f64::MAX, 2.0, RoundingMode::Rne);
        assert_eq!(v, f64::INFINITY);
        assert_eq!(f, OF | NX);
        let (v, f) = dp::mul(f64::MAX, 2.0, RoundingMode::Rtz);
        assert_eq!(v, f64::MAX);
        assert_eq!(f, OF | NX);
        let (v, _) = dp::mul(-f64::MAX, 2.0, RoundingMode::Rup);
        assert_eq!(v, -f64::MAX);
        let (v, _) = dp::mul(-f64::MAX, 2.0, RoundingMode::Rdn);
        assert_eq!(v, f64::NEG_INFINITY);
    }

    #[test]
    fn underflow_sets_uf_with_nx() {
        let (v, f) = dp::mul(f64::MIN_POSITIVE, 0.5000001, RoundingMode::Rne);
        assert!(v.is_subnormal());
        assert_eq!(f, NX | UF);
    }

    #[test]
    fn nan_propagation_and_nv() {
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        let (v, f) = dp::add(snan, 1.0, RoundingMode::Rne);
        assert_eq!(v.to_bits(), dp::CANONICAL_NAN.to_bits());
        assert_eq!(f, NV);
        let (v, f) = dp::add(f64::NAN, 1.0, RoundingMode::Rne);
        assert!(v.is_nan());
        assert_eq!(f, 0);
        let (v, f) = dp::add(f64::INFINITY, f64::NEG_INFINITY, RoundingMode::Rne);
        assert!(v.is_nan());
        assert_eq!(f, NV);
    }

    #[test]
    fn fma_invalid_zero_times_inf_beats_quiet_nan() {
        let (v, f) = dp::fma(0.0, f64::INFINITY, f64::NAN, RoundingMode::Rne);
        assert!(v.is_nan());
        assert_eq!(f, NV);
        // A fused op rounds once: 1 + eps*eps is inexact but representable
        // intermediate products stay exact.
        let eps = (2.0_f64).powi(-30);
        let (v, f) = dp::fma(eps, eps, 1.0, RoundingMode::Rne);
        assert_eq!(v, 1.0);
        assert_eq!(f, NX);
    }

    #[test]
    fn min_max_handle_zeros_and_nans() {
        assert!(dp::min(0.0, -0.0).0.is_sign_negative());
        assert!(dp::max(-0.0, 0.0).0.is_sign_positive());
        assert_eq!(dp::min(f64::NAN, 3.0), (3.0, 0));
        assert!(dp::min(f64::NAN, f64::NAN).0.is_nan());
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        assert_eq!(dp::min(snan, 3.0), (3.0, NV));
    }

    #[test]
    fn comparisons() {
        assert_eq!(dp::feq(0.0, -0.0), (true, 0));
        assert_eq!(dp::feq(f64::NAN, 0.0), (false, 0));
        assert_eq!(dp::flt(f64::NAN, 0.0), (false, NV));
        assert_eq!(dp::fle(1.0, 1.0), (true, 0));
        assert_eq!(dp::flt(1.0, 2.0), (true, 0));
    }

    #[test]
    fn fclass_covers_all_classes() {
        assert_eq!(dp::fclass(f64::NEG_INFINITY), 1 << 0);
        assert_eq!(dp::fclass(-1.0), 1 << 1);
        assert_eq!(dp::fclass(-f64::MIN_POSITIVE / 2.0), 1 << 2);
        assert_eq!(dp::fclass(-0.0), 1 << 3);
        assert_eq!(dp::fclass(0.0), 1 << 4);
        assert_eq!(dp::fclass(f64::MIN_POSITIVE / 2.0), 1 << 5);
        assert_eq!(dp::fclass(1.0), 1 << 6);
        assert_eq!(dp::fclass(f64::INFINITY), 1 << 7);
        assert_eq!(dp::fclass(f64::from_bits(0x7FF0_0000_0000_0001)), 1 << 8);
        assert_eq!(dp::fclass(f64::NAN), 1 << 9);
    }

    #[test]
    fn float_to_int_conversions() {
        assert_eq!(f64_to_i32(3.7, RoundingMode::Rtz), (3, NX));
        assert_eq!(f64_to_i32(3.7, RoundingMode::Rup), (4, NX));
        assert_eq!(f64_to_i32(-3.5, RoundingMode::Rne), (-4, NX));
        assert_eq!(f64_to_i32(-3.5, RoundingMode::Rmm), (-4, NX));
        assert_eq!(f64_to_i32(-2.5, RoundingMode::Rne), (-2, NX));
        assert_eq!(f64_to_i32(4.0, RoundingMode::Rne), (4, 0));
        assert_eq!(f64_to_i32(f64::NAN, RoundingMode::Rne), (i32::MAX, NV));
        assert_eq!(f64_to_i32(3e10, RoundingMode::Rne), (i32::MAX, NV));
        assert_eq!(f64_to_i32(-3e10, RoundingMode::Rne), (i32::MIN, NV));
        assert_eq!(f64_to_u32(-1.0, RoundingMode::Rne), (0, NV));
        assert_eq!(f64_to_u32(-0.25, RoundingMode::Rtz), (0, NX));
        assert_eq!(
            f64_to_u64(1e19, RoundingMode::Rne),
            (10_000_000_000_000_000_000, 0)
        );
        assert_eq!(f32_to_i64(f32::INFINITY, RoundingMode::Rne), (i64::MAX, NV));
    }

    #[test]
    fn int_to_float_conversions() {
        assert_eq!(dp::from_int(7, RoundingMode::Rne), (7.0, 0));
        // 2^53 + 1 is inexact in f64.
        let v = (1_i128 << 53) + 1;
        let (r, f) = dp::from_int(v, RoundingMode::Rne);
        assert_eq!(f, NX);
        assert_eq!(r, 9_007_199_254_740_992.0);
        let (r_up, f) = dp::from_int(v, RoundingMode::Rup);
        assert_eq!(f, NX);
        assert!(r_up > r);
        // i32 always fits f64 exactly.
        assert_eq!(dp::from_int(i128::from(i32::MIN), RoundingMode::Rne).1, 0);
        // 16777217 = 2^24 + 1 is inexact in f32 and an exact tie.
        let (r, f) = sp::from_int(16_777_217, RoundingMode::Rne);
        assert_eq!((r, f), (16_777_216.0_f32, NX));
        let (r, f) = sp::from_int(16_777_217, RoundingMode::Rmm);
        assert_eq!((r, f), (16_777_218.0_f32, NX));
    }

    #[test]
    fn narrowing_conversions() {
        assert_eq!(f32_to_f64(1.5), (1.5, 0));
        assert_eq!(f64_to_f32(1.5, RoundingMode::Rne), (1.5, 0));
        let (v, f) = f64_to_f32(1.0 + (2.0_f64).powi(-40), RoundingMode::Rne);
        assert_eq!((v, f), (1.0, NX));
        let (v, f) = f64_to_f32(1e300, RoundingMode::Rne);
        assert_eq!((v, f), (f32::INFINITY, fflags::OF | NX));
        let (v, f) = f64_to_f32(1e300, RoundingMode::Rtz);
        assert_eq!((v, f), (f32::MAX, fflags::OF | NX));
        let (v, _) = f64_to_f32(f64::NAN, RoundingMode::Rne);
        assert_eq!(v.to_bits(), sp::CANONICAL_NAN.to_bits());
    }
}
