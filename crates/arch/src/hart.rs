//! The hart: fetch, decode, execute — one instruction per [`Hart::step`],
//! or one predecoded basic block per inner iteration of the native
//! batched [`Hart::run_batch_into`].

use std::sync::Arc;

use tf_riscv::csr::{self, CsrAddr};
use tf_riscv::{Format, Fpr, Gpr, Instruction, Opcode, RoundingMode};

use crate::digest::WideFnv;
use crate::dut::{
    fold_op_classes, fold_pc_pair, fold_sample, op_class, BatchOutcome, Dut, OP_CLASS_BUCKETS,
    PC_PAIRS_SEED,
};
use crate::fpu::{self, dp, sp};
use crate::mem::Memory;
use crate::state::ArchState;
use crate::trace::{ExecutionTrace, StepOutcome, TraceEntry};
use crate::trap::Trap;

/// Execution routine of one predecoded instruction. Non-capturing, so
/// every handler is a plain `fn` pointer and a block walk is a
/// direct-threaded dispatch loop with no opcode re-matching.
type Handler = fn(&mut Hart, &MicroOp) -> Result<(), Trap>;

/// One pre-resolved instruction of a predecoded basic block: the decoded
/// form, its fetch address and raw word (the `(pc, word)` validation
/// key), and the selected handler.
#[derive(Debug, Clone, Copy)]
struct MicroOp {
    insn: Instruction,
    pc: u64,
    word: u32,
    handler: Handler,
    /// Whether the op can write memory (stores and atomics). Only such
    /// ops can move the code generation, so the block walk checks for
    /// in-block self-modification after these alone.
    stores: bool,
}

/// A cached straight-line block starting at some pc. Valid while the
/// memory code-range generation still equals `gen`; on a generation
/// mismatch the per-word store stamps ([`Memory::code_range_unchanged`])
/// prove the block's words intact in one L1 scan, and the block is
/// rebuilt only when one of its words was actually stored to. An empty
/// `ops` caches a *failed* build (the word at the block's pc does not
/// decode), so repeated execution there does not re-pay the decode scan.
#[derive(Debug, Clone)]
struct Block {
    gen: u64,
    ops: Arc<[MicroOp]>,
}

/// Longest straight-line block predecoded in one go. Bounds the work a
/// single build or re-validation can do; block-spanning straight-line
/// code simply continues in the next cached block.
const BLOCK_CAP: usize = 64;

/// True for opcodes that end a basic block: anything after them in
/// memory order is not necessarily the next instruction executed.
/// Branches and jumps redirect control; `ecall`/`ebreak` end the run or
/// vector to the trap handler. CSR accesses stay in-block — they are
/// straight-line in this machine-mode-only model.
fn ends_block(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Beq
            | Opcode::Bne
            | Opcode::Blt
            | Opcode::Bge
            | Opcode::Bltu
            | Opcode::Bgeu
            | Opcode::Jal
            | Opcode::Jalr
            | Opcode::Ecall
            | Opcode::Ebreak
    )
}

/// Why [`Hart::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// An `ebreak` trapped after `steps` executed steps — the conventional
    /// end-of-program marker for generated workloads.
    Breakpoint {
        /// Steps executed, including the trapping one.
        steps: u64,
    },
    /// An `ecall` trapped after `steps` executed steps.
    EnvironmentCall {
        /// Steps executed, including the trapping one.
        steps: u64,
    },
    /// The step budget ran out first.
    OutOfGas,
}

impl std::fmt::Display for RunExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunExit::Breakpoint { steps } => write!(f, "breakpoint after {steps} steps"),
            RunExit::EnvironmentCall { steps } => {
                write!(f, "environment call after {steps} steps")
            }
            RunExit::OutOfGas => f.write_str("out of gas"),
        }
    }
}

/// A single RV64 IMAFD+Zicsr hart with its private memory.
///
/// [`Hart::step`] never panics: every abnormal condition becomes a typed
/// [`Trap`], which is architecturally taken (CSRs updated, `pc` vectored
/// to `mtvec`) before the step returns. This totality is what makes the
/// model usable as the golden reference under fuzzed instruction streams.
#[derive(Debug, Clone)]
pub struct Hart {
    state: ArchState,
    mem: Memory,
    reservation: Option<u64>,
    trace: Option<ExecutionTrace>,
    // Pre-decoded program cache filled by `load_program`: entry `i`
    // holds the word stored at `icache_base + 4*i` and its decode, so
    // the fetch path skips the linear opcode scan. Every hit is
    // validated against the word actually loaded from memory, which
    // keeps self-modifying programs architecturally exact (a stale
    // entry simply decodes the fresh word the slow way).
    icache_base: u64,
    icache: Vec<(u32, Option<Instruction>)>,
    // Predecoded-block cache, indexed like the icache: entry `i` caches
    // the basic block *starting at* `icache_base + 4*i`. Blocks validate
    // against the memory code-range generation (see
    // [`Memory::code_generation`]); pcs outside the loaded program never
    // get blocks and always take the exact per-step path.
    blocks: Vec<Option<Block>>,
}

impl Hart {
    /// Create a hart at the reset state with `mem_size` bytes of memory.
    #[must_use]
    pub fn new(mem_size: u64) -> Self {
        Hart {
            state: ArchState::new(),
            mem: Memory::new(mem_size),
            reservation: None,
            trace: None,
            icache_base: 0,
            icache: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Return to the reset state: registers, CSRs, memory and the LR/SC
    /// reservation are cleared and any recorded trace is discarded. The
    /// memory size is kept.
    pub fn reset(&mut self) {
        *self = Hart::new(self.mem.size());
    }

    /// The architectural register state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The architectural register state, mutably (test setup, templates).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// The memory.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The memory, mutably (program loading, data placement).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Start recording an [`ExecutionTrace`] (replacing any previous one).
    pub fn enable_tracing(&mut self) {
        self.trace = Some(ExecutionTrace::new());
    }

    /// Stop tracing and take the recorded trace.
    pub fn take_trace(&mut self) -> Option<ExecutionTrace> {
        self.trace.take()
    }

    /// The most recently recorded trace entry, for in-crate mutant
    /// implementations that patch the defined-register value after
    /// injecting a bug into the retired result.
    pub(crate) fn trace_last_mut(&mut self) -> Option<&mut TraceEntry> {
        self.trace.as_mut().and_then(ExecutionTrace::last_mut)
    }

    /// Encode `program` and store it contiguously starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] a fetch of the offending word would raise:
    /// [`Trap::StoreFault`] when the program does not fit in memory, and
    /// [`Trap::IllegalInstruction`] carrying the best-effort encoding
    /// ([`Instruction::encode_lossy`]) of the offending instruction in
    /// the type-invariant-excluded case that it fails to encode.
    pub fn load_program(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        let mut icache = Vec::with_capacity(program.len());
        for (i, insn) in program.iter().enumerate() {
            let addr = base + 4 * i as u64;
            let word = insn.encode().map_err(|_| Trap::IllegalInstruction {
                word: insn.encode_lossy(),
            })?;
            self.mem
                .store_u32(addr, word)
                .ok_or(Trap::StoreFault { addr })?;
            // Cache the decode of the *stored word* (not the given
            // instruction) so cached fetches are bit-identical to
            // uncached ones even if encode/decode ever disagreed.
            icache.push((word, Instruction::decode(word).ok()));
        }
        // Only a fully loaded program replaces the cache; fetch-time word
        // validation keeps any stale range harmless either way.
        self.icache_base = base;
        self.icache = icache;
        // The program image is the code range: stores into it bump the
        // generation the block cache validates against.
        self.blocks = vec![None; self.icache.len()];
        self.mem
            .set_code_watch(base, base + 4 * self.icache.len() as u64);
        Ok(())
    }

    /// Combined digest of register state and memory — the run fingerprint
    /// differential coverage compares between reference and DUT.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.state.digest());
        fnv.write_u64(self.mem.digest());
        fnv.finish()
    }

    /// Cumulative fold of every architectural write — registers, CSRs
    /// and memory — since reset. The path-sensitive companion of
    /// [`Hart::digest`]: equal digests say two devices *reached* the
    /// same state, equal histories say they took the same sequence of
    /// writes to get there (see [`ArchState::write_history`]).
    #[must_use]
    pub fn write_history(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.state.write_history());
        fnv.write_u64(self.mem.write_history());
        fnv.finish()
    }

    /// Execute one instruction.
    ///
    /// On a trap the hart has already vectored: `mepc`, `mcause`, `mtval`
    /// and `mstatus` are updated and `pc` points at the handler
    /// (`mtvec.base`). Never panics.
    pub fn step(&mut self) -> StepOutcome {
        self.state.bump_cycle();
        let pc = self.state.pc();
        let mut word = None;
        let outcome = match self.execute_at(pc, &mut word) {
            Ok(insn) => {
                self.state.bump_instret();
                StepOutcome::Retired(insn)
            }
            Err(trap) => {
                let handler =
                    self.state
                        .csrs_mut()
                        .enter_trap(pc, trap.cause().code(), trap.tval());
                self.state.set_pc(handler);
                StepOutcome::Trapped(trap)
            }
        };
        if self.trace.is_some() {
            let def = match outcome {
                StepOutcome::Retired(insn) => insn.operands().defs().map(|reg| {
                    let value = match reg {
                        tf_riscv::Reg::X(g) => self.state.x(g),
                        tf_riscv::Reg::F(f) => self.state.f_bits(f),
                    };
                    (reg, value)
                }),
                StepOutcome::Trapped(_) => None,
            };
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEntry {
                    pc,
                    word,
                    outcome,
                    def,
                });
            }
        }
        outcome
    }

    /// Step until an `ebreak`/`ecall` trap or until `max_steps` is spent.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        Dut::run(self, max_steps, 0).exit
    }

    fn execute_at(&mut self, pc: u64, word_out: &mut Option<u32>) -> Result<Instruction, Trap> {
        if pc % 4 != 0 {
            return Err(Trap::InstructionMisaligned { addr: pc });
        }
        let word = self
            .mem
            .load_u32(pc)
            .ok_or(Trap::InstructionFault { addr: pc })?;
        *word_out = Some(word);
        let insn = match self.cached_decode(pc, word) {
            Some(insn) => insn,
            None => Instruction::decode(word).map_err(|_| Trap::IllegalInstruction { word })?,
        };
        self.exec(insn, pc, word)?;
        Ok(insn)
    }

    /// The pre-decoded instruction for `pc`, provided the cache entry's
    /// word matches what memory actually holds there.
    fn cached_decode(&self, pc: u64, word: u32) -> Option<Instruction> {
        let index = usize::try_from(pc.checked_sub(self.icache_base)? / 4).ok()?;
        match self.icache.get(index) {
            Some(&(cached_word, decoded)) if cached_word == word => decoded,
            _ => None,
        }
    }

    // ---- predecoded-block engine ---------------------------------------

    /// The cached basic block starting at `pc`, validated or (re)built.
    /// `blocks` is the hart's own block table, lent out by [`run_batch_into`]
    /// (see there) so the returned ops slice can be walked while the
    /// handlers borrow the hart — no per-op indexing, no `Arc` refcount
    /// traffic in the hot loop. `None` when no block applies — pc
    /// misaligned, outside the loaded program, or the word there does
    /// not decode — in which case the caller must take the exact
    /// per-step path.
    fn block_at<'b>(&mut self, blocks: &'b mut [Option<Block>], pc: u64) -> Option<&'b [MicroOp]> {
        if pc % 4 != 0 {
            return None;
        }
        let index = usize::try_from(pc.checked_sub(self.icache_base)? / 4).ok()?;
        if index >= blocks.len() {
            return None;
        }
        let gen = self.mem.code_generation();
        let rebuild = match &blocks[index] {
            Some(block) if block.gen == gen => false,
            // The generation moved, but the store(s) behind it may not
            // have hit this block's words: the per-word store stamps
            // prove intactness without re-reading memory. A cached
            // failed build covers the one undecodable word at `pc`.
            Some(block) => !self
                .mem
                .code_range_unchanged(pc, block.ops.len().max(1), block.gen),
            None => true,
        };
        if rebuild {
            self.build_block(blocks, pc, index)
        } else {
            let block = blocks[index].as_mut()?;
            block.gen = gen;
            (!block.ops.is_empty()).then_some(&block.ops[..])
        }
    }

    /// Decode forward from `pc` to the next block-ending instruction (or
    /// [`BLOCK_CAP`], the end of the program image, or an undecodable
    /// word) and cache the straight-line result. A failed build (the
    /// word at `pc` itself does not decode) is cached as an empty block
    /// so the decode scan is not re-paid until that word is stored to.
    fn build_block<'b>(
        &mut self,
        blocks: &'b mut [Option<Block>],
        pc: u64,
        index: usize,
    ) -> Option<&'b [MicroOp]> {
        let end = self.icache_base + 4 * blocks.len() as u64;
        let gen = self.mem.code_generation();
        let mut ops = Vec::new();
        let mut addr = pc;
        while addr < end && ops.len() < BLOCK_CAP {
            let Some(word) = self.mem.load_u32(addr) else {
                break;
            };
            let insn = match self.cached_decode(addr, word) {
                Some(insn) => insn,
                None => match Instruction::decode(word) {
                    Ok(insn) => insn,
                    Err(_) => break,
                },
            };
            ops.push(MicroOp {
                insn,
                pc: addr,
                word,
                handler: handler_for(insn.opcode()),
                stores: matches!(
                    insn.opcode().format(),
                    Format::S | Format::FpStore | Format::Amo
                ),
            });
            if ends_block(insn.opcode()) {
                break;
            }
            addr = addr.wrapping_add(4);
        }
        blocks[index] = Some(Block {
            gen,
            ops: ops.into(),
        });
        let block = blocks[index].as_ref()?;
        (!block.ops.is_empty()).then_some(&block.ops[..])
    }

    /// Record a retired micro-op into the trace, exactly as
    /// [`Hart::step`] would have.
    #[cold]
    fn trace_retired(&mut self, op: &MicroOp) {
        let def = op.insn.operands().defs().map(|reg| {
            let value = match reg {
                tf_riscv::Reg::X(g) => self.state.x(g),
                tf_riscv::Reg::F(f) => self.state.f_bits(f),
            };
            (reg, value)
        });
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                pc: op.pc,
                word: Some(op.word),
                outcome: StepOutcome::Retired(op.insn),
                def,
            });
        }
    }

    /// Record a trapped micro-op into the trace, exactly as
    /// [`Hart::step`] would have.
    #[cold]
    fn trace_trapped(&mut self, op: &MicroOp, trap: Trap) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                pc: op.pc,
                word: Some(op.word),
                outcome: StepOutcome::Trapped(trap),
                def: None,
            });
        }
    }

    /// Native batched run: the [`Dut::run`] override for [`Hart`].
    ///
    /// Executes whole predecoded blocks between sample points, with the
    /// per-step trait dispatch, [`StepOutcome`] construction and
    /// bookkeeping hoisted out of the inner loop. Observable behaviour —
    /// step/retire counts, exits, trap causes, trace entries and every
    /// digest sample, and the pc-pair / opcode-class coverage folds — is
    /// bit-identical to the default trait implementation's documented
    /// schedule (interior samples at step numbers divisible by
    /// `digest_every`, skipping one that would coincide with the final
    /// sample; a final sample always). Pcs without a valid block —
    /// outside the program image, misaligned, or holding an undecodable
    /// word — fall back to the exact per-step path for that step.
    pub(crate) fn run_batch_into(
        &mut self,
        max_steps: u64,
        digest_every: u64,
        out: &mut BatchOutcome,
    ) {
        let mut steps = 0;
        let mut retired = 0;
        let mut trap_causes = 0u64;
        let mut exit = RunExit::OutOfGas;
        let mut pc_pairs = PC_PAIRS_SEED;
        let mut classes = [0u32; OP_CLASS_BUCKETS];
        out.samples.clear();
        let samples = &mut out.samples;
        // Countdown to the next interior sample — equivalent to the
        // default impl's `steps % digest_every == 0` because `steps`
        // only ever grows by one, but without a hardware division on
        // every step. One definition (this macro), three sample points.
        let mut until_sample = digest_every;
        macro_rules! sample_point {
            () => {
                if digest_every != 0 {
                    until_sample -= 1;
                    if until_sample == 0 {
                        until_sample = digest_every;
                        if steps < max_steps {
                            samples.push(fold_sample(self.digest(), self.write_history(), retired));
                        }
                    }
                }
            };
        }
        // Lend the block table out of `self` for the duration of the
        // run: the ops slice returned by `block_at` then borrows the
        // local table while the handlers borrow the hart disjointly, so
        // the walk is a plain slice iteration — no per-op bounds checks,
        // no `Arc` refcount traffic, no micro-op copies. Nothing on the
        // handler or fallback path reads `self.blocks`.
        let mut blocks = std::mem::take(&mut self.blocks);
        'outer: while steps < max_steps {
            let pc = self.state.pc();
            let Some(ops) = self.block_at(&mut blocks, pc) else {
                // Exact per-step fallback for this one step: traps on
                // misalignment/fetch faults/illegal words are raised by
                // `step` itself, identically to the default impl.
                let outcome = self.step();
                steps += 1;
                pc_pairs = fold_pc_pair(pc_pairs, pc, self.state.pc());
                match outcome {
                    StepOutcome::Retired(insn) => {
                        retired += 1;
                        classes[op_class(&insn)] += 1;
                    }
                    StepOutcome::Trapped(trap) => {
                        trap_causes |= 1 << (trap.cause().code() & 63);
                        match trap {
                            Trap::Breakpoint { .. } => {
                                exit = RunExit::Breakpoint { steps };
                                break 'outer;
                            }
                            Trap::EnvironmentCall => {
                                exit = RunExit::EnvironmentCall { steps };
                                break 'outer;
                            }
                            _ => {}
                        }
                    }
                }
                sample_point!();
                continue;
            };
            let block_gen = self.mem.code_generation();
            for op in ops {
                self.state.bump_cycle();
                match (op.handler)(self, op) {
                    Ok(()) => {
                        self.state.bump_instret();
                        retired += 1;
                        steps += 1;
                        pc_pairs = fold_pc_pair(pc_pairs, op.pc, self.state.pc());
                        // The major-opcode field of the fetched word is
                        // what `op_class` computes by re-encoding.
                        classes[((op.word >> 2) & 0x1F) as usize] += 1;
                        if self.trace.is_some() {
                            self.trace_retired(op);
                        }
                    }
                    Err(trap) => {
                        let handler = self.state.csrs_mut().enter_trap(
                            op.pc,
                            trap.cause().code(),
                            trap.tval(),
                        );
                        self.state.set_pc(handler);
                        steps += 1;
                        pc_pairs = fold_pc_pair(pc_pairs, op.pc, handler);
                        trap_causes |= 1 << (trap.cause().code() & 63);
                        if self.trace.is_some() {
                            self.trace_trapped(op, trap);
                        }
                        match trap {
                            Trap::Breakpoint { .. } => {
                                exit = RunExit::Breakpoint { steps };
                                break 'outer;
                            }
                            Trap::EnvironmentCall => {
                                exit = RunExit::EnvironmentCall { steps };
                                break 'outer;
                            }
                            _ => {}
                        }
                        // A non-exit trap vectored pc to mtvec: the rest
                        // of this block is not what executes next.
                        sample_point!();
                        if steps == max_steps {
                            break 'outer;
                        }
                        continue 'outer;
                    }
                }
                sample_point!();
                if steps == max_steps {
                    break 'outer;
                }
                if op.stores && self.mem.code_generation() != block_gen {
                    // The store may have hit the code range (in-block
                    // self-modification): re-resolve at the
                    // architectural pc instead of walking stale ops.
                    continue 'outer;
                }
            }
        }
        self.blocks = blocks;
        out.samples
            .push(fold_sample(self.digest(), self.write_history(), retired));
        out.steps = steps;
        out.exit = exit;
        out.trap_causes = trap_causes;
        out.pc_pairs = pc_pairs;
        out.op_classes = fold_op_classes(&classes);
    }

    // ---- register helpers ----------------------------------------------

    fn x(&self, index: u8) -> u64 {
        self.state.x(Gpr::wrapping(index))
    }

    fn set_x(&mut self, index: u8, value: u64) {
        self.state.set_x(Gpr::wrapping(index), value);
    }

    fn f(index: u8) -> Fpr {
        Fpr::wrapping(index)
    }

    fn accrue(&mut self, flags: u64) {
        if flags != 0 {
            self.state.csrs_mut().accrue_fflags(flags);
            self.state.csrs_mut().set_fp_dirty();
        }
    }

    fn fp_guard(&self, word: u32) -> Result<(), Trap> {
        if self.state.csrs().fp_off() {
            Err(Trap::IllegalInstruction { word })
        } else {
            Ok(())
        }
    }

    /// Resolve the effective rounding mode; a dynamic mode reading a
    /// reserved `fcsr.frm` raises illegal instruction (bug scenario B2).
    fn resolve_rm(&self, insn: Instruction, word: u32) -> Result<RoundingMode, Trap> {
        match insn.rm() {
            Some(RoundingMode::Dyn) => match RoundingMode::from_bits(self.state.csrs().frm()) {
                Some(RoundingMode::Dyn) | None => Err(Trap::IllegalInstruction { word }),
                Some(mode) => Ok(mode),
            },
            Some(mode) => Ok(mode),
            // Opcodes without a rounding-mode field never consult it.
            None => Ok(RoundingMode::Rne),
        }
    }

    /// Finish a straight-line micro-op: advance pc to the next word.
    /// Every handler ends by setting pc — the per-step `(slot, pc)`
    /// history fold is part of the write-history contract.
    #[inline]
    fn advance(&mut self, m: &MicroOp) -> Result<(), Trap> {
        self.state.set_pc(m.pc.wrapping_add(4));
        Ok(())
    }

    /// Conditional branch: pc moves to the target when `cmp` holds, else
    /// to the next word. Branch offsets are 4-byte aligned by
    /// construction, so no alignment trap is possible here.
    #[inline]
    fn branch_to(&mut self, m: &MicroOp, cmp: fn(u64, u64) -> bool) -> Result<(), Trap> {
        let next = if cmp(self.x(m.insn.rs1()), self.x(m.insn.rs2())) {
            m.pc.wrapping_add(m.insn.imm() as u64)
        } else {
            m.pc.wrapping_add(4)
        };
        self.state.set_pc(next);
        Ok(())
    }

    // ---- memory helpers ------------------------------------------------

    fn int_load(&mut self, insn: Instruction, bytes: u64, signed: bool) -> Result<(), Trap> {
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        let value = match (bytes, signed) {
            (1, false) => u64::from(self.mem.load_u8(addr).ok_or(fault)?),
            (1, true) => self.mem.load_u8(addr).ok_or(fault)? as i8 as i64 as u64,
            (2, false) => u64::from(self.mem.load_u16(addr).ok_or(fault)?),
            (2, true) => self.mem.load_u16(addr).ok_or(fault)? as i16 as i64 as u64,
            (4, false) => u64::from(self.mem.load_u32(addr).ok_or(fault)?),
            (4, true) => self.mem.load_u32(addr).ok_or(fault)? as i32 as i64 as u64,
            _ => self.mem.load_u64(addr).ok_or(fault)?,
        };
        self.set_x(insn.rd(), value);
        Ok(())
    }

    fn int_store(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let value = self.x(insn.rs2());
        let fault = Trap::StoreFault { addr };
        match bytes {
            1 => self.mem.store_u8(addr, value as u8).ok_or(fault),
            2 => self.mem.store_u16(addr, value as u16).ok_or(fault),
            4 => self.mem.store_u32(addr, value as u32).ok_or(fault),
            _ => self.mem.store_u64(addr, value).ok_or(fault),
        }
    }

    // ---- atomics -------------------------------------------------------

    fn load_reserved(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        let value = if bytes == 4 {
            self.mem.load_u32(addr).ok_or(fault)? as i32 as i64 as u64
        } else {
            self.mem.load_u64(addr).ok_or(fault)?
        };
        self.reservation = Some(addr);
        self.set_x(insn.rd(), value);
        Ok(())
    }

    fn store_conditional(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let success = self.reservation == Some(addr);
        // Any sc invalidates the reservation, pass or fail.
        self.reservation = None;
        if success {
            let value = self.x(insn.rs2());
            let fault = Trap::StoreFault { addr };
            if bytes == 4 {
                self.mem.store_u32(addr, value as u32).ok_or(fault)?;
            } else {
                self.mem.store_u64(addr, value).ok_or(fault)?;
            }
            self.set_x(insn.rd(), 0);
        } else {
            self.set_x(insn.rd(), 1);
        }
        Ok(())
    }

    /// Read-modify-write on a 32-bit memory word; `rd` gets the old value
    /// sign-extended.
    fn amo32(&mut self, insn: Instruction, op: fn(u32, u32) -> u32) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % 4 != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let old = self.mem.load_u32(addr).ok_or(Trap::StoreFault { addr })?;
        let new = op(old, self.x(insn.rs2()) as u32);
        self.mem
            .store_u32(addr, new)
            .ok_or(Trap::StoreFault { addr })?;
        self.set_x(insn.rd(), old as i32 as i64 as u64);
        Ok(())
    }

    /// Read-modify-write on a 64-bit memory doubleword.
    fn amo64(&mut self, insn: Instruction, op: fn(u64, u64) -> u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % 8 != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let old = self.mem.load_u64(addr).ok_or(Trap::StoreFault { addr })?;
        let new = op(old, self.x(insn.rs2()));
        self.mem
            .store_u64(addr, new)
            .ok_or(Trap::StoreFault { addr })?;
        self.set_x(insn.rd(), old);
        Ok(())
    }

    // ---- floating point ------------------------------------------------

    fn fp_bin_s(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f32, f32, RoundingMode) -> (f32, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (a, b) = (
            self.state.f32(Self::f(insn.rs1())),
            self.state.f32(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b, rm);
        self.state.set_f32(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_bin_d(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f64, f64, RoundingMode) -> (f64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (a, b) = (
            self.state.f64(Self::f(insn.rs1())),
            self.state.f64(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b, rm);
        self.state.set_f64(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_fma_s(&mut self, insn: Instruction, word: u32, na: bool, nc: bool) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let a = self.state.f32(Self::f(insn.rs1()));
        let b = self.state.f32(Self::f(insn.rs2()));
        let c = self.state.f32(Self::f(insn.rs3()));
        let (a, c) = (if na { -a } else { a }, if nc { -c } else { c });
        let (v, flags) = sp::fma(a, b, c, rm);
        self.state.set_f32(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_fma_d(&mut self, insn: Instruction, word: u32, na: bool, nc: bool) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let a = self.state.f64(Self::f(insn.rs1()));
        let b = self.state.f64(Self::f(insn.rs2()));
        let c = self.state.f64(Self::f(insn.rs3()));
        let (a, c) = (if na { -a } else { a }, if nc { -c } else { c });
        let (v, flags) = dp::fma(a, b, c, rm);
        self.state.set_f64(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_cmp_s(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f32, f32) -> (bool, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let (a, b) = (
            self.state.f32(Self::f(insn.rs1())),
            self.state.f32(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b);
        self.set_x(insn.rd(), u64::from(v));
        self.accrue(flags);
        Ok(())
    }

    fn fp_cmp_d(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f64, f64) -> (bool, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let (a, b) = (
            self.state.f64(Self::f(insn.rs1())),
            self.state.f64(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b);
        self.set_x(insn.rd(), u64::from(v));
        self.accrue(flags);
        Ok(())
    }

    /// Sign injection on the single-precision value: `mode` 0 copies the
    /// sign of `b`, 1 the negated sign, 2 the xor of both signs.
    fn fsgnj_s(&mut self, insn: Instruction, word: u32, mode: u8) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let a = self.state.f32(Self::f(insn.rs1())).to_bits();
        let b = self.state.f32(Self::f(insn.rs2())).to_bits();
        let sign = 1u32 << 31;
        let s = match mode {
            0 => b & sign,
            1 => !b & sign,
            _ => (a ^ b) & sign,
        };
        self.state
            .set_f32(Self::f(insn.rd()), f32::from_bits((a & !sign) | s));
        Ok(())
    }

    /// Sign injection on the double-precision value.
    fn fsgnj_d(&mut self, insn: Instruction, word: u32, mode: u8) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let a = self.state.f_bits(Self::f(insn.rs1()));
        let b = self.state.f_bits(Self::f(insn.rs2()));
        let sign = 1u64 << 63;
        let s = match mode {
            0 => b & sign,
            1 => !b & sign,
            _ => (a ^ b) & sign,
        };
        self.state.set_f_bits(Self::f(insn.rd()), (a & !sign) | s);
        Ok(())
    }

    fn fp_load(&mut self, insn: Instruction, word: u32, bytes: u64) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        if bytes == 4 {
            let bits = self.mem.load_u32(addr).ok_or(fault)?;
            self.state.set_f32(Self::f(insn.rd()), f32::from_bits(bits));
        } else {
            let bits = self.mem.load_u64(addr).ok_or(fault)?;
            self.state.set_f_bits(Self::f(insn.rd()), bits);
        }
        Ok(())
    }

    fn fp_store(&mut self, insn: Instruction, word: u32, bytes: u64) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let fault = Trap::StoreFault { addr };
        // Stores move the raw low bits, independent of NaN boxing.
        let bits = self.state.f_bits(Self::f(insn.rs2()));
        if bytes == 4 {
            self.mem.store_u32(addr, bits as u32).ok_or(fault)
        } else {
            self.mem.store_u64(addr, bits).ok_or(fault)
        }
    }

    /// `fcvt` to an integer register: convert, then sign-extend the
    /// 32-bit results as RV64 requires.
    fn fcvt_to_int_s(
        &mut self,
        insn: Instruction,
        word: u32,
        cvt: fn(f32, RoundingMode) -> (u64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (v, flags) = cvt(self.state.f32(Self::f(insn.rs1())), rm);
        self.set_x(insn.rd(), v);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_to_int_d(
        &mut self,
        insn: Instruction,
        word: u32,
        cvt: fn(f64, RoundingMode) -> (u64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (v, flags) = cvt(self.state.f64(Self::f(insn.rs1())), rm);
        self.set_x(insn.rd(), v);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_from_int_s(&mut self, insn: Instruction, word: u32, v: i128) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (r, flags) = sp::from_int(v, rm);
        self.state.set_f32(Self::f(insn.rd()), r);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_from_int_d(&mut self, insn: Instruction, word: u32, v: i128) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (r, flags) = dp::from_int(v, rm);
        self.state.set_f64(Self::f(insn.rd()), r);
        self.accrue(flags);
        Ok(())
    }

    // ---- csr -----------------------------------------------------------

    fn csr_op(&mut self, insn: Instruction, word: u32) -> Result<(), Trap> {
        let illegal = Trap::IllegalInstruction { word };
        let addr: CsrAddr = insn.csr_addr().ok_or(illegal)?;
        // fcsr and its views are FP state: accesses trap when FS is off.
        let fp_csr = matches!(addr, csr::FFLAGS | csr::FRM | csr::FCSR);
        if fp_csr {
            self.fp_guard(word)?;
        }
        // Immediate forms carry the 5-bit source in the rs1 slot; register
        // forms read the register. An x0/zero source suppresses the write
        // for the set/clear flavours.
        let (src, src_is_zero) = match insn.opcode() {
            Opcode::Csrrw | Opcode::Csrrs | Opcode::Csrrc => (self.x(insn.rs1()), insn.rs1() == 0),
            _ => (u64::from(insn.rs1()), insn.rs1() == 0),
        };
        let old = self.state.csrs().read(addr).ok_or(illegal)?;
        let write = match insn.opcode() {
            Opcode::Csrrw | Opcode::Csrrwi => Some(src),
            Opcode::Csrrs | Opcode::Csrrsi => (!src_is_zero).then_some(old | src),
            _ => (!src_is_zero).then_some(old & !src),
        };
        if let Some(value) = write {
            self.state.csrs_mut().write(addr, value).ok_or(illegal)?;
            if fp_csr {
                self.state.csrs_mut().set_fp_dirty();
            }
        }
        self.set_x(insn.rd(), old);
        Ok(())
    }

    // ---- the interpreter -----------------------------------------------

    /// Execute one decoded instruction by dispatching through the same
    /// handler table the block engine uses, so the per-step path and the
    /// batched path share one implementation of every opcode.
    fn exec(&mut self, insn: Instruction, pc: u64, word: u32) -> Result<(), Trap> {
        let op = MicroOp {
            insn,
            pc,
            word,
            handler: handler_for(insn.opcode()),
            stores: false, // unused on the per-step path
        };
        (op.handler)(self, &op)
    }
}

/// The handler for one opcode. The match is exhaustive over every
/// [`Opcode`] — no catch-all — so adding an opcode to the substrate
/// without teaching the reference model about it fails to compile. Every
/// handler ends by setting pc (straight-line ops via [`Hart::advance`],
/// control flow explicitly); on a trap (`Err`) pc is untouched and the
/// caller vectors it.
#[allow(clippy::too_many_lines)]
fn handler_for(opcode: Opcode) -> Handler {
    use Opcode as Op;
    match opcode {
        // ---- RV64I: upper immediates and jumps ---------------------
        Op::Lui => |h, m| {
            h.set_x(m.insn.rd(), (m.insn.imm() << 12) as u64);
            h.advance(m)
        },
        Op::Auipc => |h, m| {
            h.set_x(m.insn.rd(), m.pc.wrapping_add((m.insn.imm() << 12) as u64));
            h.advance(m)
        },
        Op::Jal => |h, m| {
            h.set_x(m.insn.rd(), m.pc.wrapping_add(4));
            h.state.set_pc(m.pc.wrapping_add(m.insn.imm() as u64));
            Ok(())
        },
        Op::Jalr => |h, m| {
            let target = h.x(m.insn.rs1()).wrapping_add(m.insn.imm() as u64) & !1;
            if target % 4 != 0 {
                return Err(Trap::InstructionMisaligned { addr: target });
            }
            h.set_x(m.insn.rd(), m.pc.wrapping_add(4));
            h.state.set_pc(target);
            Ok(())
        },
        // ---- RV64I: branches ---------------------------------------
        Op::Beq => |h, m| h.branch_to(m, |a, b| a == b),
        Op::Bne => |h, m| h.branch_to(m, |a, b| a != b),
        Op::Blt => |h, m| h.branch_to(m, |a, b| (a as i64) < (b as i64)),
        Op::Bge => |h, m| h.branch_to(m, |a, b| (a as i64) >= (b as i64)),
        Op::Bltu => |h, m| h.branch_to(m, |a, b| a < b),
        Op::Bgeu => |h, m| h.branch_to(m, |a, b| a >= b),
        // ---- RV64I: loads and stores -------------------------------
        Op::Lb => |h, m| {
            h.int_load(m.insn, 1, true)?;
            h.advance(m)
        },
        Op::Lh => |h, m| {
            h.int_load(m.insn, 2, true)?;
            h.advance(m)
        },
        Op::Lw => |h, m| {
            h.int_load(m.insn, 4, true)?;
            h.advance(m)
        },
        Op::Ld => |h, m| {
            h.int_load(m.insn, 8, true)?;
            h.advance(m)
        },
        Op::Lbu => |h, m| {
            h.int_load(m.insn, 1, false)?;
            h.advance(m)
        },
        Op::Lhu => |h, m| {
            h.int_load(m.insn, 2, false)?;
            h.advance(m)
        },
        Op::Lwu => |h, m| {
            h.int_load(m.insn, 4, false)?;
            h.advance(m)
        },
        Op::Sb => |h, m| {
            h.int_store(m.insn, 1)?;
            h.advance(m)
        },
        Op::Sh => |h, m| {
            h.int_store(m.insn, 2)?;
            h.advance(m)
        },
        Op::Sw => |h, m| {
            h.int_store(m.insn, 4)?;
            h.advance(m)
        },
        Op::Sd => |h, m| {
            h.int_store(m.insn, 8)?;
            h.advance(m)
        },
        // ---- RV64I: register-immediate -----------------------------
        Op::Addi => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_add(m.insn.imm() as u64);
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Slti => |h, m| {
            let v = (h.x(m.insn.rs1()) as i64) < m.insn.imm();
            h.set_x(m.insn.rd(), u64::from(v));
            h.advance(m)
        },
        Op::Sltiu => |h, m| {
            let v = h.x(m.insn.rs1()) < m.insn.imm() as u64;
            h.set_x(m.insn.rd(), u64::from(v));
            h.advance(m)
        },
        Op::Xori => |h, m| {
            let v = h.x(m.insn.rs1()) ^ m.insn.imm() as u64;
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Ori => |h, m| {
            let v = h.x(m.insn.rs1()) | m.insn.imm() as u64;
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Andi => |h, m| {
            let v = h.x(m.insn.rs1()) & m.insn.imm() as u64;
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Slli => |h, m| {
            let v = h.x(m.insn.rs1()) << m.insn.imm();
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Srli => |h, m| {
            let v = h.x(m.insn.rs1()) >> m.insn.imm();
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Srai => |h, m| {
            let v = (h.x(m.insn.rs1()) as i64) >> m.insn.imm();
            h.set_x(m.insn.rd(), v as u64);
            h.advance(m)
        },
        Op::Addiw => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_add(m.insn.imm() as u64) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Slliw => |h, m| {
            let v = ((h.x(m.insn.rs1()) as u32) << m.insn.imm()) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Srliw => |h, m| {
            let v = ((h.x(m.insn.rs1()) as u32) >> m.insn.imm()) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Sraiw => |h, m| {
            let v = (h.x(m.insn.rs1()) as i32) >> m.insn.imm();
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        // ---- RV64I: register-register ------------------------------
        Op::Add => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_add(h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Sub => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_sub(h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Sll => |h, m| {
            let v = h.x(m.insn.rs1()) << (h.x(m.insn.rs2()) & 63);
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Slt => |h, m| {
            let v = (h.x(m.insn.rs1()) as i64) < (h.x(m.insn.rs2()) as i64);
            h.set_x(m.insn.rd(), u64::from(v));
            h.advance(m)
        },
        Op::Sltu => |h, m| {
            let v = h.x(m.insn.rs1()) < h.x(m.insn.rs2());
            h.set_x(m.insn.rd(), u64::from(v));
            h.advance(m)
        },
        Op::Xor => |h, m| {
            let v = h.x(m.insn.rs1()) ^ h.x(m.insn.rs2());
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Srl => |h, m| {
            let v = h.x(m.insn.rs1()) >> (h.x(m.insn.rs2()) & 63);
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Sra => |h, m| {
            let v = (h.x(m.insn.rs1()) as i64) >> (h.x(m.insn.rs2()) & 63);
            h.set_x(m.insn.rd(), v as u64);
            h.advance(m)
        },
        Op::Or => |h, m| {
            let v = h.x(m.insn.rs1()) | h.x(m.insn.rs2());
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::And => |h, m| {
            let v = h.x(m.insn.rs1()) & h.x(m.insn.rs2());
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Addw => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_add(h.x(m.insn.rs2())) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Subw => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_sub(h.x(m.insn.rs2())) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Sllw => |h, m| {
            let v = ((h.x(m.insn.rs1()) as u32) << (h.x(m.insn.rs2()) & 31)) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Srlw => |h, m| {
            let v = ((h.x(m.insn.rs1()) as u32) >> (h.x(m.insn.rs2()) & 31)) as i32;
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Sraw => |h, m| {
            let v = (h.x(m.insn.rs1()) as i32) >> (h.x(m.insn.rs2()) & 31);
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        // ---- RV64I: fence and system -------------------------------
        // A single in-order hart: fences are architectural no-ops.
        Op::Fence => |h, m| h.advance(m),
        Op::Ecall => |_, _| Err(Trap::EnvironmentCall),
        Op::Ebreak => |_, m| Err(Trap::Breakpoint { addr: m.pc }),
        // ---- RV64M -------------------------------------------------
        Op::Mul => |h, m| {
            let v = h.x(m.insn.rs1()).wrapping_mul(h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Mulh => |h, m| {
            let a = i128::from(h.x(m.insn.rs1()) as i64);
            let b = i128::from(h.x(m.insn.rs2()) as i64);
            h.set_x(m.insn.rd(), ((a * b) >> 64) as u64);
            h.advance(m)
        },
        Op::Mulhsu => |h, m| {
            let a = i128::from(h.x(m.insn.rs1()) as i64);
            let b = i128::from(h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), ((a * b) >> 64) as u64);
            h.advance(m)
        },
        Op::Mulhu => |h, m| {
            let a = u128::from(h.x(m.insn.rs1()));
            let b = u128::from(h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), ((a * b) >> 64) as u64);
            h.advance(m)
        },
        Op::Div => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as i64, h.x(m.insn.rs2()) as i64);
            let v = if b == 0 { -1 } else { a.wrapping_div(b) };
            h.set_x(m.insn.rd(), v as u64);
            h.advance(m)
        },
        Op::Divu => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()), h.x(m.insn.rs2()));
            h.set_x(m.insn.rd(), a.checked_div(b).unwrap_or(u64::MAX));
            h.advance(m)
        },
        Op::Rem => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as i64, h.x(m.insn.rs2()) as i64);
            let v = if b == 0 { a } else { a.wrapping_rem(b) };
            h.set_x(m.insn.rd(), v as u64);
            h.advance(m)
        },
        Op::Remu => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()), h.x(m.insn.rs2()));
            let v = if b == 0 { a } else { a % b };
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::Mulw => |h, m| {
            let v = (h.x(m.insn.rs1()) as i32).wrapping_mul(h.x(m.insn.rs2()) as i32);
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Divw => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as i32, h.x(m.insn.rs2()) as i32);
            let v = if b == 0 { -1 } else { a.wrapping_div(b) };
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Divuw => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as u32, h.x(m.insn.rs2()) as u32);
            let v = a.checked_div(b).unwrap_or(u32::MAX);
            h.set_x(m.insn.rd(), v as i32 as i64 as u64);
            h.advance(m)
        },
        Op::Remw => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as i32, h.x(m.insn.rs2()) as i32);
            let v = if b == 0 { a } else { a.wrapping_rem(b) };
            h.set_x(m.insn.rd(), v as i64 as u64);
            h.advance(m)
        },
        Op::Remuw => |h, m| {
            let (a, b) = (h.x(m.insn.rs1()) as u32, h.x(m.insn.rs2()) as u32);
            let v = if b == 0 { a } else { a % b };
            h.set_x(m.insn.rd(), v as i32 as i64 as u64);
            h.advance(m)
        },
        // ---- RV64A -------------------------------------------------
        Op::LrW => |h, m| {
            h.load_reserved(m.insn, 4)?;
            h.advance(m)
        },
        Op::LrD => |h, m| {
            h.load_reserved(m.insn, 8)?;
            h.advance(m)
        },
        Op::ScW => |h, m| {
            h.store_conditional(m.insn, 4)?;
            h.advance(m)
        },
        Op::ScD => |h, m| {
            h.store_conditional(m.insn, 8)?;
            h.advance(m)
        },
        Op::AmoswapW => |h, m| {
            h.amo32(m.insn, |_, s| s)?;
            h.advance(m)
        },
        Op::AmoaddW => |h, m| {
            h.amo32(m.insn, u32::wrapping_add)?;
            h.advance(m)
        },
        Op::AmoxorW => |h, m| {
            h.amo32(m.insn, |o, s| o ^ s)?;
            h.advance(m)
        },
        Op::AmoandW => |h, m| {
            h.amo32(m.insn, |o, s| o & s)?;
            h.advance(m)
        },
        Op::AmoorW => |h, m| {
            h.amo32(m.insn, |o, s| o | s)?;
            h.advance(m)
        },
        Op::AmominW => |h, m| {
            h.amo32(m.insn, |o, s| (o as i32).min(s as i32) as u32)?;
            h.advance(m)
        },
        Op::AmomaxW => |h, m| {
            h.amo32(m.insn, |o, s| (o as i32).max(s as i32) as u32)?;
            h.advance(m)
        },
        Op::AmominuW => |h, m| {
            h.amo32(m.insn, u32::min)?;
            h.advance(m)
        },
        Op::AmomaxuW => |h, m| {
            h.amo32(m.insn, u32::max)?;
            h.advance(m)
        },
        Op::AmoswapD => |h, m| {
            h.amo64(m.insn, |_, s| s)?;
            h.advance(m)
        },
        Op::AmoaddD => |h, m| {
            h.amo64(m.insn, u64::wrapping_add)?;
            h.advance(m)
        },
        Op::AmoxorD => |h, m| {
            h.amo64(m.insn, |o, s| o ^ s)?;
            h.advance(m)
        },
        Op::AmoandD => |h, m| {
            h.amo64(m.insn, |o, s| o & s)?;
            h.advance(m)
        },
        Op::AmoorD => |h, m| {
            h.amo64(m.insn, |o, s| o | s)?;
            h.advance(m)
        },
        Op::AmominD => |h, m| {
            h.amo64(m.insn, |o, s| (o as i64).min(s as i64) as u64)?;
            h.advance(m)
        },
        Op::AmomaxD => |h, m| {
            h.amo64(m.insn, |o, s| (o as i64).max(s as i64) as u64)?;
            h.advance(m)
        },
        Op::AmominuD => |h, m| {
            h.amo64(m.insn, u64::min)?;
            h.advance(m)
        },
        Op::AmomaxuD => |h, m| {
            h.amo64(m.insn, u64::max)?;
            h.advance(m)
        },
        // ---- RV64F -------------------------------------------------
        Op::Flw => |h, m| {
            h.fp_load(m.insn, m.word, 4)?;
            h.advance(m)
        },
        Op::Fsw => |h, m| {
            h.fp_store(m.insn, m.word, 4)?;
            h.advance(m)
        },
        Op::FmaddS => |h, m| {
            h.fp_fma_s(m.insn, m.word, false, false)?;
            h.advance(m)
        },
        Op::FmsubS => |h, m| {
            h.fp_fma_s(m.insn, m.word, false, true)?;
            h.advance(m)
        },
        Op::FnmsubS => |h, m| {
            h.fp_fma_s(m.insn, m.word, true, false)?;
            h.advance(m)
        },
        Op::FnmaddS => |h, m| {
            h.fp_fma_s(m.insn, m.word, true, true)?;
            h.advance(m)
        },
        Op::FaddS => |h, m| {
            h.fp_bin_s(m.insn, m.word, sp::add)?;
            h.advance(m)
        },
        Op::FsubS => |h, m| {
            h.fp_bin_s(m.insn, m.word, sp::sub)?;
            h.advance(m)
        },
        Op::FmulS => |h, m| {
            h.fp_bin_s(m.insn, m.word, sp::mul)?;
            h.advance(m)
        },
        Op::FdivS => |h, m| {
            h.fp_bin_s(m.insn, m.word, sp::div)?;
            h.advance(m)
        },
        Op::FsqrtS => |h, m| {
            h.fp_guard(m.word)?;
            let rm = h.resolve_rm(m.insn, m.word)?;
            let (v, flags) = sp::sqrt(h.state.f32(Hart::f(m.insn.rs1())), rm);
            h.state.set_f32(Hart::f(m.insn.rd()), v);
            h.accrue(flags);
            h.advance(m)
        },
        Op::FsgnjS => |h, m| {
            h.fsgnj_s(m.insn, m.word, 0)?;
            h.advance(m)
        },
        Op::FsgnjnS => |h, m| {
            h.fsgnj_s(m.insn, m.word, 1)?;
            h.advance(m)
        },
        Op::FsgnjxS => |h, m| {
            h.fsgnj_s(m.insn, m.word, 2)?;
            h.advance(m)
        },
        Op::FminS => |h, m| {
            h.fp_bin_s(m.insn, m.word, |a, b, _| sp::min(a, b))?;
            h.advance(m)
        },
        Op::FmaxS => |h, m| {
            h.fp_bin_s(m.insn, m.word, |a, b, _| sp::max(a, b))?;
            h.advance(m)
        },
        Op::FeqS => |h, m| {
            h.fp_cmp_s(m.insn, m.word, sp::feq)?;
            h.advance(m)
        },
        Op::FltS => |h, m| {
            h.fp_cmp_s(m.insn, m.word, sp::flt)?;
            h.advance(m)
        },
        Op::FleS => |h, m| {
            h.fp_cmp_s(m.insn, m.word, sp::fle)?;
            h.advance(m)
        },
        Op::FclassS => |h, m| {
            h.fp_guard(m.word)?;
            let v = sp::fclass(h.state.f32(Hart::f(m.insn.rs1())));
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::FcvtWS => |h, m| {
            h.fcvt_to_int_s(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f32_to_i32(v, rm);
                (r as i64 as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtWuS => |h, m| {
            h.fcvt_to_int_s(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f32_to_u32(v, rm);
                (r as i32 as i64 as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtLS => |h, m| {
            h.fcvt_to_int_s(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f32_to_i64(v, rm);
                (r as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtLuS => |h, m| {
            h.fcvt_to_int_s(m.insn, m.word, fpu::f32_to_u64)?;
            h.advance(m)
        },
        Op::FcvtSW => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as i32);
            h.fcvt_from_int_s(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtSWu => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as u32);
            h.fcvt_from_int_s(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtSL => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as i64);
            h.fcvt_from_int_s(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtSLu => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()));
            h.fcvt_from_int_s(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FmvXW => |h, m| {
            h.fp_guard(m.word)?;
            let bits = h.state.f_bits(Hart::f(m.insn.rs1())) as u32;
            h.set_x(m.insn.rd(), bits as i32 as i64 as u64);
            h.advance(m)
        },
        Op::FmvWX => |h, m| {
            h.fp_guard(m.word)?;
            let bits = h.x(m.insn.rs1()) as u32;
            h.state.set_f32(Hart::f(m.insn.rd()), f32::from_bits(bits));
            h.advance(m)
        },
        // ---- RV64D -------------------------------------------------
        Op::Fld => |h, m| {
            h.fp_load(m.insn, m.word, 8)?;
            h.advance(m)
        },
        Op::Fsd => |h, m| {
            h.fp_store(m.insn, m.word, 8)?;
            h.advance(m)
        },
        Op::FmaddD => |h, m| {
            h.fp_fma_d(m.insn, m.word, false, false)?;
            h.advance(m)
        },
        Op::FmsubD => |h, m| {
            h.fp_fma_d(m.insn, m.word, false, true)?;
            h.advance(m)
        },
        Op::FnmsubD => |h, m| {
            h.fp_fma_d(m.insn, m.word, true, false)?;
            h.advance(m)
        },
        Op::FnmaddD => |h, m| {
            h.fp_fma_d(m.insn, m.word, true, true)?;
            h.advance(m)
        },
        Op::FaddD => |h, m| {
            h.fp_bin_d(m.insn, m.word, dp::add)?;
            h.advance(m)
        },
        Op::FsubD => |h, m| {
            h.fp_bin_d(m.insn, m.word, dp::sub)?;
            h.advance(m)
        },
        Op::FmulD => |h, m| {
            h.fp_bin_d(m.insn, m.word, dp::mul)?;
            h.advance(m)
        },
        Op::FdivD => |h, m| {
            h.fp_bin_d(m.insn, m.word, dp::div)?;
            h.advance(m)
        },
        Op::FsqrtD => |h, m| {
            h.fp_guard(m.word)?;
            let rm = h.resolve_rm(m.insn, m.word)?;
            let (v, flags) = dp::sqrt(h.state.f64(Hart::f(m.insn.rs1())), rm);
            h.state.set_f64(Hart::f(m.insn.rd()), v);
            h.accrue(flags);
            h.advance(m)
        },
        Op::FsgnjD => |h, m| {
            h.fsgnj_d(m.insn, m.word, 0)?;
            h.advance(m)
        },
        Op::FsgnjnD => |h, m| {
            h.fsgnj_d(m.insn, m.word, 1)?;
            h.advance(m)
        },
        Op::FsgnjxD => |h, m| {
            h.fsgnj_d(m.insn, m.word, 2)?;
            h.advance(m)
        },
        Op::FminD => |h, m| {
            h.fp_bin_d(m.insn, m.word, |a, b, _| dp::min(a, b))?;
            h.advance(m)
        },
        Op::FmaxD => |h, m| {
            h.fp_bin_d(m.insn, m.word, |a, b, _| dp::max(a, b))?;
            h.advance(m)
        },
        Op::FeqD => |h, m| {
            h.fp_cmp_d(m.insn, m.word, dp::feq)?;
            h.advance(m)
        },
        Op::FltD => |h, m| {
            h.fp_cmp_d(m.insn, m.word, dp::flt)?;
            h.advance(m)
        },
        Op::FleD => |h, m| {
            h.fp_cmp_d(m.insn, m.word, dp::fle)?;
            h.advance(m)
        },
        Op::FclassD => |h, m| {
            h.fp_guard(m.word)?;
            let v = dp::fclass(h.state.f64(Hart::f(m.insn.rs1())));
            h.set_x(m.insn.rd(), v);
            h.advance(m)
        },
        Op::FcvtSD => |h, m| {
            h.fp_guard(m.word)?;
            let rm = h.resolve_rm(m.insn, m.word)?;
            let (v, flags) = fpu::f64_to_f32(h.state.f64(Hart::f(m.insn.rs1())), rm);
            h.state.set_f32(Hart::f(m.insn.rd()), v);
            h.accrue(flags);
            h.advance(m)
        },
        Op::FcvtDS => |h, m| {
            h.fp_guard(m.word)?;
            let (v, flags) = fpu::f32_to_f64(h.state.f32(Hart::f(m.insn.rs1())));
            h.state.set_f64(Hart::f(m.insn.rd()), v);
            h.accrue(flags);
            h.advance(m)
        },
        Op::FcvtWD => |h, m| {
            h.fcvt_to_int_d(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f64_to_i32(v, rm);
                (r as i64 as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtWuD => |h, m| {
            h.fcvt_to_int_d(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f64_to_u32(v, rm);
                (r as i32 as i64 as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtLD => |h, m| {
            h.fcvt_to_int_d(m.insn, m.word, |v, rm| {
                let (r, f) = fpu::f64_to_i64(v, rm);
                (r as u64, f)
            })?;
            h.advance(m)
        },
        Op::FcvtLuD => |h, m| {
            h.fcvt_to_int_d(m.insn, m.word, fpu::f64_to_u64)?;
            h.advance(m)
        },
        Op::FcvtDW => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as i32);
            h.fcvt_from_int_d(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtDWu => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as u32);
            h.fcvt_from_int_d(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtDL => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()) as i64);
            h.fcvt_from_int_d(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FcvtDLu => |h, m| {
            let v = i128::from(h.x(m.insn.rs1()));
            h.fcvt_from_int_d(m.insn, m.word, v)?;
            h.advance(m)
        },
        Op::FmvXD => |h, m| {
            h.fp_guard(m.word)?;
            let bits = h.state.f_bits(Hart::f(m.insn.rs1()));
            h.set_x(m.insn.rd(), bits);
            h.advance(m)
        },
        Op::FmvDX => |h, m| {
            h.fp_guard(m.word)?;
            let bits = h.x(m.insn.rs1());
            h.state.set_f_bits(Hart::f(m.insn.rd()), bits);
            h.advance(m)
        },
        // ---- Zicsr -------------------------------------------------
        Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci => |h, m| {
            h.csr_op(m.insn, m.word)?;
            h.advance(m)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{BranchOffset, Gpr, Reg};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn hart_with(program: &[Instruction]) -> Hart {
        let mut hart = Hart::new(1 << 20);
        hart.load_program(0, program).unwrap();
        hart
    }

    #[test]
    fn addi_add_sequence_retires() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::i_type(Opcode::Addi, x(2), Gpr::ZERO, 7).unwrap(),
            Instruction::r_type(Opcode::Add, x(3), x(1), x(2)),
        ];
        let mut hart = hart_with(&program);
        for _ in 0..3 {
            assert!(matches!(hart.step(), StepOutcome::Retired(_)));
        }
        assert_eq!(hart.state().x(x(3)), 12);
        assert_eq!(hart.state().pc(), 12);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let program = [Instruction::i_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, 42).unwrap()];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().x(Gpr::ZERO), 0);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let off = BranchOffset::new(8).unwrap();
        let program = [
            Instruction::b_type(Opcode::Beq, Gpr::ZERO, Gpr::ZERO, off),
            Instruction::nop(),
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().pc(), 8);
        hart.step();
        assert_eq!(hart.state().x(x(1)), 1);
    }

    #[test]
    fn traps_vector_to_mtvec_and_record_cause() {
        let mut hart = Hart::new(1 << 20);
        hart.state_mut()
            .csrs_mut()
            .write(csr::MTVEC, 0x100)
            .unwrap();
        // pc = 0 holds zeros: an illegal instruction.
        let outcome = hart.step();
        assert!(matches!(
            outcome,
            StepOutcome::Trapped(Trap::IllegalInstruction { word: 0 })
        ));
        assert_eq!(hart.state().pc(), 0x100);
        assert_eq!(hart.state().csrs().read(csr::MEPC), Some(0));
        assert_eq!(hart.state().csrs().read(csr::MCAUSE), Some(2));
    }

    #[test]
    fn fetch_outside_memory_faults() {
        let mut hart = Hart::new(64);
        hart.state_mut().set_pc(128);
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::InstructionFault { addr: 128 })
        ));
    }

    #[test]
    fn misaligned_load_traps_with_address() {
        let program = [Instruction::i_type(Opcode::Lw, x(1), Gpr::ZERO, 2).unwrap()];
        let mut hart = hart_with(&program);
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::LoadMisaligned { addr: 2 })
        ));
    }

    #[test]
    fn ecall_and_ebreak_end_runs() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ebreak)];
        let mut hart = hart_with(&program);
        assert_eq!(hart.run(10), RunExit::Breakpoint { steps: 2 });
        let program = [Instruction::system(Opcode::Ecall)];
        let mut hart = hart_with(&program);
        assert_eq!(hart.run(10), RunExit::EnvironmentCall { steps: 1 });
        let mut hart = hart_with(&[Instruction::nop()]);
        assert_eq!(hart.run(1), RunExit::OutOfGas);
    }

    #[test]
    fn lr_sc_pair_succeeds_and_stale_sc_fails() {
        let program = [
            Instruction::amo(Opcode::LrW, x(1), x(5), Gpr::ZERO, false, false).unwrap(),
            Instruction::amo(Opcode::ScW, x(2), x(5), x(6), false, false).unwrap(),
            Instruction::amo(Opcode::ScW, x(3), x(5), x(6), false, false).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.state_mut().set_x(x(5), 0x200);
        hart.state_mut().set_x(x(6), 77);
        hart.mem_mut().store_u32(0x200, 33).unwrap();
        hart.step();
        assert_eq!(hart.state().x(x(1)), 33);
        hart.step();
        assert_eq!(hart.state().x(x(2)), 0, "sc with reservation succeeds");
        assert_eq!(hart.mem().load_u32(0x200), Some(77));
        hart.step();
        assert_eq!(hart.state().x(x(3)), 1, "second sc fails");
        assert_eq!(hart.mem().load_u32(0x200), Some(77));
    }

    #[test]
    fn amo_returns_old_value_sign_extended() {
        let program = [Instruction::amo(Opcode::AmoaddW, x(1), x(5), x(6), false, false).unwrap()];
        let mut hart = hart_with(&program);
        hart.state_mut().set_x(x(5), 0x300);
        hart.state_mut().set_x(x(6), 1);
        hart.mem_mut().store_u32(0x300, 0xFFFF_FFFF).unwrap();
        hart.step();
        assert_eq!(hart.state().x(x(1)), u64::MAX, "old -1 sign-extends");
        assert_eq!(hart.mem().load_u32(0x300), Some(0));
    }

    #[test]
    fn dynamic_reserved_frm_is_illegal() {
        use tf_riscv::{Fpr, RoundingMode};
        let f1 = Fpr::new(1).unwrap();
        let program =
            [Instruction::fp_r_type(Opcode::FaddS, f1, f1, f1, Some(RoundingMode::Dyn)).unwrap()];
        let mut hart = hart_with(&program);
        // frm = 0b101 is reserved: executing a Dyn-rm instruction traps.
        hart.state_mut().csrs_mut().write(csr::FRM, 0b101).unwrap();
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn fp_off_makes_fp_illegal() {
        use tf_riscv::{Fpr, RoundingMode};
        let f1 = Fpr::new(1).unwrap();
        let program =
            [Instruction::fp_r_type(Opcode::FaddD, f1, f1, f1, Some(RoundingMode::Rne)).unwrap()];
        let mut hart = hart_with(&program);
        hart.state_mut().csrs_mut().write(csr::MSTATUS, 0).unwrap();
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn csr_set_clear_and_readonly() {
        let program = [
            Instruction::csr_imm(Opcode::Csrrsi, x(1), csr::FFLAGS, 0b101).unwrap(),
            Instruction::csr_imm(Opcode::Csrrci, x(2), csr::FFLAGS, 0b001).unwrap(),
            Instruction::csr_reg(Opcode::Csrrs, x(3), csr::FFLAGS, Gpr::ZERO).unwrap(),
            Instruction::csr_reg(Opcode::Csrrw, x(4), csr::MHARTID, x(5)).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().x(x(1)), 0);
        hart.step();
        assert_eq!(hart.state().x(x(2)), 0b101);
        hart.step();
        assert_eq!(hart.state().x(x(3)), 0b100);
        // Writing the read-only mhartid traps.
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        // But csrrs rd-only (rs1=x0) on a read-only CSR is a pure read.
        let program = [Instruction::csr_reg(Opcode::Csrrs, x(1), csr::MHARTID, Gpr::ZERO).unwrap()];
        let mut hart = hart_with(&program);
        assert!(matches!(hart.step(), StepOutcome::Retired(_)));
        assert_eq!(hart.state().x(x(1)), 0);
    }

    #[test]
    fn tracing_records_defs_and_digest() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 9).unwrap(),
            Instruction::s_type(Opcode::Sd, Gpr::ZERO, x(1), 0x80).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.enable_tracing();
        hart.step();
        hart.step();
        let trace = hart.take_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries()[0].def, Some((Reg::X(x(1)), 9)));
        assert_eq!(trace.entries()[1].def, None, "stores define no register");
        assert_ne!(trace.digest(), ExecutionTrace::new().digest());
    }

    #[test]
    fn digest_reflects_memory_and_registers() {
        let a = Hart::new(1 << 20);
        let mut b = Hart::new(1 << 20);
        assert_eq!(a.digest(), b.digest());
        b.mem_mut().store_u8(0, 1).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn run_exit_displays_readably() {
        assert_eq!(
            RunExit::Breakpoint { steps: 7 }.to_string(),
            "breakpoint after 7 steps"
        );
        assert_eq!(
            RunExit::EnvironmentCall { steps: 1 }.to_string(),
            "environment call after 1 steps"
        );
        assert_eq!(RunExit::OutOfGas.to_string(), "out of gas");
    }

    #[test]
    fn minstret_counts_only_retired() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ecall)];
        let mut hart = hart_with(&program);
        hart.run(10);
        assert_eq!(hart.state().csrs().read(csr::MINSTRET), Some(1));
        assert_eq!(hart.state().csrs().read(csr::MCYCLE), Some(2));
    }
}
