//! The hart: fetch, decode, execute — one instruction per [`Hart::step`].

use tf_riscv::csr::{self, CsrAddr};
use tf_riscv::{Fpr, Gpr, Instruction, Opcode, RoundingMode};

use crate::digest::WideFnv;
use crate::dut::Dut;
use crate::fpu::{self, dp, sp};
use crate::mem::Memory;
use crate::state::ArchState;
use crate::trace::{ExecutionTrace, StepOutcome, TraceEntry};
use crate::trap::Trap;

/// Why [`Hart::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// An `ebreak` trapped after `steps` executed steps — the conventional
    /// end-of-program marker for generated workloads.
    Breakpoint {
        /// Steps executed, including the trapping one.
        steps: u64,
    },
    /// An `ecall` trapped after `steps` executed steps.
    EnvironmentCall {
        /// Steps executed, including the trapping one.
        steps: u64,
    },
    /// The step budget ran out first.
    OutOfGas,
}

impl std::fmt::Display for RunExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunExit::Breakpoint { steps } => write!(f, "breakpoint after {steps} steps"),
            RunExit::EnvironmentCall { steps } => {
                write!(f, "environment call after {steps} steps")
            }
            RunExit::OutOfGas => f.write_str("out of gas"),
        }
    }
}

/// A single RV64 IMAFD+Zicsr hart with its private memory.
///
/// [`Hart::step`] never panics: every abnormal condition becomes a typed
/// [`Trap`], which is architecturally taken (CSRs updated, `pc` vectored
/// to `mtvec`) before the step returns. This totality is what makes the
/// model usable as the golden reference under fuzzed instruction streams.
#[derive(Debug, Clone)]
pub struct Hart {
    state: ArchState,
    mem: Memory,
    reservation: Option<u64>,
    trace: Option<ExecutionTrace>,
    // Pre-decoded program cache filled by `load_program`: entry `i`
    // holds the word stored at `icache_base + 4*i` and its decode, so
    // the fetch path skips the linear opcode scan. Every hit is
    // validated against the word actually loaded from memory, which
    // keeps self-modifying programs architecturally exact (a stale
    // entry simply decodes the fresh word the slow way).
    icache_base: u64,
    icache: Vec<(u32, Option<Instruction>)>,
}

impl Hart {
    /// Create a hart at the reset state with `mem_size` bytes of memory.
    #[must_use]
    pub fn new(mem_size: u64) -> Self {
        Hart {
            state: ArchState::new(),
            mem: Memory::new(mem_size),
            reservation: None,
            trace: None,
            icache_base: 0,
            icache: Vec::new(),
        }
    }

    /// Return to the reset state: registers, CSRs, memory and the LR/SC
    /// reservation are cleared and any recorded trace is discarded. The
    /// memory size is kept.
    pub fn reset(&mut self) {
        *self = Hart::new(self.mem.size());
    }

    /// The architectural register state.
    #[must_use]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The architectural register state, mutably (test setup, templates).
    pub fn state_mut(&mut self) -> &mut ArchState {
        &mut self.state
    }

    /// The memory.
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The memory, mutably (program loading, data placement).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Start recording an [`ExecutionTrace`] (replacing any previous one).
    pub fn enable_tracing(&mut self) {
        self.trace = Some(ExecutionTrace::new());
    }

    /// Stop tracing and take the recorded trace.
    pub fn take_trace(&mut self) -> Option<ExecutionTrace> {
        self.trace.take()
    }

    /// The most recently recorded trace entry, for in-crate mutant
    /// implementations that patch the defined-register value after
    /// injecting a bug into the retired result.
    pub(crate) fn trace_last_mut(&mut self) -> Option<&mut TraceEntry> {
        self.trace.as_mut().and_then(ExecutionTrace::last_mut)
    }

    /// Encode `program` and store it contiguously starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] a fetch of the offending word would raise:
    /// [`Trap::StoreFault`] when the program does not fit in memory, and
    /// [`Trap::IllegalInstruction`] carrying the best-effort encoding
    /// ([`Instruction::encode_lossy`]) of the offending instruction in
    /// the type-invariant-excluded case that it fails to encode.
    pub fn load_program(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        let mut icache = Vec::with_capacity(program.len());
        for (i, insn) in program.iter().enumerate() {
            let addr = base + 4 * i as u64;
            let word = insn.encode().map_err(|_| Trap::IllegalInstruction {
                word: insn.encode_lossy(),
            })?;
            self.mem
                .store_u32(addr, word)
                .ok_or(Trap::StoreFault { addr })?;
            // Cache the decode of the *stored word* (not the given
            // instruction) so cached fetches are bit-identical to
            // uncached ones even if encode/decode ever disagreed.
            icache.push((word, Instruction::decode(word).ok()));
        }
        // Only a fully loaded program replaces the cache; fetch-time word
        // validation keeps any stale range harmless either way.
        self.icache_base = base;
        self.icache = icache;
        Ok(())
    }

    /// Combined digest of register state and memory — the run fingerprint
    /// differential coverage compares between reference and DUT.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.state.digest());
        fnv.write_u64(self.mem.digest());
        fnv.finish()
    }

    /// Cumulative fold of every architectural write — registers, CSRs
    /// and memory — since reset. The path-sensitive companion of
    /// [`Hart::digest`]: equal digests say two devices *reached* the
    /// same state, equal histories say they took the same sequence of
    /// writes to get there (see [`ArchState::write_history`]).
    #[must_use]
    pub fn write_history(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.state.write_history());
        fnv.write_u64(self.mem.write_history());
        fnv.finish()
    }

    /// Execute one instruction.
    ///
    /// On a trap the hart has already vectored: `mepc`, `mcause`, `mtval`
    /// and `mstatus` are updated and `pc` points at the handler
    /// (`mtvec.base`). Never panics.
    pub fn step(&mut self) -> StepOutcome {
        self.state.bump_cycle();
        let pc = self.state.pc();
        let mut word = None;
        let outcome = match self.execute_at(pc, &mut word) {
            Ok(insn) => {
                self.state.bump_instret();
                StepOutcome::Retired(insn)
            }
            Err(trap) => {
                let handler =
                    self.state
                        .csrs_mut()
                        .enter_trap(pc, trap.cause().code(), trap.tval());
                self.state.set_pc(handler);
                StepOutcome::Trapped(trap)
            }
        };
        if self.trace.is_some() {
            let def = match outcome {
                StepOutcome::Retired(insn) => insn.operands().defs().map(|reg| {
                    let value = match reg {
                        tf_riscv::Reg::X(g) => self.state.x(g),
                        tf_riscv::Reg::F(f) => self.state.f_bits(f),
                    };
                    (reg, value)
                }),
                StepOutcome::Trapped(_) => None,
            };
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEntry {
                    pc,
                    word,
                    outcome,
                    def,
                });
            }
        }
        outcome
    }

    /// Step until an `ebreak`/`ecall` trap or until `max_steps` is spent.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        Dut::run(self, max_steps, 0).exit
    }

    fn execute_at(&mut self, pc: u64, word_out: &mut Option<u32>) -> Result<Instruction, Trap> {
        if pc % 4 != 0 {
            return Err(Trap::InstructionMisaligned { addr: pc });
        }
        let word = self
            .mem
            .load_u32(pc)
            .ok_or(Trap::InstructionFault { addr: pc })?;
        *word_out = Some(word);
        let insn = match self.cached_decode(pc, word) {
            Some(insn) => insn,
            None => Instruction::decode(word).map_err(|_| Trap::IllegalInstruction { word })?,
        };
        self.exec(insn, pc, word)?;
        Ok(insn)
    }

    /// The pre-decoded instruction for `pc`, provided the cache entry's
    /// word matches what memory actually holds there.
    fn cached_decode(&self, pc: u64, word: u32) -> Option<Instruction> {
        let index = usize::try_from(pc.checked_sub(self.icache_base)? / 4).ok()?;
        match self.icache.get(index) {
            Some(&(cached_word, decoded)) if cached_word == word => decoded,
            _ => None,
        }
    }

    // ---- register helpers ----------------------------------------------

    fn x(&self, index: u8) -> u64 {
        self.state.x(Gpr::wrapping(index))
    }

    fn set_x(&mut self, index: u8, value: u64) {
        self.state.set_x(Gpr::wrapping(index), value);
    }

    fn f(index: u8) -> Fpr {
        Fpr::wrapping(index)
    }

    fn accrue(&mut self, flags: u64) {
        if flags != 0 {
            self.state.csrs_mut().accrue_fflags(flags);
            self.state.csrs_mut().set_fp_dirty();
        }
    }

    fn fp_guard(&self, word: u32) -> Result<(), Trap> {
        if self.state.csrs().fp_off() {
            Err(Trap::IllegalInstruction { word })
        } else {
            Ok(())
        }
    }

    /// Resolve the effective rounding mode; a dynamic mode reading a
    /// reserved `fcsr.frm` raises illegal instruction (bug scenario B2).
    fn resolve_rm(&self, insn: Instruction, word: u32) -> Result<RoundingMode, Trap> {
        match insn.rm() {
            Some(RoundingMode::Dyn) => match RoundingMode::from_bits(self.state.csrs().frm()) {
                Some(RoundingMode::Dyn) | None => Err(Trap::IllegalInstruction { word }),
                Some(mode) => Ok(mode),
            },
            Some(mode) => Ok(mode),
            // Opcodes without a rounding-mode field never consult it.
            None => Ok(RoundingMode::Rne),
        }
    }

    /// Conditional branch: retarget `next` when `cmp` holds. Branch
    /// offsets are 4-byte aligned by construction, so no alignment trap
    /// is possible here.
    fn branch(&self, insn: Instruction, pc: u64, next: &mut u64, cmp: fn(u64, u64) -> bool) {
        if cmp(self.x(insn.rs1()), self.x(insn.rs2())) {
            *next = pc.wrapping_add(insn.imm() as u64);
        }
    }

    // ---- memory helpers ------------------------------------------------

    fn int_load(&mut self, insn: Instruction, bytes: u64, signed: bool) -> Result<(), Trap> {
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        let value = match (bytes, signed) {
            (1, false) => u64::from(self.mem.load_u8(addr).ok_or(fault)?),
            (1, true) => self.mem.load_u8(addr).ok_or(fault)? as i8 as i64 as u64,
            (2, false) => u64::from(self.mem.load_u16(addr).ok_or(fault)?),
            (2, true) => self.mem.load_u16(addr).ok_or(fault)? as i16 as i64 as u64,
            (4, false) => u64::from(self.mem.load_u32(addr).ok_or(fault)?),
            (4, true) => self.mem.load_u32(addr).ok_or(fault)? as i32 as i64 as u64,
            _ => self.mem.load_u64(addr).ok_or(fault)?,
        };
        self.set_x(insn.rd(), value);
        Ok(())
    }

    fn int_store(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let value = self.x(insn.rs2());
        let fault = Trap::StoreFault { addr };
        match bytes {
            1 => self.mem.store_u8(addr, value as u8).ok_or(fault),
            2 => self.mem.store_u16(addr, value as u16).ok_or(fault),
            4 => self.mem.store_u32(addr, value as u32).ok_or(fault),
            _ => self.mem.store_u64(addr, value).ok_or(fault),
        }
    }

    // ---- atomics -------------------------------------------------------

    fn load_reserved(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        let value = if bytes == 4 {
            self.mem.load_u32(addr).ok_or(fault)? as i32 as i64 as u64
        } else {
            self.mem.load_u64(addr).ok_or(fault)?
        };
        self.reservation = Some(addr);
        self.set_x(insn.rd(), value);
        Ok(())
    }

    fn store_conditional(&mut self, insn: Instruction, bytes: u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let success = self.reservation == Some(addr);
        // Any sc invalidates the reservation, pass or fail.
        self.reservation = None;
        if success {
            let value = self.x(insn.rs2());
            let fault = Trap::StoreFault { addr };
            if bytes == 4 {
                self.mem.store_u32(addr, value as u32).ok_or(fault)?;
            } else {
                self.mem.store_u64(addr, value).ok_or(fault)?;
            }
            self.set_x(insn.rd(), 0);
        } else {
            self.set_x(insn.rd(), 1);
        }
        Ok(())
    }

    /// Read-modify-write on a 32-bit memory word; `rd` gets the old value
    /// sign-extended.
    fn amo32(&mut self, insn: Instruction, op: fn(u32, u32) -> u32) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % 4 != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let old = self.mem.load_u32(addr).ok_or(Trap::StoreFault { addr })?;
        let new = op(old, self.x(insn.rs2()) as u32);
        self.mem
            .store_u32(addr, new)
            .ok_or(Trap::StoreFault { addr })?;
        self.set_x(insn.rd(), old as i32 as i64 as u64);
        Ok(())
    }

    /// Read-modify-write on a 64-bit memory doubleword.
    fn amo64(&mut self, insn: Instruction, op: fn(u64, u64) -> u64) -> Result<(), Trap> {
        let addr = self.x(insn.rs1());
        if addr % 8 != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let old = self.mem.load_u64(addr).ok_or(Trap::StoreFault { addr })?;
        let new = op(old, self.x(insn.rs2()));
        self.mem
            .store_u64(addr, new)
            .ok_or(Trap::StoreFault { addr })?;
        self.set_x(insn.rd(), old);
        Ok(())
    }

    // ---- floating point ------------------------------------------------

    fn fp_bin_s(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f32, f32, RoundingMode) -> (f32, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (a, b) = (
            self.state.f32(Self::f(insn.rs1())),
            self.state.f32(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b, rm);
        self.state.set_f32(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_bin_d(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f64, f64, RoundingMode) -> (f64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (a, b) = (
            self.state.f64(Self::f(insn.rs1())),
            self.state.f64(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b, rm);
        self.state.set_f64(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_fma_s(&mut self, insn: Instruction, word: u32, na: bool, nc: bool) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let a = self.state.f32(Self::f(insn.rs1()));
        let b = self.state.f32(Self::f(insn.rs2()));
        let c = self.state.f32(Self::f(insn.rs3()));
        let (a, c) = (if na { -a } else { a }, if nc { -c } else { c });
        let (v, flags) = sp::fma(a, b, c, rm);
        self.state.set_f32(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_fma_d(&mut self, insn: Instruction, word: u32, na: bool, nc: bool) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let a = self.state.f64(Self::f(insn.rs1()));
        let b = self.state.f64(Self::f(insn.rs2()));
        let c = self.state.f64(Self::f(insn.rs3()));
        let (a, c) = (if na { -a } else { a }, if nc { -c } else { c });
        let (v, flags) = dp::fma(a, b, c, rm);
        self.state.set_f64(Self::f(insn.rd()), v);
        self.accrue(flags);
        Ok(())
    }

    fn fp_cmp_s(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f32, f32) -> (bool, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let (a, b) = (
            self.state.f32(Self::f(insn.rs1())),
            self.state.f32(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b);
        self.set_x(insn.rd(), u64::from(v));
        self.accrue(flags);
        Ok(())
    }

    fn fp_cmp_d(
        &mut self,
        insn: Instruction,
        word: u32,
        op: fn(f64, f64) -> (bool, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let (a, b) = (
            self.state.f64(Self::f(insn.rs1())),
            self.state.f64(Self::f(insn.rs2())),
        );
        let (v, flags) = op(a, b);
        self.set_x(insn.rd(), u64::from(v));
        self.accrue(flags);
        Ok(())
    }

    /// Sign injection on the single-precision value: `mode` 0 copies the
    /// sign of `b`, 1 the negated sign, 2 the xor of both signs.
    fn fsgnj_s(&mut self, insn: Instruction, word: u32, mode: u8) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let a = self.state.f32(Self::f(insn.rs1())).to_bits();
        let b = self.state.f32(Self::f(insn.rs2())).to_bits();
        let sign = 1u32 << 31;
        let s = match mode {
            0 => b & sign,
            1 => !b & sign,
            _ => (a ^ b) & sign,
        };
        self.state
            .set_f32(Self::f(insn.rd()), f32::from_bits((a & !sign) | s));
        Ok(())
    }

    /// Sign injection on the double-precision value.
    fn fsgnj_d(&mut self, insn: Instruction, word: u32, mode: u8) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let a = self.state.f_bits(Self::f(insn.rs1()));
        let b = self.state.f_bits(Self::f(insn.rs2()));
        let sign = 1u64 << 63;
        let s = match mode {
            0 => b & sign,
            1 => !b & sign,
            _ => (a ^ b) & sign,
        };
        self.state.set_f_bits(Self::f(insn.rd()), (a & !sign) | s);
        Ok(())
    }

    fn fp_load(&mut self, insn: Instruction, word: u32, bytes: u64) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::LoadMisaligned { addr });
        }
        let fault = Trap::LoadFault { addr };
        if bytes == 4 {
            let bits = self.mem.load_u32(addr).ok_or(fault)?;
            self.state.set_f32(Self::f(insn.rd()), f32::from_bits(bits));
        } else {
            let bits = self.mem.load_u64(addr).ok_or(fault)?;
            self.state.set_f_bits(Self::f(insn.rd()), bits);
        }
        Ok(())
    }

    fn fp_store(&mut self, insn: Instruction, word: u32, bytes: u64) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let addr = self.x(insn.rs1()).wrapping_add(insn.imm() as u64);
        if addr % bytes != 0 {
            return Err(Trap::StoreMisaligned { addr });
        }
        let fault = Trap::StoreFault { addr };
        // Stores move the raw low bits, independent of NaN boxing.
        let bits = self.state.f_bits(Self::f(insn.rs2()));
        if bytes == 4 {
            self.mem.store_u32(addr, bits as u32).ok_or(fault)
        } else {
            self.mem.store_u64(addr, bits).ok_or(fault)
        }
    }

    /// `fcvt` to an integer register: convert, then sign-extend the
    /// 32-bit results as RV64 requires.
    fn fcvt_to_int_s(
        &mut self,
        insn: Instruction,
        word: u32,
        cvt: fn(f32, RoundingMode) -> (u64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (v, flags) = cvt(self.state.f32(Self::f(insn.rs1())), rm);
        self.set_x(insn.rd(), v);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_to_int_d(
        &mut self,
        insn: Instruction,
        word: u32,
        cvt: fn(f64, RoundingMode) -> (u64, u64),
    ) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (v, flags) = cvt(self.state.f64(Self::f(insn.rs1())), rm);
        self.set_x(insn.rd(), v);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_from_int_s(&mut self, insn: Instruction, word: u32, v: i128) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (r, flags) = sp::from_int(v, rm);
        self.state.set_f32(Self::f(insn.rd()), r);
        self.accrue(flags);
        Ok(())
    }

    fn fcvt_from_int_d(&mut self, insn: Instruction, word: u32, v: i128) -> Result<(), Trap> {
        self.fp_guard(word)?;
        let rm = self.resolve_rm(insn, word)?;
        let (r, flags) = dp::from_int(v, rm);
        self.state.set_f64(Self::f(insn.rd()), r);
        self.accrue(flags);
        Ok(())
    }

    // ---- csr -----------------------------------------------------------

    fn csr_op(&mut self, insn: Instruction, word: u32) -> Result<(), Trap> {
        let illegal = Trap::IllegalInstruction { word };
        let addr: CsrAddr = insn.csr_addr().ok_or(illegal)?;
        // fcsr and its views are FP state: accesses trap when FS is off.
        let fp_csr = matches!(addr, csr::FFLAGS | csr::FRM | csr::FCSR);
        if fp_csr {
            self.fp_guard(word)?;
        }
        // Immediate forms carry the 5-bit source in the rs1 slot; register
        // forms read the register. An x0/zero source suppresses the write
        // for the set/clear flavours.
        let (src, src_is_zero) = match insn.opcode() {
            Opcode::Csrrw | Opcode::Csrrs | Opcode::Csrrc => (self.x(insn.rs1()), insn.rs1() == 0),
            _ => (u64::from(insn.rs1()), insn.rs1() == 0),
        };
        let old = self.state.csrs().read(addr).ok_or(illegal)?;
        let write = match insn.opcode() {
            Opcode::Csrrw | Opcode::Csrrwi => Some(src),
            Opcode::Csrrs | Opcode::Csrrsi => (!src_is_zero).then_some(old | src),
            _ => (!src_is_zero).then_some(old & !src),
        };
        if let Some(value) = write {
            self.state.csrs_mut().write(addr, value).ok_or(illegal)?;
            if fp_csr {
                self.state.csrs_mut().set_fp_dirty();
            }
        }
        self.set_x(insn.rd(), old);
        Ok(())
    }

    // ---- the interpreter -----------------------------------------------

    /// Execute one decoded instruction. The match is exhaustive over every
    /// [`Opcode`] — no catch-all — so adding an opcode to the substrate
    /// without teaching the reference model about it fails to compile.
    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, insn: Instruction, pc: u64, word: u32) -> Result<(), Trap> {
        use Opcode as Op;
        let mut next = pc.wrapping_add(4);
        let imm = insn.imm();
        match insn.opcode() {
            // ---- RV64I: upper immediates and jumps ---------------------
            Op::Lui => self.set_x(insn.rd(), (imm << 12) as u64),
            Op::Auipc => self.set_x(insn.rd(), pc.wrapping_add((imm << 12) as u64)),
            Op::Jal => {
                self.set_x(insn.rd(), next);
                next = pc.wrapping_add(imm as u64);
            }
            Op::Jalr => {
                let target = self.x(insn.rs1()).wrapping_add(imm as u64) & !1;
                if target % 4 != 0 {
                    return Err(Trap::InstructionMisaligned { addr: target });
                }
                self.set_x(insn.rd(), next);
                next = target;
            }
            // ---- RV64I: branches ---------------------------------------
            Op::Beq => self.branch(insn, pc, &mut next, |a, b| a == b),
            Op::Bne => self.branch(insn, pc, &mut next, |a, b| a != b),
            Op::Blt => self.branch(insn, pc, &mut next, |a, b| (a as i64) < (b as i64)),
            Op::Bge => self.branch(insn, pc, &mut next, |a, b| (a as i64) >= (b as i64)),
            Op::Bltu => self.branch(insn, pc, &mut next, |a, b| a < b),
            Op::Bgeu => self.branch(insn, pc, &mut next, |a, b| a >= b),
            // ---- RV64I: loads and stores -------------------------------
            Op::Lb => self.int_load(insn, 1, true)?,
            Op::Lh => self.int_load(insn, 2, true)?,
            Op::Lw => self.int_load(insn, 4, true)?,
            Op::Ld => self.int_load(insn, 8, true)?,
            Op::Lbu => self.int_load(insn, 1, false)?,
            Op::Lhu => self.int_load(insn, 2, false)?,
            Op::Lwu => self.int_load(insn, 4, false)?,
            Op::Sb => self.int_store(insn, 1)?,
            Op::Sh => self.int_store(insn, 2)?,
            Op::Sw => self.int_store(insn, 4)?,
            Op::Sd => self.int_store(insn, 8)?,
            // ---- RV64I: register-immediate -----------------------------
            Op::Addi => {
                let v = self.x(insn.rs1()).wrapping_add(imm as u64);
                self.set_x(insn.rd(), v);
            }
            Op::Slti => {
                let v = (self.x(insn.rs1()) as i64) < imm;
                self.set_x(insn.rd(), u64::from(v));
            }
            Op::Sltiu => {
                let v = self.x(insn.rs1()) < imm as u64;
                self.set_x(insn.rd(), u64::from(v));
            }
            Op::Xori => {
                let v = self.x(insn.rs1()) ^ imm as u64;
                self.set_x(insn.rd(), v);
            }
            Op::Ori => {
                let v = self.x(insn.rs1()) | imm as u64;
                self.set_x(insn.rd(), v);
            }
            Op::Andi => {
                let v = self.x(insn.rs1()) & imm as u64;
                self.set_x(insn.rd(), v);
            }
            Op::Slli => {
                let v = self.x(insn.rs1()) << imm;
                self.set_x(insn.rd(), v);
            }
            Op::Srli => {
                let v = self.x(insn.rs1()) >> imm;
                self.set_x(insn.rd(), v);
            }
            Op::Srai => {
                let v = (self.x(insn.rs1()) as i64) >> imm;
                self.set_x(insn.rd(), v as u64);
            }
            Op::Addiw => {
                let v = self.x(insn.rs1()).wrapping_add(imm as u64) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Slliw => {
                let v = ((self.x(insn.rs1()) as u32) << imm) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Srliw => {
                let v = ((self.x(insn.rs1()) as u32) >> imm) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Sraiw => {
                let v = (self.x(insn.rs1()) as i32) >> imm;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            // ---- RV64I: register-register ------------------------------
            Op::Add => {
                let v = self.x(insn.rs1()).wrapping_add(self.x(insn.rs2()));
                self.set_x(insn.rd(), v);
            }
            Op::Sub => {
                let v = self.x(insn.rs1()).wrapping_sub(self.x(insn.rs2()));
                self.set_x(insn.rd(), v);
            }
            Op::Sll => {
                let v = self.x(insn.rs1()) << (self.x(insn.rs2()) & 63);
                self.set_x(insn.rd(), v);
            }
            Op::Slt => {
                let v = (self.x(insn.rs1()) as i64) < (self.x(insn.rs2()) as i64);
                self.set_x(insn.rd(), u64::from(v));
            }
            Op::Sltu => {
                let v = self.x(insn.rs1()) < self.x(insn.rs2());
                self.set_x(insn.rd(), u64::from(v));
            }
            Op::Xor => {
                let v = self.x(insn.rs1()) ^ self.x(insn.rs2());
                self.set_x(insn.rd(), v);
            }
            Op::Srl => {
                let v = self.x(insn.rs1()) >> (self.x(insn.rs2()) & 63);
                self.set_x(insn.rd(), v);
            }
            Op::Sra => {
                let v = (self.x(insn.rs1()) as i64) >> (self.x(insn.rs2()) & 63);
                self.set_x(insn.rd(), v as u64);
            }
            Op::Or => {
                let v = self.x(insn.rs1()) | self.x(insn.rs2());
                self.set_x(insn.rd(), v);
            }
            Op::And => {
                let v = self.x(insn.rs1()) & self.x(insn.rs2());
                self.set_x(insn.rd(), v);
            }
            Op::Addw => {
                let v = self.x(insn.rs1()).wrapping_add(self.x(insn.rs2())) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Subw => {
                let v = self.x(insn.rs1()).wrapping_sub(self.x(insn.rs2())) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Sllw => {
                let v = ((self.x(insn.rs1()) as u32) << (self.x(insn.rs2()) & 31)) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Srlw => {
                let v = ((self.x(insn.rs1()) as u32) >> (self.x(insn.rs2()) & 31)) as i32;
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Sraw => {
                let v = (self.x(insn.rs1()) as i32) >> (self.x(insn.rs2()) & 31);
                self.set_x(insn.rd(), v as i64 as u64);
            }
            // ---- RV64I: fence and system -------------------------------
            // A single in-order hart: fences are architectural no-ops.
            Op::Fence => {}
            Op::Ecall => return Err(Trap::EnvironmentCall),
            Op::Ebreak => return Err(Trap::Breakpoint { addr: pc }),
            // ---- RV64M -------------------------------------------------
            Op::Mul => {
                let v = self.x(insn.rs1()).wrapping_mul(self.x(insn.rs2()));
                self.set_x(insn.rd(), v);
            }
            Op::Mulh => {
                let a = i128::from(self.x(insn.rs1()) as i64);
                let b = i128::from(self.x(insn.rs2()) as i64);
                self.set_x(insn.rd(), ((a * b) >> 64) as u64);
            }
            Op::Mulhsu => {
                let a = i128::from(self.x(insn.rs1()) as i64);
                let b = i128::from(self.x(insn.rs2()));
                self.set_x(insn.rd(), ((a * b) >> 64) as u64);
            }
            Op::Mulhu => {
                let a = u128::from(self.x(insn.rs1()));
                let b = u128::from(self.x(insn.rs2()));
                self.set_x(insn.rd(), ((a * b) >> 64) as u64);
            }
            Op::Div => {
                let (a, b) = (self.x(insn.rs1()) as i64, self.x(insn.rs2()) as i64);
                let v = if b == 0 { -1 } else { a.wrapping_div(b) };
                self.set_x(insn.rd(), v as u64);
            }
            Op::Divu => {
                let (a, b) = (self.x(insn.rs1()), self.x(insn.rs2()));
                self.set_x(insn.rd(), a.checked_div(b).unwrap_or(u64::MAX));
            }
            Op::Rem => {
                let (a, b) = (self.x(insn.rs1()) as i64, self.x(insn.rs2()) as i64);
                let v = if b == 0 { a } else { a.wrapping_rem(b) };
                self.set_x(insn.rd(), v as u64);
            }
            Op::Remu => {
                let (a, b) = (self.x(insn.rs1()), self.x(insn.rs2()));
                let v = if b == 0 { a } else { a % b };
                self.set_x(insn.rd(), v);
            }
            Op::Mulw => {
                let v = (self.x(insn.rs1()) as i32).wrapping_mul(self.x(insn.rs2()) as i32);
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Divw => {
                let (a, b) = (self.x(insn.rs1()) as i32, self.x(insn.rs2()) as i32);
                let v = if b == 0 { -1 } else { a.wrapping_div(b) };
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Divuw => {
                let (a, b) = (self.x(insn.rs1()) as u32, self.x(insn.rs2()) as u32);
                let v = a.checked_div(b).unwrap_or(u32::MAX);
                self.set_x(insn.rd(), v as i32 as i64 as u64);
            }
            Op::Remw => {
                let (a, b) = (self.x(insn.rs1()) as i32, self.x(insn.rs2()) as i32);
                let v = if b == 0 { a } else { a.wrapping_rem(b) };
                self.set_x(insn.rd(), v as i64 as u64);
            }
            Op::Remuw => {
                let (a, b) = (self.x(insn.rs1()) as u32, self.x(insn.rs2()) as u32);
                let v = if b == 0 { a } else { a % b };
                self.set_x(insn.rd(), v as i32 as i64 as u64);
            }
            // ---- RV64A -------------------------------------------------
            Op::LrW => self.load_reserved(insn, 4)?,
            Op::LrD => self.load_reserved(insn, 8)?,
            Op::ScW => self.store_conditional(insn, 4)?,
            Op::ScD => self.store_conditional(insn, 8)?,
            Op::AmoswapW => self.amo32(insn, |_, s| s)?,
            Op::AmoaddW => self.amo32(insn, u32::wrapping_add)?,
            Op::AmoxorW => self.amo32(insn, |o, s| o ^ s)?,
            Op::AmoandW => self.amo32(insn, |o, s| o & s)?,
            Op::AmoorW => self.amo32(insn, |o, s| o | s)?,
            Op::AmominW => self.amo32(insn, |o, s| (o as i32).min(s as i32) as u32)?,
            Op::AmomaxW => self.amo32(insn, |o, s| (o as i32).max(s as i32) as u32)?,
            Op::AmominuW => self.amo32(insn, u32::min)?,
            Op::AmomaxuW => self.amo32(insn, u32::max)?,
            Op::AmoswapD => self.amo64(insn, |_, s| s)?,
            Op::AmoaddD => self.amo64(insn, u64::wrapping_add)?,
            Op::AmoxorD => self.amo64(insn, |o, s| o ^ s)?,
            Op::AmoandD => self.amo64(insn, |o, s| o & s)?,
            Op::AmoorD => self.amo64(insn, |o, s| o | s)?,
            Op::AmominD => self.amo64(insn, |o, s| (o as i64).min(s as i64) as u64)?,
            Op::AmomaxD => self.amo64(insn, |o, s| (o as i64).max(s as i64) as u64)?,
            Op::AmominuD => self.amo64(insn, u64::min)?,
            Op::AmomaxuD => self.amo64(insn, u64::max)?,
            // ---- RV64F -------------------------------------------------
            Op::Flw => self.fp_load(insn, word, 4)?,
            Op::Fsw => self.fp_store(insn, word, 4)?,
            Op::FmaddS => self.fp_fma_s(insn, word, false, false)?,
            Op::FmsubS => self.fp_fma_s(insn, word, false, true)?,
            Op::FnmsubS => self.fp_fma_s(insn, word, true, false)?,
            Op::FnmaddS => self.fp_fma_s(insn, word, true, true)?,
            Op::FaddS => self.fp_bin_s(insn, word, sp::add)?,
            Op::FsubS => self.fp_bin_s(insn, word, sp::sub)?,
            Op::FmulS => self.fp_bin_s(insn, word, sp::mul)?,
            Op::FdivS => self.fp_bin_s(insn, word, sp::div)?,
            Op::FsqrtS => {
                self.fp_guard(word)?;
                let rm = self.resolve_rm(insn, word)?;
                let (v, flags) = sp::sqrt(self.state.f32(Self::f(insn.rs1())), rm);
                self.state.set_f32(Self::f(insn.rd()), v);
                self.accrue(flags);
            }
            Op::FsgnjS => self.fsgnj_s(insn, word, 0)?,
            Op::FsgnjnS => self.fsgnj_s(insn, word, 1)?,
            Op::FsgnjxS => self.fsgnj_s(insn, word, 2)?,
            Op::FminS => self.fp_bin_s(insn, word, |a, b, _| sp::min(a, b))?,
            Op::FmaxS => self.fp_bin_s(insn, word, |a, b, _| sp::max(a, b))?,
            Op::FeqS => self.fp_cmp_s(insn, word, sp::feq)?,
            Op::FltS => self.fp_cmp_s(insn, word, sp::flt)?,
            Op::FleS => self.fp_cmp_s(insn, word, sp::fle)?,
            Op::FclassS => {
                self.fp_guard(word)?;
                let v = sp::fclass(self.state.f32(Self::f(insn.rs1())));
                self.set_x(insn.rd(), v);
            }
            Op::FcvtWS => self.fcvt_to_int_s(insn, word, |v, rm| {
                let (r, f) = fpu::f32_to_i32(v, rm);
                (r as i64 as u64, f)
            })?,
            Op::FcvtWuS => self.fcvt_to_int_s(insn, word, |v, rm| {
                let (r, f) = fpu::f32_to_u32(v, rm);
                (r as i32 as i64 as u64, f)
            })?,
            Op::FcvtLS => self.fcvt_to_int_s(insn, word, |v, rm| {
                let (r, f) = fpu::f32_to_i64(v, rm);
                (r as u64, f)
            })?,
            Op::FcvtLuS => self.fcvt_to_int_s(insn, word, fpu::f32_to_u64)?,
            Op::FcvtSW => {
                let v = i128::from(self.x(insn.rs1()) as i32);
                self.fcvt_from_int_s(insn, word, v)?;
            }
            Op::FcvtSWu => {
                let v = i128::from(self.x(insn.rs1()) as u32);
                self.fcvt_from_int_s(insn, word, v)?;
            }
            Op::FcvtSL => {
                let v = i128::from(self.x(insn.rs1()) as i64);
                self.fcvt_from_int_s(insn, word, v)?;
            }
            Op::FcvtSLu => {
                let v = i128::from(self.x(insn.rs1()));
                self.fcvt_from_int_s(insn, word, v)?;
            }
            Op::FmvXW => {
                self.fp_guard(word)?;
                let bits = self.state.f_bits(Self::f(insn.rs1())) as u32;
                self.set_x(insn.rd(), bits as i32 as i64 as u64);
            }
            Op::FmvWX => {
                self.fp_guard(word)?;
                let bits = self.x(insn.rs1()) as u32;
                self.state.set_f32(Self::f(insn.rd()), f32::from_bits(bits));
            }
            // ---- RV64D -------------------------------------------------
            Op::Fld => self.fp_load(insn, word, 8)?,
            Op::Fsd => self.fp_store(insn, word, 8)?,
            Op::FmaddD => self.fp_fma_d(insn, word, false, false)?,
            Op::FmsubD => self.fp_fma_d(insn, word, false, true)?,
            Op::FnmsubD => self.fp_fma_d(insn, word, true, false)?,
            Op::FnmaddD => self.fp_fma_d(insn, word, true, true)?,
            Op::FaddD => self.fp_bin_d(insn, word, dp::add)?,
            Op::FsubD => self.fp_bin_d(insn, word, dp::sub)?,
            Op::FmulD => self.fp_bin_d(insn, word, dp::mul)?,
            Op::FdivD => self.fp_bin_d(insn, word, dp::div)?,
            Op::FsqrtD => {
                self.fp_guard(word)?;
                let rm = self.resolve_rm(insn, word)?;
                let (v, flags) = dp::sqrt(self.state.f64(Self::f(insn.rs1())), rm);
                self.state.set_f64(Self::f(insn.rd()), v);
                self.accrue(flags);
            }
            Op::FsgnjD => self.fsgnj_d(insn, word, 0)?,
            Op::FsgnjnD => self.fsgnj_d(insn, word, 1)?,
            Op::FsgnjxD => self.fsgnj_d(insn, word, 2)?,
            Op::FminD => self.fp_bin_d(insn, word, |a, b, _| dp::min(a, b))?,
            Op::FmaxD => self.fp_bin_d(insn, word, |a, b, _| dp::max(a, b))?,
            Op::FeqD => self.fp_cmp_d(insn, word, dp::feq)?,
            Op::FltD => self.fp_cmp_d(insn, word, dp::flt)?,
            Op::FleD => self.fp_cmp_d(insn, word, dp::fle)?,
            Op::FclassD => {
                self.fp_guard(word)?;
                let v = dp::fclass(self.state.f64(Self::f(insn.rs1())));
                self.set_x(insn.rd(), v);
            }
            Op::FcvtSD => {
                self.fp_guard(word)?;
                let rm = self.resolve_rm(insn, word)?;
                let (v, flags) = fpu::f64_to_f32(self.state.f64(Self::f(insn.rs1())), rm);
                self.state.set_f32(Self::f(insn.rd()), v);
                self.accrue(flags);
            }
            Op::FcvtDS => {
                self.fp_guard(word)?;
                let (v, flags) = fpu::f32_to_f64(self.state.f32(Self::f(insn.rs1())));
                self.state.set_f64(Self::f(insn.rd()), v);
                self.accrue(flags);
            }
            Op::FcvtWD => self.fcvt_to_int_d(insn, word, |v, rm| {
                let (r, f) = fpu::f64_to_i32(v, rm);
                (r as i64 as u64, f)
            })?,
            Op::FcvtWuD => self.fcvt_to_int_d(insn, word, |v, rm| {
                let (r, f) = fpu::f64_to_u32(v, rm);
                (r as i32 as i64 as u64, f)
            })?,
            Op::FcvtLD => self.fcvt_to_int_d(insn, word, |v, rm| {
                let (r, f) = fpu::f64_to_i64(v, rm);
                (r as u64, f)
            })?,
            Op::FcvtLuD => self.fcvt_to_int_d(insn, word, fpu::f64_to_u64)?,
            Op::FcvtDW => {
                let v = i128::from(self.x(insn.rs1()) as i32);
                self.fcvt_from_int_d(insn, word, v)?;
            }
            Op::FcvtDWu => {
                let v = i128::from(self.x(insn.rs1()) as u32);
                self.fcvt_from_int_d(insn, word, v)?;
            }
            Op::FcvtDL => {
                let v = i128::from(self.x(insn.rs1()) as i64);
                self.fcvt_from_int_d(insn, word, v)?;
            }
            Op::FcvtDLu => {
                let v = i128::from(self.x(insn.rs1()));
                self.fcvt_from_int_d(insn, word, v)?;
            }
            Op::FmvXD => {
                self.fp_guard(word)?;
                let bits = self.state.f_bits(Self::f(insn.rs1()));
                self.set_x(insn.rd(), bits);
            }
            Op::FmvDX => {
                self.fp_guard(word)?;
                let bits = self.x(insn.rs1());
                self.state.set_f_bits(Self::f(insn.rd()), bits);
            }
            // ---- Zicsr -------------------------------------------------
            Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci => {
                self.csr_op(insn, word)?;
            }
        }
        self.state.set_pc(next);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{BranchOffset, Gpr, Reg};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn hart_with(program: &[Instruction]) -> Hart {
        let mut hart = Hart::new(1 << 20);
        hart.load_program(0, program).unwrap();
        hart
    }

    #[test]
    fn addi_add_sequence_retires() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::i_type(Opcode::Addi, x(2), Gpr::ZERO, 7).unwrap(),
            Instruction::r_type(Opcode::Add, x(3), x(1), x(2)),
        ];
        let mut hart = hart_with(&program);
        for _ in 0..3 {
            assert!(matches!(hart.step(), StepOutcome::Retired(_)));
        }
        assert_eq!(hart.state().x(x(3)), 12);
        assert_eq!(hart.state().pc(), 12);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let program = [Instruction::i_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, 42).unwrap()];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().x(Gpr::ZERO), 0);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let off = BranchOffset::new(8).unwrap();
        let program = [
            Instruction::b_type(Opcode::Beq, Gpr::ZERO, Gpr::ZERO, off),
            Instruction::nop(),
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().pc(), 8);
        hart.step();
        assert_eq!(hart.state().x(x(1)), 1);
    }

    #[test]
    fn traps_vector_to_mtvec_and_record_cause() {
        let mut hart = Hart::new(1 << 20);
        hart.state_mut()
            .csrs_mut()
            .write(csr::MTVEC, 0x100)
            .unwrap();
        // pc = 0 holds zeros: an illegal instruction.
        let outcome = hart.step();
        assert!(matches!(
            outcome,
            StepOutcome::Trapped(Trap::IllegalInstruction { word: 0 })
        ));
        assert_eq!(hart.state().pc(), 0x100);
        assert_eq!(hart.state().csrs().read(csr::MEPC), Some(0));
        assert_eq!(hart.state().csrs().read(csr::MCAUSE), Some(2));
    }

    #[test]
    fn fetch_outside_memory_faults() {
        let mut hart = Hart::new(64);
        hart.state_mut().set_pc(128);
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::InstructionFault { addr: 128 })
        ));
    }

    #[test]
    fn misaligned_load_traps_with_address() {
        let program = [Instruction::i_type(Opcode::Lw, x(1), Gpr::ZERO, 2).unwrap()];
        let mut hart = hart_with(&program);
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::LoadMisaligned { addr: 2 })
        ));
    }

    #[test]
    fn ecall_and_ebreak_end_runs() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ebreak)];
        let mut hart = hart_with(&program);
        assert_eq!(hart.run(10), RunExit::Breakpoint { steps: 2 });
        let program = [Instruction::system(Opcode::Ecall)];
        let mut hart = hart_with(&program);
        assert_eq!(hart.run(10), RunExit::EnvironmentCall { steps: 1 });
        let mut hart = hart_with(&[Instruction::nop()]);
        assert_eq!(hart.run(1), RunExit::OutOfGas);
    }

    #[test]
    fn lr_sc_pair_succeeds_and_stale_sc_fails() {
        let program = [
            Instruction::amo(Opcode::LrW, x(1), x(5), Gpr::ZERO, false, false).unwrap(),
            Instruction::amo(Opcode::ScW, x(2), x(5), x(6), false, false).unwrap(),
            Instruction::amo(Opcode::ScW, x(3), x(5), x(6), false, false).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.state_mut().set_x(x(5), 0x200);
        hart.state_mut().set_x(x(6), 77);
        hart.mem_mut().store_u32(0x200, 33).unwrap();
        hart.step();
        assert_eq!(hart.state().x(x(1)), 33);
        hart.step();
        assert_eq!(hart.state().x(x(2)), 0, "sc with reservation succeeds");
        assert_eq!(hart.mem().load_u32(0x200), Some(77));
        hart.step();
        assert_eq!(hart.state().x(x(3)), 1, "second sc fails");
        assert_eq!(hart.mem().load_u32(0x200), Some(77));
    }

    #[test]
    fn amo_returns_old_value_sign_extended() {
        let program = [Instruction::amo(Opcode::AmoaddW, x(1), x(5), x(6), false, false).unwrap()];
        let mut hart = hart_with(&program);
        hart.state_mut().set_x(x(5), 0x300);
        hart.state_mut().set_x(x(6), 1);
        hart.mem_mut().store_u32(0x300, 0xFFFF_FFFF).unwrap();
        hart.step();
        assert_eq!(hart.state().x(x(1)), u64::MAX, "old -1 sign-extends");
        assert_eq!(hart.mem().load_u32(0x300), Some(0));
    }

    #[test]
    fn dynamic_reserved_frm_is_illegal() {
        use tf_riscv::{Fpr, RoundingMode};
        let f1 = Fpr::new(1).unwrap();
        let program =
            [Instruction::fp_r_type(Opcode::FaddS, f1, f1, f1, Some(RoundingMode::Dyn)).unwrap()];
        let mut hart = hart_with(&program);
        // frm = 0b101 is reserved: executing a Dyn-rm instruction traps.
        hart.state_mut().csrs_mut().write(csr::FRM, 0b101).unwrap();
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn fp_off_makes_fp_illegal() {
        use tf_riscv::{Fpr, RoundingMode};
        let f1 = Fpr::new(1).unwrap();
        let program =
            [Instruction::fp_r_type(Opcode::FaddD, f1, f1, f1, Some(RoundingMode::Rne)).unwrap()];
        let mut hart = hart_with(&program);
        hart.state_mut().csrs_mut().write(csr::MSTATUS, 0).unwrap();
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn csr_set_clear_and_readonly() {
        let program = [
            Instruction::csr_imm(Opcode::Csrrsi, x(1), csr::FFLAGS, 0b101).unwrap(),
            Instruction::csr_imm(Opcode::Csrrci, x(2), csr::FFLAGS, 0b001).unwrap(),
            Instruction::csr_reg(Opcode::Csrrs, x(3), csr::FFLAGS, Gpr::ZERO).unwrap(),
            Instruction::csr_reg(Opcode::Csrrw, x(4), csr::MHARTID, x(5)).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.step();
        assert_eq!(hart.state().x(x(1)), 0);
        hart.step();
        assert_eq!(hart.state().x(x(2)), 0b101);
        hart.step();
        assert_eq!(hart.state().x(x(3)), 0b100);
        // Writing the read-only mhartid traps.
        assert!(matches!(
            hart.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        // But csrrs rd-only (rs1=x0) on a read-only CSR is a pure read.
        let program = [Instruction::csr_reg(Opcode::Csrrs, x(1), csr::MHARTID, Gpr::ZERO).unwrap()];
        let mut hart = hart_with(&program);
        assert!(matches!(hart.step(), StepOutcome::Retired(_)));
        assert_eq!(hart.state().x(x(1)), 0);
    }

    #[test]
    fn tracing_records_defs_and_digest() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 9).unwrap(),
            Instruction::s_type(Opcode::Sd, Gpr::ZERO, x(1), 0x80).unwrap(),
        ];
        let mut hart = hart_with(&program);
        hart.enable_tracing();
        hart.step();
        hart.step();
        let trace = hart.take_trace().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries()[0].def, Some((Reg::X(x(1)), 9)));
        assert_eq!(trace.entries()[1].def, None, "stores define no register");
        assert_ne!(trace.digest(), ExecutionTrace::new().digest());
    }

    #[test]
    fn digest_reflects_memory_and_registers() {
        let a = Hart::new(1 << 20);
        let mut b = Hart::new(1 << 20);
        assert_eq!(a.digest(), b.digest());
        b.mem_mut().store_u8(0, 1).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn run_exit_displays_readably() {
        assert_eq!(
            RunExit::Breakpoint { steps: 7 }.to_string(),
            "breakpoint after 7 steps"
        );
        assert_eq!(
            RunExit::EnvironmentCall { steps: 1 }.to_string(),
            "environment call after 1 steps"
        );
        assert_eq!(RunExit::OutOfGas.to_string(), "out of gas");
    }

    #[test]
    fn minstret_counts_only_retired() {
        let program = [Instruction::nop(), Instruction::system(Opcode::Ecall)];
        let mut hart = hart_with(&program);
        hart.run(10);
        assert_eq!(hart.state().csrs().read(csr::MINSTRET), Some(1));
        assert_eq!(hart.state().csrs().read(csr::MCYCLE), Some(2));
    }
}
