//! Golden architectural reference model for the TurboFuzz reproduction.
//!
//! This crate is the second layer of the workspace: it executes the RV64
//! IMAFD+Zicsr instructions that the [`tf_riscv`] substrate describes, and
//! exposes the architectural state that coverage models and bug-scenario
//! detection compare against (paper §IV: the reference model the DUTs are
//! differenced with).
//!
//! * [`Hart`] — a machine-mode interpreter: [`Hart::step`] fetches,
//!   decodes and executes one instruction and **never panics** — every
//!   abnormal condition becomes a typed [`Trap`] that is architecturally
//!   taken (trap CSRs written, `pc` vectored to `mtvec`).
//! * [`ArchState`] — `pc`, the 32 integer registers (`x0` hardwired to
//!   zero), the 32 NaN-boxing FP registers and the machine-mode CSR file
//!   ([`CsrFile`]), with a stable FNV-1a [`ArchState::digest`].
//! * [`Memory`] — sparse paged little-endian physical memory; untouched
//!   pages read as zeros without allocating.
//! * [`Trap`] — the typed trap model: illegal instruction (including
//!   reserved FP rounding modes, paper bug scenario B2), misaligned and
//!   out-of-bounds access, `ecall`/`ebreak`.
//! * [`ExecutionTrace`] — opt-in per-step log (pc, word, outcome, defined
//!   register) with a deterministic digest for differential comparison.
//! * [`Dut`] — the device-under-test boundary the fuzzer drives: reset,
//!   program load, single-step, state digest and trace hooks. [`Hart`]
//!   implements it as the golden reference; [`MutantHart`] implements it
//!   with an injected [`BugScenario`] (e.g. B2, reserved-rounding-mode
//!   acceptance) for end-to-end fuzzer validation; external simulators
//!   plug in behind the same trait.
//! * [`digest::Fnv`] — the stable FNV-1a hasher every fingerprint in the
//!   workspace is built from.
//!
//! Floating-point semantics come from the [`fpu`] module: host arithmetic
//! plus exact residual recovery for flags and directed rounding; its
//! documented approximations are the crate's only deliberate deviations
//! from IEEE 754.
//!
//! # Example
//!
//! ```
//! use tf_arch::{Hart, RunExit};
//! use tf_riscv::{Gpr, Instruction, Opcode};
//!
//! let x1 = Gpr::new(1).unwrap();
//! let program = [
//!     Instruction::i_type(Opcode::Addi, x1, Gpr::ZERO, 41).unwrap(),
//!     Instruction::i_type(Opcode::Addi, x1, x1, 1).unwrap(),
//!     Instruction::system(Opcode::Ebreak),
//! ];
//! let mut hart = Hart::new(1 << 20);
//! hart.load_program(0, &program).unwrap();
//! assert_eq!(hart.run(100), RunExit::Breakpoint { steps: 3 });
//! assert_eq!(hart.state().x(x1), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
mod dut;
pub mod fpu;
mod hart;
mod mem;
mod mutant;
mod state;
mod trace;
mod trap;

pub use dut::{
    fold_op_classes, fold_pc_pair, fold_sample, op_class, BatchOutcome, Dut, DutFailure,
    DutFailureKind, RemoteDutStats, OP_CLASS_BUCKETS, PC_PAIRS_SEED,
};
pub use hart::{Hart, RunExit};
pub use mem::{Memory, PAGE_SIZE};
pub use mutant::{BugScenario, MutantHart};
pub use state::{ArchState, CsrFile, CANONICAL_NAN_F32, MISA};
pub use trace::{ExecutionTrace, StepOutcome, TraceEntry};
pub use trap::Trap;
