//! Sparse paged physical memory with little-endian typed accessors.
//!
//! Pages are allocated on first write; reads of untouched pages return
//! zeros without allocating, so a multi-gigabyte guest address space costs
//! only what the program actually dirties. Accesses are bounds-checked
//! against the configured size — the hart turns a `None` into the matching
//! access-fault [`Trap`](crate::Trap) — while alignment policy lives in the
//! hart, because the trap cause depends on the instruction, not the memory.
//!
//! [`Memory::digest`] is incremental: every write marks its pages dirty,
//! and a digest re-hashes only the dirty pages before folding cached
//! per-page hashes, so the per-step cost of lockstep differential
//! comparison is proportional to the bytes written since the previous
//! digest, not to the resident footprint.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::digest::{DeferredFold, WideFnv};

/// Bytes per backing page.
pub const PAGE_SIZE: u64 = 4096;

/// Digest bookkeeping: cached per-page content hashes plus the set of
/// pages written since they were last hashed.
///
/// An entry in `page_hashes` exists exactly for the resident pages whose
/// contents are non-zero (as of the last [`Memory::digest`] call), which
/// keeps the zero-page-equivalence semantics: an all-zero dirtied page
/// digests like an untouched one.
#[derive(Debug, Clone, Default)]
struct DigestCache {
    page_hashes: BTreeMap<u64, u64>,
    dirty: BTreeSet<u64>,
}

/// Sparse paged byte-addressable memory of a configurable size.
///
/// All typed accessors are little-endian, matching RISC-V.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    size: u64,
    // Interior mutability keeps `digest(&self)` on the `Dut` contract
    // while letting it refresh the cache; never borrowed across a call
    // boundary, so the RefCell cannot observably panic.
    cache: RefCell<DigestCache>,
    // Cumulative fold of every store since construction (see
    // [`Memory::write_history`]); bookkeeping, not state.
    history: DeferredFold,
    // Watched code range and its generation counters: every store
    // overlapping `code_watch` bumps `code_gen` and stamps the new value
    // on each overlapped 4-byte word in `code_word_gens`, so the hart's
    // predecoded-block cache validates an untouched block with one
    // integer compare and a touched-generation block with an L1 slice
    // scan — never by re-reading instruction words.
    code_watch: (u64, u64),
    code_gen: u64,
    code_word_gens: Vec<u64>,
}

impl Memory {
    /// Create a memory of `size` bytes; valid addresses are `0..size`.
    #[must_use]
    pub fn new(size: u64) -> Self {
        Memory {
            pages: BTreeMap::new(),
            size,
            cache: RefCell::new(DigestCache::default()),
            history: DeferredFold::new(),
            code_watch: (0, 0),
            code_gen: 0,
            code_word_gens: Vec::new(),
        }
    }

    /// Watch `start..end` as the code range: any store overlapping it
    /// bumps the generation counter returned by
    /// [`Memory::code_generation`] and stamps the overlapped 4-byte
    /// words (see [`Memory::code_range_unchanged`]). A single range is
    /// enough because the hart only predecodes blocks inside the loaded
    /// program image.
    pub fn set_code_watch(&mut self, start: u64, end: u64) {
        self.code_watch = (start, end);
        self.code_gen = self.code_gen.wrapping_add(1);
        let words = usize::try_from(end.saturating_sub(start).div_ceil(4)).unwrap_or(0);
        self.code_word_gens.clear();
        self.code_word_gens.resize(words, self.code_gen);
    }

    /// Generation counter of the watched code range; changes (only) when
    /// a store may have modified watched bytes or the watch itself moved.
    /// Equal generations guarantee the watched bytes are unchanged; a
    /// changed generation says nothing more than "re-validate".
    #[must_use]
    pub fn code_generation(&self) -> u64 {
        self.code_gen
    }

    /// True when none of the `words` 4-byte code words starting at
    /// `addr` have been stored to since generation `since` — the cheap
    /// per-block re-validation behind [`Memory::code_generation`]: a
    /// store elsewhere in the watched range moves the global generation
    /// but leaves these word stamps behind, proving this block's bytes
    /// are intact without re-reading them. Returns `false` for any
    /// address outside the watched range.
    #[must_use]
    pub fn code_range_unchanged(&self, addr: u64, words: usize, since: u64) -> bool {
        let Some(start) = addr.checked_sub(self.code_watch.0) else {
            return false;
        };
        let Ok(start) = usize::try_from(start / 4) else {
            return false;
        };
        let Some(end) = start.checked_add(words) else {
            return false;
        };
        let Some(stamps) = self.code_word_gens.get(start..end) else {
            return false;
        };
        stamps.iter().all(|&stamp| stamp <= since)
    }

    /// The configured size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// True when the `len`-byte range starting at `addr` is in bounds.
    #[must_use]
    pub fn contains(&self, addr: u64, len: u64) -> bool {
        addr.checked_add(len).is_some_and(|end| end <= self.size)
    }

    fn page(&self, index: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&index).map(|p| &**p)
    }

    fn page_mut(&mut self, index: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(index)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Read `N` bytes starting at `addr`, or `None` when out of bounds.
    ///
    /// Unaligned and page-crossing reads are supported; the typed helpers
    /// below are the common aligned fast path.
    #[must_use]
    pub fn read<const N: usize>(&self, addr: u64) -> Option<[u8; N]> {
        if !self.contains(addr, N as u64) {
            return None;
        }
        let mut out = [0u8; N];
        let offset = (addr % PAGE_SIZE) as usize;
        if offset + N <= PAGE_SIZE as usize {
            if let Some(page) = self.page(addr / PAGE_SIZE) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
        } else {
            for (i, byte) in out.iter_mut().enumerate() {
                let a = addr + i as u64;
                *byte = self
                    .page(a / PAGE_SIZE)
                    .map_or(0, |p| p[(a % PAGE_SIZE) as usize]);
            }
        }
        Some(out)
    }

    /// Write `N` bytes starting at `addr`; `None` when out of bounds (the
    /// write is not performed).
    #[must_use = "an out-of-bounds store must raise a trap"]
    pub fn write<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) -> Option<()> {
        if !self.contains(addr, N as u64) {
            return None;
        }
        if N == 0 {
            return Some(());
        }
        self.history.write_u64(N as u64);
        self.history.write_u64(addr);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.history.write_u64(u64::from_le_bytes(word));
        }
        if addr < self.code_watch.1 && addr + N as u64 > self.code_watch.0 {
            self.code_gen = self.code_gen.wrapping_add(1);
            let first = (addr.max(self.code_watch.0) - self.code_watch.0) / 4;
            let last = (addr + N as u64 - 1).min(self.code_watch.1 - 1) - self.code_watch.0;
            for word in first..=last / 4 {
                if let Some(stamp) = self
                    .code_word_gens
                    .get_mut(usize::try_from(word).unwrap_or(usize::MAX))
                {
                    *stamp = self.code_gen;
                }
            }
        }
        self.mark_dirty(addr, N as u64);
        let offset = (addr % PAGE_SIZE) as usize;
        if offset + N <= PAGE_SIZE as usize {
            self.page_mut(addr / PAGE_SIZE)[offset..offset + N].copy_from_slice(&bytes);
        } else {
            for (i, byte) in bytes.iter().enumerate() {
                let a = addr + i as u64;
                self.page_mut(a / PAGE_SIZE)[(a % PAGE_SIZE) as usize] = *byte;
            }
        }
        Some(())
    }

    /// Load one byte.
    #[must_use]
    pub fn load_u8(&self, addr: u64) -> Option<u8> {
        self.read::<1>(addr).map(|b| b[0])
    }

    /// Load a little-endian halfword.
    #[must_use]
    pub fn load_u16(&self, addr: u64) -> Option<u16> {
        self.read::<2>(addr).map(u16::from_le_bytes)
    }

    /// Load a little-endian word.
    #[must_use]
    pub fn load_u32(&self, addr: u64) -> Option<u32> {
        self.read::<4>(addr).map(u32::from_le_bytes)
    }

    /// Load a little-endian doubleword.
    #[must_use]
    pub fn load_u64(&self, addr: u64) -> Option<u64> {
        self.read::<8>(addr).map(u64::from_le_bytes)
    }

    /// Store one byte.
    #[must_use = "an out-of-bounds store must raise a trap"]
    pub fn store_u8(&mut self, addr: u64, value: u8) -> Option<()> {
        self.write(addr, [value])
    }

    /// Store a little-endian halfword.
    #[must_use = "an out-of-bounds store must raise a trap"]
    pub fn store_u16(&mut self, addr: u64, value: u16) -> Option<()> {
        self.write(addr, value.to_le_bytes())
    }

    /// Store a little-endian word.
    #[must_use = "an out-of-bounds store must raise a trap"]
    pub fn store_u32(&mut self, addr: u64, value: u32) -> Option<()> {
        self.write(addr, value.to_le_bytes())
    }

    /// Store a little-endian doubleword.
    #[must_use = "an out-of-bounds store must raise a trap"]
    pub fn store_u64(&mut self, addr: u64, value: u64) -> Option<()> {
        self.write(addr, value.to_le_bytes())
    }

    /// Number of pages currently backed by real storage.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Cumulative fold of every in-bounds store since construction:
    /// width, address and data, in execution order. The memory slice of
    /// the device write history (see
    /// [`ArchState::write_history`](crate::ArchState::write_history) for
    /// the rationale); unlike [`Memory::digest`] it fingerprints the
    /// *sequence* of stores, so it never reconverges after two devices
    /// first store differently.
    #[must_use]
    pub fn write_history(&self) -> u64 {
        self.history.finish()
    }

    /// Record that a `len`-byte in-bounds write starting at `addr` is
    /// about to land, so [`Memory::digest`] re-hashes only those pages.
    fn mark_dirty(&mut self, addr: u64, len: u64) {
        let dirty = &mut self.cache.get_mut().dirty;
        let first = addr / PAGE_SIZE;
        let last = (addr + (len - 1)) / PAGE_SIZE;
        for page in first..=last {
            dirty.insert(page);
        }
    }

    /// The content hash of one page: [`WideFnv`] over its 512
    /// little-endian 64-bit words, one xor-multiply round per word
    /// instead of per byte (digest generation `v2`).
    fn page_hash(page: &[u8; PAGE_SIZE as usize]) -> u64 {
        let mut fnv = WideFnv::new();
        for chunk in page.chunks_exact(8) {
            fnv.write_u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        fnv.finish()
    }

    /// Deterministic digest over every dirtied page (index and content
    /// hash, folded in ascending page order). Untouched pages read as
    /// zero and an all-zero dirtied page hashes like an untouched one,
    /// so logically equal memories digest equally.
    ///
    /// The digest is incremental: only pages written since the previous
    /// call are re-hashed; the rest fold in from the per-page cache. In
    /// debug builds every result is checked against the full-rescan
    /// oracle [`Memory::digest_from_scratch`].
    #[must_use]
    pub fn digest(&self) -> u64 {
        let cache = &mut *self.cache.borrow_mut();
        for index in std::mem::take(&mut cache.dirty) {
            match self.pages.get(&index) {
                Some(page) if page.iter().any(|&b| b != 0) => {
                    cache.page_hashes.insert(index, Self::page_hash(page));
                }
                // Absent or scrubbed back to all-zero: digests like an
                // untouched page.
                _ => {
                    cache.page_hashes.remove(&index);
                }
            }
        }
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.size);
        for (index, hash) in &cache.page_hashes {
            fnv.write_u64(*index);
            fnv.write_u64(*hash);
        }
        let digest = fnv.finish();
        debug_assert_eq!(
            digest,
            self.digest_from_scratch(),
            "incremental digest diverged from the full-rescan oracle"
        );
        digest
    }

    /// The digest [`Memory::digest`] would return, recomputed from scratch
    /// by rescanning every resident page — the correctness oracle for the
    /// incremental path. O(resident memory); use only in tests and
    /// debug assertions.
    #[must_use]
    pub fn digest_from_scratch(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.size);
        for (index, page) in &self.pages {
            if page.iter().all(|&b| b == 0) {
                continue;
            }
            fnv.write_u64(*index);
            fnv.write_u64(Self::page_hash(page));
        }
        fnv.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero_without_allocating() {
        let mem = Memory::new(1 << 20);
        assert_eq!(mem.load_u64(0x1234), Some(0));
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn round_trips_little_endian() {
        let mut mem = Memory::new(1 << 20);
        mem.store_u32(0x100, 0xDEAD_BEEF).unwrap();
        assert_eq!(mem.load_u32(0x100), Some(0xDEAD_BEEF));
        assert_eq!(mem.load_u8(0x100), Some(0xEF));
        assert_eq!(mem.load_u8(0x103), Some(0xDE));
        mem.store_u64(0x200, u64::MAX).unwrap();
        assert_eq!(mem.load_u64(0x200), Some(u64::MAX));
        assert_eq!(mem.load_u16(0x206), Some(0xFFFF));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = Memory::new(4096);
        assert_eq!(mem.load_u8(4096), None);
        assert_eq!(mem.load_u64(4089), None);
        assert_eq!(mem.load_u64(4088), Some(0));
        assert_eq!(mem.store_u32(4094, 1), None);
        // The rejected store must not partially commit.
        assert_eq!(mem.load_u16(4094), Some(0));
        // Address arithmetic must not wrap.
        assert_eq!(mem.load_u64(u64::MAX - 3), None);
    }

    #[test]
    fn page_crossing_accesses_work() {
        let mut mem = Memory::new(3 * PAGE_SIZE);
        let addr = PAGE_SIZE - 3;
        mem.store_u64(addr, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(mem.load_u64(addr), Some(0x0102_0304_0506_0708));
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn code_generation_tracks_only_watched_stores() {
        let mut mem = Memory::new(1 << 20);
        let g0 = mem.code_generation();
        mem.store_u64(0x100, 1).unwrap();
        assert_eq!(mem.code_generation(), g0, "no watch: stores never bump");
        mem.set_code_watch(0x40, 0x80);
        let g1 = mem.code_generation();
        assert_ne!(g1, g0, "moving the watch itself must invalidate");
        mem.store_u64(0x100, 2).unwrap();
        mem.store_u8(0x3F, 7).unwrap();
        mem.store_u8(0x80, 7).unwrap();
        assert_eq!(mem.code_generation(), g1, "stores outside the watch");
        mem.store_u8(0x40, 7).unwrap();
        let g2 = mem.code_generation();
        assert_ne!(g2, g1, "store inside the watch bumps");
        mem.store_u64(0x3C, 0).unwrap();
        assert_ne!(mem.code_generation(), g2, "straddling store bumps");
        let g3 = mem.code_generation();
        assert_eq!(mem.store_u32((1 << 20) - 2, 1), None);
        assert_eq!(mem.code_generation(), g3, "rejected store cannot bump");
    }

    #[test]
    fn incremental_digest_matches_full_rescan() {
        let mut mem = Memory::new(1 << 20);
        mem.store_u64(0x10, 0xAAAA).unwrap();
        assert_eq!(mem.digest(), mem.digest_from_scratch());
        // Writes after a digest re-dirty their pages.
        mem.store_u64(2 * PAGE_SIZE + 8, 0xBBBB).unwrap();
        assert_eq!(mem.digest(), mem.digest_from_scratch());
        // A clone carries the cache along and stays consistent.
        let mut cloned = mem.clone();
        assert_eq!(cloned.digest(), mem.digest());
        cloned.store_u8(0x10, 0).unwrap();
        assert_eq!(cloned.digest(), cloned.digest_from_scratch());
        assert_ne!(cloned.digest(), mem.digest());
        // Scrubbing a page back to all-zero digests like untouched.
        for offset in (0..PAGE_SIZE).step_by(8) {
            cloned.store_u64(2 * PAGE_SIZE + offset, 0).unwrap();
        }
        assert_eq!(cloned.digest(), cloned.digest_from_scratch());
        let mut fresh = Memory::new(1 << 20);
        fresh.store_u64(0x10, 0xAAAA).unwrap();
        fresh.store_u8(0x10, 0).unwrap();
        assert_eq!(cloned.digest(), fresh.digest(), "scrubbed page vanishes");
    }

    #[test]
    fn multi_page_writes_dirty_every_touched_page() {
        // A single write spanning three pages must refresh the cached
        // hash of the *middle* page too, not only first and last.
        let mut mem = Memory::new(1 << 20);
        mem.write::<{ 2 * PAGE_SIZE as usize + 16 }>(
            PAGE_SIZE - 8,
            [0xA5; 2 * PAGE_SIZE as usize + 16],
        )
        .unwrap();
        assert_eq!(mem.resident_pages(), 4);
        assert_eq!(mem.digest(), mem.digest_from_scratch());
        // Overwrite again (pages already cached) and re-check.
        mem.write::<{ 2 * PAGE_SIZE as usize + 16 }>(
            PAGE_SIZE - 8,
            [0x3C; 2 * PAGE_SIZE as usize + 16],
        )
        .unwrap();
        assert_eq!(mem.digest(), mem.digest_from_scratch());
    }

    #[test]
    fn digest_ignores_zero_pages_and_sees_writes() {
        let mut a = Memory::new(1 << 20);
        let b = Memory::new(1 << 20);
        assert_eq!(a.digest(), b.digest());
        // Dirtying a page with zeros keeps the digest equal.
        a.store_u64(0x40, 0).unwrap();
        assert_eq!(a.digest(), b.digest());
        a.store_u64(0x40, 7).unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(Memory::new(64).digest(), Memory::new(128).digest());
    }
}
