//! Known-buggy devices under test: [`MutantHart`] and its
//! [`BugScenario`]s.
//!
//! The paper validates its fuzzing loop against processors with planted
//! bugs; this module is the software analogue. A [`MutantHart`] wraps the
//! golden [`Hart`] and injects exactly one deterministic deviation from
//! the architecture, chosen from the paper's bug-scenario catalogue. A
//! campaign pointed at a mutant must flag a divergence, and the step it
//! localises must be one where the scenario actually fired — this is the
//! end-to-end self-test of the differential engine.
//!
//! Mutants implement only [`Dut::step`] and therefore inherit the
//! default per-step [`Dut::run`] schedule — they deliberately do *not*
//! take the golden hart's native block engine, because every bug hook
//! wraps an individual `step` and must observe every instruction. The
//! `run_native` integration test pins this: wrapping a mutant so it
//! cannot be batch-run changes nothing, bit for bit.

use tf_riscv::csr;
use tf_riscv::{Extension, Format, Gpr, Instruction, Opcode, RoundingMode};

use crate::dut::Dut;
use crate::hart::Hart;
use crate::trace::{ExecutionTrace, StepOutcome};
use crate::trap::Trap;

/// A planted bug: one deterministic deviation from the RV64 architecture.
///
/// Each scenario reproduces a class of silicon defect from the paper's
/// evaluation. The triggers are intentionally narrow so that campaigns
/// exercise the generator's ability to reach them, not just the diff
/// engine's ability to notice arbitrary corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugScenario {
    /// Paper scenario B2: a floating-point instruction whose dynamic
    /// rounding mode resolves through a reserved `fcsr.frm` encoding
    /// retires (computing as round-to-nearest-even) instead of raising
    /// the architecturally required illegal-instruction exception.
    B2ReservedRounding,
    /// The immediate adder is off by one: every retired `addi` writes
    /// `rs1 + imm + 1`.
    OffByOneImmediate,
    /// The FP exception path is disconnected: retired floating-point
    /// instructions never update `fflags` (explicit CSR writes still
    /// work).
    DroppedFflags,
    /// The explicit CSR write port into `fflags`/`fcsr` is one bit too
    /// narrow: its write mask covers only the low four exception flags,
    /// so a CSR write instruction can neither set nor clear the NV
    /// (invalid-operation) bit — the NV flop simply retains its previous
    /// value, as a real `reg = (reg & ~0xF) | (value & 0xF)` port would.
    /// FP-instruction flag accrual still works — the bug is in the
    /// write-mask width of the CSR port, the ROADMAP's CSR write-mask
    /// scenario class.
    CsrWriteMask,
    /// The branch-target adder drops bit 3 of the B-format offset: a
    /// *taken* conditional branch whose encoded offset has bit 3 set
    /// lands 8 bytes short of the architectural target. Not-taken
    /// branches and offsets without bit 3 are exact, so straight-line
    /// code never trips it — the fuzzer has to generate a taken branch
    /// with the right offset shape.
    BranchOffsetTruncation,
    /// The sign-extension mux on the load write-back path is stuck on
    /// zero-extend: everything that architecturally writes a
    /// sign-extended narrow memory value to `rd` — `lb`/`lh`/`lw`, and
    /// the W-form AMO/`lr.w` read-backs that share the same write-back
    /// datapath — delivers it zero-extended instead. Loads of
    /// non-negative values are bit-identical to the reference, so the
    /// bug only fires when a negative value flows through the narrow
    /// load path.
    SignExtensionDroppedLoad,
}

impl BugScenario {
    /// Every scenario, in catalogue order.
    pub const ALL: [BugScenario; 6] = [
        BugScenario::B2ReservedRounding,
        BugScenario::OffByOneImmediate,
        BugScenario::DroppedFflags,
        BugScenario::CsrWriteMask,
        BugScenario::BranchOffsetTruncation,
        BugScenario::SignExtensionDroppedLoad,
    ];

    /// Short stable identifier, used by `tf-cli fuzz --mutant <id>`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            BugScenario::B2ReservedRounding => "b2",
            BugScenario::OffByOneImmediate => "imm",
            BugScenario::DroppedFflags => "fflags",
            BugScenario::CsrWriteMask => "csrmask",
            BugScenario::BranchOffsetTruncation => "btrunc",
            BugScenario::SignExtensionDroppedLoad => "ldsext",
        }
    }

    /// One-line description for campaign reports and `--help` output.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            BugScenario::B2ReservedRounding => {
                "FP instruction with a reserved dynamic rounding mode retires instead of trapping"
            }
            BugScenario::OffByOneImmediate => "addi computes rs1 + imm + 1",
            BugScenario::DroppedFflags => "FP instructions never update fflags",
            BugScenario::CsrWriteMask => {
                "CSR writes to fflags/fcsr cannot change the NV bit (write port one bit too narrow)"
            }
            BugScenario::BranchOffsetTruncation => {
                "taken conditional branches drop bit 3 of the target offset"
            }
            BugScenario::SignExtensionDroppedLoad => {
                "lb/lh/lw and w-form AMO read-backs zero-extend the loaded value \
                 (sign-extension mux stuck)"
            }
        }
    }

    /// Parse a scenario from its [`BugScenario::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl std::fmt::Display for BugScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.id(), self.description())
    }
}

/// A [`Hart`] with one injected [`BugScenario`] — a known-buggy device
/// under test for validating fuzzing campaigns end to end.
///
/// Outside its scenario's trigger the mutant behaves bit-for-bit like the
/// reference model, so every reported divergence is attributable to the
/// planted bug.
#[derive(Debug, Clone)]
pub struct MutantHart {
    hart: Hart,
    scenario: BugScenario,
}

impl MutantHart {
    /// Create a mutant at the reset state with `mem_size` bytes of memory.
    #[must_use]
    pub fn new(mem_size: u64, scenario: BugScenario) -> Self {
        MutantHart {
            hart: Hart::new(mem_size),
            scenario,
        }
    }

    /// The injected scenario.
    #[must_use]
    pub fn scenario(&self) -> BugScenario {
        self.scenario
    }

    /// The wrapped hart (architectural state inspection in tests).
    #[must_use]
    pub fn hart(&self) -> &Hart {
        &self.hart
    }

    /// Decode the instruction the next step would fetch, if the fetch
    /// and decode succeed.
    fn peek(&self) -> Option<Instruction> {
        let pc = self.hart.state().pc();
        if pc % 4 != 0 {
            return None;
        }
        let word = self.hart.mem().load_u32(pc)?;
        Instruction::decode(word).ok()
    }

    /// B2: when the next instruction would resolve a dynamic rounding
    /// mode through a reserved `frm`, execute it as RNE instead of
    /// letting the reference semantics trap.
    fn step_b2(&mut self) -> StepOutcome {
        let reserved_dyn = self.peek().is_some_and(|insn| {
            insn.rm() == Some(RoundingMode::Dyn)
                && RoundingMode::from_bits(self.hart.state().csrs().frm()).is_none()
        });
        if !reserved_dyn {
            return self.hart.step();
        }
        let frm = u64::from(self.hart.state().csrs().frm());
        let csrs = self.hart.state_mut().csrs_mut();
        csrs.write(csr::FRM, u64::from(RoundingMode::Rne.to_bits()))
            .expect("frm is writable");
        let outcome = self.hart.step();
        // Restore the reserved encoding: the bug is in rm resolution, not
        // in the CSR file.
        self.hart
            .state_mut()
            .csrs_mut()
            .write(csr::FRM, frm)
            .expect("frm is writable");
        outcome
    }

    /// Off-by-one: after a retired `addi`, nudge the destination by one
    /// (and keep the recorded trace consistent with the buggy device).
    fn step_off_by_one(&mut self) -> StepOutcome {
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            if insn.opcode() == Opcode::Addi {
                let rd = Gpr::wrapping(insn.rd());
                if !rd.is_zero() {
                    let buggy = self.hart.state().x(rd).wrapping_add(1);
                    self.hart.state_mut().set_x(rd, buggy);
                    if let Some(entry) = self.hart.trace_last_mut() {
                        if let Some((reg, value)) = &mut entry.def {
                            debug_assert_eq!(*reg, tf_riscv::Reg::X(rd));
                            *value = buggy;
                        }
                    }
                }
            }
        }
        outcome
    }

    /// Dropped fflags: restore the pre-step `fflags` after any retired
    /// F/D-extension instruction, as if the accrual wires were cut.
    fn step_dropped_fflags(&mut self) -> StepOutcome {
        let before = self
            .hart
            .state()
            .csrs()
            .read(csr::FFLAGS)
            .expect("fflags exists");
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            if matches!(insn.opcode().extension(), Extension::F | Extension::D) {
                let csrs = self.hart.state_mut().csrs_mut();
                csrs.write(csr::FFLAGS, before).expect("fflags is writable");
            }
        }
        outcome
    }

    /// CSR write mask: after a retired CSR instruction that actually
    /// wrote `fflags` or `fcsr`, put the *pre-write* NV bit back — the
    /// buggy write port drives only the low four flag bits, so the NV
    /// flop retains its old value whether the write tried to set or
    /// clear it. The set/clear flavours with an `x0`/zero source perform
    /// no write architecturally, so the bug does not fire for them, and
    /// the FP accrual path ([`Hart::step`] retiring an FP instruction)
    /// is untouched.
    fn step_csr_mask(&mut self) -> StepOutcome {
        let nv_before = self
            .hart
            .state()
            .csrs()
            .read(csr::FFLAGS)
            .expect("fflags exists")
            & csr::fflags::NV;
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            let writes = match insn.opcode() {
                Opcode::Csrrw | Opcode::Csrrwi => true,
                Opcode::Csrrs | Opcode::Csrrc | Opcode::Csrrsi | Opcode::Csrrci => insn.rs1() != 0,
                _ => false,
            };
            let flag_csr = insn
                .csr_addr()
                .is_some_and(|addr| addr == csr::FFLAGS || addr == csr::FCSR);
            if writes && flag_csr {
                let flags = self
                    .hart
                    .state()
                    .csrs()
                    .read(csr::FFLAGS)
                    .expect("fflags exists");
                let stuck = (flags & !csr::fflags::NV) | nv_before;
                if stuck != flags {
                    self.hart
                        .state_mut()
                        .csrs_mut()
                        .write(csr::FFLAGS, stuck)
                        .expect("fflags is writable");
                }
            }
        }
        outcome
    }

    /// Branch-offset truncation: when a conditional branch is *taken*
    /// and its B-format offset has bit 3 set, re-land the pc 8 bytes
    /// short, as a target adder missing that offset wire would. The
    /// taken/not-taken decision itself is the reference's; only the
    /// landing address is corrupted, and only when the dropped bit
    /// actually participates in the target.
    fn step_btrunc(&mut self) -> StepOutcome {
        let branch = self
            .peek()
            .filter(|insn| insn.opcode().format() == Format::B);
        let pc_before = self.hart.state().pc();
        let outcome = self.hart.step();
        if let (Some(insn), StepOutcome::Retired(_)) = (branch, outcome) {
            let offset = insn.imm();
            let taken = self.hart.state().pc() == pc_before.wrapping_add(offset as u64);
            // offset == 4 (the only shape where taken and not-taken
            // targets coincide) has bit 3 clear, so `taken` is unambiguous
            // whenever the bug fires.
            if taken && offset & 8 != 0 {
                let truncated = pc_before.wrapping_add((offset & !8) as u64);
                self.hart.state_mut().set_pc(truncated);
            }
        }
        outcome
    }

    /// Dropped load sign extension: after a retired instruction whose
    /// destination received a sign-extended (negative) narrow memory
    /// value — `lb`/`lh`/`lw`, or the old-value read-back of a W-form
    /// AMO/`lr.w` — overwrite it with the zero-extended value the stuck
    /// mux would have produced (and keep the recorded trace consistent
    /// with the buggy device). Non-negative loads are bit-identical
    /// either way, so the bug fires only when the loaded value's sign
    /// bit is set. `sc.w` writes a success code, not a loaded value, so
    /// it is outside the datapath.
    fn step_ldsext(&mut self) -> StepOutcome {
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            let mask: u64 = match insn.opcode() {
                Opcode::Lb => 0xFF,
                Opcode::Lh => 0xFFFF,
                Opcode::Lw
                | Opcode::LrW
                | Opcode::AmoswapW
                | Opcode::AmoaddW
                | Opcode::AmoxorW
                | Opcode::AmoandW
                | Opcode::AmoorW
                | Opcode::AmominW
                | Opcode::AmomaxW
                | Opcode::AmominuW
                | Opcode::AmomaxuW => 0xFFFF_FFFF,
                _ => return outcome,
            };
            let rd = Gpr::wrapping(insn.rd());
            if rd.is_zero() {
                return outcome;
            }
            let value = self.hart.state().x(rd);
            let buggy = value & mask;
            if buggy != value {
                self.hart.state_mut().set_x(rd, buggy);
                if let Some(entry) = self.hart.trace_last_mut() {
                    if let Some((reg, traced)) = &mut entry.def {
                        debug_assert_eq!(*reg, tf_riscv::Reg::X(rd));
                        *traced = buggy;
                    }
                }
            }
        }
        outcome
    }
}

impl Dut for MutantHart {
    fn name(&self) -> &'static str {
        match self.scenario {
            BugScenario::B2ReservedRounding => "mutant-b2",
            BugScenario::OffByOneImmediate => "mutant-imm",
            BugScenario::DroppedFflags => "mutant-fflags",
            BugScenario::CsrWriteMask => "mutant-csrmask",
            BugScenario::BranchOffsetTruncation => "mutant-btrunc",
            BugScenario::SignExtensionDroppedLoad => "mutant-ldsext",
        }
    }

    fn reset(&mut self) {
        self.hart.reset();
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.hart.load_program(base, program)
    }

    fn step(&mut self) -> StepOutcome {
        match self.scenario {
            BugScenario::B2ReservedRounding => self.step_b2(),
            BugScenario::OffByOneImmediate => self.step_off_by_one(),
            BugScenario::DroppedFflags => self.step_dropped_fflags(),
            BugScenario::CsrWriteMask => self.step_csr_mask(),
            BugScenario::BranchOffsetTruncation => self.step_btrunc(),
            BugScenario::SignExtensionDroppedLoad => self.step_ldsext(),
        }
    }

    fn pc(&self) -> u64 {
        self.hart.state().pc()
    }

    fn digest(&self) -> u64 {
        self.hart.digest()
    }

    fn write_history(&self) -> u64 {
        // The wrapped hart's history already includes every extra write
        // a fired scenario performed through `state_mut`.
        self.hart.write_history()
    }

    fn enable_tracing(&mut self) {
        self.hart.enable_tracing();
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        self.hart.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Fpr, Reg};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    /// The B2 trigger program: set a reserved `frm`, then execute an FP
    /// instruction with the dynamic rounding mode.
    fn b2_program() -> Vec<Instruction> {
        vec![
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ]
    }

    #[test]
    fn b2_mutant_retires_where_reference_traps() {
        let program = b2_program();
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        mutant.load(0, &program).unwrap();

        reference.step();
        mutant.step();
        assert!(matches!(
            reference.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        assert!(matches!(mutant.step(), StepOutcome::Retired(_)));
        // The reserved frm survives the mutant's internal RNE substitution.
        assert_eq!(mutant.hart().state().csrs().frm(), 0b101);
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn b2_mutant_matches_reference_on_legal_rounding() {
        // With a legal frm the mutant must be bit-for-bit the reference.
        let program = vec![
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b001).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn off_by_one_mutant_perturbs_addi_and_its_trace() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 41).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut mutant = MutantHart::new(1 << 16, BugScenario::OffByOneImmediate);
        mutant.load(0, &program).unwrap();
        mutant.enable_tracing();
        mutant.step();
        assert_eq!(mutant.hart().state().x(x(1)), 42, "41 + off-by-one");
        let trace = mutant.take_trace().unwrap();
        assert_eq!(
            trace.entries()[0].def,
            Some((Reg::X(x(1)), 42)),
            "trace reports the buggy value the device actually wrote"
        );
    }

    #[test]
    fn off_by_one_mutant_leaves_other_opcodes_alone() {
        let program = [
            Instruction::r_type(Opcode::Add, x(1), Gpr::ZERO, Gpr::ZERO),
            Instruction::i_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, 3).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::OffByOneImmediate);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        // `add` is untouched and the x0-destination addi stays discarded.
        assert_eq!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn dropped_fflags_mutant_swallows_accrual_but_not_csr_writes() {
        // 1.0 / 3.0 is inexact: the reference sets NX, the mutant must not.
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0).unwrap(),
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 1.0);
            hart.state_mut().set_f32(f(3), 3.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::DroppedFflags);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(
            reference.state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NX)
        );
        assert_eq!(mutant.hart().state().csrs().read(csr::FFLAGS), Some(0));
        // The quotient itself is still computed correctly.
        assert_eq!(mutant.hart().state().f32(f(1)), reference.state().f32(f(1)));
    }

    #[test]
    fn csr_mask_mutant_drops_nv_on_explicit_writes() {
        // csrrwi fflags, 0x1F asks for all five flags; the buggy write
        // port only drives the low four.
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0x1F).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().csrs().read(csr::FFLAGS), Some(0x1F));
        assert_eq!(
            mutant.hart().state().csrs().read(csr::FFLAGS),
            Some(0x1F & !csr::fflags::NV),
            "NV must not survive the narrow write port"
        );
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn csr_mask_mutant_retains_nv_against_an_explicit_clear() {
        // The stuck port works both ways: once NV is accrued (0/0 is
        // invalid), a csrrwi fflags, 0 clears it on the reference but
        // leaves the mutant's NV flop holding its old value.
        let program = [
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 0.0);
            hart.state_mut().set_f32(f(3), 0.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().csrs().read(csr::FFLAGS), Some(0));
        assert_eq!(
            mutant.hart().state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NV),
            "the stuck NV flop must survive the explicit clear"
        );
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn csr_mask_mutant_leaves_accrual_and_zero_source_writes_alone() {
        // 0/0 is invalid: the FP accrual path sets NV and must still work
        // on the mutant. A csrrs with an x0 source performs no write, so
        // the accrued NV must survive it too.
        let program = [
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::csr_reg(Opcode::Csrrs, x(5), csr::FFLAGS, Gpr::ZERO).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 0.0);
            hart.state_mut().set_f32(f(3), 0.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(
            reference.state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NV),
            "0.0/0.0 must accrue NV on the reference"
        );
        assert_eq!(
            Dut::digest(&mutant),
            reference.digest(),
            "accrual and read-only CSR ops are outside the trigger"
        );
    }

    #[test]
    fn btrunc_mutant_lands_taken_branches_short_when_bit_3_is_set() {
        use tf_riscv::BranchOffset;
        // beq x0, x0, +12 is taken with bit 3 set: the reference lands at
        // 12 (ebreak immediately), the mutant at 12 & !8 = 4 and picks up
        // the addi on the way to its own ebreak.
        let program = [
            Instruction::b_type(
                Opcode::Beq,
                Gpr::ZERO,
                Gpr::ZERO,
                BranchOffset::new(12).unwrap(),
            ),
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 7).unwrap(),
            Instruction::system(Opcode::Ebreak),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::BranchOffsetTruncation);
        mutant.load(0, &program).unwrap();

        assert!(matches!(reference.step(), StepOutcome::Retired(_)));
        assert!(matches!(mutant.step(), StepOutcome::Retired(_)));
        assert_eq!(reference.state().pc(), 12);
        assert_eq!(
            mutant.hart().state().pc(),
            4,
            "bit 3 of the offset is dropped"
        );
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().x(x(1)), 0);
        assert_eq!(mutant.hart().state().x(x(1)), 7);
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn btrunc_mutant_is_exact_outside_its_trigger() {
        use tf_riscv::BranchOffset;
        // Not-taken branches and taken branches whose offset has bit 3
        // clear must stay bit-identical to the reference.
        let program = [
            // x1 = 1, so beq x1, x0 is NOT taken even with bit 3 set.
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1).unwrap(),
            Instruction::b_type(Opcode::Beq, x(1), Gpr::ZERO, BranchOffset::new(12).unwrap()),
            // Taken, but +16 has bit 3 clear: lands exactly.
            Instruction::b_type(
                Opcode::Beq,
                Gpr::ZERO,
                Gpr::ZERO,
                BranchOffset::new(16).unwrap(),
            ),
            Instruction::system(Opcode::Ebreak),
            Instruction::system(Opcode::Ebreak),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::BranchOffsetTruncation);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(Dut::digest(&mutant), reference.digest());
        assert_eq!(Dut::write_history(&mutant), reference.write_history());
    }

    #[test]
    fn ldsext_mutant_zero_extends_negative_narrow_loads() {
        // Store -1, read it back with lw: the reference sign-extends to
        // -1, the stuck mux hands back the low 32 bits zero-extended.
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, -1).unwrap(),
            Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(1), 1024).unwrap(),
            Instruction::i_type(Opcode::Lw, x(2), Gpr::ZERO, 1024).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::SignExtensionDroppedLoad);
        mutant.load(0, &program).unwrap();
        mutant.enable_tracing();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().x(x(2)), u64::MAX);
        assert_eq!(mutant.hart().state().x(x(2)), 0xFFFF_FFFF);
        assert_ne!(Dut::digest(&mutant), reference.digest());
        let trace = mutant.take_trace().unwrap();
        assert_eq!(
            trace.entries()[2].def,
            Some((Reg::X(x(2)), 0xFFFF_FFFF)),
            "trace reports the zero-extended value the device actually wrote"
        );
    }

    #[test]
    fn ldsext_mutant_is_exact_on_non_negative_and_unsigned_loads() {
        // A positive narrow load and an unsigned load are outside the
        // trigger: zero- and sign-extension agree, so no history write
        // may fire and the mutant stays bit-identical.
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 0x7F).unwrap(),
            Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(1), 1024).unwrap(),
            Instruction::i_type(Opcode::Lb, x(2), Gpr::ZERO, 1024).unwrap(),
            Instruction::i_type(Opcode::Lbu, x(3), Gpr::ZERO, 1024).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::SignExtensionDroppedLoad);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(Dut::digest(&mutant), reference.digest());
        assert_eq!(Dut::write_history(&mutant), reference.write_history());
    }

    #[test]
    fn ldsext_mutant_zero_extends_amo_read_backs() {
        // The W-form AMO old-value read-back rides the same write-back
        // mux: the reference sign-extends the old memory word into rd,
        // the stuck mux hands it back zero-extended.
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1024).unwrap(),
            Instruction::i_type(Opcode::Addi, x(2), Gpr::ZERO, -1).unwrap(),
            Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(2), 1024).unwrap(),
            Instruction::amo(Opcode::AmoaddW, x(3), x(1), Gpr::ZERO, false, false).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::SignExtensionDroppedLoad);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().x(x(3)), u64::MAX);
        assert_eq!(mutant.hart().state().x(x(3)), 0xFFFF_FFFF);
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn scenario_ids_round_trip() {
        for scenario in BugScenario::ALL {
            assert_eq!(BugScenario::parse(scenario.id()), Some(scenario));
            assert!(scenario.to_string().starts_with(scenario.id()));
        }
        assert_eq!(BugScenario::parse("nope"), None);
    }
}
