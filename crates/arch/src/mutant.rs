//! Known-buggy devices under test: [`MutantHart`] and its
//! [`BugScenario`]s.
//!
//! The paper validates its fuzzing loop against processors with planted
//! bugs; this module is the software analogue. A [`MutantHart`] wraps the
//! golden [`Hart`] and injects exactly one deterministic deviation from
//! the architecture, chosen from the paper's bug-scenario catalogue. A
//! campaign pointed at a mutant must flag a divergence, and the step it
//! localises must be one where the scenario actually fired — this is the
//! end-to-end self-test of the differential engine.
//!
//! Mutants implement only [`Dut::step`] and therefore inherit the
//! default per-step [`Dut::run`] schedule — they deliberately do *not*
//! take the golden hart's native block engine, because every bug hook
//! wraps an individual `step` and must observe every instruction. The
//! `run_native` integration test pins this: wrapping a mutant so it
//! cannot be batch-run changes nothing, bit for bit.

use tf_riscv::csr;
use tf_riscv::{Extension, Gpr, Instruction, Opcode, RoundingMode};

use crate::dut::Dut;
use crate::hart::Hart;
use crate::trace::{ExecutionTrace, StepOutcome};
use crate::trap::Trap;

/// A planted bug: one deterministic deviation from the RV64 architecture.
///
/// Each scenario reproduces a class of silicon defect from the paper's
/// evaluation. The triggers are intentionally narrow so that campaigns
/// exercise the generator's ability to reach them, not just the diff
/// engine's ability to notice arbitrary corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugScenario {
    /// Paper scenario B2: a floating-point instruction whose dynamic
    /// rounding mode resolves through a reserved `fcsr.frm` encoding
    /// retires (computing as round-to-nearest-even) instead of raising
    /// the architecturally required illegal-instruction exception.
    B2ReservedRounding,
    /// The immediate adder is off by one: every retired `addi` writes
    /// `rs1 + imm + 1`.
    OffByOneImmediate,
    /// The FP exception path is disconnected: retired floating-point
    /// instructions never update `fflags` (explicit CSR writes still
    /// work).
    DroppedFflags,
    /// The explicit CSR write port into `fflags`/`fcsr` is one bit too
    /// narrow: its write mask covers only the low four exception flags,
    /// so a CSR write instruction can neither set nor clear the NV
    /// (invalid-operation) bit — the NV flop simply retains its previous
    /// value, as a real `reg = (reg & ~0xF) | (value & 0xF)` port would.
    /// FP-instruction flag accrual still works — the bug is in the
    /// write-mask width of the CSR port, the ROADMAP's CSR write-mask
    /// scenario class.
    CsrWriteMask,
}

impl BugScenario {
    /// Every scenario, in catalogue order.
    pub const ALL: [BugScenario; 4] = [
        BugScenario::B2ReservedRounding,
        BugScenario::OffByOneImmediate,
        BugScenario::DroppedFflags,
        BugScenario::CsrWriteMask,
    ];

    /// Short stable identifier, used by `tf-cli fuzz --mutant <id>`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            BugScenario::B2ReservedRounding => "b2",
            BugScenario::OffByOneImmediate => "imm",
            BugScenario::DroppedFflags => "fflags",
            BugScenario::CsrWriteMask => "csrmask",
        }
    }

    /// One-line description for campaign reports and `--help` output.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            BugScenario::B2ReservedRounding => {
                "FP instruction with a reserved dynamic rounding mode retires instead of trapping"
            }
            BugScenario::OffByOneImmediate => "addi computes rs1 + imm + 1",
            BugScenario::DroppedFflags => "FP instructions never update fflags",
            BugScenario::CsrWriteMask => {
                "CSR writes to fflags/fcsr cannot change the NV bit (write port one bit too narrow)"
            }
        }
    }

    /// Parse a scenario from its [`BugScenario::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl std::fmt::Display for BugScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.id(), self.description())
    }
}

/// A [`Hart`] with one injected [`BugScenario`] — a known-buggy device
/// under test for validating fuzzing campaigns end to end.
///
/// Outside its scenario's trigger the mutant behaves bit-for-bit like the
/// reference model, so every reported divergence is attributable to the
/// planted bug.
#[derive(Debug, Clone)]
pub struct MutantHart {
    hart: Hart,
    scenario: BugScenario,
}

impl MutantHart {
    /// Create a mutant at the reset state with `mem_size` bytes of memory.
    #[must_use]
    pub fn new(mem_size: u64, scenario: BugScenario) -> Self {
        MutantHart {
            hart: Hart::new(mem_size),
            scenario,
        }
    }

    /// The injected scenario.
    #[must_use]
    pub fn scenario(&self) -> BugScenario {
        self.scenario
    }

    /// The wrapped hart (architectural state inspection in tests).
    #[must_use]
    pub fn hart(&self) -> &Hart {
        &self.hart
    }

    /// Decode the instruction the next step would fetch, if the fetch
    /// and decode succeed.
    fn peek(&self) -> Option<Instruction> {
        let pc = self.hart.state().pc();
        if pc % 4 != 0 {
            return None;
        }
        let word = self.hart.mem().load_u32(pc)?;
        Instruction::decode(word).ok()
    }

    /// B2: when the next instruction would resolve a dynamic rounding
    /// mode through a reserved `frm`, execute it as RNE instead of
    /// letting the reference semantics trap.
    fn step_b2(&mut self) -> StepOutcome {
        let reserved_dyn = self.peek().is_some_and(|insn| {
            insn.rm() == Some(RoundingMode::Dyn)
                && RoundingMode::from_bits(self.hart.state().csrs().frm()).is_none()
        });
        if !reserved_dyn {
            return self.hart.step();
        }
        let frm = u64::from(self.hart.state().csrs().frm());
        let csrs = self.hart.state_mut().csrs_mut();
        csrs.write(csr::FRM, u64::from(RoundingMode::Rne.to_bits()))
            .expect("frm is writable");
        let outcome = self.hart.step();
        // Restore the reserved encoding: the bug is in rm resolution, not
        // in the CSR file.
        self.hart
            .state_mut()
            .csrs_mut()
            .write(csr::FRM, frm)
            .expect("frm is writable");
        outcome
    }

    /// Off-by-one: after a retired `addi`, nudge the destination by one
    /// (and keep the recorded trace consistent with the buggy device).
    fn step_off_by_one(&mut self) -> StepOutcome {
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            if insn.opcode() == Opcode::Addi {
                let rd = Gpr::wrapping(insn.rd());
                if !rd.is_zero() {
                    let buggy = self.hart.state().x(rd).wrapping_add(1);
                    self.hart.state_mut().set_x(rd, buggy);
                    if let Some(entry) = self.hart.trace_last_mut() {
                        if let Some((reg, value)) = &mut entry.def {
                            debug_assert_eq!(*reg, tf_riscv::Reg::X(rd));
                            *value = buggy;
                        }
                    }
                }
            }
        }
        outcome
    }

    /// Dropped fflags: restore the pre-step `fflags` after any retired
    /// F/D-extension instruction, as if the accrual wires were cut.
    fn step_dropped_fflags(&mut self) -> StepOutcome {
        let before = self
            .hart
            .state()
            .csrs()
            .read(csr::FFLAGS)
            .expect("fflags exists");
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            if matches!(insn.opcode().extension(), Extension::F | Extension::D) {
                let csrs = self.hart.state_mut().csrs_mut();
                csrs.write(csr::FFLAGS, before).expect("fflags is writable");
            }
        }
        outcome
    }

    /// CSR write mask: after a retired CSR instruction that actually
    /// wrote `fflags` or `fcsr`, put the *pre-write* NV bit back — the
    /// buggy write port drives only the low four flag bits, so the NV
    /// flop retains its old value whether the write tried to set or
    /// clear it. The set/clear flavours with an `x0`/zero source perform
    /// no write architecturally, so the bug does not fire for them, and
    /// the FP accrual path ([`Hart::step`] retiring an FP instruction)
    /// is untouched.
    fn step_csr_mask(&mut self) -> StepOutcome {
        let nv_before = self
            .hart
            .state()
            .csrs()
            .read(csr::FFLAGS)
            .expect("fflags exists")
            & csr::fflags::NV;
        let outcome = self.hart.step();
        if let StepOutcome::Retired(insn) = outcome {
            let writes = match insn.opcode() {
                Opcode::Csrrw | Opcode::Csrrwi => true,
                Opcode::Csrrs | Opcode::Csrrc | Opcode::Csrrsi | Opcode::Csrrci => insn.rs1() != 0,
                _ => false,
            };
            let flag_csr = insn
                .csr_addr()
                .is_some_and(|addr| addr == csr::FFLAGS || addr == csr::FCSR);
            if writes && flag_csr {
                let flags = self
                    .hart
                    .state()
                    .csrs()
                    .read(csr::FFLAGS)
                    .expect("fflags exists");
                let stuck = (flags & !csr::fflags::NV) | nv_before;
                if stuck != flags {
                    self.hart
                        .state_mut()
                        .csrs_mut()
                        .write(csr::FFLAGS, stuck)
                        .expect("fflags is writable");
                }
            }
        }
        outcome
    }
}

impl Dut for MutantHart {
    fn name(&self) -> &'static str {
        match self.scenario {
            BugScenario::B2ReservedRounding => "mutant-b2",
            BugScenario::OffByOneImmediate => "mutant-imm",
            BugScenario::DroppedFflags => "mutant-fflags",
            BugScenario::CsrWriteMask => "mutant-csrmask",
        }
    }

    fn reset(&mut self) {
        self.hart.reset();
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.hart.load_program(base, program)
    }

    fn step(&mut self) -> StepOutcome {
        match self.scenario {
            BugScenario::B2ReservedRounding => self.step_b2(),
            BugScenario::OffByOneImmediate => self.step_off_by_one(),
            BugScenario::DroppedFflags => self.step_dropped_fflags(),
            BugScenario::CsrWriteMask => self.step_csr_mask(),
        }
    }

    fn digest(&self) -> u64 {
        self.hart.digest()
    }

    fn write_history(&self) -> u64 {
        // The wrapped hart's history already includes every extra write
        // a fired scenario performed through `state_mut`.
        self.hart.write_history()
    }

    fn enable_tracing(&mut self) {
        self.hart.enable_tracing();
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        self.hart.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Fpr, Reg};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    /// The B2 trigger program: set a reserved `frm`, then execute an FP
    /// instruction with the dynamic rounding mode.
    fn b2_program() -> Vec<Instruction> {
        vec![
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ]
    }

    #[test]
    fn b2_mutant_retires_where_reference_traps() {
        let program = b2_program();
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        mutant.load(0, &program).unwrap();

        reference.step();
        mutant.step();
        assert!(matches!(
            reference.step(),
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        assert!(matches!(mutant.step(), StepOutcome::Retired(_)));
        // The reserved frm survives the mutant's internal RNE substitution.
        assert_eq!(mutant.hart().state().csrs().frm(), 0b101);
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn b2_mutant_matches_reference_on_legal_rounding() {
        // With a legal frm the mutant must be bit-for-bit the reference.
        let program = vec![
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b001).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn off_by_one_mutant_perturbs_addi_and_its_trace() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 41).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut mutant = MutantHart::new(1 << 16, BugScenario::OffByOneImmediate);
        mutant.load(0, &program).unwrap();
        mutant.enable_tracing();
        mutant.step();
        assert_eq!(mutant.hart().state().x(x(1)), 42, "41 + off-by-one");
        let trace = mutant.take_trace().unwrap();
        assert_eq!(
            trace.entries()[0].def,
            Some((Reg::X(x(1)), 42)),
            "trace reports the buggy value the device actually wrote"
        );
    }

    #[test]
    fn off_by_one_mutant_leaves_other_opcodes_alone() {
        let program = [
            Instruction::r_type(Opcode::Add, x(1), Gpr::ZERO, Gpr::ZERO),
            Instruction::i_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, 3).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::OffByOneImmediate);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        // `add` is untouched and the x0-destination addi stays discarded.
        assert_eq!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn dropped_fflags_mutant_swallows_accrual_but_not_csr_writes() {
        // 1.0 / 3.0 is inexact: the reference sets NX, the mutant must not.
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0).unwrap(),
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 1.0);
            hart.state_mut().set_f32(f(3), 3.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::DroppedFflags);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(
            reference.state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NX)
        );
        assert_eq!(mutant.hart().state().csrs().read(csr::FFLAGS), Some(0));
        // The quotient itself is still computed correctly.
        assert_eq!(mutant.hart().state().f32(f(1)), reference.state().f32(f(1)));
    }

    #[test]
    fn csr_mask_mutant_drops_nv_on_explicit_writes() {
        // csrrwi fflags, 0x1F asks for all five flags; the buggy write
        // port only drives the low four.
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0x1F).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().csrs().read(csr::FFLAGS), Some(0x1F));
        assert_eq!(
            mutant.hart().state().csrs().read(csr::FFLAGS),
            Some(0x1F & !csr::fflags::NV),
            "NV must not survive the narrow write port"
        );
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn csr_mask_mutant_retains_nv_against_an_explicit_clear() {
        // The stuck port works both ways: once NV is accrued (0/0 is
        // invalid), a csrrwi fflags, 0 clears it on the reference but
        // leaves the mutant's NV flop holding its old value.
        let program = [
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FFLAGS, 0).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 0.0);
            hart.state_mut().set_f32(f(3), 0.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(reference.state().csrs().read(csr::FFLAGS), Some(0));
        assert_eq!(
            mutant.hart().state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NV),
            "the stuck NV flop must survive the explicit clear"
        );
        assert_ne!(Dut::digest(&mutant), reference.digest());
    }

    #[test]
    fn csr_mask_mutant_leaves_accrual_and_zero_source_writes_alone() {
        // 0/0 is invalid: the FP accrual path sets NV and must still work
        // on the mutant. A csrrs with an x0 source performs no write, so
        // the accrued NV must survive it too.
        let program = [
            Instruction::fp_r_type(Opcode::FdivS, f(1), f(2), f(3), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::csr_reg(Opcode::Csrrs, x(5), csr::FFLAGS, Gpr::ZERO).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let setup = |hart: &mut Hart| {
            hart.state_mut().set_f32(f(2), 0.0);
            hart.state_mut().set_f32(f(3), 0.0);
        };
        let mut reference = Hart::new(1 << 16);
        reference.load_program(0, &program).unwrap();
        setup(&mut reference);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::CsrWriteMask);
        mutant.load(0, &program).unwrap();
        setup(&mut mutant.hart);
        reference.run(10);
        Dut::run(&mut mutant, 10, 0);
        assert_eq!(
            reference.state().csrs().read(csr::FFLAGS),
            Some(csr::fflags::NV),
            "0.0/0.0 must accrue NV on the reference"
        );
        assert_eq!(
            Dut::digest(&mutant),
            reference.digest(),
            "accrual and read-only CSR ops are outside the trigger"
        );
    }

    #[test]
    fn scenario_ids_round_trip() {
        for scenario in BugScenario::ALL {
            assert_eq!(BugScenario::parse(scenario.id()), Some(scenario));
            assert!(scenario.to_string().starts_with(scenario.id()));
        }
        assert_eq!(BugScenario::parse("nope"), None);
    }
}
