//! Architectural state: program counter, register files and CSRs.

use std::cell::Cell;

use tf_riscv::csr::{self, mi, mstatus, mtvec, CsrAddr};
use tf_riscv::{Fpr, Gpr};

use crate::digest::Fnv;

/// `misa` for this model: RV64 (MXL=2) with the I, M, A, F, D extensions.
pub const MISA: u64 = (2 << 62) | (1 << 0) | (1 << 3) | (1 << 5) | (1 << 8) | (1 << 12);

/// All-ones upper half used to NaN-box single-precision values in the
/// 64-bit FP registers.
const NAN_BOX: u64 = 0xFFFF_FFFF_0000_0000;

/// Bit pattern of the canonical single-precision quiet NaN.
pub const CANONICAL_NAN_F32: u32 = 0x7FC0_0000;

/// The machine-mode control-and-status-register file.
///
/// Only the CSRs in [`tf_riscv::csr::ALL`] exist; accesses to any other
/// address are reported as `None` and become illegal-instruction traps in
/// the hart. WARL fields are legalised on write exactly once, here, so
/// every stored value is architecturally valid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    fcsr: u64,
    mstatus: u64,
    mie: u64,
    mip: u64,
    mtvec: u64,
    mepc: u64,
    mcause: u64,
    mtval: u64,
    mcycle: u64,
    minstret: u64,
    sepc: u64,
    scause: u64,
    stval: u64,
}

impl CsrFile {
    /// Reset state: everything zero except `mstatus.FS`, which starts
    /// dirty so floating-point instructions work out of reset.
    #[must_use]
    pub fn new() -> Self {
        CsrFile {
            mstatus: (mstatus::FS_DIRTY << mstatus::FS_SHIFT) | mstatus::MPP_MACHINE,
            ..Self::default()
        }
    }

    /// Read a CSR. `None` means the register does not exist in this model
    /// (the hart raises an illegal-instruction trap).
    #[must_use]
    pub fn read(&self, addr: CsrAddr) -> Option<u64> {
        Some(match addr {
            csr::FFLAGS => self.fcsr & csr::fflags::MASK,
            csr::FRM => u64::from(csr::fcsr::frm(self.fcsr)),
            csr::FCSR => self.fcsr & 0xFF,
            csr::MSTATUS => {
                // SD (bit 63) summarises a dirty FS field.
                let sd = u64::from(mstatus::fs(self.mstatus) == mstatus::FS_DIRTY) << 63;
                self.mstatus | sd
            }
            csr::MISA => MISA,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MCYCLE | csr::CYCLE => self.mcycle,
            csr::MINSTRET | csr::INSTRET => self.minstret,
            csr::MHARTID => 0,
            csr::SEPC => self.sepc,
            csr::SCAUSE => self.scause,
            csr::STVAL => self.stval,
            _ => return None,
        })
    }

    /// Write a CSR, legalising WARL fields. `None` means the register does
    /// not exist or is read-only (illegal-instruction trap in the hart).
    #[must_use = "a rejected csr write must raise a trap"]
    pub fn write(&mut self, addr: CsrAddr, value: u64) -> Option<()> {
        match addr {
            csr::FFLAGS => {
                self.fcsr = (self.fcsr & !csr::fflags::MASK) | (value & csr::fflags::MASK);
            }
            csr::FRM => self.fcsr = (self.fcsr & !0xE0) | ((value & 0b111) << 5),
            csr::FCSR => self.fcsr = value & 0xFF,
            csr::MSTATUS => {
                let mask = mstatus::MIE | mstatus::MPIE | mstatus::MPP_MASK | mstatus::FS_MASK;
                self.mstatus = value & mask;
            }
            // `misa` is WARL; this model hardwires it and ignores writes.
            csr::MISA => {}
            csr::MIE => self.mie = value & mi::MASK,
            csr::MIP => self.mip = value & mi::MASK,
            // Direct mode only: the mode field is WARL-fixed to zero.
            csr::MTVEC => self.mtvec = mtvec::base(value),
            // IALIGN=32: the low two bits of an exception pc read as zero.
            csr::MEPC => self.mepc = value & !0b11,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MCYCLE => self.mcycle = value,
            csr::MINSTRET => self.minstret = value,
            csr::SEPC => self.sepc = value & !0b11,
            csr::SCAUSE => self.scause = value,
            csr::STVAL => self.stval = value,
            // cycle/instret/mhartid live in read-only address space.
            _ => return None,
        }
        Some(())
    }

    /// The dynamic rounding-mode field `fcsr.frm`.
    #[must_use]
    pub fn frm(&self) -> u8 {
        csr::fcsr::frm(self.fcsr)
    }

    /// Accrue floating-point exception flags (bitwise OR into `fflags`).
    pub fn accrue_fflags(&mut self, flags: u64) {
        self.fcsr |= flags & csr::fflags::MASK;
    }

    /// True when `mstatus.FS` is off, i.e. FP instructions must trap.
    #[must_use]
    pub fn fp_off(&self) -> bool {
        mstatus::fs(self.mstatus) == mstatus::FS_OFF
    }

    /// Mark the FP unit state dirty (after any FP register or `fcsr`
    /// write).
    pub fn set_fp_dirty(&mut self) {
        self.mstatus |= mstatus::FS_DIRTY << mstatus::FS_SHIFT;
    }

    /// Record trap entry: stash the interrupt-enable bit, save `pc` and
    /// cause, and return the trap-handler address.
    pub fn enter_trap(&mut self, pc: u64, cause: u64, tval: u64) -> u64 {
        let mie = self.mstatus & mstatus::MIE;
        self.mstatus &= !(mstatus::MIE | mstatus::MPIE | mstatus::MPP_MASK);
        // MPIE <- MIE, MIE <- 0, MPP <- machine.
        self.mstatus |= (mie << 4) | mstatus::MPP_MACHINE;
        self.mepc = pc & !0b11;
        self.mcause = cause;
        self.mtval = tval;
        mtvec::base(self.mtvec)
    }

    /// Advance the cycle counter (called once per step).
    pub fn bump_cycle(&mut self) {
        self.mcycle = self.mcycle.wrapping_add(1);
    }

    /// Advance the retired-instruction counter.
    pub fn bump_instret(&mut self) {
        self.minstret = self.minstret.wrapping_add(1);
    }

    fn digest_into(&self, fnv: &mut Fnv) {
        for value in [
            self.fcsr,
            self.mstatus,
            self.mie,
            self.mip,
            self.mtvec,
            self.mepc,
            self.mcause,
            self.mtval,
            self.sepc,
            self.scause,
            self.stval,
        ] {
            fnv.write_u64(value);
        }
    }
}

/// The complete architectural register state of one hart.
#[derive(Debug, Clone)]
pub struct ArchState {
    pc: u64,
    gprs: [u64; 32],
    fprs: [u64; 32],
    csrs: CsrFile,
    // Dirty-flag digest cache: `None` after any mutation, `Some` once
    // [`ArchState::digest`] has recomputed. `Cell` keeps `digest(&self)`
    // on the `Dut` contract.
    digest_cache: Cell<Option<u64>>,
}

impl PartialEq for ArchState {
    fn eq(&self, other: &Self) -> bool {
        // The digest cache is bookkeeping, not architectural state.
        self.pc == other.pc
            && self.gprs == other.gprs
            && self.fprs == other.fprs
            && self.csrs == other.csrs
    }
}

impl Eq for ArchState {}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Reset state: `pc` and every register zero, CSRs at their reset
    /// values.
    #[must_use]
    pub fn new() -> Self {
        ArchState {
            pc: 0,
            gprs: [0; 32],
            fprs: [0; 32],
            csrs: CsrFile::new(),
            digest_cache: Cell::new(None),
        }
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
        self.digest_cache.set(None);
    }

    /// Read an integer register; `x0` always reads zero.
    #[must_use]
    pub fn x(&self, reg: Gpr) -> u64 {
        self.gprs[usize::from(reg.index())]
    }

    /// Write an integer register; writes to `x0` are discarded.
    pub fn set_x(&mut self, reg: Gpr, value: u64) {
        if !reg.is_zero() {
            self.gprs[usize::from(reg.index())] = value;
            self.digest_cache.set(None);
        }
    }

    /// Read the raw 64-bit contents of an FP register.
    #[must_use]
    pub fn f_bits(&self, reg: Fpr) -> u64 {
        self.fprs[usize::from(reg.index())]
    }

    /// Write the raw 64-bit contents of an FP register.
    pub fn set_f_bits(&mut self, reg: Fpr, bits: u64) {
        self.fprs[usize::from(reg.index())] = bits;
        self.csrs.set_fp_dirty();
        self.digest_cache.set(None);
    }

    /// Read an FP register as a double-precision value.
    #[must_use]
    pub fn f64(&self, reg: Fpr) -> f64 {
        f64::from_bits(self.f_bits(reg))
    }

    /// Write a double-precision value to an FP register.
    pub fn set_f64(&mut self, reg: Fpr, value: f64) {
        self.set_f_bits(reg, value.to_bits());
    }

    /// Read an FP register as a single-precision value, unboxing the
    /// NaN-boxed representation: an improperly boxed value reads as the
    /// canonical NaN, as the F extension requires.
    #[must_use]
    pub fn f32(&self, reg: Fpr) -> f32 {
        let bits = self.f_bits(reg);
        if bits & NAN_BOX == NAN_BOX {
            f32::from_bits(bits as u32)
        } else {
            f32::from_bits(CANONICAL_NAN_F32)
        }
    }

    /// Write a single-precision value to an FP register, NaN-boxing it.
    pub fn set_f32(&mut self, reg: Fpr, value: f32) {
        self.set_f_bits(reg, NAN_BOX | u64::from(value.to_bits()));
    }

    /// The CSR file.
    #[must_use]
    pub fn csrs(&self) -> &CsrFile {
        &self.csrs
    }

    /// The CSR file, mutably. Conservatively invalidates the cached
    /// digest: the caller may mutate any CSR through the returned
    /// reference.
    pub fn csrs_mut(&mut self) -> &mut CsrFile {
        self.digest_cache.set(None);
        &mut self.csrs
    }

    /// Advance the cycle counter without invalidating the cached digest —
    /// the free-running counters are deliberately excluded from
    /// [`ArchState::digest`], so bumping them cannot change it.
    pub fn bump_cycle(&mut self) {
        self.csrs.bump_cycle();
    }

    /// Advance the retired-instruction counter; like
    /// [`ArchState::bump_cycle`], digest-neutral by construction.
    pub fn bump_instret(&mut self) {
        self.csrs.bump_instret();
    }

    /// Deterministic FNV-1a digest of the complete register state: `pc`,
    /// both register files and every CSR except the free-running counters
    /// (`mcycle`/`minstret`), which differ between equal executions that
    /// merely idled differently.
    ///
    /// The result is cached behind a dirty flag: repeated calls with no
    /// intervening mutation return the cached value without re-hashing.
    #[must_use]
    pub fn digest(&self) -> u64 {
        if let Some(cached) = self.digest_cache.get() {
            debug_assert_eq!(
                cached,
                self.digest_uncached(),
                "cached register digest diverged from recomputation"
            );
            return cached;
        }
        let digest = self.digest_uncached();
        self.digest_cache.set(Some(digest));
        digest
    }

    /// The digest [`ArchState::digest`] would return, always recomputed —
    /// the correctness oracle for the cached path.
    #[must_use]
    pub fn digest_uncached(&self) -> u64 {
        let mut fnv = Fnv::new();
        fnv.write_u64(self.pc);
        for value in self.gprs.iter().chain(self.fprs.iter()) {
            fnv.write_u64(*value);
        }
        self.csrs.digest_into(&mut fnv);
        fnv.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new();
        s.set_x(Gpr::ZERO, 0xDEAD);
        assert_eq!(s.x(Gpr::ZERO), 0);
        s.set_x(x(5), 0xDEAD);
        assert_eq!(s.x(x(5)), 0xDEAD);
    }

    #[test]
    fn f32_nan_boxing_round_trips() {
        let mut s = ArchState::new();
        s.set_f32(f(1), 1.5);
        assert_eq!(s.f32(f(1)), 1.5);
        assert_eq!(s.f_bits(f(1)) >> 32, 0xFFFF_FFFF);
        // An improperly boxed value unboxes to the canonical NaN.
        s.set_f_bits(f(2), 0x0000_0001_3F80_0000);
        assert!(s.f32(f(2)).is_nan());
        assert_eq!(s.f32(f(2)).to_bits(), CANONICAL_NAN_F32);
    }

    #[test]
    fn fcsr_views_are_consistent() {
        let mut c = CsrFile::new();
        c.write(csr::FRM, 0b010).unwrap();
        c.accrue_fflags(csr::fflags::NX | csr::fflags::OF);
        assert_eq!(c.read(csr::FRM), Some(0b010));
        assert_eq!(c.read(csr::FFLAGS), Some(csr::fflags::NX | csr::fflags::OF));
        assert_eq!(c.read(csr::FCSR), Some(0b010 << 5 | 0b101));
        c.write(csr::FCSR, 0xFF).unwrap();
        assert_eq!(c.read(csr::FRM), Some(0b111));
        assert_eq!(c.read(csr::FFLAGS), Some(0x1F));
    }

    #[test]
    fn warl_fields_are_legalised() {
        let mut c = CsrFile::new();
        c.write(csr::MTVEC, 0x1003).unwrap();
        assert_eq!(c.read(csr::MTVEC), Some(0x1000));
        c.write(csr::MEPC, 0x2002).unwrap();
        assert_eq!(c.read(csr::MEPC), Some(0x2000));
        c.write(csr::MIE, u64::MAX).unwrap();
        assert_eq!(c.read(csr::MIE), Some(mi::MASK));
    }

    #[test]
    fn read_only_and_missing_csrs_are_rejected() {
        let mut c = CsrFile::new();
        assert_eq!(c.read(csr::MHARTID), Some(0));
        assert!(c.write(csr::MHARTID, 1).is_none());
        assert!(c.write(csr::CYCLE, 1).is_none());
        let unknown = CsrAddr::new(0x7C0).unwrap();
        assert!(c.read(unknown).is_none());
        assert!(c.write(unknown, 0).is_none());
        // misa writes are ignored, not trapped.
        assert!(c.write(csr::MISA, 0).is_some());
        assert_eq!(c.read(csr::MISA), Some(MISA));
    }

    #[test]
    fn trap_entry_updates_machine_state() {
        let mut c = CsrFile::new();
        c.write(csr::MTVEC, 0x800).unwrap();
        c.write(csr::MSTATUS, mstatus::MIE).unwrap();
        let handler = c.enter_trap(0x104, 2, 0xBAD);
        assert_eq!(handler, 0x800);
        assert_eq!(c.read(csr::MEPC), Some(0x104));
        assert_eq!(c.read(csr::MCAUSE), Some(2));
        assert_eq!(c.read(csr::MTVAL), Some(0xBAD));
        let status = c.read(csr::MSTATUS).unwrap();
        assert_eq!(status & mstatus::MIE, 0);
        assert_ne!(status & mstatus::MPIE, 0);
        assert_eq!(status & mstatus::MPP_MASK, mstatus::MPP_MACHINE);
    }

    #[test]
    fn digest_ignores_counters_but_sees_registers() {
        let mut a = ArchState::new();
        let b = ArchState::new();
        a.csrs_mut().bump_cycle();
        a.csrs_mut().bump_instret();
        assert_eq!(a.digest(), b.digest());
        a.set_x(x(1), 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn cached_digest_tracks_every_mutation_path() {
        let mut s = ArchState::new();
        let initial = s.digest();
        assert_eq!(s.digest(), initial, "cached repeat");
        s.set_pc(4);
        assert_ne!(s.digest(), initial, "set_pc invalidates");
        let after_pc = s.digest();
        s.set_x(x(3), 9);
        assert_ne!(s.digest(), after_pc, "set_x invalidates");
        let after_x = s.digest();
        s.set_f_bits(f(3), 9);
        assert_ne!(s.digest(), after_x, "set_f_bits invalidates");
        let after_f = s.digest();
        s.csrs_mut().write(csr::MTVEC, 0x1000).unwrap();
        assert_ne!(s.digest(), after_f, "csrs_mut invalidates");
        // Counter bumps are digest-neutral and must not spoil the cache.
        let before_bump = s.digest();
        s.bump_cycle();
        s.bump_instret();
        assert_eq!(s.digest(), before_bump);
        assert_eq!(s.digest(), s.digest_uncached());
        // A clone (cache included) and an equality check stay honest.
        let t = s.clone();
        assert_eq!(t.digest(), s.digest());
        assert_eq!(t, s);
        assert_eq!(s.digest(), s.digest_uncached());
    }

    #[test]
    fn mstatus_sd_summarises_fs() {
        let mut c = CsrFile::new();
        assert_ne!(c.read(csr::MSTATUS).unwrap() >> 63, 0);
        c.write(csr::MSTATUS, mstatus::FS_CLEAN << mstatus::FS_SHIFT)
            .unwrap();
        assert_eq!(c.read(csr::MSTATUS).unwrap() >> 63, 0);
        assert!(!c.fp_off());
        c.write(csr::MSTATUS, 0).unwrap();
        assert!(c.fp_off());
    }
}
