//! Architectural state: program counter, register files and CSRs.

use std::cell::{Cell, RefCell};

use tf_riscv::csr::{self, mi, mstatus, mtvec, CsrAddr};
use tf_riscv::{Fpr, Gpr};

use crate::digest::{DeferredFold, WideFnv};

/// `misa` for this model: RV64 (MXL=2) with the I, M, A, F, D extensions.
pub const MISA: u64 = (2 << 62) | (1 << 0) | (1 << 3) | (1 << 5) | (1 << 8) | (1 << 12);

/// All-ones upper half used to NaN-box single-precision values in the
/// 64-bit FP registers.
const NAN_BOX: u64 = 0xFFFF_FFFF_0000_0000;

/// Bit pattern of the canonical single-precision quiet NaN.
pub const CANONICAL_NAN_F32: u32 = 0x7FC0_0000;

/// The machine-mode control-and-status-register file.
///
/// Only the CSRs in [`tf_riscv::csr::ALL`] exist; accesses to any other
/// address are reported as `None` and become illegal-instruction traps in
/// the hart. WARL fields are legalised on write exactly once, here, so
/// every stored value is architecturally valid.
#[derive(Debug, Clone, Default)]
pub struct CsrFile {
    fcsr: u64,
    mstatus: u64,
    mie: u64,
    mip: u64,
    mtvec: u64,
    mepc: u64,
    mcause: u64,
    mtval: u64,
    mcycle: u64,
    minstret: u64,
    sepc: u64,
    scause: u64,
    stval: u64,
    // Cumulative fold of every architectural mutation since reset (see
    // [`ArchState::write_history`]); bookkeeping, not state. Deferred:
    // per-write folds land in a small buffer and amortize at digest time.
    history: DeferredFold,
}

/// History-fold tag for [`CsrFile::accrue_fflags`]; outside the 12-bit
/// CSR address space so it cannot collide with a [`CsrFile::write`].
const HISTORY_ACCRUE: u64 = 0x1_0000;
/// History-fold tag for [`CsrFile::set_fp_dirty`].
const HISTORY_FP_DIRTY: u64 = 0x2_0000;
/// History-fold tag for [`CsrFile::enter_trap`].
const HISTORY_TRAP: u64 = 0x3_0000;

impl PartialEq for CsrFile {
    fn eq(&self, other: &Self) -> bool {
        // The write history is bookkeeping, not architectural state.
        self.fcsr == other.fcsr
            && self.mstatus == other.mstatus
            && self.mie == other.mie
            && self.mip == other.mip
            && self.mtvec == other.mtvec
            && self.mepc == other.mepc
            && self.mcause == other.mcause
            && self.mtval == other.mtval
            && self.mcycle == other.mcycle
            && self.minstret == other.minstret
            && self.sepc == other.sepc
            && self.scause == other.scause
            && self.stval == other.stval
    }
}

impl Eq for CsrFile {}

impl CsrFile {
    /// Reset state: everything zero except `mstatus.FS`, which starts
    /// dirty so floating-point instructions work out of reset.
    #[must_use]
    pub fn new() -> Self {
        CsrFile {
            mstatus: (mstatus::FS_DIRTY << mstatus::FS_SHIFT) | mstatus::MPP_MACHINE,
            ..Self::default()
        }
    }

    /// Read a CSR. `None` means the register does not exist in this model
    /// (the hart raises an illegal-instruction trap).
    #[must_use]
    pub fn read(&self, addr: CsrAddr) -> Option<u64> {
        Some(match addr {
            csr::FFLAGS => self.fcsr & csr::fflags::MASK,
            csr::FRM => u64::from(csr::fcsr::frm(self.fcsr)),
            csr::FCSR => self.fcsr & 0xFF,
            csr::MSTATUS => {
                // SD (bit 63) summarises a dirty FS field.
                let sd = u64::from(mstatus::fs(self.mstatus) == mstatus::FS_DIRTY) << 63;
                self.mstatus | sd
            }
            csr::MISA => MISA,
            csr::MIE => self.mie,
            csr::MIP => self.mip,
            csr::MTVEC => self.mtvec,
            csr::MEPC => self.mepc,
            csr::MCAUSE => self.mcause,
            csr::MTVAL => self.mtval,
            csr::MCYCLE | csr::CYCLE => self.mcycle,
            csr::MINSTRET | csr::INSTRET => self.minstret,
            csr::MHARTID => 0,
            csr::SEPC => self.sepc,
            csr::SCAUSE => self.scause,
            csr::STVAL => self.stval,
            _ => return None,
        })
    }

    /// Write a CSR, legalising WARL fields. `None` means the register does
    /// not exist or is read-only (illegal-instruction trap in the hart).
    #[must_use = "a rejected csr write must raise a trap"]
    pub fn write(&mut self, addr: CsrAddr, value: u64) -> Option<()> {
        self.history.write_u64(u64::from(addr.value()));
        self.history.write_u64(value);
        match addr {
            csr::FFLAGS => {
                self.fcsr = (self.fcsr & !csr::fflags::MASK) | (value & csr::fflags::MASK);
            }
            csr::FRM => self.fcsr = (self.fcsr & !0xE0) | ((value & 0b111) << 5),
            csr::FCSR => self.fcsr = value & 0xFF,
            csr::MSTATUS => {
                let mask = mstatus::MIE | mstatus::MPIE | mstatus::MPP_MASK | mstatus::FS_MASK;
                self.mstatus = value & mask;
            }
            // `misa` is WARL; this model hardwires it and ignores writes.
            csr::MISA => {}
            csr::MIE => self.mie = value & mi::MASK,
            csr::MIP => self.mip = value & mi::MASK,
            // Direct mode only: the mode field is WARL-fixed to zero.
            csr::MTVEC => self.mtvec = mtvec::base(value),
            // IALIGN=32: the low two bits of an exception pc read as zero.
            csr::MEPC => self.mepc = value & !0b11,
            csr::MCAUSE => self.mcause = value,
            csr::MTVAL => self.mtval = value,
            csr::MCYCLE => self.mcycle = value,
            csr::MINSTRET => self.minstret = value,
            csr::SEPC => self.sepc = value & !0b11,
            csr::SCAUSE => self.scause = value,
            csr::STVAL => self.stval = value,
            // cycle/instret/mhartid live in read-only address space.
            _ => return None,
        }
        Some(())
    }

    /// The dynamic rounding-mode field `fcsr.frm`.
    #[must_use]
    pub fn frm(&self) -> u8 {
        csr::fcsr::frm(self.fcsr)
    }

    /// Accrue floating-point exception flags (bitwise OR into `fflags`).
    pub fn accrue_fflags(&mut self, flags: u64) {
        self.history.write_u64(HISTORY_ACCRUE);
        self.history.write_u64(flags);
        self.fcsr |= flags & csr::fflags::MASK;
    }

    /// True when `mstatus.FS` is off, i.e. FP instructions must trap.
    #[must_use]
    pub fn fp_off(&self) -> bool {
        mstatus::fs(self.mstatus) == mstatus::FS_OFF
    }

    /// Mark the FP unit state dirty (after any FP register or `fcsr`
    /// write).
    pub fn set_fp_dirty(&mut self) {
        self.history.write_u64(HISTORY_FP_DIRTY);
        self.mstatus |= mstatus::FS_DIRTY << mstatus::FS_SHIFT;
    }

    /// Record trap entry: stash the interrupt-enable bit, save `pc` and
    /// cause, and return the trap-handler address.
    pub fn enter_trap(&mut self, pc: u64, cause: u64, tval: u64) -> u64 {
        self.history.write_u64(HISTORY_TRAP);
        self.history.write_u64(pc);
        self.history.write_u64(cause);
        self.history.write_u64(tval);
        let mie = self.mstatus & mstatus::MIE;
        self.mstatus &= !(mstatus::MIE | mstatus::MPIE | mstatus::MPP_MASK);
        // MPIE <- MIE, MIE <- 0, MPP <- machine.
        self.mstatus |= (mie << 4) | mstatus::MPP_MACHINE;
        self.mepc = pc & !0b11;
        self.mcause = cause;
        self.mtval = tval;
        mtvec::base(self.mtvec)
    }

    /// Advance the cycle counter (called once per step).
    pub fn bump_cycle(&mut self) {
        self.mcycle = self.mcycle.wrapping_add(1);
    }

    /// Advance the retired-instruction counter.
    pub fn bump_instret(&mut self) {
        self.minstret = self.minstret.wrapping_add(1);
    }

    /// The cumulative fold of every architectural mutation made through
    /// this file since reset — the CSR slice of
    /// [`ArchState::write_history`]. The free-running counter bumps are
    /// excluded, mirroring their exclusion from the digest.
    #[must_use]
    pub fn write_history(&self) -> u64 {
        self.history.finish()
    }

    fn digest_into(&self, fnv: &mut WideFnv) {
        for value in [
            self.fcsr,
            self.mstatus,
            self.mie,
            self.mip,
            self.mtvec,
            self.mepc,
            self.mcause,
            self.mtval,
            self.sepc,
            self.scause,
            self.stval,
        ] {
            fnv.write_u64(value);
        }
    }
}

/// Digest slot index of the program counter; integer registers occupy
/// slots 1..=31 (`x0` has no slot — it is constant zero) and FP
/// registers slots 32..=63.
const SLOT_PC: u8 = 0;
/// Digest slot of FP register `f0`.
const SLOT_F0: u8 = 32;

/// The complete architectural register state of one hart.
#[derive(Debug, Clone)]
pub struct ArchState {
    pc: u64,
    gprs: [u64; 32],
    fprs: [u64; 32],
    csrs: CsrFile,
    // Incremental digest bookkeeping, not architectural state. The
    // register digest is an XOR of per-slot hashes, maintained lazily:
    // every write records the slot's pre-write value (first write per
    // slot only, deduplicated by `pending_mask`), and `digest()` folds
    // the old value out and the current one in — so a digest sample
    // costs only the registers actually written since the last sample.
    // `Cell`/`RefCell` keep `digest(&self)` on the `Dut` contract.
    reg_acc: Cell<u64>,
    pending: RefCell<Vec<(u8, u64)>>,
    pending_mask: Cell<u64>,
    // The CSR file is one coarse slot: few instructions touch it, and a
    // whole-file refold is 11 xor-multiply rounds.
    csr_hash: Cell<u64>,
    csr_dirty: Cell<bool>,
    // Cumulative fold of every register write since reset (see
    // [`ArchState::write_history`]); bookkeeping, not state. Deferred:
    // per-write folds land in a small buffer and amortize at digest time.
    history: DeferredFold,
}

impl PartialEq for ArchState {
    fn eq(&self, other: &Self) -> bool {
        // The digest cache is bookkeeping, not architectural state.
        self.pc == other.pc
            && self.gprs == other.gprs
            && self.fprs == other.fprs
            && self.csrs == other.csrs
    }
}

impl Eq for ArchState {}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// Reset state: `pc` and every register zero, CSRs at their reset
    /// values.
    #[must_use]
    pub fn new() -> Self {
        let state = ArchState {
            pc: 0,
            gprs: [0; 32],
            fprs: [0; 32],
            csrs: CsrFile::new(),
            reg_acc: Cell::new(0),
            pending: RefCell::new(Vec::new()),
            pending_mask: Cell::new(0),
            csr_hash: Cell::new(0),
            csr_dirty: Cell::new(true),
            history: DeferredFold::new(),
        };
        state.reg_acc.set(state.reg_acc_from_scratch());
        state
    }

    /// The program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Set the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.note_write(SLOT_PC, self.pc);
        self.history.write_u64(u64::from(SLOT_PC));
        self.history.write_u64(pc);
        self.pc = pc;
    }

    /// Read an integer register; `x0` always reads zero.
    #[must_use]
    pub fn x(&self, reg: Gpr) -> u64 {
        self.gprs[usize::from(reg.index())]
    }

    /// Write an integer register; writes to `x0` are discarded.
    pub fn set_x(&mut self, reg: Gpr, value: u64) {
        if !reg.is_zero() {
            let index = usize::from(reg.index());
            self.note_write(reg.index(), self.gprs[index]);
            self.history.write_u64(u64::from(reg.index()));
            self.history.write_u64(value);
            self.gprs[index] = value;
        }
    }

    /// Read the raw 64-bit contents of an FP register.
    #[must_use]
    pub fn f_bits(&self, reg: Fpr) -> u64 {
        self.fprs[usize::from(reg.index())]
    }

    /// Write the raw 64-bit contents of an FP register.
    pub fn set_f_bits(&mut self, reg: Fpr, bits: u64) {
        let index = usize::from(reg.index());
        self.note_write(SLOT_F0 + reg.index(), self.fprs[index]);
        self.history.write_u64(u64::from(SLOT_F0 + reg.index()));
        self.history.write_u64(bits);
        self.fprs[index] = bits;
        // `set_fp_dirty` mutates `mstatus.FS`, so the CSR slot moves too.
        self.csrs.set_fp_dirty();
        self.csr_dirty.set(true);
    }

    /// Read an FP register as a double-precision value.
    #[must_use]
    pub fn f64(&self, reg: Fpr) -> f64 {
        f64::from_bits(self.f_bits(reg))
    }

    /// Write a double-precision value to an FP register.
    pub fn set_f64(&mut self, reg: Fpr, value: f64) {
        self.set_f_bits(reg, value.to_bits());
    }

    /// Read an FP register as a single-precision value, unboxing the
    /// NaN-boxed representation: an improperly boxed value reads as the
    /// canonical NaN, as the F extension requires.
    #[must_use]
    pub fn f32(&self, reg: Fpr) -> f32 {
        let bits = self.f_bits(reg);
        if bits & NAN_BOX == NAN_BOX {
            f32::from_bits(bits as u32)
        } else {
            f32::from_bits(CANONICAL_NAN_F32)
        }
    }

    /// Write a single-precision value to an FP register, NaN-boxing it.
    pub fn set_f32(&mut self, reg: Fpr, value: f32) {
        self.set_f_bits(reg, NAN_BOX | u64::from(value.to_bits()));
    }

    /// The CSR file.
    #[must_use]
    pub fn csrs(&self) -> &CsrFile {
        &self.csrs
    }

    /// The CSR file, mutably. Conservatively marks the CSR digest slot
    /// dirty: the caller may mutate any CSR through the returned
    /// reference.
    pub fn csrs_mut(&mut self) -> &mut CsrFile {
        self.csr_dirty.set(true);
        &mut self.csrs
    }

    /// Advance the cycle counter without invalidating the cached digest —
    /// the free-running counters are deliberately excluded from
    /// [`ArchState::digest`], so bumping them cannot change it.
    pub fn bump_cycle(&mut self) {
        self.csrs.bump_cycle();
    }

    /// Advance the retired-instruction counter; like
    /// [`ArchState::bump_cycle`], digest-neutral by construction.
    pub fn bump_instret(&mut self) {
        self.csrs.bump_instret();
    }

    /// Deterministic digest of the complete register state: `pc`, both
    /// register files and every CSR except the free-running counters
    /// (`mcycle`/`minstret`), which differ between equal executions that
    /// merely idled differently.
    ///
    /// The scheme (digest generation `v2`, see
    /// [`STABILITY_FINGERPRINT`](crate::digest::STABILITY_FINGERPRINT)):
    /// each register slot hashes to a per-slot [`WideFnv`] of `(slot,
    /// value)`, the slots XOR together (so one changed register refolds
    /// in O(1)), the CSR file folds as one [`WideFnv`] slot, and the two
    /// accumulators combine through a final [`WideFnv`]. The cost of a
    /// call is proportional to the registers *written since the previous
    /// call* — the retiring window's defs — not to the register file.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut acc = self.reg_acc.get();
        {
            let mut pending = self.pending.borrow_mut();
            if !pending.is_empty() {
                for (slot, old) in pending.drain(..) {
                    acc ^=
                        Self::slot_hash(slot, old) ^ Self::slot_hash(slot, self.slot_value(slot));
                }
                self.reg_acc.set(acc);
                self.pending_mask.set(0);
            }
        }
        if self.csr_dirty.get() {
            let mut fnv = WideFnv::new();
            self.csrs.digest_into(&mut fnv);
            self.csr_hash.set(fnv.finish());
            self.csr_dirty.set(false);
        }
        let mut fnv = WideFnv::new();
        fnv.write_u64(acc);
        fnv.write_u64(self.csr_hash.get());
        let digest = fnv.finish();
        debug_assert_eq!(
            digest,
            self.digest_uncached(),
            "incremental register digest diverged from recomputation"
        );
        digest
    }

    /// Cumulative fold of every architectural *write* since reset: each
    /// register write folds its slot and new value, and every CSR
    /// mutation folds through the [`CsrFile`]'s own accumulator
    /// ([`CsrFile::write_history`]). Unlike [`ArchState::digest`], which
    /// fingerprints the state a device *reached*, the history
    /// fingerprints the path it took — two devices whose states diverged
    /// and then reconverged share a digest but never a history. The
    /// windowed differential engine folds this into every batch sample
    /// (see [`fold_sample`](crate::fold_sample)) precisely so transient
    /// divergences inside a window cannot escape detection. The
    /// free-running counter bumps are excluded, mirroring their
    /// exclusion from the digest.
    #[must_use]
    pub fn write_history(&self) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(self.history.finish());
        fnv.write_u64(self.csrs.write_history());
        fnv.finish()
    }

    /// The digest [`ArchState::digest`] would return, always recomputed
    /// from every slot — the correctness oracle for the incremental path.
    #[must_use]
    pub fn digest_uncached(&self) -> u64 {
        let mut fnv = WideFnv::new();
        self.csrs.digest_into(&mut fnv);
        let mut combined = WideFnv::new();
        combined.write_u64(self.reg_acc_from_scratch());
        combined.write_u64(fnv.finish());
        combined.finish()
    }

    /// The hash one register slot contributes to the digest's XOR
    /// accumulator.
    fn slot_hash(slot: u8, value: u64) -> u64 {
        let mut fnv = WideFnv::new();
        fnv.write_u64(u64::from(slot));
        fnv.write_u64(value);
        fnv.finish()
    }

    /// The current value of a digest slot.
    fn slot_value(&self, slot: u8) -> u64 {
        match slot {
            SLOT_PC => self.pc,
            1..=31 => self.gprs[usize::from(slot)],
            _ => self.fprs[usize::from(slot - SLOT_F0)],
        }
    }

    /// Record a slot's pre-write value so the next [`ArchState::digest`]
    /// can fold the old hash out and the new one in. Only the first
    /// write per slot between digests is recorded.
    fn note_write(&mut self, slot: u8, old: u64) {
        let bit = 1u64 << slot;
        let mask = self.pending_mask.get();
        if mask & bit == 0 {
            self.pending_mask.set(mask | bit);
            self.pending.get_mut().push((slot, old));
        }
    }

    /// The register XOR accumulator recomputed over every slot.
    fn reg_acc_from_scratch(&self) -> u64 {
        let mut acc = Self::slot_hash(SLOT_PC, self.pc);
        for (i, value) in self.gprs.iter().enumerate().skip(1) {
            acc ^= Self::slot_hash(i as u8, *value);
        }
        for (i, value) in self.fprs.iter().enumerate() {
            acc ^= Self::slot_hash(SLOT_F0 + i as u8, *value);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut s = ArchState::new();
        s.set_x(Gpr::ZERO, 0xDEAD);
        assert_eq!(s.x(Gpr::ZERO), 0);
        s.set_x(x(5), 0xDEAD);
        assert_eq!(s.x(x(5)), 0xDEAD);
    }

    #[test]
    fn f32_nan_boxing_round_trips() {
        let mut s = ArchState::new();
        s.set_f32(f(1), 1.5);
        assert_eq!(s.f32(f(1)), 1.5);
        assert_eq!(s.f_bits(f(1)) >> 32, 0xFFFF_FFFF);
        // An improperly boxed value unboxes to the canonical NaN.
        s.set_f_bits(f(2), 0x0000_0001_3F80_0000);
        assert!(s.f32(f(2)).is_nan());
        assert_eq!(s.f32(f(2)).to_bits(), CANONICAL_NAN_F32);
    }

    #[test]
    fn fcsr_views_are_consistent() {
        let mut c = CsrFile::new();
        c.write(csr::FRM, 0b010).unwrap();
        c.accrue_fflags(csr::fflags::NX | csr::fflags::OF);
        assert_eq!(c.read(csr::FRM), Some(0b010));
        assert_eq!(c.read(csr::FFLAGS), Some(csr::fflags::NX | csr::fflags::OF));
        assert_eq!(c.read(csr::FCSR), Some(0b010 << 5 | 0b101));
        c.write(csr::FCSR, 0xFF).unwrap();
        assert_eq!(c.read(csr::FRM), Some(0b111));
        assert_eq!(c.read(csr::FFLAGS), Some(0x1F));
    }

    #[test]
    fn warl_fields_are_legalised() {
        let mut c = CsrFile::new();
        c.write(csr::MTVEC, 0x1003).unwrap();
        assert_eq!(c.read(csr::MTVEC), Some(0x1000));
        c.write(csr::MEPC, 0x2002).unwrap();
        assert_eq!(c.read(csr::MEPC), Some(0x2000));
        c.write(csr::MIE, u64::MAX).unwrap();
        assert_eq!(c.read(csr::MIE), Some(mi::MASK));
    }

    #[test]
    fn read_only_and_missing_csrs_are_rejected() {
        let mut c = CsrFile::new();
        assert_eq!(c.read(csr::MHARTID), Some(0));
        assert!(c.write(csr::MHARTID, 1).is_none());
        assert!(c.write(csr::CYCLE, 1).is_none());
        let unknown = CsrAddr::new(0x7C0).unwrap();
        assert!(c.read(unknown).is_none());
        assert!(c.write(unknown, 0).is_none());
        // misa writes are ignored, not trapped.
        assert!(c.write(csr::MISA, 0).is_some());
        assert_eq!(c.read(csr::MISA), Some(MISA));
    }

    #[test]
    fn trap_entry_updates_machine_state() {
        let mut c = CsrFile::new();
        c.write(csr::MTVEC, 0x800).unwrap();
        c.write(csr::MSTATUS, mstatus::MIE).unwrap();
        let handler = c.enter_trap(0x104, 2, 0xBAD);
        assert_eq!(handler, 0x800);
        assert_eq!(c.read(csr::MEPC), Some(0x104));
        assert_eq!(c.read(csr::MCAUSE), Some(2));
        assert_eq!(c.read(csr::MTVAL), Some(0xBAD));
        let status = c.read(csr::MSTATUS).unwrap();
        assert_eq!(status & mstatus::MIE, 0);
        assert_ne!(status & mstatus::MPIE, 0);
        assert_eq!(status & mstatus::MPP_MASK, mstatus::MPP_MACHINE);
    }

    #[test]
    fn digest_ignores_counters_but_sees_registers() {
        let mut a = ArchState::new();
        let b = ArchState::new();
        a.csrs_mut().bump_cycle();
        a.csrs_mut().bump_instret();
        assert_eq!(a.digest(), b.digest());
        a.set_x(x(1), 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn cached_digest_tracks_every_mutation_path() {
        let mut s = ArchState::new();
        let initial = s.digest();
        assert_eq!(s.digest(), initial, "cached repeat");
        s.set_pc(4);
        assert_ne!(s.digest(), initial, "set_pc invalidates");
        let after_pc = s.digest();
        s.set_x(x(3), 9);
        assert_ne!(s.digest(), after_pc, "set_x invalidates");
        let after_x = s.digest();
        s.set_f_bits(f(3), 9);
        assert_ne!(s.digest(), after_x, "set_f_bits invalidates");
        let after_f = s.digest();
        s.csrs_mut().write(csr::MTVEC, 0x1000).unwrap();
        assert_ne!(s.digest(), after_f, "csrs_mut invalidates");
        // Counter bumps are digest-neutral and must not spoil the cache.
        let before_bump = s.digest();
        s.bump_cycle();
        s.bump_instret();
        assert_eq!(s.digest(), before_bump);
        assert_eq!(s.digest(), s.digest_uncached());
        // A clone (cache included) and an equality check stay honest.
        let t = s.clone();
        assert_eq!(t.digest(), s.digest());
        assert_eq!(t, s);
        assert_eq!(s.digest(), s.digest_uncached());
    }

    #[test]
    fn incremental_digest_is_path_independent() {
        // Equal states digest equally no matter how many writes, in what
        // order, or how many digest calls happened along the way.
        let mut a = ArchState::new();
        let mut b = ArchState::new();
        a.set_x(x(1), 7);
        a.set_x(x(2), 9);
        let _ = a.digest(); // settle mid-way on one side only
        a.set_x(x(1), 1);
        a.set_x(x(1), 3); // repeated writes to one slot coalesce
        b.set_x(x(2), 9);
        b.set_x(x(1), 3);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest_uncached());
        // Writing a value back leaves the digest unchanged (mstatus.FS
        // is already dirty out of reset, so `set_f_bits` adds nothing).
        let before = a.digest();
        a.set_f_bits(f(4), 0xAB);
        a.set_f_bits(f(4), 0);
        assert_eq!(a.digest(), before);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn write_history_is_path_sensitive_where_the_digest_is_not() {
        // Two states that diverge and reconverge share a digest but
        // never a history — the property windowed sampling relies on.
        let mut a = ArchState::new();
        let b = ArchState::new();
        assert_eq!(a.write_history(), b.write_history());
        a.set_x(x(1), 7);
        a.set_x(x(1), 0); // back to the reset value
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.write_history(), b.write_history());
        // CSR mutations flow into the history too, including transient
        // ones; counter bumps stay excluded like they are from digests.
        let mut c = ArchState::new();
        let before = c.write_history();
        c.csrs_mut().accrue_fflags(csr::fflags::NX);
        c.csrs_mut().write(csr::FFLAGS, 0).unwrap();
        assert_eq!(c.digest(), ArchState::new().digest());
        assert_ne!(c.write_history(), before);
        let mut d = ArchState::new();
        d.bump_cycle();
        d.bump_instret();
        assert_eq!(d.write_history(), ArchState::new().write_history());
        // Identical write sequences fold identically.
        let mut e = ArchState::new();
        let mut g = ArchState::new();
        e.set_pc(8);
        e.set_f_bits(f(2), 3);
        g.set_pc(8);
        g.set_f_bits(f(2), 3);
        assert_eq!(e.write_history(), g.write_history());
    }

    #[test]
    fn mstatus_sd_summarises_fs() {
        let mut c = CsrFile::new();
        assert_ne!(c.read(csr::MSTATUS).unwrap() >> 63, 0);
        c.write(csr::MSTATUS, mstatus::FS_CLEAN << mstatus::FS_SHIFT)
            .unwrap();
        assert_eq!(c.read(csr::MSTATUS).unwrap() >> 63, 0);
        assert!(!c.fp_off());
        c.write(csr::MSTATUS, 0).unwrap();
        assert!(c.fp_off());
    }
}
