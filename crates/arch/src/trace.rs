//! Execution traces and state digests for differential coverage.
//!
//! The fuzzer compares a device under test against this reference model in
//! two granularities: per-run state digests (cheap, always on) and
//! per-instruction [`ExecutionTrace`] entries (opt-in, for bug-scenario
//! localisation). Both are deterministic functions of architectural state,
//! so two runs agree exactly iff their digests agree.

use tf_riscv::{Instruction, Reg};

use crate::digest::Fnv;
use crate::trap::Trap;

/// What one [`Hart::step`](crate::Hart::step) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction retired normally.
    Retired(Instruction),
    /// The instruction (or its fetch/decode) trapped; the hart has already
    /// vectored to `mtvec`.
    Trapped(Trap),
}

/// One recorded step of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// `pc` the step started at.
    pub pc: u64,
    /// The fetched machine word, when the fetch itself succeeded.
    pub word: Option<u32>,
    /// What the step did.
    pub outcome: StepOutcome,
    /// The register the instruction defined, with its post-execution
    /// value. `None` for stores, branches, traps and `x0`-writing
    /// instructions (see [`Operands::defs`](tf_riscv::Operands::defs)).
    pub def: Option<(Reg, u64)>,
}

/// An append-only log of executed steps plus a running digest.
///
/// Tracing is opt-in on the hart ([`Hart::enable_tracing`]) because the
/// 100k-instruction fuzzing sweeps only need digests, not per-step
/// storage.
///
/// [`Hart::enable_tracing`]: crate::Hart::enable_tracing
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
}

impl ExecutionTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a trace from recorded entries — how remote backends hand
    /// a deserialized trace back across the [`Dut`](crate::Dut)
    /// boundary.
    #[must_use]
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        Self { entries }
    }

    pub(crate) fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    pub(crate) fn last_mut(&mut self) -> Option<&mut TraceEntry> {
        self.entries.last_mut()
    }

    /// The recorded steps, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of recorded steps that retired (did not trap).
    #[must_use]
    pub fn retired(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, StepOutcome::Retired(_)))
            .count()
    }

    /// Deterministic FNV-1a digest over the whole trace: pc, word, trap
    /// cause and defined-register values of every step. Two runs took the
    /// same architectural path iff their trace digests agree.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut fnv = Fnv::new();
        for entry in &self.entries {
            fnv.write_u64(entry.pc);
            fnv.write_u64(entry.word.map_or(u64::MAX, u64::from));
            match entry.outcome {
                StepOutcome::Retired(_) => fnv.write_u64(0),
                StepOutcome::Trapped(trap) => {
                    fnv.write_u64(1 + trap.cause().code());
                    fnv.write_u64(trap.tval());
                }
            }
            if let Some((reg, value)) = entry.def {
                fnv.write_u64(u64::from(reg.is_fpr()) << 8 | u64::from(reg.index()));
                fnv.write_u64(value);
            }
        }
        fnv.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_digest_distinguishes_outcomes() {
        let retired = TraceEntry {
            pc: 0,
            word: Some(0x13),
            outcome: StepOutcome::Retired(Instruction::nop()),
            def: None,
        };
        let trapped = TraceEntry {
            pc: 0,
            word: Some(0x13),
            outcome: StepOutcome::Trapped(Trap::EnvironmentCall),
            def: None,
        };
        let mut a = ExecutionTrace::new();
        a.push(retired);
        let mut b = ExecutionTrace::new();
        b.push(trapped);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.retired(), 1);
        assert_eq!(b.retired(), 0);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }
}
