//! The typed trap model: every way one instruction can fail to retire.

use tf_riscv::csr::Cause;

/// A synchronous exception raised while executing one instruction.
///
/// Each variant carries the architectural trap value (`mtval`) payload:
/// the faulting address for memory and fetch exceptions, the offending
/// machine word for illegal instructions. The reserved floating-point
/// rounding modes surface as [`Trap::IllegalInstruction`], both when the
/// static `rm` field is reserved (rejected at decode) and when a dynamic
/// `rm` resolves through a reserved `fcsr.frm` (paper bug scenario B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Instruction fetch from a non-4-byte-aligned `pc`.
    InstructionMisaligned {
        /// The misaligned fetch address.
        addr: u64,
    },
    /// Instruction fetch from outside physical memory.
    InstructionFault {
        /// The out-of-bounds fetch address.
        addr: u64,
    },
    /// The fetched word does not decode to a supported instruction, uses a
    /// reserved rounding mode, touches an unimplemented CSR, writes a
    /// read-only CSR, or exercises the FP unit while `mstatus.FS` is off.
    IllegalInstruction {
        /// The offending machine word.
        word: u32,
    },
    /// `ebreak`.
    Breakpoint {
        /// `pc` of the breakpoint instruction.
        addr: u64,
    },
    /// Load from an address not aligned to the access width.
    LoadMisaligned {
        /// The misaligned effective address.
        addr: u64,
    },
    /// Load from outside physical memory.
    LoadFault {
        /// The out-of-bounds effective address.
        addr: u64,
    },
    /// Store or AMO to an address not aligned to the access width.
    StoreMisaligned {
        /// The misaligned effective address.
        addr: u64,
    },
    /// Store or AMO to outside physical memory.
    StoreFault {
        /// The out-of-bounds effective address.
        addr: u64,
    },
    /// `ecall` from machine mode.
    EnvironmentCall,
}

impl Trap {
    /// The privileged-spec exception cause written to `mcause`.
    #[must_use]
    pub fn cause(&self) -> Cause {
        match self {
            Trap::InstructionMisaligned { .. } => Cause::InstructionMisaligned,
            Trap::InstructionFault { .. } => Cause::InstructionFault,
            Trap::IllegalInstruction { .. } => Cause::IllegalInstruction,
            Trap::Breakpoint { .. } => Cause::Breakpoint,
            Trap::LoadMisaligned { .. } => Cause::LoadMisaligned,
            Trap::LoadFault { .. } => Cause::LoadFault,
            Trap::StoreMisaligned { .. } => Cause::StoreMisaligned,
            Trap::StoreFault { .. } => Cause::StoreFault,
            Trap::EnvironmentCall => Cause::EnvironmentCall,
        }
    }

    /// The trap value written to `mtval`: the faulting address or the
    /// offending instruction word, zero when the cause carries neither.
    #[must_use]
    pub fn tval(&self) -> u64 {
        match self {
            Trap::InstructionMisaligned { addr }
            | Trap::InstructionFault { addr }
            | Trap::Breakpoint { addr }
            | Trap::LoadMisaligned { addr }
            | Trap::LoadFault { addr }
            | Trap::StoreMisaligned { addr }
            | Trap::StoreFault { addr } => *addr,
            Trap::IllegalInstruction { word } => u64::from(*word),
            Trap::EnvironmentCall => 0,
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (tval={:#x})", self.cause(), self.tval())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causes_match_privileged_codes() {
        assert_eq!(Trap::InstructionFault { addr: 4 }.cause().code(), 1);
        assert_eq!(Trap::IllegalInstruction { word: 0 }.cause().code(), 2);
        assert_eq!(Trap::StoreMisaligned { addr: 3 }.cause().code(), 6);
        assert_eq!(Trap::EnvironmentCall.cause().code(), 11);
    }

    #[test]
    fn tval_carries_the_payload() {
        assert_eq!(Trap::LoadFault { addr: 0x80 }.tval(), 0x80);
        assert_eq!(Trap::IllegalInstruction { word: 0xDEAD }.tval(), 0xDEAD);
        assert_eq!(Trap::EnvironmentCall.tval(), 0);
    }

    #[test]
    fn display_names_the_cause() {
        let t = Trap::LoadMisaligned { addr: 0x11 };
        assert_eq!(t.to_string(), "load address misaligned (tval=0x11)");
    }
}
