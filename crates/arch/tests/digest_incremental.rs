//! Property test: the incremental digests always equal the from-scratch
//! recomputation (the PR-2 oracle).
//!
//! [`Memory::digest`] caches per-page hashes behind a dirty set and
//! [`ArchState::digest`] caches behind a dirty flag; this suite hammers
//! both with randomized sequences of stores, loads, `Clone`s and resets
//! — including all-zero-page scrubs and digests taken from clones that
//! inherited a warm cache — and asserts the cached results never drift
//! from `digest_from_scratch` / `digest_uncached`.

use tf_arch::{ArchState, Hart, Memory, PAGE_SIZE};
use tf_riscv::csr;
use tf_riscv::{Fpr, Gpr, Instruction, InstructionLibrary, LibraryConfig, Opcode};

/// Deterministic splitmix64, local to the test (the crate under test must
/// not supply the randomness that checks it).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const MEM_SIZE: u64 = 8 * PAGE_SIZE;

fn check_memory(mem: &Memory, what: &str) {
    assert_eq!(
        mem.digest(),
        mem.digest_from_scratch(),
        "incremental memory digest diverged from the oracle: {what}"
    );
}

fn check_state(state: &ArchState, what: &str) {
    assert_eq!(
        state.digest(),
        state.digest_uncached(),
        "cached register digest diverged from the oracle: {what}"
    );
}

#[test]
fn memory_digest_survives_random_store_load_clone_reset_sequences() {
    let mut rng = Rng(0xD1CE_57A7);
    let mut mem = Memory::new(MEM_SIZE);
    let mut clones: Vec<Memory> = Vec::new();
    for op in 0..4_000 {
        match rng.below(16) {
            // Stores of every width, clustered so pages get revisited.
            0..=5 => {
                let addr = rng.below(MEM_SIZE - 8);
                let value = rng.next();
                match rng.below(4) {
                    0 => mem.store_u8(addr, value as u8).unwrap(),
                    1 => mem.store_u16(addr & !1, value as u16).unwrap(),
                    2 => mem.store_u32(addr & !3, value as u32).unwrap(),
                    _ => mem.store_u64(addr & !7, value).unwrap(),
                }
            }
            // Page-crossing write.
            6 => {
                let page = rng.below(MEM_SIZE / PAGE_SIZE - 1);
                let addr = page * PAGE_SIZE + PAGE_SIZE - 3;
                mem.store_u64(addr, rng.next()).unwrap();
            }
            // Scrub a whole page back to zero (the all-zero-page case).
            7 => {
                let page = rng.below(MEM_SIZE / PAGE_SIZE);
                for offset in (0..PAGE_SIZE).step_by(8) {
                    mem.store_u64(page * PAGE_SIZE + offset, 0).unwrap();
                }
            }
            // Out-of-bounds writes are rejected and must not dirty state.
            8 => assert!(mem.store_u64(MEM_SIZE - 1, rng.next()).is_none()),
            // Loads never affect the digest.
            9 | 10 => {
                let _ = mem.load_u64(rng.below(MEM_SIZE) & !7);
            }
            // Clone (cache travels along); mutate the clone later.
            11 => clones.push(mem.clone()),
            // Reset: a fresh memory digests like the empty baseline.
            12 if op % 512 == 0 => {
                mem = Memory::new(MEM_SIZE);
                check_memory(&mem, "after reset");
            }
            // Interleave digests so the cache is warm for later ops.
            _ => check_memory(&mem, "interleaved"),
        }
        if op % 64 == 0 {
            check_memory(&mem, "periodic");
        }
    }
    check_memory(&mem, "final");
    for (i, mut cloned) in clones.into_iter().enumerate() {
        check_memory(&cloned, "clone with inherited cache");
        cloned
            .store_u64(rng.below(MEM_SIZE) & !7, rng.next())
            .unwrap();
        check_memory(&cloned, "clone after divergent write");
        assert!((i as u64) < 4_000);
    }
}

#[test]
fn arch_state_digest_survives_random_mutation_sequences() {
    let mut rng = Rng(0x5EED_FACE);
    let mut state = ArchState::new();
    let mut clones: Vec<ArchState> = Vec::new();
    for op in 0..4_000 {
        match rng.below(12) {
            0..=3 => {
                let reg = Gpr::new(rng.below(32) as u8).unwrap();
                state.set_x(reg, rng.next());
            }
            4 | 5 => {
                let reg = Fpr::new(rng.below(32) as u8).unwrap();
                state.set_f_bits(reg, rng.next());
            }
            6 => state.set_pc(rng.next() & !3),
            7 => {
                let _ = state.csrs_mut().write(csr::MTVEC, rng.next());
            }
            8 => state.csrs_mut().accrue_fflags(rng.below(32)),
            // Counter bumps are digest-neutral on both paths: the direct
            // cache-preserving one and the conservative csrs_mut one.
            9 => {
                state.bump_cycle();
                state.bump_instret();
                state.csrs_mut().bump_cycle();
            }
            10 => clones.push(state.clone()),
            _ => check_state(&state, "interleaved"),
        }
        if op % 64 == 0 {
            check_state(&state, "periodic");
        }
        if op % 1_024 == 0 {
            state = ArchState::new();
            check_state(&state, "after reset");
        }
    }
    check_state(&state, "final");
    for mut cloned in clones {
        check_state(&cloned, "clone with inherited cache");
        cloned.set_x(Gpr::new(1).unwrap(), rng.next());
        check_state(&cloned, "clone after divergent write");
    }
}

#[test]
fn hart_digest_composes_the_two_cached_digests() {
    // Drive a real random program through the hart, then check that the
    // composite digest equals the composition of the two oracles.
    let mut library = InstructionLibrary::new(LibraryConfig::all(), 0xBEEF);
    let mut program = library.sample_program(256).expect("full library");
    program.push(Instruction::system(Opcode::Ebreak));
    let mut hart = Hart::new(1 << 20);
    hart.load_program(0, &program).unwrap();
    for _ in 0..512 {
        hart.step();
        let composite = hart.digest();
        let mut fnv = tf_arch::digest::WideFnv::new();
        fnv.write_u64(hart.state().digest_uncached());
        fnv.write_u64(hart.mem().digest_from_scratch());
        assert_eq!(composite, fnv.finish(), "composite digest drifted");
    }
    // Reset drops both caches with the rest of the state.
    let baseline = Hart::new(1 << 20).digest();
    hart.reset();
    assert_eq!(hart.digest(), baseline);
}
