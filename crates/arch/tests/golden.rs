//! Golden end-to-end programs: hand-assembled via the typed `Instruction`
//! constructors, executed on the reference `Hart`, asserting the exact
//! final architectural state.

use tf_arch::{Hart, RunExit};
use tf_riscv::{csr, BranchOffset, Fpr, Gpr, Instruction, JumpOffset, Opcode, Reg, RoundingMode};

fn x(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

fn f(i: u8) -> Fpr {
    Fpr::new(i).unwrap()
}

fn addi(rd: Gpr, rs1: Gpr, imm: i64) -> Instruction {
    Instruction::i_type(Opcode::Addi, rd, rs1, imm).unwrap()
}

fn beq_fwd(rs1: Gpr, rs2: Gpr, offset: i64) -> Instruction {
    Instruction::b_type(Opcode::Beq, rs1, rs2, BranchOffset::new(offset).unwrap())
}

fn jump_back(offset: i64) -> Instruction {
    Instruction::j_type(Opcode::Jal, Gpr::ZERO, JumpOffset::new(offset).unwrap())
}

/// Iterative Fibonacci: x1 = fib(10), x2 = fib(11).
#[test]
fn fibonacci() {
    let program = [
        addi(x(1), Gpr::ZERO, 0),                           //  0: a = fib(0)
        addi(x(2), Gpr::ZERO, 1),                           //  4: b = fib(1)
        addi(x(3), Gpr::ZERO, 10),                          //  8: n = 10
        beq_fwd(x(3), Gpr::ZERO, 24),                       // 12: while n != 0
        Instruction::r_type(Opcode::Add, x(4), x(1), x(2)), // 16: t = a + b
        addi(x(1), x(2), 0),                                // 20: a = b
        addi(x(2), x(4), 0),                                // 24: b = t
        addi(x(3), x(3), -1),                               // 28: n -= 1
        jump_back(-20),                                     // 32: -> 12
        Instruction::system(Opcode::Ebreak),                // 36
    ];
    let mut hart = Hart::new(1 << 20);
    hart.load_program(0, &program).unwrap();
    // 3 setup + 10 iterations of 6 + the final taken branch + ebreak.
    let exit = hart.run(1_000);
    assert_eq!(exit, RunExit::Breakpoint { steps: 65 });
    assert_eq!(hart.state().x(x(1)), 55, "fib(10)");
    assert_eq!(hart.state().x(x(2)), 89, "fib(11)");
    assert_eq!(hart.state().x(x(3)), 0);
    assert_eq!(hart.state().x(x(4)), 89);
    // The ebreak trapped: mepc holds its pc, the hart sits at mtvec (0).
    assert_eq!(hart.state().csrs().read(csr::MEPC), Some(36));
    assert_eq!(hart.state().pc(), 0);
    // The run is fully deterministic: a second identical hart produces the
    // same digest.
    let mut again = Hart::new(1 << 20);
    again.load_program(0, &program).unwrap();
    again.run(1_000);
    assert_eq!(hart.digest(), again.digest());
}

/// Byte-wise memcpy of 16 bytes from 0x200 to 0x300.
#[test]
fn memcpy() {
    let program = [
        addi(x(1), Gpr::ZERO, 0x200),                            //  0: src
        addi(x(2), Gpr::ZERO, 0x300),                            //  4: dst
        addi(x(3), Gpr::ZERO, 16),                               //  8: len
        beq_fwd(x(3), Gpr::ZERO, 28),                            // 12: while len != 0
        Instruction::i_type(Opcode::Lb, x(4), x(1), 0).unwrap(), // 16
        Instruction::s_type(Opcode::Sb, x(2), x(4), 0).unwrap(), // 20
        addi(x(1), x(1), 1),                                     // 24
        addi(x(2), x(2), 1),                                     // 28
        addi(x(3), x(3), -1),                                    // 32
        jump_back(-24),                                          // 36: -> 12
        Instruction::system(Opcode::Ebreak),                     // 40
    ];
    let mut hart = Hart::new(1 << 20);
    hart.load_program(0, &program).unwrap();
    let pattern: Vec<u8> = (0..16u8).map(|i| 0xA0 ^ i.wrapping_mul(7)).collect();
    for (i, &b) in pattern.iter().enumerate() {
        hart.mem_mut().store_u8(0x200 + i as u64, b).unwrap();
    }
    // 3 setup + 16 iterations of 7 + the final taken branch + ebreak.
    assert_eq!(hart.run(10_000), RunExit::Breakpoint { steps: 117 });
    for (i, &b) in pattern.iter().enumerate() {
        assert_eq!(hart.mem().load_u8(0x300 + i as u64), Some(b), "byte {i}");
        assert_eq!(hart.mem().load_u8(0x200 + i as u64), Some(b), "src intact");
    }
    assert_eq!(hart.state().x(x(1)), 0x210);
    assert_eq!(hart.state().x(x(2)), 0x310);
    assert_eq!(hart.state().x(x(3)), 0);
}

/// Sum the integers 5..=1 in double precision, convert back, store.
#[test]
fn fp_sum() {
    let fcvt_d_w = Instruction::fp_unary(
        Opcode::FcvtDW,
        Reg::F(f(2)),
        Reg::X(x(1)),
        Some(RoundingMode::Rne),
    )
    .unwrap();
    let fadd =
        Instruction::fp_r_type(Opcode::FaddD, f(1), f(1), f(2), Some(RoundingMode::Rne)).unwrap();
    let fcvt_w_d = Instruction::fp_unary(
        Opcode::FcvtWD,
        Reg::X(x(2)),
        Reg::F(f(1)),
        Some(RoundingMode::Rtz),
    )
    .unwrap();
    let program = [
        addi(x(1), Gpr::ZERO, 5),     //  0: n = 5
        beq_fwd(x(1), Gpr::ZERO, 20), //  4: while n != 0
        fcvt_d_w,                     //  8: f2 = (double)n
        fadd,                         // 12: f1 += f2
        addi(x(1), x(1), -1),         // 16: n -= 1
        jump_back(-16),               // 20: -> 4
        fcvt_w_d,                     // 24: x2 = (int)f1
        Instruction::fp_store(Opcode::Fsd, Gpr::ZERO, f(1), 0x100).unwrap(), // 28
        Instruction::system(Opcode::Ebreak), // 32
    ];
    let mut hart = Hart::new(1 << 20);
    hart.load_program(0, &program).unwrap();
    assert_eq!(hart.run(1_000), RunExit::Breakpoint { steps: 30 });
    assert_eq!(hart.state().x(x(2)), 15, "1+2+3+4+5");
    assert_eq!(hart.state().f64(f(1)), 15.0);
    assert_eq!(
        hart.mem().load_u64(0x100),
        Some(15.0_f64.to_bits()),
        "fsd wrote the sum"
    );
    // Every step of this program is exact: no accrued FP flags.
    assert_eq!(hart.state().csrs().read(csr::FFLAGS), Some(0));
}

/// The ExecutionTrace of a golden program is reproducible and counts every
/// retired instruction.
#[test]
fn traced_run_is_reproducible() {
    let program = [
        addi(x(1), Gpr::ZERO, 3),
        Instruction::r_type(Opcode::Add, x(2), x(1), x(1)),
        Instruction::system(Opcode::Ebreak),
    ];
    let run = || {
        let mut hart = Hart::new(1 << 16);
        hart.load_program(0, &program).unwrap();
        hart.enable_tracing();
        hart.run(100);
        hart.take_trace().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), 3);
    assert_eq!(a.retired(), 2, "ebreak traps rather than retiring");
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.entries()[1].def.map(|(_, v)| v), Some(6));
}
