//! Fuzz-shaped robustness sweeps: the reference model must execute
//! arbitrary instruction streams without ever panicking — every abnormal
//! condition is a trap, never a crash.

use tf_arch::{Hart, StepOutcome};
use tf_riscv::{InstructionLibrary, LibraryConfig};

const MEM_SIZE: u64 = 1 << 20;
const STEPS: usize = 100_000;

/// Plant-and-step sweep: draw 100k prime instructions from the full
/// library and execute each at the hart's current pc. Exercises every
/// opcode class under evolving random state.
fn planted_sweep(seed: u64) -> (u64, usize, usize) {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), seed);
    let mut hart = Hart::new(MEM_SIZE);
    let (mut retired, mut trapped) = (0usize, 0usize);
    for _ in 0..STEPS {
        let mut pc = hart.state().pc();
        // checked_add: a wild jalr can park pc near u64::MAX, where a bare
        // `pc + 4` would overflow-panic in debug builds.
        if pc % 4 != 0 || pc.checked_add(4).is_none_or(|end| end > MEM_SIZE) {
            // A jump left the executable window; restart at the base.
            pc = 0;
            hart.state_mut().set_pc(0);
        }
        let insn = lib.sample().expect("full library is never empty");
        let word = insn.encode().expect("constructed instructions encode");
        hart.mem_mut().store_u32(pc, word).expect("pc in bounds");
        match hart.step() {
            StepOutcome::Retired(_) => retired += 1,
            StepOutcome::Trapped(_) => trapped += 1,
        }
    }
    (hart.digest(), retired, trapped)
}

#[test]
fn planted_sweep_never_panics_and_is_deterministic() {
    let (digest_a, retired, trapped) = planted_sweep(0xF00D);
    assert_eq!(retired + trapped, STEPS);
    // A healthy sweep both retires work and exercises the trap paths.
    assert!(retired > STEPS / 10, "retired only {retired}");
    assert!(trapped > 0, "a full random sweep must hit traps");
    // Same seed, same stream, same final architectural fingerprint.
    let (digest_b, retired_b, trapped_b) = planted_sweep(0xF00D);
    assert_eq!(digest_a, digest_b);
    assert_eq!((retired, trapped), (retired_b, trapped_b));
    // A different seed takes a different path.
    let (digest_c, ..) = planted_sweep(0xBEEF);
    assert_ne!(digest_a, digest_c);
}

/// Chaos run: fill memory with raw pseudo-random words (most of which are
/// not valid instructions) and free-run the hart. Decode failures, wild
/// jumps and access faults must all surface as traps.
#[test]
fn chaos_run_over_random_memory_never_panics() {
    let mut hart = Hart::new(1 << 16);
    let mut state = 0x1234_5678_9ABC_DEF0_u64;
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for addr in (0..1 << 16).step_by(8) {
        hart.mem_mut().store_u64(addr, next()).unwrap();
    }
    let mut trapped = 0usize;
    for _ in 0..STEPS {
        if let StepOutcome::Trapped(_) = hart.step() {
            trapped += 1;
        }
    }
    assert!(trapped > 0, "random words must trap somewhere");
}

/// The library's directed `synthesize` covers every opcode; each must
/// execute (retire or trap) without panicking, from a variety of register
/// states.
#[test]
fn every_opcode_executes_without_panicking() {
    let mut lib = InstructionLibrary::new(LibraryConfig::all(), 42);
    for round in 0..16 {
        let mut hart = Hart::new(1 << 16);
        // Seed registers with values that exercise sign/alignment edges.
        for i in 0..32 {
            let v = match round % 4 {
                0 => u64::from(i) * 8,
                1 => u64::MAX - u64::from(i),
                2 => 0x8000_0000_0000_0000 | u64::from(i) << 3,
                _ => u64::from(i) * 4097,
            };
            hart.state_mut().set_x(tf_riscv::Gpr::wrapping(i), v);
        }
        for &opcode in tf_riscv::Opcode::ALL {
            let insn = lib.synthesize(opcode);
            let word = insn.encode().unwrap();
            hart.state_mut().set_pc(0);
            hart.mem_mut().store_u32(0, word).unwrap();
            hart.step(); // must not panic, outcome free
        }
    }
}
