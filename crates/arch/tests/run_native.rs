//! Native batched `Hart::run` is bit-identical to the default trait
//! implementation.
//!
//! `Hart` overrides [`Dut::run`] with a predecoded-block engine; the
//! override is only sound if every observable — step and retire counts,
//! exit, trap-cause set, every digest sample, the end-state digest, the
//! write history and the recorded trace — matches what the default
//! per-step trait body would have produced. These tests drive both
//! implementations (the default one through a wrapper that forwards
//! everything except `run`) over generated programs, every bug
//! scenario, self-modifying code and a sweep of sampling windows, and
//! require exact equality.

use tf_arch::{BugScenario, Dut, ExecutionTrace, Hart, MutantHart, StepOutcome, Trap};
use tf_riscv::{BranchOffset, Gpr, Instruction, InstructionLibrary, LibraryConfig, Opcode};

const MEM: u64 = 1 << 20;

/// Sampling windows the equivalence is checked at, per the issue: dense,
/// prime, the campaign default and a sparse one — plus 0 (final sample
/// only) where the sweep adds it.
const WINDOWS: [u64; 4] = [1, 3, 16, 64];

/// Forwards every [`Dut`] method to the wrapped device except `run`,
/// which stays the default trait body — the reference schedule any
/// native override must reproduce bit-for-bit.
struct PerStep<D: Dut>(D);

impl<D: Dut> Dut for PerStep<D> {
    fn name(&self) -> &'static str {
        "per-step"
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        self.0.load(base, program)
    }
    fn step(&mut self) -> StepOutcome {
        self.0.step()
    }
    fn pc(&self) -> u64 {
        self.0.pc()
    }
    fn digest(&self) -> u64 {
        self.0.digest()
    }
    fn write_history(&self) -> u64 {
        self.0.write_history()
    }
    fn enable_tracing(&mut self) {
        self.0.enable_tracing();
    }
    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        self.0.take_trace()
    }
}

/// Run `make()`-built devices through the native path and the default
/// path and assert every observable matches.
fn assert_run_identical<D: Dut>(
    make: &dyn Fn() -> D,
    max_steps: u64,
    digest_every: u64,
    label: &str,
) {
    let mut native = make();
    let mut default = PerStep(make());
    native.enable_tracing();
    default.enable_tracing();
    let native_batch = native.run(max_steps, digest_every);
    let default_batch = default.run(max_steps, digest_every);
    let ctx = format!("{label}, max_steps {max_steps}, digest_every {digest_every}");
    assert_eq!(
        native_batch, default_batch,
        "batch outcomes diverged: {ctx}"
    );
    assert_eq!(native.digest(), default.digest(), "end digests: {ctx}");
    assert_eq!(
        native.write_history(),
        default.write_history(),
        "write histories: {ctx}"
    );
    let native_trace = native.take_trace().expect("tracing was enabled");
    let default_trace = default.take_trace().expect("tracing was enabled");
    assert_eq!(
        native_trace.len(),
        default_trace.len(),
        "trace lengths: {ctx}"
    );
    assert_eq!(
        native_trace.digest(),
        default_trace.digest(),
        "trace digests: {ctx}"
    );
}

fn x(i: u8) -> Gpr {
    Gpr::new(i).unwrap()
}

fn word_of(insn: Instruction) -> u32 {
    insn.encode().unwrap()
}

#[test]
fn native_run_matches_default_on_generated_programs() {
    let seeds: u64 = if cfg!(debug_assertions) { 60 } else { 250 };
    for seed in 0..seeds {
        let mut library = InstructionLibrary::new(LibraryConfig::all(), 0x5EED ^ seed);
        let mut program = library.sample_program(48).expect("full library");
        // Half the programs end in an ebreak (early exit), half run out
        // of gas mid-stream.
        if seed % 2 == 0 {
            program.push(Instruction::system(Opcode::Ebreak));
        }
        let make = || {
            let mut hart = Hart::new(MEM);
            hart.load_program(0, &program).unwrap();
            hart
        };
        let window = WINDOWS[(seed % 4) as usize];
        for max_steps in [7, 200] {
            assert_run_identical(&make, max_steps, window, &format!("seed {seed}"));
        }
        // Final-sample-only mode and a zero-step budget.
        assert_run_identical(&make, 200, 0, &format!("seed {seed}"));
        assert_run_identical(&make, 0, 1, &format!("seed {seed}"));
    }
}

#[test]
fn native_run_matches_default_at_an_offset_load_base() {
    let mut library = InstructionLibrary::new(LibraryConfig::all(), 0xBA5E);
    let mut program = library.sample_program(32).expect("full library");
    program.push(Instruction::system(Opcode::Ebreak));
    let make = || {
        let mut hart = Hart::new(MEM);
        hart.load_program(0x1000, &program).unwrap();
        hart.state_mut().set_pc(0x1000);
        hart
    };
    for window in WINDOWS {
        assert_run_identical(&make, 150, window, "offset base");
    }
    // And with pc left at 0, outside the program image: the per-step
    // fallback path trap-loops identically on both sides.
    let stuck = || {
        let mut hart = Hart::new(MEM);
        hart.load_program(0x1000, &program).unwrap();
        hart
    };
    assert_run_identical(&stuck, 25, 3, "pc outside program");
}

#[test]
fn every_mutant_stays_on_the_exact_per_step_schedule() {
    // MutantHart implements only `Dut::step`, so it inherits the default
    // `run` — wrapping it in `PerStep` must change nothing. This pins
    // the fallback contract: bug hooks observe every step, and a future
    // native override for mutants has the same bit-identity bar.
    let seeds: u64 = if cfg!(debug_assertions) { 12 } else { 60 };
    for scenario in BugScenario::ALL {
        for seed in 0..seeds {
            let mut library = InstructionLibrary::new(LibraryConfig::all(), 0x0DD ^ seed);
            let mut program = library.sample_program(40).expect("full library");
            program.push(Instruction::system(Opcode::Ebreak));
            let make = || {
                let mut mutant = MutantHart::new(MEM, scenario);
                mutant.load(0, &program).unwrap();
                mutant
            };
            let window = WINDOWS[(seed % 4) as usize];
            assert_run_identical(&make, 160, window, scenario.id());
        }
    }
}

#[test]
fn in_block_self_modification_is_architecturally_exact() {
    // The store at pc 4 rewrites the instruction at pc 12 *within the
    // same straight-line block*, before it executes. The native engine
    // must notice mid-block (memory generation check) and execute the
    // fresh word, exactly like the per-step path.
    let patch = word_of(Instruction::i_type(Opcode::Addi, x(6), Gpr::ZERO, 99).unwrap());
    let program = [
        Instruction::i_type(Opcode::Lw, x(5), Gpr::ZERO, 0x400).unwrap(),
        Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(5), 12).unwrap(),
        Instruction::i_type(Opcode::Addi, x(7), Gpr::ZERO, 1).unwrap(),
        Instruction::i_type(Opcode::Addi, x(6), Gpr::ZERO, 1).unwrap(),
        Instruction::system(Opcode::Ebreak),
    ];
    let make = || {
        let mut hart = Hart::new(MEM);
        hart.load_program(0, &program).unwrap();
        hart.mem_mut().store_u32(0x400, patch).unwrap();
        hart
    };
    for window in [1, 3, 16] {
        assert_run_identical(&make, 100, window, "in-block overwrite");
    }
    // Sanity: the run really did execute the patched instruction.
    let mut hart = make();
    Dut::run(&mut hart, 100, 0);
    assert_eq!(hart.state().x(x(6)), 99, "patched word must execute");
}

#[test]
fn same_word_store_into_code_revalidates_without_divergence() {
    // Rewriting an instruction with identical bytes bumps the code
    // generation but leaves every block word intact — the re-validation
    // path must keep the cached block and stay exact.
    let program = [
        Instruction::i_type(Opcode::Lw, x(5), Gpr::ZERO, 8).unwrap(),
        Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(5), 8).unwrap(),
        Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
        Instruction::system(Opcode::Ebreak),
    ];
    let make = || {
        let mut hart = Hart::new(MEM);
        hart.load_program(0, &program).unwrap();
        hart
    };
    for window in [1, 2] {
        assert_run_identical(&make, 50, window, "same-word rewrite");
    }
}

#[test]
fn loop_back_into_modified_code_rebuilds_the_block() {
    // Iteration 1 executes the original instruction at pc 8, then
    // overwrites it; iteration 2, reached by the backward branch, must
    // execute the modified word (x4 = 1 + 10 = 11).
    let patch = word_of(Instruction::i_type(Opcode::Addi, x(4), x(4), 10).unwrap());
    let program = [
        Instruction::i_type(Opcode::Lw, x(5), Gpr::ZERO, 0x400).unwrap(),
        Instruction::i_type(Opcode::Addi, x(1), x(1), 1).unwrap(),
        Instruction::i_type(Opcode::Addi, x(4), x(4), 1).unwrap(),
        Instruction::s_type(Opcode::Sw, Gpr::ZERO, x(5), 8).unwrap(),
        Instruction::i_type(Opcode::Addi, x(2), Gpr::ZERO, 2).unwrap(),
        Instruction::b_type(Opcode::Bne, x(1), x(2), BranchOffset::new(-16).unwrap()),
        Instruction::system(Opcode::Ebreak),
    ];
    let make = || {
        let mut hart = Hart::new(MEM);
        hart.load_program(0, &program).unwrap();
        hart.mem_mut().store_u32(0x400, patch).unwrap();
        hart
    };
    for window in WINDOWS {
        assert_run_identical(&make, 100, window, "loop-back rebuild");
    }
    let mut hart = make();
    Dut::run(&mut hart, 100, 0);
    assert_eq!(hart.state().x(x(4)), 11, "second pass must see the patch");
}
