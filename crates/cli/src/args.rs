//! Flag parsing for `tf-cli`, dependency-free by design.

use tf_arch::BugScenario;
use tf_fuzz::{PowerSchedule, DEFAULT_WINDOW};

/// Usage text for `--help` and parse failures.
pub const USAGE: &str = "\
tf-cli — TurboFuzz differential fuzzing campaigns

USAGE:
    tf-cli fuzz [OPTIONS]
    tf-cli serve [OPTIONS]
    tf-cli corpus info <FILE>
    tf-cli corpus merge <OUT> <IN>...
    tf-cli corpus minimize <FILE> [--out <OUT>]

FUZZ OPTIONS:
    --seed <N>        campaign seed (default 0)
    --steps <M>       generated-instruction budget (default 10000)
    --len <L>         instructions per program, incl. ebreak (default 32)
    --window <K>      lockstep window: compare digests every K steps and
                      replay a window exactly when it mismatches; the
                      reported divergences are bit-identical at every K
                      (default 16; 1 compares after every step)
    --jobs <J>        worker threads; the budget is sharded across
                      seed-disjoint campaigns coordinated around one
                      shared corpus — novel seeds are admitted centrally
                      and broadcast to every worker while the campaign
                      runs — and the reports merged (default 1, which is
                      bit-identical to the single-threaded campaign;
                      any fixed J is deterministic)
    --schedule <S>    corpus power schedule: uniform | fast | explore
                      (default uniform, which is bit-identical to
                      pre-scheduler campaigns; fast and explore weight
                      seed selection by calibration-derived energy and
                      stay just as deterministic)
    --mutant <ID>     fuzz a known-buggy DUT: b2 | imm | fflags |
                      csrmask | btrunc | ldsext
                      (default: the golden reference hart)
    --dut cmd:<ARGV>  fuzz an out-of-process DUT: spawn ARGV
                      (whitespace-split) and speak the remote-DUT wire
                      protocol over its stdin/stdout — e.g.
                      `--dut \"cmd:tf-cli serve --mutant b2\"`. Child
                      crashes, hangs and protocol desyncs become
                      findings in the report; the child is respawned
                      with bounded exponential backoff and the campaign
                      keeps fuzzing. Requires --jobs 1 and excludes
                      --mutant (inject bugs server-side instead)
    --expect <WHAT>   exit non-zero unless the campaign reported what
                      you asked for: divergence | clean | crash | hang
                      (clean also requires zero dut failures)
    --corpus <FILE>   persistent corpus: seed the campaign from FILE when
                      it exists, and save the grown corpus plus a
                      resumable checkpoint (with per-worker rng streams)
                      back to it atomically when the campaign finishes
    --resume          continue the campaign checkpointed in --corpus up
                      to the (raised) --steps budget — bit-identical to a
                      single uninterrupted run; requires the same
                      seed/len/flags and the same --jobs count as the
                      checkpointed run
    --autosave-every <B>  with --corpus: also checkpoint mid-run, every B
                      completed worker batches (deterministic cadence), so
                      a killed campaign resumes from the last autosave
    --stats-every <B> print live campaign statistics to stderr every B
                      completed worker batches (stdout stays report-only)
    -h, --help        print this help

SERVE OPTIONS (the server side of `--dut`; protocol frames only on
stdout, diagnostics on stderr):
    --mutant <ID>           serve a known-buggy DUT (same ids as fuzz)
    --mem <BYTES>           served memory size; must match the client
                            campaign's mem_size (default 1048576)
    --chaos-crash-after <N> exit abruptly at cumulative batch N (0-based)
    --chaos-hang-after <N>  stop answering at cumulative batch N
    --chaos-garble-after <N> send one corrupt frame at cumulative batch N
                            (each chaos trigger fires exactly once per
                            campaign: batch ordinals count across
                            respawns and --resume)

CORPUS COMMANDS (all files use the versioned on-disk corpus format):
    info              print header, entry and coverage statistics
    merge             combine corpora from separate runs, deduplicated by
                      coverage key, into OUT (checkpoints are stripped)
    minimize          keep only entries contributing new coverage; write
                      back in place, or to --out";

/// Outcome the caller requires, mapped to the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// At least one divergence must be reported.
    Divergence,
    /// No divergence — and no DUT failure — may be reported.
    Clean,
    /// At least one DUT crash finding must be reported.
    Crash,
    /// At least one DUT hang finding must be reported.
    Hang,
}

impl std::fmt::Display for Expectation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Expectation::Divergence => "divergence",
            Expectation::Clean => "clean",
            Expectation::Crash => "crash",
            Expectation::Hang => "hang",
        })
    }
}

/// Parsed `tf-cli fuzz` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzArgs {
    /// Campaign seed.
    pub seed: u64,
    /// Generated-instruction budget.
    pub steps: u64,
    /// Program length.
    pub len: usize,
    /// Lockstep window: digest-compare cadence in steps.
    pub window: u64,
    /// Worker threads to shard the budget across.
    pub jobs: usize,
    /// Corpus power schedule.
    pub schedule: PowerSchedule,
    /// Bug scenario to inject into the DUT, if any.
    pub mutant: Option<BugScenario>,
    /// Out-of-process DUT command (whitespace-split argv), if any.
    pub dut: Option<Vec<String>>,
    /// Required campaign outcome, if any.
    pub expect: Option<Expectation>,
    /// Persistent corpus file to load seeds from and save back to.
    pub corpus: Option<String>,
    /// Resume the checkpoint stored in the corpus file.
    pub resume: bool,
    /// Mid-run checkpoint cadence in completed batches (0 = off).
    pub autosave_every: u64,
    /// Live-stats cadence in completed batches (0 = off).
    pub stats_every: u64,
    /// `-h`/`--help` was given: print usage instead of fuzzing.
    pub help: bool,
}

impl Default for FuzzArgs {
    fn default() -> Self {
        FuzzArgs {
            seed: 0,
            steps: 10_000,
            len: 32,
            window: DEFAULT_WINDOW,
            jobs: 1,
            schedule: PowerSchedule::Uniform,
            mutant: None,
            dut: None,
            expect: None,
            corpus: None,
            resume: false,
            autosave_every: 0,
            stats_every: 0,
            help: false,
        }
    }
}

impl FuzzArgs {
    /// Parse the arguments following the `fuzz` subcommand.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing or
    /// unparsable values.
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = FuzzArgs::default();
        let mut argv = argv.peekable();
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| {
                argv.next()
                    .ok_or_else(|| format!("`{name}` requires a value"))
            };
            match flag.as_str() {
                "--seed" => args.seed = parse_int(&value("--seed")?, "--seed")?,
                "--steps" => {
                    args.steps = parse_int(&value("--steps")?, "--steps")?;
                    if args.steps == 0 {
                        return Err("`--steps` must be positive".into());
                    }
                }
                "--len" => {
                    args.len = parse_int(&value("--len")?, "--len")? as usize;
                    if args.len == 0 {
                        return Err("`--len` must be positive".into());
                    }
                }
                "--window" => {
                    args.window = parse_int(&value("--window")?, "--window")?;
                    if args.window == 0 {
                        return Err("`--window` must be positive".into());
                    }
                }
                "--jobs" => {
                    args.jobs = parse_int(&value("--jobs")?, "--jobs")? as usize;
                    if args.jobs == 0 {
                        return Err("`--jobs` must be positive".into());
                    }
                }
                "--schedule" => {
                    let id = value("--schedule")?;
                    args.schedule = PowerSchedule::parse(&id).ok_or_else(|| {
                        let known: Vec<&str> = PowerSchedule::ALL.iter().map(|s| s.id()).collect();
                        format!("unknown schedule `{id}` (known: {})", known.join(", "))
                    })?;
                }
                "--mutant" => {
                    let id = value("--mutant")?;
                    args.mutant = Some(BugScenario::parse(&id).ok_or_else(|| {
                        let known: Vec<&str> = BugScenario::ALL.iter().map(|s| s.id()).collect();
                        format!("unknown mutant `{id}` (known: {})", known.join(", "))
                    })?);
                }
                "--dut" => {
                    let spec = value("--dut")?;
                    let rest = spec
                        .strip_prefix("cmd:")
                        .ok_or_else(|| format!("`--dut` expects `cmd:<argv>`, got `{spec}`"))?;
                    let argv: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
                    if argv.is_empty() {
                        return Err("`--dut cmd:` needs a command to run".into());
                    }
                    args.dut = Some(argv);
                }
                "--expect" => {
                    args.expect = Some(match value("--expect")?.as_str() {
                        "divergence" => Expectation::Divergence,
                        "clean" => Expectation::Clean,
                        "crash" => Expectation::Crash,
                        "hang" => Expectation::Hang,
                        other => {
                            return Err(format!(
                                "unknown expectation `{other}` \
                                 (known: divergence, clean, crash, hang)"
                            ))
                        }
                    });
                }
                "--corpus" => args.corpus = Some(value("--corpus")?),
                "--resume" => args.resume = true,
                "--autosave-every" => {
                    args.autosave_every =
                        parse_int(&value("--autosave-every")?, "--autosave-every")?;
                }
                "--stats-every" => {
                    args.stats_every = parse_int(&value("--stats-every")?, "--stats-every")?;
                }
                "-h" | "--help" => args.help = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if args.resume && args.corpus.is_none() {
            return Err("`--resume` requires `--corpus <FILE>`".into());
        }
        if args.autosave_every > 0 && args.corpus.is_none() {
            return Err("`--autosave-every` requires `--corpus <FILE>`".into());
        }
        if args.dut.is_some() {
            if args.mutant.is_some() {
                return Err("`--dut` excludes `--mutant`: inject bugs server-side \
                     (`tf-cli serve --mutant …`) instead"
                    .into());
            }
            if args.jobs != 1 {
                return Err("`--dut` requires `--jobs 1` (one supervised child)".into());
            }
        }
        Ok(args)
    }
}

/// Parsed `tf-cli serve` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bug scenario to inject into the served DUT, if any.
    pub mutant: Option<BugScenario>,
    /// Served memory size in bytes (must match the client campaign).
    pub mem: u64,
    /// Chaos: exit abruptly at this cumulative batch ordinal.
    pub chaos_crash_after: Option<u64>,
    /// Chaos: stop answering at this cumulative batch ordinal.
    pub chaos_hang_after: Option<u64>,
    /// Chaos: send one corrupt frame at this cumulative batch ordinal.
    pub chaos_garble_after: Option<u64>,
    /// `-h`/`--help` was given: print usage instead of serving.
    pub help: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            mutant: None,
            mem: 1 << 20,
            chaos_crash_after: None,
            chaos_hang_after: None,
            chaos_garble_after: None,
            help: false,
        }
    }
}

impl ServeArgs {
    /// Parse the arguments following the `serve` subcommand.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing or
    /// unparsable values.
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = ServeArgs::default();
        let mut argv = argv.peekable();
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| {
                argv.next()
                    .ok_or_else(|| format!("`{name}` requires a value"))
            };
            match flag.as_str() {
                "--mutant" => {
                    let id = value("--mutant")?;
                    args.mutant = Some(BugScenario::parse(&id).ok_or_else(|| {
                        let known: Vec<&str> = BugScenario::ALL.iter().map(|s| s.id()).collect();
                        format!("unknown mutant `{id}` (known: {})", known.join(", "))
                    })?);
                }
                "--mem" => {
                    args.mem = parse_int(&value("--mem")?, "--mem")?;
                    if args.mem == 0 {
                        return Err("`--mem` must be positive".into());
                    }
                }
                "--chaos-crash-after" => {
                    args.chaos_crash_after = Some(parse_int(
                        &value("--chaos-crash-after")?,
                        "--chaos-crash-after",
                    )?);
                }
                "--chaos-hang-after" => {
                    args.chaos_hang_after = Some(parse_int(
                        &value("--chaos-hang-after")?,
                        "--chaos-hang-after",
                    )?);
                }
                "--chaos-garble-after" => {
                    args.chaos_garble_after = Some(parse_int(
                        &value("--chaos-garble-after")?,
                        "--chaos-garble-after",
                    )?);
                }
                "-h" | "--help" => args.help = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }
}

/// Parsed `tf-cli corpus` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusArgs {
    /// `corpus info <FILE>`: print header and coverage statistics.
    Info {
        /// The corpus file to inspect.
        path: String,
    },
    /// `corpus merge <OUT> <IN>...`: combine corpora into `out`.
    Merge {
        /// Destination file (overwritten atomically).
        out: String,
        /// Source corpora, merged in order.
        inputs: Vec<String>,
    },
    /// `corpus minimize <FILE> [--out <OUT>]`: drop entries that
    /// contribute no new coverage.
    Minimize {
        /// The corpus file to minimize.
        path: String,
        /// Destination; in-place when absent.
        out: Option<String>,
    },
}

impl CorpusArgs {
    /// Parse the arguments following the `corpus` subcommand.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown verbs and missing
    /// operands.
    pub fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut argv = argv.peekable();
        let verb = argv
            .next()
            .ok_or("`corpus` needs a verb: info | merge | minimize")?;
        match verb.as_str() {
            "info" => {
                let path = argv.next().ok_or("`corpus info` needs a file")?;
                reject_extra(argv)?;
                Ok(CorpusArgs::Info { path })
            }
            "merge" => {
                let out = argv.next().ok_or("`corpus merge` needs an output file")?;
                let inputs: Vec<String> = argv.collect();
                if inputs.is_empty() {
                    return Err("`corpus merge` needs at least one input file".into());
                }
                Ok(CorpusArgs::Merge { out, inputs })
            }
            "minimize" => {
                let path = argv.next().ok_or("`corpus minimize` needs a file")?;
                let mut out = None;
                while let Some(flag) = argv.next() {
                    match flag.as_str() {
                        "--out" => {
                            out = Some(argv.next().ok_or("`--out` requires a value")?);
                        }
                        other => return Err(format!("unknown flag `{other}`")),
                    }
                }
                Ok(CorpusArgs::Minimize { path, out })
            }
            other => Err(format!(
                "unknown corpus verb `{other}` (known: info, merge, minimize)"
            )),
        }
    }
}

fn reject_extra(mut argv: impl Iterator<Item = String>) -> Result<(), String> {
    match argv.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument `{extra}`")),
    }
}

fn parse_int(text: &str, flag: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("`{flag}` expects an integer, got `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FuzzArgs, String> {
        FuzzArgs::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults_when_no_flags() {
        assert_eq!(parse(&[]).unwrap(), FuzzArgs::default());
    }

    #[test]
    fn full_flag_set() {
        let args = parse(&[
            "--seed",
            "7",
            "--steps",
            "1000",
            "--len",
            "16",
            "--window",
            "8",
            "--jobs",
            "4",
            "--schedule",
            "fast",
            "--mutant",
            "b2",
            "--expect",
            "divergence",
        ])
        .unwrap();
        assert_eq!(args.seed, 7);
        assert_eq!(args.steps, 1000);
        assert_eq!(args.len, 16);
        assert_eq!(args.window, 8);
        assert_eq!(args.jobs, 4);
        assert_eq!(args.schedule, PowerSchedule::Fast);
        assert_eq!(args.mutant, Some(BugScenario::B2ReservedRounding));
        assert_eq!(args.expect, Some(Expectation::Divergence));
    }

    #[test]
    fn every_scenario_id_parses() {
        for scenario in BugScenario::ALL {
            let args = parse(&["--mutant", scenario.id()]).unwrap();
            assert_eq!(args.mutant, Some(scenario));
        }
    }

    #[test]
    fn every_schedule_id_parses_and_uniform_is_the_default() {
        assert_eq!(parse(&[]).unwrap().schedule, PowerSchedule::Uniform);
        for schedule in PowerSchedule::ALL {
            let args = parse(&["--schedule", schedule.id()]).unwrap();
            assert_eq!(args.schedule, schedule);
        }
        let err = parse(&["--schedule", "lightning"]).unwrap_err();
        assert!(err.contains("uniform") && err.contains("fast") && err.contains("explore"));
    }

    #[test]
    fn help_flags_request_usage() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
        assert!(!parse(&[]).unwrap().help);
    }

    #[test]
    fn corpus_flags_parse_and_validate() {
        let args = parse(&["--corpus", "seeds.tfc"]).unwrap();
        assert_eq!(args.corpus.as_deref(), Some("seeds.tfc"));
        assert!(!args.resume);

        let args = parse(&["--corpus", "seeds.tfc", "--resume"]).unwrap();
        assert!(args.resume);

        assert!(parse(&["--resume"]).unwrap_err().contains("--corpus"));
        // Per-worker rng streams in the checkpoint make resume compose
        // with any job count.
        assert!(parse(&["--corpus", "c", "--resume", "--jobs", "4"]).is_ok());
    }

    #[test]
    fn coordinator_cadence_flags_parse_and_validate() {
        let args = parse(&[
            "--corpus",
            "c",
            "--autosave-every",
            "8",
            "--stats-every",
            "4",
        ])
        .unwrap();
        assert_eq!(args.autosave_every, 8);
        assert_eq!(args.stats_every, 4);
        assert_eq!(parse(&[]).unwrap().autosave_every, 0);
        assert_eq!(parse(&[]).unwrap().stats_every, 0);
        assert!(parse(&["--autosave-every", "8"])
            .unwrap_err()
            .contains("--corpus"));
        assert!(parse(&["--stats-every"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn corpus_subcommand_verbs_parse() {
        let parse = |args: &[&str]| CorpusArgs::parse(args.iter().map(ToString::to_string));
        assert_eq!(
            parse(&["info", "a.tfc"]).unwrap(),
            CorpusArgs::Info {
                path: "a.tfc".into()
            }
        );
        assert_eq!(
            parse(&["merge", "out.tfc", "a.tfc", "b.tfc"]).unwrap(),
            CorpusArgs::Merge {
                out: "out.tfc".into(),
                inputs: vec!["a.tfc".into(), "b.tfc".into()],
            }
        );
        assert_eq!(
            parse(&["minimize", "a.tfc", "--out", "b.tfc"]).unwrap(),
            CorpusArgs::Minimize {
                path: "a.tfc".into(),
                out: Some("b.tfc".into()),
            }
        );
        assert_eq!(
            parse(&["minimize", "a.tfc"]).unwrap(),
            CorpusArgs::Minimize {
                path: "a.tfc".into(),
                out: None,
            }
        );
        assert!(parse(&[]).unwrap_err().contains("verb"));
        assert!(parse(&["frob"])
            .unwrap_err()
            .contains("unknown corpus verb"));
        assert!(parse(&["merge", "out.tfc"])
            .unwrap_err()
            .contains("at least one input"));
        assert!(parse(&["info", "a.tfc", "extra"])
            .unwrap_err()
            .contains("unexpected argument"));
    }

    #[test]
    fn dut_flag_parses_and_validates() {
        let args = parse(&["--dut", "cmd:tf-cli serve --mutant b2"]).unwrap();
        assert_eq!(
            args.dut.as_deref(),
            Some(&["tf-cli", "serve", "--mutant", "b2"].map(String::from)[..])
        );

        assert!(parse(&["--dut", "tf-cli serve"])
            .unwrap_err()
            .contains("cmd:<argv>"));
        assert!(parse(&["--dut", "cmd:"])
            .unwrap_err()
            .contains("needs a command"));
        assert!(parse(&["--dut", "cmd:x", "--mutant", "b2"])
            .unwrap_err()
            .contains("server-side"));
        assert!(parse(&["--dut", "cmd:x", "--jobs", "2"])
            .unwrap_err()
            .contains("--jobs 1"));
        // --dut composes with persistence and resume.
        assert!(parse(&["--dut", "cmd:x", "--corpus", "c", "--resume"]).is_ok());
    }

    #[test]
    fn crash_and_hang_expectations_parse() {
        assert_eq!(
            parse(&["--expect", "crash"]).unwrap().expect,
            Some(Expectation::Crash)
        );
        assert_eq!(
            parse(&["--expect", "hang"]).unwrap().expect,
            Some(Expectation::Hang)
        );
    }

    #[test]
    fn serve_args_parse_and_validate() {
        let parse = |args: &[&str]| ServeArgs::parse(args.iter().map(ToString::to_string));
        assert_eq!(parse(&[]).unwrap(), ServeArgs::default());
        let args = parse(&[
            "--mutant",
            "b2",
            "--mem",
            "65536",
            "--chaos-crash-after",
            "3",
            "--chaos-hang-after",
            "5",
            "--chaos-garble-after",
            "7",
        ])
        .unwrap();
        assert_eq!(args.mutant, Some(BugScenario::B2ReservedRounding));
        assert_eq!(args.mem, 65536);
        assert_eq!(args.chaos_crash_after, Some(3));
        assert_eq!(args.chaos_hang_after, Some(5));
        assert_eq!(args.chaos_garble_after, Some(7));
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["--mem", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--mutant", "nope"]).unwrap_err().contains("b2"));
        assert!(parse(&["--chaos-crash-after"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--frob"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--mutant", "nope"]).unwrap_err().contains("b2"));
        assert!(parse(&["--seed"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["--steps", "x"]).unwrap_err().contains("integer"));
        assert!(parse(&["--steps", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--jobs", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--window", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["--expect", "maybe"]).unwrap_err().contains("clean"));
    }
}
