//! `tf-cli` — command-line driver for TurboFuzz fuzzing campaigns.
//!
//! The binary is a thin shell over [`tf_fuzz::CampaignDriver`]: it
//! parses a handful of flags (hand-rolled — the container carries no
//! argument-parsing dependency), points the driver at the requested
//! device under test (the golden hart, a [`tf_arch::MutantHart`] with a
//! planted bug scenario, or an out-of-process `--dut` child) and prints
//! the report. `--jobs N` runs N coordinated workers around one shared
//! corpus; the default `--jobs 1` is bit-identical to the historical
//! single-threaded campaign.
//!
//! ```text
//! tf-cli fuzz --seed 7 --steps 10000 --jobs 4 --mutant b2 --expect divergence
//! tf-cli fuzz --seed 7 --steps 10000 --corpus seeds.tfc --autosave-every 8
//! tf-cli fuzz --seed 7 --steps 20000 --corpus seeds.tfc --resume
//! tf-cli corpus merge all.tfc run-a.tfc run-b.tfc
//! ```
//!
//! `--corpus` makes the campaign persistent: seeds load from the file
//! before the run and the grown corpus is saved back (atomically) after,
//! together with a full campaign checkpoint — per-worker rng streams
//! included, so `--resume` composes with any fixed `--jobs` count.
//! `--resume` thaws that checkpoint and continues to a raised `--steps`
//! budget — bit-identical to a single uninterrupted run, which is what
//! the CI determinism gate asserts byte for byte. All campaign reports
//! go to stdout; corpus bookkeeping and `--stats-every` live statistics
//! go to stderr so resumed and uninterrupted runs produce identical
//! stdout.
//!
//! `--expect divergence|clean` turns the campaign outcome into the exit
//! status, which is how CI gates the fuzzer end to end.

use std::path::Path;
use std::process::ExitCode;

use tf_fuzz::prelude::*;

mod args;

use args::{CorpusArgs, Expectation, FuzzArgs, ServeArgs};

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("fuzz") => match FuzzArgs::parse(argv) {
            Ok(args) => run_fuzz(&args),
            Err(error) => usage_error(&error),
        },
        Some("serve") => match ServeArgs::parse(argv) {
            Ok(args) => run_serve(&args),
            Err(error) => usage_error(&error),
        },
        Some("corpus") => match CorpusArgs::parse(argv) {
            Ok(args) => run_corpus(&args),
            Err(error) => usage_error(&error),
        },
        Some("--help" | "-h" | "help") | None => {
            println!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
    }
}

fn usage_error(error: &str) -> ExitCode {
    eprintln!("tf-cli: {error}");
    eprintln!("{}", args::USAGE);
    ExitCode::from(1)
}

fn fail(error: &str) -> ExitCode {
    eprintln!("tf-cli: {error}");
    ExitCode::from(1)
}

/// Map the campaign outcome to the exit status `--expect` demands.
fn verdict(report: &CampaignReport, expect: Option<Expectation>) -> ExitCode {
    match expect {
        None => ExitCode::SUCCESS,
        Some(Expectation::Divergence) if !report.is_clean() => ExitCode::SUCCESS,
        Some(Expectation::Clean) if report.is_clean() && report.dut_failures() == 0 => {
            ExitCode::SUCCESS
        }
        Some(Expectation::Crash) if report.dut_crashes > 0 => ExitCode::SUCCESS,
        Some(Expectation::Hang) if report.dut_hangs > 0 => ExitCode::SUCCESS,
        Some(expected) => {
            eprintln!(
                "tf-cli: expectation failed: wanted {expected}, campaign reported {}",
                report.outcome_summary()
            );
            ExitCode::from(2)
        }
    }
}

/// The CLI's [`EventSink`]: corpus bookkeeping and (opt-in) live
/// statistics, all on stderr so stdout stays report-only and
/// byte-comparable between resumed and uninterrupted runs.
struct StderrSink<'a> {
    /// The corpus file, for the bookkeeping lines that name it.
    path: Option<&'a Path>,
    /// `--stats-every N`: print a stats line every N completed batches
    /// (0 = off).
    stats_every: u64,
    /// `--steps`, for the `instructions x/y` progress fraction.
    budget: u64,
}

impl EventSink for StderrSink<'_> {
    fn event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::CorpusLoaded {
                loaded,
                skipped,
                truncated,
                checkpoint,
            } => {
                let path = self.path.expect("a corpus was loaded, so a path was given");
                eprintln!(
                    "corpus: loaded {} seed(s) from {} ({} skipped{}{})",
                    loaded,
                    path.display(),
                    skipped,
                    if *truncated { ", truncated tail" } else { "" },
                    if *checkpoint {
                        ", checkpoint present"
                    } else {
                        ""
                    },
                );
            }
            CampaignEvent::CorpusPrimed { admitted } => {
                eprintln!("corpus: primed {admitted} seed(s) into the campaign");
            }
            CampaignEvent::Resuming {
                instructions_done, ..
            } => {
                eprintln!(
                    "corpus: resuming at {} of {} instructions",
                    instructions_done, self.budget
                );
            }
            CampaignEvent::BatchCompleted {
                batch,
                programs,
                instructions,
                steps,
                unique_traces,
                corpus,
                divergent_runs,
                dut_failures,
                foreign_admitted,
                ..
            } => {
                if self.stats_every > 0 && batch % self.stats_every == 0 {
                    eprintln!(
                        "stats: batch {batch}  instructions {instructions}/{}  \
                         programs {programs}  steps {steps}  corpus {corpus}  \
                         traces {unique_traces}  divergent {divergent_runs}  \
                         dut-failures {dut_failures}  foreign {foreign_admitted}",
                        self.budget
                    );
                }
            }
            CampaignEvent::AutosaveWritten {
                ordinal,
                batches_completed,
            } => {
                eprintln!("corpus: autosave #{ordinal} at batch {batches_completed}");
            }
            CampaignEvent::DivergenceFound { .. } | CampaignEvent::DutFailureRecorded { .. } => {}
        }
    }
}

fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    if args.help {
        println!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let config = CampaignConfig::default()
        .with_seed(args.seed)
        .with_instruction_budget(args.steps)
        .with_program_len(args.len)
        .with_window(args.window)
        .with_schedule(args.schedule);
    // Stderr, not stdout: campaign reports must stay byte-comparable
    // between an in-process `--mutant` run and a `--dut … serve
    // --mutant` run, where the banner exists on one side only.
    if let Some(scenario) = args.mutant {
        eprintln!("injected bug scenario — {scenario}");
    }

    let path = args.corpus.as_deref().map(Path::new);
    let mut sink = StderrSink {
        path,
        stats_every: args.stats_every,
        budget: args.steps,
    };
    let mut driver = CampaignDriver::new(config.clone())
        .with_jobs(args.jobs)
        .with_resume(args.resume)
        .with_autosave_every(args.autosave_every)
        .with_event_sink(&mut sink);
    if let Some(path) = path {
        driver = driver.with_corpus(path);
    }

    let mem_size = config.mem_size;
    let outcome = match (&args.dut, args.mutant) {
        // A resumed remote campaign re-bases the child's cumulative
        // batch counter (spec.remote_batches, thawed from the
        // checkpoint) so server-side chaos schedules do not re-fire.
        (Some(argv), _) => driver.run(|spec| {
            DutSupervisor::spawn(
                argv.clone(),
                SupervisorConfig::default(),
                spec.remote_batches,
            )
            .map_err(|error| error.to_string())
        }),
        (None, Some(scenario)) => driver.run(move |_| Ok(MutantHart::new(mem_size, scenario))),
        (None, None) => driver.run(|_| Ok(Hart::new(mem_size))),
    };
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(error) => return fail(&error.to_string()),
    };

    // The report comes first: a failing save must not swallow what the
    // (completed) campaign observed. Plain report when stdout must be
    // byte-comparable across runs (persistent single-worker campaigns
    // and remote-DUT runs, whose CI gates cmp stdout); otherwise the
    // full outcome with per-worker lines and wall-clock throughput.
    if args.jobs == 1 && (args.corpus.is_some() || args.dut.is_some()) {
        println!("{}", outcome.report);
    } else {
        println!("{outcome}");
    }
    if let Some(stats) = outcome.remote {
        eprintln!(
            "remote dut: {} batch(es) issued, {} respawn(s)",
            stats.batches_issued, stats.respawns
        );
        if stats.dead {
            eprintln!(
                "remote dut: respawn budget exhausted after {} of {} instructions — \
                 campaign ended early (findings above are still valid)",
                outcome.report.instructions_generated, args.steps
            );
        }
    }
    match outcome.save() {
        Ok(Some(saved)) => eprintln!(
            "corpus: saved {} seed(s) + checkpoint to {}",
            saved.seeds,
            saved.path.display()
        ),
        Ok(None) => {}
        Err(error) => return fail(&format!("saving corpus: {error}")),
    }
    verdict(&outcome.report, args.expect)
}

/// Distinctive exit status for a scheduled chaos crash, so supervisor
/// crash findings carry a recognisable, deterministic cause string.
const CHAOS_CRASH_EXIT: u8 = 117;

/// `tf-cli serve`: speak the remote-DUT protocol over stdin/stdout.
/// Stdout carries protocol frames only; all diagnostics go to stderr.
fn run_serve(args: &ServeArgs) -> ExitCode {
    if args.help {
        println!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let chaos = ChaosConfig {
        crash_after: args.chaos_crash_after,
        hang_after: args.chaos_hang_after,
        garble_after: args.chaos_garble_after,
    };
    let mem_size = args.mem;
    let mut golden;
    let mut mutant_hart;
    let dut: &mut dyn Dut = match args.mutant {
        None => {
            golden = Hart::new(mem_size);
            &mut golden
        }
        Some(scenario) => {
            mutant_hart = MutantHart::new(mem_size, scenario);
            &mut mutant_hart
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve(dut, &chaos, &mut input, &mut output) {
        Ok(ServeOutcome::ChaosCrash) => ExitCode::from(CHAOS_CRASH_EXIT),
        Ok(_) => ExitCode::SUCCESS,
        Err(error) => fail(&error.to_string()),
    }
}

fn run_corpus(args: &CorpusArgs) -> ExitCode {
    match args {
        CorpusArgs::Info { path } => corpus_info(Path::new(path)),
        CorpusArgs::Merge { out, inputs } => corpus_merge(Path::new(out), inputs),
        CorpusArgs::Minimize { path, out } => {
            let destination = out.as_deref().map_or_else(|| Path::new(path), Path::new);
            corpus_minimize(Path::new(path), destination)
        }
    }
}

fn corpus_info(path: &Path) -> ExitCode {
    let loaded = match persist::load_file(path) {
        Ok(loaded) => loaded,
        Err(error) => return fail(&error.to_string()),
    };
    let words: usize = loaded.entries.iter().map(|e| e.program.len()).sum();
    let digests: std::collections::HashSet<u64> =
        loaded.entries.iter().map(|e| e.trace_digest).collect();
    let trap_sets: std::collections::HashSet<u64> =
        loaded.entries.iter().map(|e| e.trap_causes).collect();
    println!("corpus {}:", path.display());
    println!(
        "  format v{}  digest fingerprint {:#018x}",
        persist::FORMAT_VERSION,
        tf_arch::digest::STABILITY_FINGERPRINT
    );
    println!(
        "  {} entries ({} instructions), {} unique trace digests, {} trap-cause sets",
        loaded.entries.len(),
        words,
        digests.len(),
        trap_sets.len()
    );
    println!(
        "  salvage: {} loaded, {} corrupt, {} unknown-tag{}",
        loaded.report.loaded,
        loaded.report.skipped,
        loaded.report.unknown,
        if loaded.report.truncated {
            ", truncated tail"
        } else {
            ""
        }
    );
    match loaded.checkpoint {
        Some(checkpoint) => {
            println!(
                "  checkpoint: {} instructions against `{}` ({} divergent runs)",
                checkpoint.report.instructions_generated,
                checkpoint.report.dut,
                checkpoint.report.divergent_runs
            );
            println!(
                "  coordinator: {} worker stream(s), {} finding(s), \
                 autosave #{} after {} batch(es)",
                checkpoint.worker_count,
                checkpoint.report.findings.len(),
                checkpoint.autosave_ordinal,
                checkpoint.batches_completed
            );
        }
        None => println!("  checkpoint: none"),
    }
    if !loaded.entries.is_empty() {
        println!("  calibration (energy under fast/explore):");
        let (mut cost, mut cov_yield, mut spent, mut children) = (0u64, 0u64, 0u64, 0u64);
        for (index, entry) in loaded.entries.iter().enumerate() {
            let c = &entry.calibration;
            println!(
                "    [{index:4}] {:3} insns  cost {:6}  yield {}  spent {:5}  \
                 children {:4}  energy {}/{}",
                entry.program.len(),
                c.cost,
                c.cov_yield,
                c.spent,
                c.children,
                PowerSchedule::Fast.energy(c),
                PowerSchedule::Explore.energy(c),
            );
            cost += c.cost;
            cov_yield += u64::from(c.cov_yield);
            spent += c.spent;
            children += c.children;
        }
        println!(
            "  calibration totals: cost {cost}, yield {cov_yield}, spent {spent}, \
             children {children}"
        );
    }
    ExitCode::SUCCESS
}

fn corpus_merge(out: &Path, inputs: &[String]) -> ExitCode {
    let mut merged = Corpus::new(0);
    for input in inputs {
        let loaded = match persist::load_file(Path::new(input)) {
            Ok(loaded) => loaded,
            Err(error) => return fail(&format!("{input}: {error}")),
        };
        let admitted = merged.merge_entries(&loaded.entries);
        eprintln!(
            "corpus: {input}: {} entries, {admitted} new",
            loaded.entries.len()
        );
    }
    if let Err(error) = merged.save(out) {
        return fail(&format!("saving {}: {error}", out.display()));
    }
    println!(
        "merged {} corpora into {} ({} entries)",
        inputs.len(),
        out.display(),
        merged.len()
    );
    ExitCode::SUCCESS
}

fn corpus_minimize(path: &Path, out: &Path) -> ExitCode {
    let loaded = match persist::load_file(path) {
        Ok(loaded) => loaded,
        Err(error) => return fail(&error.to_string()),
    };
    if loaded.checkpoint.is_some() {
        eprintln!(
            "tf-cli: warning: minimized output drops the campaign checkpoint \
             (a shrunk corpus cannot resume bit-identically)"
        );
    }
    let kept = persist::minimize_entries(&loaded.entries);
    if let Err(error) = persist::save_entries(out, &kept) {
        return fail(&format!("saving {}: {error}", out.display()));
    }
    println!(
        "minimized {} -> {} entries into {}",
        loaded.entries.len(),
        kept.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b2_campaign_diverges_and_clean_campaign_does_not() {
        // The same end-to-end path `main` drives, minus the process exit.
        let args = FuzzArgs {
            seed: 1,
            steps: 1_000,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }

    #[test]
    fn sharded_campaigns_drive_the_same_gates() {
        let args = FuzzArgs {
            seed: 1,
            steps: 4_000,
            jobs: 4,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }

    #[test]
    fn persistent_campaigns_save_load_and_resume() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("seeds.tfc");
        let corpus_str = corpus.to_str().unwrap().to_string();

        // Interrupted at half budget, then resumed to the full budget.
        let half = FuzzArgs {
            seed: 3,
            steps: 1_000,
            corpus: Some(corpus_str.clone()),
            expect: Some(Expectation::Clean),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&half), ExitCode::SUCCESS);
        assert!(corpus.exists());
        let resumed = FuzzArgs {
            steps: 2_000,
            resume: true,
            ..half.clone()
        };
        assert_eq!(run_fuzz(&resumed), ExitCode::SUCCESS);

        // The resumed file still carries a loadable checkpoint at the
        // full budget.
        let loaded = persist::load_file(&corpus).unwrap();
        let checkpoint = loaded.checkpoint.unwrap();
        assert!(checkpoint.report.instructions_generated >= 2_000);
        assert!(!loaded.entries.is_empty());

        // A multi-worker persistent run seeds from and rewrites the same
        // file — and since the coordinator, freezes a resumable
        // multi-stream checkpoint of its own.
        let sharded = FuzzArgs {
            steps: 2_000,
            jobs: 2,
            resume: false,
            ..half
        };
        assert_eq!(run_fuzz(&sharded), ExitCode::SUCCESS);
        let loaded = persist::load_file(&corpus).unwrap();
        let checkpoint = loaded.checkpoint.expect("coordinated runs checkpoint too");
        assert_eq!(checkpoint.worker_count, 2);
        assert_eq!(checkpoint.workers.len(), 2);
        assert!(!loaded.entries.is_empty());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feedback_schedule_campaigns_persist_and_resume() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-sched-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("seeds.tfc");

        let half = FuzzArgs {
            seed: 11,
            steps: 1_000,
            schedule: PowerSchedule::Fast,
            corpus: Some(corpus.to_str().unwrap().to_string()),
            expect: Some(Expectation::Clean),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&half), ExitCode::SUCCESS);
        let resumed = FuzzArgs {
            steps: 2_000,
            resume: true,
            ..half.clone()
        };
        assert_eq!(run_fuzz(&resumed), ExitCode::SUCCESS);

        // The same checkpoint refuses to resume under another schedule:
        // the schedule is part of the config fingerprint.
        let wrong_schedule = FuzzArgs {
            steps: 3_000,
            schedule: PowerSchedule::Explore,
            resume: true,
            ..half
        };
        assert_eq!(run_fuzz(&wrong_schedule), ExitCode::from(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_checkpoint_or_file_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-nores-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.tfc");
        let args = FuzzArgs {
            corpus: Some(missing.to_str().unwrap().to_string()),
            resume: true,
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::from(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
