//! `tf-cli` — command-line driver for TurboFuzz fuzzing campaigns.
//!
//! The binary is a thin shell over [`tf_fuzz::run_sharded`]: it parses a
//! handful of flags (hand-rolled — the container carries no argument-
//! parsing dependency), shards the instruction budget across `--jobs`
//! worker campaigns pointed at the requested device under test (the
//! golden hart, or a [`tf_arch::MutantHart`] with a planted bug
//! scenario) and prints the merged [`tf_fuzz::ShardedReport`]. With the
//! default `--jobs 1` the campaign portion of the output is bit-
//! identical to the single-threaded [`tf_fuzz::Campaign`].
//!
//! ```text
//! tf-cli fuzz --seed 7 --steps 10000 --jobs 4 --mutant b2 --expect divergence
//! ```
//!
//! `--expect divergence|clean` turns the campaign outcome into the exit
//! status, which is how CI gates the fuzzer end to end.

use std::process::ExitCode;

use tf_arch::{Hart, MutantHart};
use tf_fuzz::{run_sharded, CampaignConfig, ShardedReport};

mod args;

use args::{Expectation, FuzzArgs};

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("fuzz") => match FuzzArgs::parse(argv) {
            Ok(args) => run_fuzz(&args),
            Err(error) => {
                eprintln!("tf-cli: {error}");
                eprintln!("{}", args::USAGE);
                ExitCode::from(1)
            }
        },
        Some("--help" | "-h" | "help") | None => {
            println!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("tf-cli: unknown command `{other}`");
            eprintln!("{}", args::USAGE);
            ExitCode::from(1)
        }
    }
}

fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    if args.help {
        println!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let config = CampaignConfig {
        seed: args.seed,
        instruction_budget: args.steps,
        program_len: args.len,
        ..CampaignConfig::default()
    };
    let mem_size = config.mem_size;
    if let Some(scenario) = args.mutant {
        println!("injected bug scenario — {scenario}");
    }
    let sharded: ShardedReport = match args.mutant {
        None => run_sharded(&config, args.jobs, |_| Hart::new(mem_size)),
        Some(scenario) => run_sharded(&config, args.jobs, move |_| {
            MutantHart::new(mem_size, scenario)
        }),
    };
    println!("{sharded}");
    let report = &sharded.merged;
    match args.expect {
        None => ExitCode::SUCCESS,
        Some(Expectation::Divergence) if !report.is_clean() => ExitCode::SUCCESS,
        Some(Expectation::Clean) if report.is_clean() => ExitCode::SUCCESS,
        Some(expected) => {
            eprintln!(
                "tf-cli: expectation failed: wanted {expected}, campaign reported {}",
                if report.is_clean() {
                    "no divergence"
                } else {
                    "divergence"
                }
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::BugScenario;

    #[test]
    fn b2_campaign_diverges_and_clean_campaign_does_not() {
        // The same end-to-end path `main` drives, minus the process exit.
        let args = FuzzArgs {
            seed: 1,
            steps: 1_000,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }

    #[test]
    fn sharded_campaigns_drive_the_same_gates() {
        let args = FuzzArgs {
            seed: 1,
            steps: 4_000,
            jobs: 4,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }
}
