//! `tf-cli` — command-line driver for TurboFuzz fuzzing campaigns.
//!
//! The binary is a thin shell over [`tf_fuzz`]: it parses a handful of
//! flags (hand-rolled — the container carries no argument-parsing
//! dependency), shards the instruction budget across `--jobs` worker
//! campaigns pointed at the requested device under test (the golden
//! hart, or a [`tf_arch::MutantHart`] with a planted bug scenario) and
//! prints the merged report. With the default `--jobs 1` the campaign
//! portion of the output is bit-identical to the single-threaded
//! [`tf_fuzz::Campaign`].
//!
//! ```text
//! tf-cli fuzz --seed 7 --steps 10000 --jobs 4 --mutant b2 --expect divergence
//! tf-cli fuzz --seed 7 --steps 10000 --corpus seeds.tfc
//! tf-cli fuzz --seed 7 --steps 20000 --corpus seeds.tfc --resume
//! tf-cli corpus merge all.tfc run-a.tfc run-b.tfc
//! ```
//!
//! `--corpus` makes the campaign persistent: seeds load from the file
//! before the run and the grown corpus is saved back (atomically) after,
//! together with a full campaign checkpoint when `--jobs 1`. `--resume`
//! thaws that checkpoint and continues to a raised `--steps` budget —
//! bit-identical to a single uninterrupted run, which is what the CI
//! determinism gate asserts byte for byte. All campaign reports go to
//! stdout; corpus bookkeeping goes to stderr so resumed and
//! uninterrupted runs produce identical stdout.
//!
//! `--expect divergence|clean` turns the campaign outcome into the exit
//! status, which is how CI gates the fuzzer end to end.

use std::path::Path;
use std::process::ExitCode;

use tf_fuzz::prelude::*;

mod args;

use args::{CorpusArgs, Expectation, FuzzArgs, ServeArgs};

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    match argv.next().as_deref() {
        Some("fuzz") => match FuzzArgs::parse(argv) {
            Ok(args) => run_fuzz(&args),
            Err(error) => usage_error(&error),
        },
        Some("serve") => match ServeArgs::parse(argv) {
            Ok(args) => run_serve(&args),
            Err(error) => usage_error(&error),
        },
        Some("corpus") => match CorpusArgs::parse(argv) {
            Ok(args) => run_corpus(&args),
            Err(error) => usage_error(&error),
        },
        Some("--help" | "-h" | "help") | None => {
            println!("{}", args::USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
    }
}

fn usage_error(error: &str) -> ExitCode {
    eprintln!("tf-cli: {error}");
    eprintln!("{}", args::USAGE);
    ExitCode::from(1)
}

fn fail(error: &str) -> ExitCode {
    eprintln!("tf-cli: {error}");
    ExitCode::from(1)
}

/// Map the campaign outcome to the exit status `--expect` demands.
fn verdict(report: &CampaignReport, expect: Option<Expectation>) -> ExitCode {
    match expect {
        None => ExitCode::SUCCESS,
        Some(Expectation::Divergence) if !report.is_clean() => ExitCode::SUCCESS,
        Some(Expectation::Clean) if report.is_clean() && report.dut_failures() == 0 => {
            ExitCode::SUCCESS
        }
        Some(Expectation::Crash) if report.dut_crashes > 0 => ExitCode::SUCCESS,
        Some(Expectation::Hang) if report.dut_hangs > 0 => ExitCode::SUCCESS,
        Some(expected) => {
            eprintln!(
                "tf-cli: expectation failed: wanted {expected}, campaign reported {}",
                outcome_summary(report)
            );
            ExitCode::from(2)
        }
    }
}

/// Human description of what a campaign actually reported, for
/// expectation-failure messages.
fn outcome_summary(report: &CampaignReport) -> String {
    let mut parts = Vec::new();
    if !report.is_clean() {
        parts.push("divergence");
    }
    if report.dut_crashes > 0 {
        parts.push("dut crash");
    }
    if report.dut_hangs > 0 {
        parts.push("dut hang");
    }
    if report.dut_desyncs > 0 {
        parts.push("dut desync");
    }
    if parts.is_empty() {
        "clean".to_string()
    } else {
        parts.join(" + ")
    }
}

fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    if args.help {
        println!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let config = CampaignConfig::default()
        .with_seed(args.seed)
        .with_instruction_budget(args.steps)
        .with_program_len(args.len)
        .with_window(args.window)
        .with_schedule(args.schedule);
    // Stderr, not stdout: campaign reports must stay byte-comparable
    // between an in-process `--mutant` run and a `--dut … serve
    // --mutant` run, where the banner exists on one side only.
    if let Some(scenario) = args.mutant {
        eprintln!("injected bug scenario — {scenario}");
    }
    match &args.corpus {
        Some(path) => run_fuzz_persistent(args, config, Path::new(path)),
        None => match &args.dut {
            Some(argv) => run_fuzz_ephemeral_remote(args, config, argv),
            None => run_fuzz_ephemeral(args, &config),
        },
    }
}

/// The original in-memory path: shard, merge, print, gate.
fn run_fuzz_ephemeral(args: &FuzzArgs, config: &CampaignConfig) -> ExitCode {
    let sharded = run_sharded_for(config, args.jobs, args.mutant, &[]);
    println!("{sharded}");
    verdict(&sharded.merged, args.expect)
}

/// Ephemeral campaign against an out-of-process DUT. Runs a plain
/// (unsharded) [`Campaign`] so stdout carries only the deterministic
/// report — [`ShardedReport`] prints wall-clock throughput, which would
/// break byte-for-byte report comparison.
fn run_fuzz_ephemeral_remote(args: &FuzzArgs, config: CampaignConfig, argv: &[String]) -> ExitCode {
    let mut supervisor = match DutSupervisor::spawn(argv.to_vec(), SupervisorConfig::default(), 0) {
        Ok(supervisor) => supervisor,
        Err(error) => return fail(&error.to_string()),
    };
    let steps = args.steps;
    let report = Campaign::new(config).run(&mut supervisor);
    println!("{report}");
    remote_epilogue(&supervisor, &report, steps);
    verdict(&report, args.expect)
}

/// Stderr bookkeeping after a remote campaign: lineage statistics, and
/// a loud note when the respawn budget ran out mid-campaign.
fn remote_epilogue(supervisor: &DutSupervisor, report: &CampaignReport, steps: u64) {
    eprintln!(
        "remote dut: {} batch(es) issued, {} respawn(s)",
        supervisor.batches_issued(),
        supervisor.respawns()
    );
    if supervisor.is_dead() {
        eprintln!(
            "remote dut: respawn budget exhausted after {} of {} instructions — \
             campaign ended early (findings above are still valid)",
            report.instructions_generated, steps
        );
    }
}

fn run_sharded_for(
    config: &CampaignConfig,
    jobs: usize,
    mutant: Option<BugScenario>,
    seeds: &[SeedEntry],
) -> ShardedReport {
    let mem_size = config.mem_size;
    match mutant {
        None => run_sharded_seeded(config, jobs, seeds, |_| Hart::new(mem_size)),
        Some(scenario) => run_sharded_seeded(config, jobs, seeds, move |_| {
            MutantHart::new(mem_size, scenario)
        }),
    }
}

/// The persistent path: load seeds (and maybe a checkpoint) from the
/// corpus file, run, save the grown corpus back. All bookkeeping lines
/// go to stderr; only the campaign report reaches stdout, so a resumed
/// run and an uninterrupted run of the same budget print byte-identical
/// reports.
fn run_fuzz_persistent(args: &FuzzArgs, config: CampaignConfig, path: &Path) -> ExitCode {
    let loaded: Option<LoadedFile> = if path.exists() {
        match persist::load_file(path) {
            Ok(loaded) => {
                let r = &loaded.report;
                eprintln!(
                    "corpus: loaded {} seed(s) from {} ({} skipped{}{})",
                    r.loaded,
                    path.display(),
                    r.skipped,
                    if r.truncated { ", truncated tail" } else { "" },
                    if loaded.checkpoint.is_some() {
                        ", checkpoint present"
                    } else {
                        ""
                    },
                );
                Some(loaded)
            }
            Err(error) => return fail(&error.to_string()),
        }
    } else if args.resume {
        return fail(&format!(
            "cannot resume: `{}` does not exist",
            path.display()
        ));
    } else {
        None
    };

    if args.jobs > 1 {
        // Sharded persistent run: seed every worker from the file, save
        // the merged worker corpora back (no checkpoint — those freeze
        // exactly one campaign, and resuming one against a corpus grown
        // by other workers would not be bit-identical).
        if loaded.as_ref().is_some_and(|l| l.checkpoint.is_some()) {
            eprintln!(
                "corpus: warning: a --jobs {} run saves seeds only; the file's \
                 campaign checkpoint is dropped and --resume will no longer work",
                args.jobs
            );
        }
        let seeds = loaded.map(|l| l.entries).unwrap_or_default();
        let sharded = run_sharded_for(&config, args.jobs, args.mutant, &seeds);
        // The report comes first: a failing save must not swallow what
        // the (completed) campaign observed.
        println!("{sharded}");
        if let Err(error) = persist::save_entries(path, &sharded.corpus) {
            return fail(&format!("saving corpus: {error}"));
        }
        eprintln!(
            "corpus: saved {} seed(s) to {}",
            sharded.corpus.len(),
            path.display()
        );
        return verdict(&sharded.merged, args.expect);
    }

    // Single campaign: checkpointable, resumable.
    let mem_size = config.mem_size;
    // A resumed remote campaign re-bases the child's cumulative batch
    // counter so server-side chaos schedules do not re-fire — the
    // checkpoint carries the supervisor's issued-batch count.
    let remote_offset = if args.resume {
        loaded
            .as_ref()
            .and_then(|l| l.checkpoint.as_ref())
            .and_then(|c| c.remote_batches)
            .unwrap_or(0)
    } else {
        0
    };
    let mut supervisor = match &args.dut {
        Some(argv) => {
            match DutSupervisor::spawn(argv.clone(), SupervisorConfig::default(), remote_offset) {
                Ok(supervisor) => Some(supervisor),
                Err(error) => return fail(&error.to_string()),
            }
        }
        None => None,
    };
    let mut golden;
    let mut mutant_hart;
    let dut: &mut dyn Dut = match (&mut supervisor, args.mutant) {
        (Some(supervisor), _) => supervisor,
        (None, None) => {
            golden = Hart::new(mem_size);
            &mut golden
        }
        (None, Some(scenario)) => {
            mutant_hart = MutantHart::new(mem_size, scenario);
            &mut mutant_hart
        }
    };

    let (mut campaign, prior) = if args.resume {
        let loaded = loaded.expect("resume requires an existing file");
        if loaded.report.skipped > 0 || loaded.report.truncated {
            return fail(&format!(
                "`{}` lost records to corruption ({} skipped{}); a damaged corpus \
                 cannot resume bit-identically — re-run without --resume to reseed from it",
                path.display(),
                loaded.report.skipped,
                if loaded.report.truncated {
                    ", truncated tail"
                } else {
                    ""
                }
            ));
        }
        let Some(checkpoint) = loaded.checkpoint else {
            return fail(&format!(
                "`{}` carries no campaign checkpoint to resume \
                 (was it written by `corpus merge` or a --jobs > 1 run?)",
                path.display()
            ));
        };
        if checkpoint.report.dut != dut.name() {
            return fail(&format!(
                "checkpoint was recorded against `{}`, not `{}` — pass the same --mutant",
                checkpoint.report.dut,
                dut.name()
            ));
        }
        if checkpoint.report.instructions_generated >= args.steps {
            return fail(&format!(
                "nothing to resume: the checkpoint already covers {} instructions; \
                 raise --steps beyond that to continue the campaign",
                checkpoint.report.instructions_generated
            ));
        }
        let campaign = match Campaign::restore(config, &checkpoint, &loaded.entries) {
            Ok(campaign) => campaign,
            Err(error) => return fail(&error.to_string()),
        };
        eprintln!(
            "corpus: resuming at {} of {} instructions",
            checkpoint.report.instructions_generated, args.steps
        );
        (campaign, checkpoint.report)
    } else {
        let mut campaign = Campaign::new(config);
        if let Some(loaded) = &loaded {
            let admitted = campaign.prime(&loaded.entries);
            eprintln!("corpus: primed {admitted} seed(s) into the campaign");
        }
        (campaign, CampaignReport::default())
    };

    let report = campaign.resume(dut, prior);
    // The report comes first: a failing save must not swallow what the
    // (completed) campaign observed.
    println!("{report}");
    let mut checkpoint = campaign.checkpoint(&report);
    if let Some(supervisor) = &supervisor {
        checkpoint.remote_batches = Some(supervisor.batches_issued());
        remote_epilogue(supervisor, &report, args.steps);
    }
    if let Err(error) = persist::save_campaign(path, campaign.corpus().entries(), &checkpoint) {
        return fail(&format!("saving corpus: {error}"));
    }
    eprintln!(
        "corpus: saved {} seed(s) + checkpoint to {}",
        campaign.corpus().len(),
        path.display()
    );
    verdict(&report, args.expect)
}

/// Distinctive exit status for a scheduled chaos crash, so supervisor
/// crash findings carry a recognisable, deterministic cause string.
const CHAOS_CRASH_EXIT: u8 = 117;

/// `tf-cli serve`: speak the remote-DUT protocol over stdin/stdout.
/// Stdout carries protocol frames only; all diagnostics go to stderr.
fn run_serve(args: &ServeArgs) -> ExitCode {
    if args.help {
        println!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let chaos = ChaosConfig {
        crash_after: args.chaos_crash_after,
        hang_after: args.chaos_hang_after,
        garble_after: args.chaos_garble_after,
    };
    let mem_size = args.mem;
    let mut golden;
    let mut mutant_hart;
    let dut: &mut dyn Dut = match args.mutant {
        None => {
            golden = Hart::new(mem_size);
            &mut golden
        }
        Some(scenario) => {
            mutant_hart = MutantHart::new(mem_size, scenario);
            &mut mutant_hart
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    match serve(dut, &chaos, &mut input, &mut output) {
        Ok(ServeOutcome::ChaosCrash) => ExitCode::from(CHAOS_CRASH_EXIT),
        Ok(_) => ExitCode::SUCCESS,
        Err(error) => fail(&error.to_string()),
    }
}

fn run_corpus(args: &CorpusArgs) -> ExitCode {
    match args {
        CorpusArgs::Info { path } => corpus_info(Path::new(path)),
        CorpusArgs::Merge { out, inputs } => corpus_merge(Path::new(out), inputs),
        CorpusArgs::Minimize { path, out } => {
            let destination = out.as_deref().map_or_else(|| Path::new(path), Path::new);
            corpus_minimize(Path::new(path), destination)
        }
    }
}

fn corpus_info(path: &Path) -> ExitCode {
    let loaded = match persist::load_file(path) {
        Ok(loaded) => loaded,
        Err(error) => return fail(&error.to_string()),
    };
    let words: usize = loaded.entries.iter().map(|e| e.program.len()).sum();
    let digests: std::collections::HashSet<u64> =
        loaded.entries.iter().map(|e| e.trace_digest).collect();
    let trap_sets: std::collections::HashSet<u64> =
        loaded.entries.iter().map(|e| e.trap_causes).collect();
    println!("corpus {}:", path.display());
    println!(
        "  format v{}  digest fingerprint {:#018x}",
        persist::FORMAT_VERSION,
        tf_arch::digest::STABILITY_FINGERPRINT
    );
    println!(
        "  {} entries ({} instructions), {} unique trace digests, {} trap-cause sets",
        loaded.entries.len(),
        words,
        digests.len(),
        trap_sets.len()
    );
    println!(
        "  salvage: {} loaded, {} corrupt, {} unknown-tag{}",
        loaded.report.loaded,
        loaded.report.skipped,
        loaded.report.unknown,
        if loaded.report.truncated {
            ", truncated tail"
        } else {
            ""
        }
    );
    match loaded.checkpoint {
        Some(checkpoint) => println!(
            "  checkpoint: {} instructions against `{}` ({} divergent runs)",
            checkpoint.report.instructions_generated,
            checkpoint.report.dut,
            checkpoint.report.divergent_runs
        ),
        None => println!("  checkpoint: none"),
    }
    if !loaded.entries.is_empty() {
        println!("  calibration (energy under fast/explore):");
        let (mut cost, mut cov_yield, mut spent, mut children) = (0u64, 0u64, 0u64, 0u64);
        for (index, entry) in loaded.entries.iter().enumerate() {
            let c = &entry.calibration;
            println!(
                "    [{index:4}] {:3} insns  cost {:6}  yield {}  spent {:5}  \
                 children {:4}  energy {}/{}",
                entry.program.len(),
                c.cost,
                c.cov_yield,
                c.spent,
                c.children,
                PowerSchedule::Fast.energy(c),
                PowerSchedule::Explore.energy(c),
            );
            cost += c.cost;
            cov_yield += u64::from(c.cov_yield);
            spent += c.spent;
            children += c.children;
        }
        println!(
            "  calibration totals: cost {cost}, yield {cov_yield}, spent {spent}, \
             children {children}"
        );
    }
    ExitCode::SUCCESS
}

fn corpus_merge(out: &Path, inputs: &[String]) -> ExitCode {
    let mut merged = Corpus::new(0);
    for input in inputs {
        let loaded = match persist::load_file(Path::new(input)) {
            Ok(loaded) => loaded,
            Err(error) => return fail(&format!("{input}: {error}")),
        };
        let admitted = merged.merge_entries(&loaded.entries);
        eprintln!(
            "corpus: {input}: {} entries, {admitted} new",
            loaded.entries.len()
        );
    }
    if let Err(error) = merged.save(out) {
        return fail(&format!("saving {}: {error}", out.display()));
    }
    println!(
        "merged {} corpora into {} ({} entries)",
        inputs.len(),
        out.display(),
        merged.len()
    );
    ExitCode::SUCCESS
}

fn corpus_minimize(path: &Path, out: &Path) -> ExitCode {
    let loaded = match persist::load_file(path) {
        Ok(loaded) => loaded,
        Err(error) => return fail(&error.to_string()),
    };
    if loaded.checkpoint.is_some() {
        eprintln!(
            "tf-cli: warning: minimized output drops the campaign checkpoint \
             (a shrunk corpus cannot resume bit-identically)"
        );
    }
    let kept = persist::minimize_entries(&loaded.entries);
    if let Err(error) = persist::save_entries(out, &kept) {
        return fail(&format!("saving {}: {error}", out.display()));
    }
    println!(
        "minimized {} -> {} entries into {}",
        loaded.entries.len(),
        kept.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b2_campaign_diverges_and_clean_campaign_does_not() {
        // The same end-to-end path `main` drives, minus the process exit.
        let args = FuzzArgs {
            seed: 1,
            steps: 1_000,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }

    #[test]
    fn sharded_campaigns_drive_the_same_gates() {
        let args = FuzzArgs {
            seed: 1,
            steps: 4_000,
            jobs: 4,
            mutant: Some(BugScenario::B2ReservedRounding),
            expect: Some(Expectation::Divergence),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
        let args = FuzzArgs {
            mutant: None,
            expect: Some(Expectation::Clean),
            ..args
        };
        assert_eq!(run_fuzz(&args), ExitCode::SUCCESS);
    }

    #[test]
    fn persistent_campaigns_save_load_and_resume() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("seeds.tfc");
        let corpus_str = corpus.to_str().unwrap().to_string();

        // Interrupted at half budget, then resumed to the full budget.
        let half = FuzzArgs {
            seed: 3,
            steps: 1_000,
            corpus: Some(corpus_str.clone()),
            expect: Some(Expectation::Clean),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&half), ExitCode::SUCCESS);
        assert!(corpus.exists());
        let resumed = FuzzArgs {
            steps: 2_000,
            resume: true,
            ..half.clone()
        };
        assert_eq!(run_fuzz(&resumed), ExitCode::SUCCESS);

        // The resumed file still carries a loadable checkpoint at the
        // full budget.
        let loaded = persist::load_file(&corpus).unwrap();
        let checkpoint = loaded.checkpoint.unwrap();
        assert!(checkpoint.report.instructions_generated >= 2_000);
        assert!(!loaded.entries.is_empty());

        // A sharded persistent run seeds from and rewrites the same file.
        let sharded = FuzzArgs {
            steps: 2_000,
            jobs: 2,
            resume: false,
            ..half
        };
        assert_eq!(run_fuzz(&sharded), ExitCode::SUCCESS);
        let loaded = persist::load_file(&corpus).unwrap();
        assert!(loaded.checkpoint.is_none(), "sharded runs save seeds only");
        assert!(!loaded.entries.is_empty());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feedback_schedule_campaigns_persist_and_resume() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-sched-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("seeds.tfc");

        let half = FuzzArgs {
            seed: 11,
            steps: 1_000,
            schedule: PowerSchedule::Fast,
            corpus: Some(corpus.to_str().unwrap().to_string()),
            expect: Some(Expectation::Clean),
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&half), ExitCode::SUCCESS);
        let resumed = FuzzArgs {
            steps: 2_000,
            resume: true,
            ..half.clone()
        };
        assert_eq!(run_fuzz(&resumed), ExitCode::SUCCESS);

        // The same checkpoint refuses to resume under another schedule:
        // the schedule is part of the config fingerprint.
        let wrong_schedule = FuzzArgs {
            steps: 3_000,
            schedule: PowerSchedule::Explore,
            resume: true,
            ..half
        };
        assert_eq!(run_fuzz(&wrong_schedule), ExitCode::from(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_checkpoint_or_file_fails_cleanly() {
        let dir = std::env::temp_dir().join(format!("tf-cli-test-nores-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("missing.tfc");
        let args = FuzzArgs {
            corpus: Some(missing.to_str().unwrap().to_string()),
            resume: true,
            ..FuzzArgs::default()
        };
        assert_eq!(run_fuzz(&args), ExitCode::from(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
