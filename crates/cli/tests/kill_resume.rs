//! SIGKILL crash-recovery end to end: a `tf-cli fuzz` process killed
//! mid-campaign leaves behind its last autosave (saves are atomic
//! temp+rename, so the file is always a complete checkpoint); a
//! `--resume` run over that file must land on the same bytes an
//! uninterrupted campaign prints — at jobs 1 verbatim, at jobs 4 up to
//! the wall-clock throughput line.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> String {
    env!("CARGO_BIN_EXE_tf-cli").to_string()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tf-kill-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Run `tf-cli fuzz` to completion and return its stdout.
fn fuzz(args: &[&str]) -> String {
    let output = Command::new(bin())
        .arg("fuzz")
        .args(args)
        .output()
        .expect("tf-cli runs");
    assert!(
        output.status.success(),
        "tf-cli fuzz {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Drop the wall-clock throughput line (the only timing-dependent byte
/// in a multi-worker report).
fn timing_free(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|line| !line.trim_start().starts_with("throughput:"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Spawn an effectively unbounded autosaving campaign, SIGKILL it after
/// its first autosave lands, and return the instructions the surviving
/// checkpoint covers.
fn kill_mid_campaign(corpus: &Path, jobs: &str) -> u64 {
    let corpus_str = corpus.to_str().unwrap();
    let mut child = Command::new(bin())
        .args([
            "fuzz",
            "--seed",
            "9",
            "--steps",
            "50000000",
            "--jobs",
            jobs,
            "--corpus",
            corpus_str,
            "--autosave-every",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("tf-cli spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // Transient load errors (a poll racing the rename) just retry.
        if let Ok(loaded) = tf_fuzz::persist::load_file(corpus) {
            if let Some(checkpoint) = loaded.checkpoint {
                if checkpoint.autosave_ordinal >= 1 {
                    break;
                }
            }
        }
        assert!(Instant::now() < deadline, "no autosave within 120 s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "campaign finished before it could be killed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    // The kill may have landed after further autosaves; the surviving
    // file is whatever rename completed last, and it is a full state.
    let survivor = tf_fuzz::persist::load_file(corpus).expect("killed file loads clean");
    let checkpoint = survivor.checkpoint.expect("killed file has a checkpoint");
    assert_eq!(checkpoint.worker_count, jobs.parse::<usize>().unwrap());
    checkpoint.report.instructions_generated
}

#[test]
fn a_sigkilled_jobs1_campaign_resumes_byte_identically() {
    let killed = temp_path("killed-1.tfc");
    let fresh = temp_path("fresh-1.tfc");
    let _ = std::fs::remove_file(&killed);
    let _ = std::fs::remove_file(&fresh);

    let covered = kill_mid_campaign(&killed, "1");
    let budget = (covered + 8_000).to_string();

    // Both comparison runs keep the killed run's autosave cadence so the
    // checkpoint's autosave ordinal (cumulative batches) lines up and
    // the final files can be compared byte for byte.
    let resumed = fuzz(&[
        "--seed",
        "9",
        "--steps",
        &budget,
        "--corpus",
        killed.to_str().unwrap(),
        "--autosave-every",
        "1",
        "--resume",
    ]);
    let uninterrupted = fuzz(&[
        "--seed",
        "9",
        "--steps",
        &budget,
        "--corpus",
        fresh.to_str().unwrap(),
        "--autosave-every",
        "1",
    ]);
    assert_eq!(
        resumed, uninterrupted,
        "resumed stdout drifted from the uninterrupted campaign"
    );
    assert_eq!(
        std::fs::read(&killed).unwrap(),
        std::fs::read(&fresh).unwrap(),
        "resumed corpus file drifted"
    );
    std::fs::remove_file(&killed).unwrap();
    std::fs::remove_file(&fresh).unwrap();
}

#[test]
fn a_sigkilled_jobs4_campaign_resumes_deterministically() {
    let killed = temp_path("killed-4.tfc");
    let fresh = temp_path("fresh-4.tfc");
    let _ = std::fs::remove_file(&killed);
    let _ = std::fs::remove_file(&fresh);

    let covered = kill_mid_campaign(&killed, "4");
    let budget = (covered + 16_000).to_string();

    let resumed = fuzz(&[
        "--seed",
        "9",
        "--steps",
        &budget,
        "--jobs",
        "4",
        "--corpus",
        killed.to_str().unwrap(),
        "--autosave-every",
        "1",
        "--resume",
    ]);
    let uninterrupted = fuzz(&[
        "--seed",
        "9",
        "--steps",
        &budget,
        "--jobs",
        "4",
        "--corpus",
        fresh.to_str().unwrap(),
        "--autosave-every",
        "1",
    ]);
    assert_eq!(
        timing_free(&resumed),
        timing_free(&uninterrupted),
        "resumed jobs-4 stdout drifted from the uninterrupted campaign"
    );
    assert_eq!(
        std::fs::read(&killed).unwrap(),
        std::fs::read(&fresh).unwrap(),
        "resumed jobs-4 corpus file drifted"
    );
    std::fs::remove_file(&killed).unwrap();
    std::fs::remove_file(&fresh).unwrap();
}
