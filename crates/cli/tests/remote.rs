//! End-to-end out-of-process DUT tests against the real `tf-cli`
//! binary: clean subprocess backends must be report-identical to
//! in-process harts, and every deterministic chaos mode must surface as
//! the right finding while the campaign survives, respawns and stays
//! bit-deterministic — including across checkpoint/resume.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;

fn exe() -> String {
    env!("CARGO_BIN_EXE_tf-cli").to_string()
}

fn serve_argv(extra: &[&str]) -> Vec<String> {
    let mut argv = vec![exe(), "serve".into(), "--mem".into(), MEM.to_string()];
    argv.extend(extra.iter().map(ToString::to_string));
    argv
}

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tf-remote-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Drive one campaign against a freshly spawned `tf-cli serve` child;
/// the supervisor's lifetime statistics come back through
/// [`DriveOutcome::remote`].
fn drive_remote(
    config: CampaignConfig,
    extra: &[&str],
    supervisor: SupervisorConfig,
    corpus: Option<(&Path, bool)>,
) -> (CampaignReport, tf_arch::RemoteDutStats) {
    let mut driver = CampaignDriver::new(config);
    if let Some((path, resume)) = corpus {
        driver = driver.with_corpus(path).with_resume(resume);
    }
    let outcome = driver
        .run(|spec| {
            DutSupervisor::spawn(serve_argv(extra), supervisor, spec.remote_batches)
                .map_err(|error| error.to_string())
        })
        .expect("remote campaign runs");
    outcome.save().expect("save succeeds");
    let stats = outcome.remote.expect("a supervisor reports remote stats");
    (outcome.report, stats)
}

fn drive_in_process<D: Dut + Send>(config: CampaignConfig, dut: impl Fn() -> D) -> CampaignReport {
    CampaignDriver::new(config)
        .run(|_| Ok(dut()))
        .expect("in-process campaign runs")
        .report
}

/// A clean subprocess backend is indistinguishable from the in-process
/// hart: whole campaign reports (counters, divergences, DUT name,
/// rendered text) are equal — for the golden hart and a planted mutant.
#[test]
fn remote_clean_backend_matches_in_process_reports() {
    let budget = 2_000;

    let want = drive_in_process(config(5, budget), || Hart::new(MEM));
    let (got, stats) = drive_remote(config(5, budget), &[], SupervisorConfig::default(), None);
    assert_eq!(got, want, "golden hart over the wire must match exactly");
    assert_eq!(got.to_string(), want.to_string());
    assert_eq!(stats.respawns, 0);

    let want = drive_in_process(config(5, budget), || {
        MutantHart::new(MEM, BugScenario::B2ReservedRounding)
    });
    assert!(!want.is_clean(), "the mutant must actually diverge");
    let (got, _) = drive_remote(
        config(5, budget),
        &["--mutant", "b2"],
        SupervisorConfig::default(),
        None,
    );
    assert_eq!(got, want, "mutant divergences over the wire must match");
    assert_eq!(got.dut, "mutant-b2", "server name passes through");
}

/// A scheduled child crash becomes exactly one crash finding with the
/// distinctive exit code, the supervisor respawns once, the campaign
/// runs to its full budget — and the whole report is bit-deterministic
/// across runs.
#[test]
fn chaos_crash_yields_a_finding_and_the_campaign_survives() {
    let run = || {
        drive_remote(
            config(9, 2_000),
            &["--chaos-crash-after", "2"],
            SupervisorConfig::default(),
            None,
        )
    };
    let (report, stats) = run();
    assert_eq!(report.dut_crashes, 1);
    assert_eq!(report.dut_hangs + report.dut_desyncs, 0);
    assert_eq!(stats.respawns, 1);
    assert!(!stats.dead);
    assert!(
        report.instructions_generated >= 2_000,
        "the campaign must run to its budget despite the crash"
    );
    let finding = &report.findings[0];
    assert_eq!(finding.kind, FindingKind::DutCrash);
    assert!(
        finding.cause.contains("exited with code 117"),
        "cause was: {}",
        finding.cause
    );
    assert!(
        !finding.program.is_empty(),
        "the offending program is captured"
    );

    let (again, stats_again) = run();
    assert_eq!(again, report, "chaos campaigns are bit-deterministic");
    assert_eq!(again.to_string(), report.to_string());
    assert_eq!(stats_again.respawns, stats.respawns);
}

/// A wedged child misses the supervisor deadline, is killed, and
/// surfaces as a hang finding with the deadline in the cause.
#[test]
fn chaos_hang_is_detected_by_the_deadline() {
    let supervisor_config = SupervisorConfig {
        deadline: Duration::from_millis(250),
        ..SupervisorConfig::default()
    };
    let (report, stats) = drive_remote(
        config(9, 1_500),
        &["--chaos-hang-after", "1"],
        supervisor_config,
        None,
    );
    assert_eq!(report.dut_hangs, 1);
    assert_eq!(report.dut_crashes + report.dut_desyncs, 0);
    assert_eq!(stats.respawns, 1);
    let finding = &report.findings[0];
    assert_eq!(finding.kind, FindingKind::DutHang);
    assert!(
        finding.cause.contains("no response within 250ms"),
        "cause was: {}",
        finding.cause
    );
    assert!(report.instructions_generated >= 1_500);
}

/// A corrupted frame is a desync finding: the stream is torn down and a
/// fresh child re-seeded.
#[test]
fn chaos_garble_is_detected_as_a_desync() {
    let (report, stats) = drive_remote(
        config(9, 1_500),
        &["--chaos-garble-after", "1"],
        SupervisorConfig::default(),
        None,
    );
    assert_eq!(report.dut_desyncs, 1);
    assert_eq!(report.dut_crashes + report.dut_hangs, 0);
    assert_eq!(stats.respawns, 1);
    let finding = &report.findings[0];
    assert_eq!(finding.kind, FindingKind::DutDesync);
    assert!(
        finding.cause.contains("payload checksum mismatch"),
        "cause was: {}",
        finding.cause
    );
    assert!(report.instructions_generated >= 1_500);
}

/// With the respawn budget exhausted the supervisor goes permanently
/// inert and the campaign ends early — with the finding recorded and no
/// panic, hang or invented verdicts.
#[test]
fn respawn_budget_exhaustion_degrades_gracefully() {
    let supervisor_config = SupervisorConfig {
        max_consecutive_failures: 1,
        ..SupervisorConfig::default()
    };
    let (report, stats) = drive_remote(
        config(9, 2_000),
        &["--chaos-crash-after", "0"],
        supervisor_config,
        None,
    );
    assert_eq!(report.dut_crashes, 1);
    assert!(stats.dead);
    assert_eq!(stats.respawns, 0);
    assert!(
        report.instructions_generated < 2_000,
        "a dead supervisor must stop the campaign, not spin on it"
    );
    assert!(report.divergences.is_empty(), "no invented divergences");
}

/// The issued-batch offset keeps chaos schedules aligned across
/// checkpoint/resume: an interrupted-and-resumed campaign reproduces
/// the uninterrupted run bit for bit, with the chaos fault firing
/// exactly once at the same cumulative ordinal. The offset plumbing is
/// entirely the driver's: the checkpoint records the supervisor's
/// issued-batch count, and the resume hands it back through
/// [`WorkerSpec::remote_batches`].
#[test]
fn resume_keeps_the_chaos_schedule_aligned() {
    let budget = 2_000;

    // Probe run (no chaos) to learn the batch count, then schedule the
    // crash inside the second half of the campaign.
    let (_, probe) = drive_remote(config(13, budget), &[], SupervisorConfig::default(), None);
    let total_batches = probe.batches_issued;
    assert!(total_batches > 8, "campaign too small to split");
    let ordinal = (3 * total_batches / 4).to_string();
    let chaos: &[&str] = &["--chaos-crash-after", &ordinal];

    // Uninterrupted run with the chaos schedule.
    let (want, _) = drive_remote(config(13, budget), chaos, SupervisorConfig::default(), None);
    assert_eq!(want.dut_crashes, 1, "the fault must fire in-budget");

    // The same campaign interrupted at half budget, frozen to disk…
    let path = temp_path("chaos-resume.tfc");
    let _ = drive_remote(
        config(13, budget / 2),
        chaos,
        SupervisorConfig::default(),
        Some((&path, false)),
    );

    // …and resumed against a *fresh* child spawned at the recorded
    // offset.
    let (got, _) = drive_remote(
        config(13, budget),
        chaos,
        SupervisorConfig::default(),
        Some((&path, true)),
    );

    assert_eq!(got, want, "resumed chaos campaign must be bit-identical");
    assert_eq!(got.to_string(), want.to_string());
    std::fs::remove_file(&path).unwrap();
}

/// The CLI surface end to end: `--dut cmd:…` with `--expect crash`
/// exits zero on a crash finding, stdout is byte-identical across runs,
/// and a failed expectation exits 2 with a clear message.
#[test]
fn cli_expectations_and_stdout_determinism() {
    let dut_spec = format!("cmd:{} serve --chaos-crash-after 1 --mem 1048576", exe());
    let fuzz = |expect: &str| {
        Command::new(exe())
            .args([
                "fuzz", "--seed", "4", "--steps", "1500", "--dut", &dut_spec, "--expect", expect,
            ])
            .output()
            .unwrap()
    };

    let first = fuzz("crash");
    assert!(
        first.status.success(),
        "--expect crash should pass: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let report = String::from_utf8_lossy(&first.stdout);
    assert!(report.contains("dut crash"), "stdout was: {report}");

    let second = fuzz("crash");
    assert_eq!(
        first.stdout, second.stdout,
        "chaos campaign stdout must be byte-identical across runs"
    );

    let failed = fuzz("hang");
    assert_eq!(failed.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&failed.stderr).contains("expectation failed"),
        "stderr was: {}",
        String::from_utf8_lossy(&failed.stderr)
    );

    // A clean remote backend passes --expect clean; the crash campaign
    // above must NOT (clean also demands zero dut failures).
    let clean_spec = format!("cmd:{} serve --mem 1048576", exe());
    let clean = Command::new(exe())
        .args([
            "fuzz",
            "--seed",
            "4",
            "--steps",
            "1500",
            "--dut",
            &clean_spec,
            "--expect",
            "clean",
        ])
        .output()
        .unwrap();
    assert!(
        clean.status.success(),
        "clean remote backend should pass --expect clean: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let not_clean = fuzz("clean");
    assert_eq!(
        not_clean.status.code(),
        Some(2),
        "a campaign with crash findings is not clean"
    );
}

/// A spawn that cannot work fails with a clear nonzero-exit message,
/// not a panic.
#[test]
fn cli_spawn_failure_is_a_clean_error() {
    let output = Command::new(exe())
        .args([
            "fuzz",
            "--steps",
            "100",
            "--dut",
            "cmd:/nonexistent/tf-dut-binary",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("failed to spawn"), "stderr was: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr was: {stderr}");
}

/// `--resume` through the CLI with chaos findings: the resumed stdout
/// equals the uninterrupted run's stdout byte for byte.
#[test]
fn cli_resume_with_chaos_findings_is_byte_identical() {
    let dut_spec = format!("cmd:{} serve --chaos-crash-after 3 --mem 1048576", exe());
    let corpus_a = temp_path("cli-chaos-a.tfc");
    let corpus_b = temp_path("cli-chaos-b.tfc");
    let fuzz = |steps: &str, corpus: &PathBuf, resume: bool| {
        let mut cmd = Command::new(exe());
        cmd.args(["fuzz", "--seed", "6", "--steps", steps, "--dut", &dut_spec])
            .args(["--corpus", corpus.to_str().unwrap()]);
        if resume {
            cmd.arg("--resume");
        }
        cmd.output().unwrap()
    };

    let uninterrupted = fuzz("3000", &corpus_a, false);
    assert!(
        uninterrupted.status.success(),
        "{}",
        String::from_utf8_lossy(&uninterrupted.stderr)
    );
    assert!(
        String::from_utf8_lossy(&uninterrupted.stdout).contains("dut crash"),
        "the fault must fire inside the first half"
    );

    let half = fuzz("1500", &corpus_b, false);
    assert!(half.status.success());
    let resumed = fuzz("3000", &corpus_b, true);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        uninterrupted.stdout, resumed.stdout,
        "resumed chaos campaign stdout must be byte-identical"
    );

    std::fs::remove_file(&corpus_a).unwrap();
    std::fs::remove_file(&corpus_b).unwrap();
}
