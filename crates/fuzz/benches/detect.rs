//! Detection-latency benchmark: how many generated instructions each
//! power schedule needs before a planted bug first diverges.
//!
//! Every [`BugScenario`] is fuzzed under every [`PowerSchedule`] across
//! a fixed set of campaign seeds; the metric per cell is the *median*
//! [`CampaignReport::first_divergence_at`] — the instructions-generated
//! counter at the first divergence, or the budget cap when the campaign
//! never caught the bug. Unlike the wall-clock benches in `tf_arch`,
//! this is a **counted, bit-deterministic** metric: the same build
//! produces the same numbers on any host, so `TF_BENCH_SMOKE=1` runs
//! the identical workload and CI can compare the emitted JSON against
//! the checked-in `BENCH_detect.json` as an exact regression gate (a
//! scheduler change that slows detection by >30% on any cell fails the
//! build).
//!
//! * Output path: `BENCH_detect.json` at the workspace root,
//!   overridable with `TF_BENCH_JSON`.
//! * Keys: `<scenario>_<schedule>` medians plus `budget_cap`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tf_arch::{BugScenario, MutantHart};
use tf_fuzz::{CampaignConfig, CampaignDriver, PowerSchedule};

const MEM: u64 = 1 << 16;

/// Instructions-generated ceiling per campaign; also the reported
/// latency when a campaign exhausts the budget without a divergence.
const BUDGET_CAP: u64 = 20_000;

/// Campaign seeds each (scenario, schedule) cell is measured over. Odd
/// count so the median is a real cell, not an average.
const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];

fn detection_latency(scenario: BugScenario, schedule: PowerSchedule, seed: u64) -> u64 {
    let config = CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(BUDGET_CAP)
        .with_mem_size(MEM)
        .with_schedule(schedule);
    let outcome = CampaignDriver::new(config)
        .run(|_| Ok(MutantHart::new(MEM, scenario)))
        .expect("detection campaign drives");
    outcome.report.first_divergence_at.unwrap_or(BUDGET_CAP)
}

fn median(latencies: &mut [u64]) -> u64 {
    latencies.sort_unstable();
    latencies[latencies.len() / 2]
}

fn json_path() -> PathBuf {
    match std::env::var("TF_BENCH_JSON") {
        Ok(custom) if !custom.is_empty() => PathBuf::from(custom),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detect.json"),
    }
}

fn main() {
    // `TF_BENCH_SMOKE` is accepted for CI symmetry with the tf_arch
    // benches but changes nothing: the workload is already deterministic
    // and cheap, and shrinking it would make the emitted numbers
    // incomparable with the checked-in medians.
    println!(
        "tf_fuzz detection latency (median instructions to first divergence, \
         cap {BUDGET_CAP}, {} seeds per cell)",
        SEEDS.len()
    );
    let mut results: BTreeMap<String, f64> = BTreeMap::new();
    results.insert("budget_cap".into(), BUDGET_CAP as f64);
    for scenario in BugScenario::ALL {
        print!("{:8}", scenario.id());
        for schedule in PowerSchedule::ALL {
            let mut latencies: Vec<u64> = SEEDS
                .iter()
                .map(|&seed| detection_latency(scenario, schedule, seed))
                .collect();
            let median = median(&mut latencies);
            print!("  {}={median:<6}", schedule.id());
            results.insert(
                format!("{}_{}", scenario.id(), schedule.id()),
                median as f64,
            );
        }
        println!();
    }

    // How often each feedback schedule beats (or ties) uniform, the
    // headline the scheduler work is judged on.
    for schedule in [PowerSchedule::Fast, PowerSchedule::Explore] {
        let better = BugScenario::ALL
            .iter()
            .filter(|scenario| {
                results[&format!("{}_{}", scenario.id(), schedule.id())]
                    <= results[&format!("{}_uniform", scenario.id())]
            })
            .count();
        println!(
            "{} beats-or-ties uniform on {better}/{} scenarios",
            schedule.id(),
            BugScenario::ALL.len()
        );
    }

    let mut out = String::from("{\n");
    let mut first = true;
    for (key, value) in &results {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{key}\": {value:.0}"));
    }
    out.push_str("\n}\n");
    let path = json_path();
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench json updated: {}", path.display()),
        Err(error) => eprintln!("warning: could not write {}: {error}", path.display()),
    }
}
