//! Remote-DUT boundary throughput: batched steps/sec through a real
//! `tf-cli serve` subprocess versus the same hart in-process, plus the
//! step-at-a-time RPC floor that motivates the batch-oriented protocol.
//!
//! Requires `target/release/tf-cli` (built by `cargo build --release`);
//! when the binary is missing the bench prints a notice and exits
//! cleanly so `cargo bench` still completes.
//!
//! Results merge into `BENCH_arch.json` (see `json.rs`); smoke mode via
//! `TF_BENCH_SMOKE=1`.

use std::path::PathBuf;
use std::time::Instant;

use tf_arch::{Dut, Hart};
use tf_fuzz::{DutSupervisor, ProgramGenerator, SupervisorConfig};
use tf_riscv::{Instruction, InstructionLibrary, LibraryConfig};

#[path = "../../arch/benches/json.rs"]
mod json;

const MEM: u64 = 1 << 16;

/// Find the release `tf-cli` next to this bench binary
/// (`target/release/deps/remote-…` → `target/release/tf-cli`).
fn tf_cli() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .map(|dir| dir.join("tf-cli"))
        .find(|candidate| candidate.is_file())
}

fn programs(count: usize) -> Vec<Vec<Instruction>> {
    let library = InstructionLibrary::new(LibraryConfig::all(), 42);
    let mut generator = ProgramGenerator::new(library, 42);
    (0..count).map(|_| generator.generate(30)).collect()
}

/// One campaign-shaped rep: reset, load, run the batch to completion.
/// Returns retired steps.
fn batch_rep(dut: &mut dyn Dut, program: &[Instruction]) -> u64 {
    dut.reset();
    if dut.load(0, program).is_err() {
        return 0;
    }
    dut.run(4096, 16).steps
}

/// The same work over per-step RPC — what the protocol deliberately
/// avoids in the hot loop.
fn step_rep(dut: &mut dyn Dut, program: &[Instruction]) -> u64 {
    dut.reset();
    if dut.load(0, program).is_err() {
        return 0;
    }
    let mut steps = 0;
    for _ in 0..4096 {
        steps += 1;
        if matches!(dut.step(), tf_arch::StepOutcome::Trapped(_)) {
            break;
        }
    }
    steps
}

fn steps_per_sec(
    dut: &mut dyn Dut,
    programs: &[Vec<Instruction>],
    reps: usize,
    rep: fn(&mut dyn Dut, &[Instruction]) -> u64,
) -> f64 {
    // Warm-up pass so spawn and first-touch costs stay out of the clock.
    let mut steps = 0u64;
    for program in programs {
        steps += rep(dut, program);
    }
    assert!(steps > 0, "benchmark programs must execute");
    let start = Instant::now();
    let mut steps = 0u64;
    for _ in 0..reps {
        for program in programs {
            steps += rep(dut, program);
        }
    }
    steps as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = json::smoke();
    let programs = programs(if smoke { 4 } else { 32 });
    let batch_reps = if smoke { 2 } else { 200 };
    let step_reps = if smoke { 1 } else { 20 };

    let Some(cli) = tf_cli() else {
        println!("remote bench skipped: tf-cli binary not found (run `cargo build --release`)");
        return;
    };
    let argv = vec![
        cli.to_string_lossy().into_owned(),
        "serve".into(),
        "--mem".into(),
        MEM.to_string(),
    ];

    let mut hart = Hart::new(MEM);
    let inproc = steps_per_sec(&mut hart, &programs, batch_reps, batch_rep);
    println!("in-process batched:  {inproc:>12.0} steps/sec");

    let mut remote = DutSupervisor::spawn(argv.clone(), SupervisorConfig::default(), 0)
        .expect("serve child comes up");
    let batched = steps_per_sec(&mut remote, &programs, batch_reps, batch_rep);
    println!("subprocess batched:  {batched:>12.0} steps/sec");
    assert_eq!(remote.respawns(), 0, "bench child must not crash");
    drop(remote);

    let mut remote =
        DutSupervisor::spawn(argv, SupervisorConfig::default(), 0).expect("serve child comes up");
    let step_rpc = steps_per_sec(&mut remote, &programs, step_reps, step_rep);
    println!("subprocess per-step: {step_rpc:>12.0} steps/sec");
    drop(remote);

    println!(
        "boundary cost: batched {:.1}x slower than in-process; \
         per-step RPC {:.1}x slower than batched",
        inproc / batched,
        batched / step_rpc
    );

    if !smoke {
        json::update(
            &[
                ("remote_inproc_steps_per_sec", inproc),
                ("remote_batch_steps_per_sec", batched),
                ("remote_step_rpc_steps_per_sec", step_rpc),
            ],
            &[],
        );
    }
}
