//! The campaign driver: the paper's fuzzing loop, end to end.
//!
//! One iteration of the loop: obtain a program (freshly generated, or
//! mutated from a coverage-earning corpus seed), run it differentially
//! against the device under test with the [`DiffEngine`], then act on
//! the verdict — new trace coverage earns the program a corpus slot,
//! and a divergence is minimized to a near-minimal reproducer and
//! recorded as a bug report. The loop runs until the configured budget
//! of generated instructions is spent, and the whole campaign is a pure
//! function of its seed.

use std::collections::HashSet;

use tf_arch::digest::Fnv;
use tf_arch::{Dut, DutFailure, DutFailureKind, Hart, RunExit};
use tf_riscv::{Extension, Format, InstructionLibrary, LibraryConfig};

use crate::corpus::{minimize, Corpus, SeedCalibration, SeedEntry};
use crate::coverage::CoverageMap;
use crate::diff::{
    ConfigError, DiffConfig, DiffEngine, DiffScratch, DiffVerdict, Divergence, DEFAULT_WINDOW,
};
use crate::generator::{GeneratorConfig, ProgramGenerator};
use crate::persist::CampaignCheckpoint;
use crate::rng::SplitMix64;
use crate::schedule::PowerSchedule;

/// Divergence reports kept in full; beyond this only the count grows.
const MAX_REPORTS: usize = 16;

/// Campaign parameters. A campaign is reproducible from this value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed for generation, mutation and scheduling.
    pub seed: u64,
    /// Total generated-instruction budget for the campaign.
    pub instruction_budget: u64,
    /// Instructions per generated program (including the `ebreak`).
    pub program_len: usize,
    /// Step budget per differential run.
    pub max_steps_per_program: u64,
    /// Device memory size in bytes.
    pub mem_size: u64,
    /// Load address for generated programs.
    pub base: u64,
    /// Differential comparison window ([`DiffConfig::window`]): digests
    /// are compared every this many lockstep steps, with window
    /// mismatches localised by exact replay. Reported results are
    /// bit-identical at every window; only throughput changes.
    pub window: u64,
    /// Instruction-repository configuration to sample from.
    pub library: LibraryConfig,
    /// Generator tuning.
    pub generator: GeneratorConfig,
    /// Power schedule assigning corpus seeds their mutation energy.
    /// [`PowerSchedule::Uniform`] (the default) reproduces pre-scheduler
    /// campaigns bit for bit.
    pub schedule: PowerSchedule,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            instruction_budget: 10_000,
            program_len: 32,
            max_steps_per_program: 128,
            mem_size: 1 << 20,
            base: 0,
            window: DEFAULT_WINDOW,
            library: LibraryConfig::all(),
            generator: GeneratorConfig::default(),
            schedule: PowerSchedule::default(),
        }
    }
}

impl CampaignConfig {
    /// This config with `seed` replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This config with `instruction_budget` replaced.
    #[must_use]
    pub fn with_instruction_budget(mut self, instruction_budget: u64) -> Self {
        self.instruction_budget = instruction_budget;
        self
    }

    /// This config with `program_len` replaced.
    #[must_use]
    pub fn with_program_len(mut self, program_len: usize) -> Self {
        self.program_len = program_len;
        self
    }

    /// This config with `max_steps_per_program` replaced.
    #[must_use]
    pub fn with_max_steps_per_program(mut self, max_steps_per_program: u64) -> Self {
        self.max_steps_per_program = max_steps_per_program;
        self
    }

    /// This config with `mem_size` replaced.
    #[must_use]
    pub fn with_mem_size(mut self, mem_size: u64) -> Self {
        self.mem_size = mem_size;
        self
    }

    /// This config with `window` replaced.
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// This config with `schedule` replaced.
    #[must_use]
    pub fn with_schedule(mut self, schedule: PowerSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The [`DiffConfig`] a campaign under this config drives.
    #[must_use]
    pub fn diff_config(&self) -> DiffConfig {
        DiffConfig {
            base: self.base,
            max_steps: self.max_steps_per_program,
            window: self.window,
        }
    }

    /// Check the invariants [`Campaign::new`] requires.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated invariant: the
    /// embedded [`DiffConfig`] must validate ([`window >= 1`,
    /// `max_steps >= 1`](DiffConfig::validate)), `program_len >= 1` and
    /// `mem_size >= 1`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.diff_config().validate()?;
        if self.program_len < 1 {
            return Err(ConfigError("program_len must be at least 1"));
        }
        if self.mem_size < 1 {
            return Err(ConfigError("mem_size must be at least 1"));
        }
        Ok(())
    }

    /// Stable fingerprint of everything that shapes the campaign's
    /// decision streams — seed, program shape, step budget, memory
    /// geometry, generator tuning, and the active instruction set. The
    /// instruction *budget* is deliberately excluded: resuming a
    /// checkpoint with a larger budget is the whole point of resume, and
    /// the budget never feeds an RNG stream. The comparison *window* is
    /// excluded for the same reason: windowed and exact runs produce
    /// bit-identical verdicts by construction, so a checkpoint frozen at
    /// one window may be resumed at another without diverging.
    /// Checkpoints carry this value so a resume under a different
    /// configuration is rejected instead of silently diverging.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv::new();
        fnv.write_u64(self.seed);
        fnv.write_u64(self.program_len as u64);
        fnv.write_u64(self.max_steps_per_program);
        fnv.write_u64(self.mem_size);
        fnv.write_u64(self.base);
        fnv.write_u64(self.generator.tournament as u64);
        fnv.write_u64(u64::from(self.generator.rm_stress));
        // The schedule shapes which seeds get mutated, so two campaigns
        // differing only in schedule have diverging corpus-RNG streams —
        // unlike the window, it must be part of the fingerprint.
        fnv.write_bytes(self.schedule.id().as_bytes());
        for ext in Extension::ALL {
            fnv.write_u64(u64::from(self.library.extension_active(ext)));
        }
        for format in Format::ALL {
            fnv.write_u64(u64::from(self.library.format_active(format)));
        }
        fnv.finish()
    }
}

/// Why a [`CampaignCheckpoint`] could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreError {
    /// The checkpoint was frozen under a different campaign
    /// configuration; its RNG streams would not reproduce this config's
    /// run.
    ConfigMismatch {
        /// Fingerprint the checkpoint was frozen under.
        expected: u64,
        /// Fingerprint of the configuration offered for resume.
        found: u64,
    },
    /// The corpus offered for resume does not have the entry count the
    /// checkpoint was frozen with — some seed records were lost (corrupt
    /// or truncated file) or foreign ones added, so corpus-mutation
    /// scheduling would diverge from the uninterrupted run.
    CorpusMismatch {
        /// Entry count the checkpointed campaign held.
        expected: usize,
        /// Entry count actually offered.
        found: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was frozen under config fingerprint {expected:#018x}, \
                 but resume was requested with {found:#018x} (same seed/len/flags required)"
            ),
            RestoreError::CorpusMismatch { expected, found } => write!(
                f,
                "checkpoint was frozen with {expected} corpus entries but {found} were \
                 offered — a damaged or altered corpus cannot resume bit-identically"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The kind of DUT-robustness finding a campaign recorded — the
/// campaign-level view of a [`DutFailureKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// The DUT child process died while executing the program.
    DutCrash,
    /// The DUT missed its per-batch wall-clock deadline.
    DutHang,
    /// The DUT sent garbage over its protocol stream.
    DutDesync,
}

impl From<DutFailureKind> for FindingKind {
    fn from(kind: DutFailureKind) -> Self {
        match kind {
            DutFailureKind::Crash => FindingKind::DutCrash,
            DutFailureKind::Hang => FindingKind::DutHang,
            DutFailureKind::Desync => FindingKind::DutDesync,
        }
    }
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FindingKind::DutCrash => "dut crash",
            FindingKind::DutHang => "dut hang",
            FindingKind::DutDesync => "dut desync",
        })
    }
}

/// A recorded DUT-robustness finding: the program whose differential run
/// made an out-of-process backend crash, hang or desync. Findings sit
/// alongside [`Divergence`]s in the [`CampaignReport`] — they are
/// first-class campaign outcomes, not aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How the DUT failed.
    pub kind: FindingKind,
    /// Deterministic failure cause ("exited with code 117", …).
    pub cause: String,
    /// The program whose run surfaced the failure.
    pub program: Vec<tf_riscv::Instruction>,
    /// The campaign's program ordinal (1-based) at the failure.
    pub at_batch: u64,
    /// How many times this exact `(program, cause)` failure was seen —
    /// repeats bump this counter instead of flooding the report.
    pub repeats: u64,
}

impl Finding {
    /// Deduplication key: the failure kind and cause plus the digest of
    /// the offending program. A wedged child failing the same way on the
    /// same program collapses into one finding with a repeat count.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = Fnv::new();
        fnv.write_u64(match self.kind {
            FindingKind::DutCrash => 0,
            FindingKind::DutHang => 1,
            FindingKind::DutDesync => 2,
        });
        fnv.write_bytes(self.cause.as_bytes());
        for insn in &self.program {
            fnv.write_u64(u64::from(insn.encode_lossy()));
        }
        fnv.finish()
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at batch {}: {}",
            self.kind, self.at_batch, self.cause
        )?;
        if self.repeats > 1 {
            write!(f, " (x{})", self.repeats)?;
        }
        write!(f, "\n  program ({} instructions):", self.program.len())?;
        for insn in &self.program {
            write!(f, "\n    {insn}")?;
        }
        Ok(())
    }
}

/// One first-class campaign outcome, unifying the two ways a campaign
/// flags the device under test: the DUTs disagreed on architectural
/// state (a [`Divergence`]) or an out-of-process backend failed outright
/// (a robustness [`Finding`]). Report consumers match on this one enum
/// instead of walking the two underlying lists; `Display` delegates to
/// the wrapped type, so printed output is byte-identical to printing it
/// directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignOutcome<'a> {
    /// The reference and the DUT disagreed on architectural state.
    Divergence(&'a Divergence),
    /// An out-of-process DUT crashed, hung or garbled its protocol.
    DutFailure(&'a Finding),
}

impl std::fmt::Display for CampaignOutcome<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignOutcome::Divergence(divergence) => divergence.fmt(f),
            CampaignOutcome::DutFailure(finding) => finding.fmt(f),
        }
    }
}

/// What a finished campaign observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Name of the device under test.
    pub dut: String,
    /// Programs executed differentially.
    pub programs: u64,
    /// Instructions generated (the budget currency).
    pub instructions_generated: u64,
    /// Lockstep steps executed across all runs.
    pub steps_executed: u64,
    /// Runs that ended at the `ebreak` terminator.
    pub breakpoint_exits: u64,
    /// Runs that ended on an `ecall`.
    pub ecall_exits: u64,
    /// Runs that exhausted the step budget.
    pub out_of_gas_exits: u64,
    /// Distinct execution-trace digests observed.
    pub unique_traces: usize,
    /// Distinct trap-cause sets observed (the coarse secondary coverage
    /// key).
    pub unique_trap_sets: usize,
    /// Corpus entries saved (programs that produced new coverage).
    pub corpus_size: usize,
    /// Total divergent runs observed.
    pub divergent_runs: u64,
    /// Instructions generated when the first divergent run was observed
    /// (`None` for a clean campaign) — the detection-latency metric the
    /// detect benchmark gates on. Deliberately not rendered by
    /// `Display`, so clean-report text stays byte-stable.
    pub first_divergence_at: Option<u64>,
    /// Minimized divergence reports (the first 16; beyond that only
    /// [`CampaignReport::divergent_runs`] grows).
    pub divergences: Vec<Divergence>,
    /// DUT child-process crashes observed (out-of-process backends only).
    pub dut_crashes: u64,
    /// DUT per-batch deadline misses observed.
    pub dut_hangs: u64,
    /// DUT protocol desyncs (garbled frames) observed.
    pub dut_desyncs: u64,
    /// Recorded robustness findings, deduplicated by
    /// [`Finding::fingerprint`] and capped at the usual report limit
    /// (the counters above still count everything).
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// True when no divergence was observed. DUT robustness findings are
    /// tracked separately — see [`CampaignReport::dut_failures`].
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent_runs == 0
    }

    /// Total DUT failures of any kind (crashes + hangs + desyncs).
    #[must_use]
    pub fn dut_failures(&self) -> u64 {
        self.dut_crashes + self.dut_hangs + self.dut_desyncs
    }

    /// Every recorded outcome — the minimized divergences first, then
    /// the DUT robustness findings — each wrapped in the unified
    /// [`CampaignOutcome`] enum so consumers match on one type.
    pub fn outcomes(&self) -> impl Iterator<Item = CampaignOutcome<'_>> {
        self.divergences
            .iter()
            .map(CampaignOutcome::Divergence)
            .chain(self.findings.iter().map(CampaignOutcome::DutFailure))
    }

    /// Human description of what the campaign actually reported, for
    /// expectation-failure messages: `"clean"`, or the observed outcome
    /// kinds joined with `" + "` in a fixed order (divergence, dut
    /// crash, dut hang, dut desync).
    #[must_use]
    pub fn outcome_summary(&self) -> String {
        let mut parts = Vec::new();
        if !self.is_clean() {
            parts.push("divergence");
        }
        if self.dut_crashes > 0 {
            parts.push("dut crash");
        }
        if self.dut_hangs > 0 {
            parts.push("dut hang");
        }
        if self.dut_desyncs > 0 {
            parts.push("dut desync");
        }
        if parts.is_empty() {
            "clean".to_string()
        } else {
            parts.join(" + ")
        }
    }

    /// Record one DUT failure against the program that triggered it:
    /// bump the matching counter and either fold the failure into an
    /// existing finding with the same [`Finding::fingerprint`] (bumping
    /// its repeat count) or append a new finding while under the report
    /// cap.
    pub fn record_failure(
        &mut self,
        failure: &DutFailure,
        program: &[tf_riscv::Instruction],
        at_batch: u64,
    ) {
        match failure.kind {
            DutFailureKind::Crash => self.dut_crashes += 1,
            DutFailureKind::Hang => self.dut_hangs += 1,
            DutFailureKind::Desync => self.dut_desyncs += 1,
        }
        let finding = Finding {
            kind: failure.kind.into(),
            cause: failure.detail.clone(),
            program: program.to_vec(),
            at_batch,
            repeats: 1,
        };
        let fingerprint = finding.fingerprint();
        if let Some(known) = self
            .findings
            .iter_mut()
            .find(|f| f.fingerprint() == fingerprint)
        {
            known.repeats += 1;
        } else if self.findings.len() < MAX_REPORTS {
            self.findings.push(finding);
        }
    }

    /// Fold another report into this one: counters add, DUT names join,
    /// and `other`'s divergences are appended unless a divergence with
    /// the same [`Divergence::fingerprint`] is already present or was
    /// just appended — so the incoming findings are fully deduplicated,
    /// capped at the usual report limit (`divergent_runs` still counts
    /// everything).
    ///
    /// The operation is associative, so sharded campaign workers can be
    /// folded in any grouping. Note that `unique_traces`,
    /// `unique_trap_sets` and `corpus_size` *add* — they are per-worker
    /// totals; use merged [`CoverageMap`]s for the deduplicated union.
    pub fn merge(&mut self, other: &CampaignReport) {
        // The merged name is the stable deduplicated union of the
        // `+`-joined DUT names, so merging stays associative even when
        // reports against several device kinds are folded together.
        if self.dut.is_empty() {
            self.dut = other.dut.clone();
        } else {
            for name in other.dut.split('+').filter(|n| !n.is_empty()) {
                if !self.dut.split('+').any(|known| known == name) {
                    self.dut.push('+');
                    self.dut.push_str(name);
                }
            }
        }
        self.programs += other.programs;
        self.instructions_generated += other.instructions_generated;
        self.steps_executed += other.steps_executed;
        self.breakpoint_exits += other.breakpoint_exits;
        self.ecall_exits += other.ecall_exits;
        self.out_of_gas_exits += other.out_of_gas_exits;
        self.unique_traces += other.unique_traces;
        self.unique_trap_sets += other.unique_trap_sets;
        self.corpus_size += other.corpus_size;
        self.divergent_runs += other.divergent_runs;
        // Earliest detection wins; `None` is the identity, keeping the
        // merge associative.
        self.first_divergence_at = match (self.first_divergence_at, other.first_divergence_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let mut known: HashSet<u64> = self
            .divergences
            .iter()
            .map(Divergence::fingerprint)
            .collect();
        for divergence in &other.divergences {
            if self.divergences.len() >= MAX_REPORTS {
                break;
            }
            if known.insert(divergence.fingerprint()) {
                self.divergences.push(divergence.clone());
            }
        }
        self.dut_crashes += other.dut_crashes;
        self.dut_hangs += other.dut_hangs;
        self.dut_desyncs += other.dut_desyncs;
        // Findings dedup by `(program digest, cause)` with repeat counts
        // accumulating, mirroring the divergence min-merge above.
        for finding in &other.findings {
            let fingerprint = finding.fingerprint();
            if let Some(mine) = self
                .findings
                .iter_mut()
                .find(|f| f.fingerprint() == fingerprint)
            {
                mine.repeats += finding.repeats;
                // Earliest sighting wins, keeping the merge associative.
                mine.at_batch = mine.at_batch.min(finding.at_batch);
            } else if self.findings.len() < MAX_REPORTS {
                self.findings.push(finding.clone());
            }
        }
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "campaign against `{}`:", self.dut)?;
        writeln!(
            f,
            "  programs {}  instructions {}  steps {}",
            self.programs, self.instructions_generated, self.steps_executed
        )?;
        writeln!(
            f,
            "  exits: breakpoint {}  ecall {}  out-of-gas {}",
            self.breakpoint_exits, self.ecall_exits, self.out_of_gas_exits
        )?;
        writeln!(
            f,
            "  coverage: {} unique traces, {} trap-cause sets, {} corpus seeds",
            self.unique_traces, self.unique_trap_sets, self.corpus_size
        )?;
        // Both report sections render through the unified
        // [`CampaignOutcome`] enum, which delegates to the wrapped
        // type's `Display` — output is byte-identical to printing the
        // divergences and findings directly.
        if self.is_clean() {
            write!(f, "  divergences: none")?;
        } else {
            write!(f, "  divergences: {} divergent runs", self.divergent_runs)?;
            for outcome in self
                .outcomes()
                .filter(|o| matches!(o, CampaignOutcome::Divergence(_)))
            {
                write!(f, "\n{outcome}")?;
            }
        }
        // The robustness section only appears when an out-of-process DUT
        // actually failed, so in-process report text stays byte-stable.
        if self.dut_failures() > 0 {
            write!(
                f,
                "\n  dut failures: {} crashes, {} hangs, {} desyncs",
                self.dut_crashes, self.dut_hangs, self.dut_desyncs
            )?;
            for outcome in self
                .outcomes()
                .filter(|o| matches!(o, CampaignOutcome::DutFailure(_)))
            {
                write!(f, "\n{outcome}")?;
            }
        }
        Ok(())
    }
}

/// The fuzzing-campaign driver.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    generator: ProgramGenerator,
    corpus: Corpus,
    coverage: CoverageMap,
    engine: DiffEngine,
    rng: SplitMix64,
    // Hot-loop buffers, reused across every run of the campaign: the
    // current program and the two windowed batch outcomes. Cleared, not
    // reallocated, once the high-water capacity is reached.
    program_buf: Vec<tf_riscv::Instruction>,
    scratch: DiffScratch,
}

impl Campaign {
    /// Build a campaign from its configuration.
    ///
    /// # Panics
    ///
    /// Panics when [`CampaignConfig::validate`] rejects the config.
    #[must_use]
    pub fn new(config: CampaignConfig) -> Self {
        if let Err(error) = config.validate() {
            panic!("invalid CampaignConfig: {error}");
        }
        let library = InstructionLibrary::new(config.library, config.seed);
        let generator = ProgramGenerator::with_config(library, config.seed ^ 1, config.generator);
        let engine = DiffEngine::new(config.diff_config());
        Campaign {
            generator,
            corpus: Corpus::new(config.seed ^ 2),
            coverage: CoverageMap::new(),
            engine,
            rng: SplitMix64::new(config.seed ^ 3),
            program_buf: Vec::with_capacity(config.program_len),
            scratch: DiffScratch::default(),
            config,
        }
    }

    /// The configuration the campaign was built from.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The coverage the campaign has accumulated so far. Sharded drivers
    /// merge the per-worker maps into the aggregate view.
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// The corpus the campaign has accumulated so far.
    #[must_use]
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Consume the campaign, yielding its corpus without cloning —
    /// for drivers that persist or merge the seeds after the run.
    #[must_use]
    pub fn into_corpus(self) -> Corpus {
        self.corpus
    }

    /// Seed the campaign with entries from an earlier run (cross-run
    /// cross-pollination): entries are merged into the corpus — deduped
    /// by [`SeedEntry::coverage_key`] — and their coverage keys admitted
    /// into the coverage map, so the schedule exploits them from the
    /// first iteration and re-discovering their traces is not "new"
    /// coverage. Returns how many entries were admitted.
    ///
    /// Priming is an *input* to the campaign: two campaigns primed with
    /// the same entries are still deterministic, but a primed campaign
    /// explores differently than an unprimed one.
    pub(crate) fn prime(&mut self, entries: &[SeedEntry]) -> usize {
        let admitted = self.corpus.merge_entries(entries);
        for entry in entries {
            self.coverage.admit(entry.trace_digest);
            self.coverage.admit_trap_set(entry.trap_causes);
        }
        admitted
    }

    /// Freeze the campaign's complete mid-run state: the report counters
    /// so far plus every RNG stream position and the coverage map. The
    /// corpus entries are not part of the checkpoint value — the persist
    /// layer stores them alongside it as ordinary seed records.
    ///
    /// Restoring the checkpoint (with the same config and the same corpus
    /// entries) and running to a larger budget is bit-identical to a
    /// single uninterrupted run of that budget.
    #[must_use]
    pub(crate) fn checkpoint(&self, report: &CampaignReport) -> CampaignCheckpoint {
        let (generator_rng, library_rng) = self.generator.rng_states();
        CampaignCheckpoint {
            config_fingerprint: self.config.fingerprint(),
            report: report.clone(),
            campaign_rng: self.rng.state(),
            corpus_rng: self.corpus.rng_state(),
            generator_rng,
            library_rng,
            coverage: self.coverage.clone(),
            // The campaign cannot see through the `Dut` trait to a
            // supervisor's issued-batch counter; drivers holding the
            // concrete supervisor fill this in before persisting. The
            // coordinator bookkeeping (autosave ordinal, round counters,
            // worker streams) is likewise the coordinator's to fill —
            // one Campaign is exactly one worker's stream.
            remote_batches: None,
            autosave_ordinal: 0,
            batches_completed: 0,
            rounds_completed: 0,
            pending_broadcast: 0,
            worker_count: 1,
            workers: Vec::new(),
        }
    }

    /// Rebuild a campaign from a [`CampaignCheckpoint`] and the corpus
    /// entries saved with it. Call [`Campaign::resume`] with the
    /// checkpoint's report afterwards (or use the two-step flow the CLI
    /// does: restore, then `resume`).
    ///
    /// # Errors
    ///
    /// Rejects a checkpoint whose [`CampaignConfig::fingerprint`] does
    /// not match `config` — resuming under different generation
    /// parameters cannot reproduce the original stream — and a corpus
    /// whose entry count differs from what the checkpoint was frozen
    /// with (seed records lost to corruption, or foreign ones added):
    /// mutation scheduling indexes into the corpus, so a changed corpus
    /// silently breaks the bit-identical-resume guarantee.
    pub(crate) fn restore(
        config: CampaignConfig,
        checkpoint: &CampaignCheckpoint,
        entries: &[SeedEntry],
    ) -> Result<Self, RestoreError> {
        let found = config.fingerprint();
        if checkpoint.config_fingerprint != found {
            return Err(RestoreError::ConfigMismatch {
                expected: checkpoint.config_fingerprint,
                found,
            });
        }
        let mut campaign = Campaign::new(config);
        campaign.corpus.merge_entries(entries);
        // Validate *after* the merge: duplicate coverage keys dedup away,
        // so an offered list that matches the count but shrinks on merge
        // is just as unresumable as a short one.
        if campaign.corpus.len() != checkpoint.report.corpus_size {
            return Err(RestoreError::CorpusMismatch {
                expected: checkpoint.report.corpus_size,
                found: campaign.corpus.len(),
            });
        }
        campaign.coverage = checkpoint.coverage.clone();
        campaign.rng.set_state(checkpoint.campaign_rng);
        campaign.corpus.set_rng_state(checkpoint.corpus_rng);
        campaign
            .generator
            .set_rng_states(checkpoint.generator_rng, checkpoint.library_rng);
        Ok(campaign)
    }

    /// Run the campaign against `dut`, differencing every program
    /// against a fresh golden [`Hart`] reference. Production code goes
    /// through [`crate::CampaignDriver`]; tests keep this door to pin
    /// the driver's jobs-1 bit-identity against the plain campaign.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn run(&mut self, dut: &mut dyn Dut) -> CampaignReport {
        self.resume(dut, CampaignReport::default())
    }

    /// Replace the instruction budget mid-flight. The coordinator slices
    /// one worker's campaign into synchronisation rounds by repeatedly
    /// raising the budget and calling [`Campaign::resume`]; because
    /// [`DiffEngine::diff_with`] resets both harts per program, the
    /// sliced run is bit-identical to one uninterrupted run of the final
    /// budget.
    pub(crate) fn set_instruction_budget(&mut self, budget: u64) {
        self.config.instruction_budget = budget;
    }

    /// Continue a campaign from prior report counters — the resume path.
    /// With a default (empty) prior report this *is* [`Campaign::run`];
    /// with the report of a restored checkpoint it picks the budget up
    /// exactly where the interrupted run left off.
    ///
    /// # Panics
    ///
    /// Panics when `prior` was recorded against a *different* device
    /// than `dut` (by [`Dut::name`]) — continuing another device's
    /// campaign would attribute its counters, and any divergences, to
    /// the wrong DUT. An empty `prior.dut` (a fresh report) is exempt.
    pub(crate) fn resume(&mut self, dut: &mut dyn Dut, prior: CampaignReport) -> CampaignReport {
        assert!(
            prior.dut.is_empty() || prior.dut == dut.name(),
            "cannot resume a campaign recorded against `{}` on `{}`",
            prior.dut,
            dut.name()
        );
        let mut reference = Hart::new(self.config.mem_size);
        let mut report = CampaignReport {
            dut: dut.name().to_string(),
            ..prior
        };
        let engine = self.engine;
        while report.instructions_generated < self.config.instruction_budget {
            // Half the schedule explores fresh programs, half exploits
            // the corpus — once there is a corpus to exploit. Which seed
            // gets exploited is the power schedule's energy-weighted
            // draw; its index is kept so an admitted mutant can credit
            // its parent's fecundity.
            let mutated = !self.corpus.is_empty() && self.rng.chance(128);
            let parent = if mutated {
                let parent = self.corpus.mutate_into(
                    &mut self.generator,
                    self.config.schedule,
                    &mut self.program_buf,
                );
                if parent.is_none() {
                    self.generator
                        .generate_into(self.config.program_len, &mut self.program_buf);
                }
                parent
            } else {
                self.generator
                    .generate_into(self.config.program_len, &mut self.program_buf);
                None
            };
            report.programs += 1;
            report.instructions_generated += self.program_buf.len() as u64;
            let verdict =
                engine.diff_with(&mut reference, dut, &self.program_buf, &mut self.scratch);
            // A DUT failure mid-run poisons the verdict (the failing
            // backend answered with inert placeholders): discard it,
            // record the finding, and either keep fuzzing on the
            // respawned child or stop gracefully when the supervisor's
            // respawn budget is spent.
            if let Some(failure) = dut.take_failure() {
                report.record_failure(&failure, &self.program_buf, report.programs);
                if failure.can_continue {
                    continue;
                }
                break;
            }
            match verdict {
                Err(_) => {
                    // Unloadable program (cannot happen with in-range
                    // generator output, but mutation keeps the door open).
                }
                Ok(DiffVerdict::Agree {
                    steps,
                    exit,
                    trace_digest,
                    trap_causes,
                    pc_pairs,
                    op_classes,
                }) => {
                    report.steps_executed += steps;
                    match exit {
                        RunExit::Breakpoint { .. } => report.breakpoint_exits += 1,
                        RunExit::EnvironmentCall { .. } => report.ecall_exits += 1,
                        RunExit::OutOfGas => report.out_of_gas_exits += 1,
                    }
                    // Either primary key earns a corpus slot: exact-trace
                    // novelty or a never-seen combination of trap causes.
                    let new_trace = self.coverage.observe(trace_digest);
                    let new_traps = self.coverage.observe_trap_set(trap_causes);
                    if new_trace || new_traps {
                        // The two cheap folds are recorded only for
                        // admitted seeds; together with the primary keys
                        // they make up the seed's coverage yield.
                        let new_pairs = self.coverage.observe_pc_pairs(pc_pairs);
                        let new_classes = self.coverage.observe_op_classes(op_classes);
                        let cov_yield = u8::from(new_trace)
                            + u8::from(new_traps)
                            + u8::from(new_pairs)
                            + u8::from(new_classes);
                        let calibration = SeedCalibration {
                            cost: steps,
                            cov_yield,
                            spent: 0,
                            children: 0,
                        };
                        self.corpus
                            .add(&self.program_buf, trace_digest, trap_causes, calibration);
                        if let Some(parent) = parent {
                            self.corpus.record_child(parent);
                        }
                    }
                }
                Ok(DiffVerdict::Diverged(divergence)) => {
                    report.steps_executed += divergence.step;
                    report.divergent_runs += 1;
                    if report.first_divergence_at.is_none() {
                        report.first_divergence_at = Some(report.instructions_generated);
                    }
                    if report.divergences.len() < MAX_REPORTS {
                        let minimized = self.reproduce(&mut reference, dut, &self.program_buf);
                        // A failure during minimization invalidates the
                        // shrunken reproducer; keep the original
                        // divergence and record the failure as usual.
                        let failed = dut.take_failure();
                        report.divergences.push(match &failed {
                            None => minimized.unwrap_or(divergence),
                            Some(_) => divergence,
                        });
                        if let Some(failure) = failed {
                            report.record_failure(&failure, &self.program_buf, report.programs);
                            if !failure.can_continue {
                                break;
                            }
                        }
                    }
                }
            }
        }
        report.unique_traces = self.coverage.unique();
        report.unique_trap_sets = self.coverage.unique_trap_sets();
        report.corpus_size = self.corpus.len();
        report
    }

    /// Shrink a divergence-triggering program and re-run it, returning
    /// the divergence of the minimized reproducer.
    fn reproduce(
        &self,
        reference: &mut Hart,
        dut: &mut dyn Dut,
        program: &[tf_riscv::Instruction],
    ) -> Option<Divergence> {
        let engine = self.engine;
        let minimized = minimize(program, |candidate| {
            matches!(
                engine.diff(reference, dut, candidate),
                Ok(DiffVerdict::Diverged(_))
            )
        });
        match engine.diff(reference, dut, &minimized) {
            Ok(DiffVerdict::Diverged(divergence)) => Some(divergence),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::{BugScenario, MutantHart};

    fn config(budget: u64) -> CampaignConfig {
        CampaignConfig::default()
            .with_seed(0xF00D)
            .with_instruction_budget(budget)
            .with_mem_size(1 << 16)
    }

    #[test]
    fn clean_campaign_against_the_reference_model() {
        let mut campaign = Campaign::new(config(2_000));
        let mut dut = Hart::new(1 << 16);
        let report = campaign.run(&mut dut);
        assert!(
            report.is_clean(),
            "reference vs reference diverged:\n{report}"
        );
        assert!(report.instructions_generated >= 2_000);
        assert!(report.unique_traces > 1, "campaign found no variety");
        assert_eq!(report.corpus_size, report.unique_traces);
        assert_eq!(report.dut, "hart");
    }

    #[test]
    fn campaign_flags_the_b2_mutant() {
        let mut campaign = Campaign::new(config(2_000));
        let mut dut = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        let report = campaign.run(&mut dut);
        assert!(!report.is_clean(), "b2 mutant went undetected:\n{report}");
        let divergence = &report.divergences[0];
        // The minimized reproducer localises an FP step: reference traps,
        // mutant retires.
        assert!(
            report.to_string().contains("illegal instruction"),
            "report does not show the reference trap:\n{report}"
        );
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_run() {
        let full_config = config(2_000);
        let mut uninterrupted = Campaign::new(full_config.clone());
        let mut dut = Hart::new(1 << 16);
        let full = uninterrupted.run(&mut dut);

        // Same campaign, interrupted at half budget and frozen...
        let half_config = CampaignConfig {
            instruction_budget: 1_000,
            ..full_config.clone()
        };
        let mut first = Campaign::new(half_config);
        let mut dut = Hart::new(1 << 16);
        let half = first.run(&mut dut);
        let checkpoint = first.checkpoint(&half);
        let entries = first.corpus().entries().to_vec();

        // ...then thawed into a fresh Campaign and run to the full budget.
        let mut second = Campaign::restore(full_config, &checkpoint, &entries).unwrap();
        let mut dut = Hart::new(1 << 16);
        let resumed = second.resume(&mut dut, checkpoint.report.clone());
        assert_eq!(resumed, full, "resume must be bit-identical");
        assert_eq!(second.corpus().entries(), uninterrupted.corpus().entries());
    }

    #[test]
    fn restore_rejects_a_different_config() {
        let campaign = Campaign::new(config(1_000));
        let checkpoint = campaign.checkpoint(&CampaignReport::default());
        let other = CampaignConfig {
            seed: 0xBEEF,
            ..config(1_000)
        };
        assert!(matches!(
            Campaign::restore(other, &checkpoint, &[]),
            Err(RestoreError::ConfigMismatch { .. })
        ));
        // The budget is *not* part of the fingerprint: raising it resumes.
        let bigger = CampaignConfig {
            instruction_budget: 9_999,
            ..config(1_000)
        };
        assert!(Campaign::restore(bigger, &checkpoint, &[]).is_ok());
    }

    #[test]
    fn restore_rejects_a_different_schedule() {
        // The schedule shapes the corpus-selection stream, so it is part
        // of the config fingerprint — unlike the window.
        let campaign = Campaign::new(config(1_000));
        let checkpoint = campaign.checkpoint(&CampaignReport::default());
        let other = config(1_000).with_schedule(PowerSchedule::Fast);
        assert!(matches!(
            Campaign::restore(other, &checkpoint, &[]),
            Err(RestoreError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn feedback_schedules_stay_deterministic_and_window_invariant() {
        for schedule in [PowerSchedule::Fast, PowerSchedule::Explore] {
            let run = |window: u64| {
                let mut campaign =
                    Campaign::new(config(2_000).with_schedule(schedule).with_window(window));
                let mut dut = MutantHart::new(1 << 16, BugScenario::OffByOneImmediate);
                let report = campaign.run(&mut dut);
                (report, campaign.into_corpus().into_entries())
            };
            let exact = run(1);
            assert!(!exact.0.is_clean(), "{schedule}: imm mutant undetected");
            assert!(
                exact.0.first_divergence_at.is_some(),
                "detection latency must be recorded"
            );
            for window in [16, 64] {
                assert_eq!(run(window), exact, "{schedule} window {window} drifted");
            }
        }
    }

    #[test]
    fn checkpoint_resume_is_exact_under_a_feedback_schedule() {
        // The calibration metadata (cost/yield/spent/children) is part
        // of mid-campaign state: an interrupted fast-schedule campaign
        // must resume onto the uninterrupted run's exact trajectory.
        let full_config = config(2_000).with_schedule(PowerSchedule::Fast);
        let mut uninterrupted = Campaign::new(full_config.clone());
        let mut dut = Hart::new(1 << 16);
        let full = uninterrupted.run(&mut dut);

        let half_config = CampaignConfig {
            instruction_budget: 1_000,
            ..full_config.clone()
        };
        let mut first = Campaign::new(half_config);
        let mut dut = Hart::new(1 << 16);
        let half = first.run(&mut dut);
        let checkpoint = first.checkpoint(&half);
        let entries = first.corpus().entries().to_vec();

        let mut second = Campaign::restore(full_config, &checkpoint, &entries).unwrap();
        let mut dut = Hart::new(1 << 16);
        let resumed = second.resume(&mut dut, checkpoint.report.clone());
        assert_eq!(resumed, full, "fast-schedule resume must be bit-identical");
        assert_eq!(
            second.corpus().entries(),
            uninterrupted.corpus().entries(),
            "calibration metadata must survive the checkpoint round trip"
        );
    }

    #[test]
    fn restore_rejects_a_mismatched_corpus() {
        // A corpus that lost entries (corruption) or gained foreign ones
        // cannot replay the mutation schedule bit-identically.
        let mut campaign = Campaign::new(config(1_500));
        let mut dut = Hart::new(1 << 16);
        let report = campaign.run(&mut dut);
        assert!(report.corpus_size > 0);
        let checkpoint = campaign.checkpoint(&report);
        assert!(matches!(
            Campaign::restore(config(1_500), &checkpoint, &[]),
            Err(RestoreError::CorpusMismatch { found: 0, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "cannot resume a campaign recorded against")]
    fn resume_rejects_a_different_dut() {
        let mut campaign = Campaign::new(config(500));
        let mut golden = Hart::new(1 << 16);
        let report = campaign.run(&mut golden);
        let mut mutant = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        let mut resumed = Campaign::new(config(1_000));
        resumed.resume(&mut mutant, report);
    }

    #[test]
    fn priming_installs_seeds_and_their_coverage() {
        let mut donor = Campaign::new(config(1_500));
        let mut dut = Hart::new(1 << 16);
        let donor_report = donor.run(&mut dut);
        assert!(donor_report.corpus_size > 0);

        let mut primed = Campaign::new(CampaignConfig {
            seed: 0x5EED,
            ..config(1_500)
        });
        let admitted = primed.prime(donor.corpus().entries());
        assert_eq!(admitted, donor.corpus().entries().len());
        // Re-priming the same entries admits nothing new.
        assert_eq!(primed.prime(donor.corpus().entries()), 0);
        assert_eq!(primed.coverage().unique(), donor_report.unique_traces);

        let mut dut = Hart::new(1 << 16);
        let report = primed.run(&mut dut);
        assert!(report.is_clean());
        assert!(
            report.corpus_size >= admitted,
            "primed seeds stay in the corpus"
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let run = || {
            let mut campaign = Campaign::new(config(1_000));
            let mut dut = Hart::new(1 << 16);
            let report = campaign.run(&mut dut);
            (report.programs, report.steps_executed, report.unique_traces)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn every_window_reports_the_exact_campaign_bit_for_bit() {
        // The tentpole invariant at campaign level: the window is pure
        // throughput tuning, so whole reports — divergences, coverage,
        // corpus contents — are identical at every window.
        let run = |window: u64| {
            let mut campaign = Campaign::new(config(2_000).with_window(window));
            let mut dut = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
            let report = campaign.run(&mut dut);
            let entries = campaign.corpus().entries().to_vec();
            (report, entries)
        };
        let exact = run(1);
        assert!(!exact.0.is_clean(), "b2 mutant went undetected");
        for window in [4, 16, 64] {
            assert_eq!(run(window), exact, "window {window} drifted from exact");
        }
    }

    #[test]
    fn checkpoints_resume_across_windows() {
        // The window is excluded from the config fingerprint: a corpus
        // frozen under one window thaws under another, and the resumed
        // tail still reproduces the uninterrupted run bit for bit.
        let full_config = config(2_000).with_window(1);
        let mut uninterrupted = Campaign::new(full_config.clone());
        let mut dut = Hart::new(1 << 16);
        let full = uninterrupted.run(&mut dut);

        let mut first = Campaign::new(config(1_000).with_window(32));
        let mut dut = Hart::new(1 << 16);
        let half = first.run(&mut dut);
        let checkpoint = first.checkpoint(&half);
        let entries = first.corpus().entries().to_vec();

        let mut second = Campaign::restore(full_config, &checkpoint, &entries).unwrap();
        let mut dut = Hart::new(1 << 16);
        let resumed = second.resume(&mut dut, checkpoint.report.clone());
        assert_eq!(resumed, full, "cross-window resume must be bit-identical");
    }

    #[test]
    fn builders_validate_and_the_constructor_enforces_them() {
        let config = CampaignConfig::default()
            .with_seed(7)
            .with_program_len(9)
            .with_max_steps_per_program(50)
            .with_window(4);
        assert_eq!(config.seed, 7);
        assert_eq!(config.program_len, 9);
        assert_eq!(config.diff_config().max_steps, 50);
        assert_eq!(config.diff_config().window, 4);
        assert!(config.validate().is_ok());
        assert_eq!(
            config
                .clone()
                .with_window(0)
                .validate()
                .unwrap_err()
                .to_string(),
            "window must be at least 1"
        );
        assert_eq!(
            config
                .clone()
                .with_program_len(0)
                .validate()
                .unwrap_err()
                .to_string(),
            "program_len must be at least 1"
        );
        assert_eq!(
            config.with_mem_size(0).validate().unwrap_err().to_string(),
            "mem_size must be at least 1"
        );
    }

    #[test]
    #[should_panic(expected = "invalid CampaignConfig")]
    fn the_campaign_rejects_an_invalid_config() {
        let _ = Campaign::new(CampaignConfig::default().with_window(0));
    }
}
