//! The campaign driver: the paper's fuzzing loop, end to end.
//!
//! One iteration of the loop: obtain a program (freshly generated, or
//! mutated from a coverage-earning corpus seed), run it differentially
//! against the device under test with the [`DiffEngine`], then act on
//! the verdict — new trace coverage earns the program a corpus slot,
//! and a divergence is minimized to a near-minimal reproducer and
//! recorded as a bug report. The loop runs until the configured budget
//! of generated instructions is spent, and the whole campaign is a pure
//! function of its seed.

use std::collections::HashSet;

use tf_arch::{Dut, Hart, RunExit};
use tf_riscv::{InstructionLibrary, LibraryConfig};

use crate::corpus::{minimize, Corpus};
use crate::coverage::CoverageMap;
use crate::diff::{DiffEngine, DiffVerdict, Divergence};
use crate::generator::{GeneratorConfig, ProgramGenerator};
use crate::rng::SplitMix64;

/// Divergence reports kept in full; beyond this only the count grows.
const MAX_REPORTS: usize = 16;

/// Campaign parameters. A campaign is reproducible from this value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed for generation, mutation and scheduling.
    pub seed: u64,
    /// Total generated-instruction budget for the campaign.
    pub instruction_budget: u64,
    /// Instructions per generated program (including the `ebreak`).
    pub program_len: usize,
    /// Step budget per differential run.
    pub max_steps_per_program: u64,
    /// Device memory size in bytes.
    pub mem_size: u64,
    /// Load address for generated programs.
    pub base: u64,
    /// Instruction-repository configuration to sample from.
    pub library: LibraryConfig,
    /// Generator tuning.
    pub generator: GeneratorConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            instruction_budget: 10_000,
            program_len: 32,
            max_steps_per_program: 128,
            mem_size: 1 << 20,
            base: 0,
            library: LibraryConfig::all(),
            generator: GeneratorConfig::default(),
        }
    }
}

/// What a finished campaign observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Name of the device under test.
    pub dut: String,
    /// Programs executed differentially.
    pub programs: u64,
    /// Instructions generated (the budget currency).
    pub instructions_generated: u64,
    /// Lockstep steps executed across all runs.
    pub steps_executed: u64,
    /// Runs that ended at the `ebreak` terminator.
    pub breakpoint_exits: u64,
    /// Runs that ended on an `ecall`.
    pub ecall_exits: u64,
    /// Runs that exhausted the step budget.
    pub out_of_gas_exits: u64,
    /// Distinct execution-trace digests observed.
    pub unique_traces: usize,
    /// Distinct trap-cause sets observed (the coarse secondary coverage
    /// key).
    pub unique_trap_sets: usize,
    /// Corpus entries saved (programs that produced new coverage).
    pub corpus_size: usize,
    /// Total divergent runs observed.
    pub divergent_runs: u64,
    /// Minimized divergence reports (the first 16; beyond that only
    /// [`CampaignReport::divergent_runs`] grows).
    pub divergences: Vec<Divergence>,
}

impl CampaignReport {
    /// True when no divergence was observed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent_runs == 0
    }

    /// Fold another report into this one: counters add, DUT names join,
    /// and `other`'s divergences are appended unless a divergence with
    /// the same [`Divergence::fingerprint`] is already present or was
    /// just appended — so the incoming findings are fully deduplicated,
    /// capped at the usual report limit (`divergent_runs` still counts
    /// everything).
    ///
    /// The operation is associative, so sharded campaign workers can be
    /// folded in any grouping. Note that `unique_traces`,
    /// `unique_trap_sets` and `corpus_size` *add* — they are per-worker
    /// totals; use merged [`CoverageMap`]s for the deduplicated union.
    pub fn merge(&mut self, other: &CampaignReport) {
        // The merged name is the stable deduplicated union of the
        // `+`-joined DUT names, so merging stays associative even when
        // reports against several device kinds are folded together.
        if self.dut.is_empty() {
            self.dut = other.dut.clone();
        } else {
            for name in other.dut.split('+').filter(|n| !n.is_empty()) {
                if !self.dut.split('+').any(|known| known == name) {
                    self.dut.push('+');
                    self.dut.push_str(name);
                }
            }
        }
        self.programs += other.programs;
        self.instructions_generated += other.instructions_generated;
        self.steps_executed += other.steps_executed;
        self.breakpoint_exits += other.breakpoint_exits;
        self.ecall_exits += other.ecall_exits;
        self.out_of_gas_exits += other.out_of_gas_exits;
        self.unique_traces += other.unique_traces;
        self.unique_trap_sets += other.unique_trap_sets;
        self.corpus_size += other.corpus_size;
        self.divergent_runs += other.divergent_runs;
        let mut known: HashSet<u64> = self
            .divergences
            .iter()
            .map(Divergence::fingerprint)
            .collect();
        for divergence in &other.divergences {
            if self.divergences.len() >= MAX_REPORTS {
                break;
            }
            if known.insert(divergence.fingerprint()) {
                self.divergences.push(divergence.clone());
            }
        }
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "campaign against `{}`:", self.dut)?;
        writeln!(
            f,
            "  programs {}  instructions {}  steps {}",
            self.programs, self.instructions_generated, self.steps_executed
        )?;
        writeln!(
            f,
            "  exits: breakpoint {}  ecall {}  out-of-gas {}",
            self.breakpoint_exits, self.ecall_exits, self.out_of_gas_exits
        )?;
        writeln!(
            f,
            "  coverage: {} unique traces, {} trap-cause sets, {} corpus seeds",
            self.unique_traces, self.unique_trap_sets, self.corpus_size
        )?;
        if self.is_clean() {
            write!(f, "  divergences: none")?;
        } else {
            write!(f, "  divergences: {} divergent runs", self.divergent_runs)?;
            for divergence in &self.divergences {
                write!(f, "\n{divergence}")?;
            }
        }
        Ok(())
    }
}

/// The fuzzing-campaign driver.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    generator: ProgramGenerator,
    corpus: Corpus,
    coverage: CoverageMap,
    engine: DiffEngine,
    rng: SplitMix64,
}

impl Campaign {
    /// Build a campaign from its configuration.
    #[must_use]
    pub fn new(config: CampaignConfig) -> Self {
        let library = InstructionLibrary::new(config.library, config.seed);
        let generator = ProgramGenerator::with_config(library, config.seed ^ 1, config.generator);
        let engine = DiffEngine::new(config.base, config.max_steps_per_program);
        Campaign {
            generator,
            corpus: Corpus::new(config.seed ^ 2),
            coverage: CoverageMap::new(),
            engine,
            rng: SplitMix64::new(config.seed ^ 3),
            config,
        }
    }

    /// The configuration the campaign was built from.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The coverage the campaign has accumulated so far. Sharded drivers
    /// merge the per-worker maps into the aggregate view.
    #[must_use]
    pub fn coverage(&self) -> &CoverageMap {
        &self.coverage
    }

    /// Run the campaign against `dut`, differencing every program
    /// against a fresh golden [`Hart`] reference.
    pub fn run(&mut self, dut: &mut dyn Dut) -> CampaignReport {
        let mut reference = Hart::new(self.config.mem_size);
        let mut report = CampaignReport {
            dut: dut.name().to_string(),
            ..CampaignReport::default()
        };
        while report.instructions_generated < self.config.instruction_budget {
            // Half the schedule explores fresh programs, half exploits
            // the corpus — once there is a corpus to exploit.
            let mutated = !self.corpus.is_empty() && self.rng.chance(128);
            let program = if mutated {
                self.corpus
                    .mutate(&mut self.generator)
                    .unwrap_or_else(|| self.generator.generate(self.config.program_len))
            } else {
                self.generator.generate(self.config.program_len)
            };
            report.programs += 1;
            report.instructions_generated += program.len() as u64;
            match self.engine.diff(&mut reference, dut, &program) {
                Err(_) => {
                    // Unloadable program (cannot happen with in-range
                    // generator output, but mutation keeps the door open).
                }
                Ok(DiffVerdict::Agree {
                    steps,
                    exit,
                    trace_digest,
                    trap_causes,
                }) => {
                    report.steps_executed += steps;
                    match exit {
                        RunExit::Breakpoint { .. } => report.breakpoint_exits += 1,
                        RunExit::EnvironmentCall { .. } => report.ecall_exits += 1,
                        RunExit::OutOfGas => report.out_of_gas_exits += 1,
                    }
                    // Either key earns a corpus slot: exact-trace novelty
                    // or a never-seen combination of trap causes.
                    let new_trace = self.coverage.observe(trace_digest);
                    let new_traps = self.coverage.observe_trap_set(trap_causes);
                    if new_trace || new_traps {
                        self.corpus.save(program, trace_digest);
                    }
                }
                Ok(DiffVerdict::Diverged(divergence)) => {
                    report.steps_executed += divergence.step;
                    report.divergent_runs += 1;
                    if report.divergences.len() < MAX_REPORTS {
                        let minimized = self.reproduce(&mut reference, dut, &program);
                        report.divergences.push(minimized.unwrap_or(divergence));
                    }
                }
            }
        }
        report.unique_traces = self.coverage.unique();
        report.unique_trap_sets = self.coverage.unique_trap_sets();
        report.corpus_size = self.corpus.len();
        report
    }

    /// Shrink a divergence-triggering program and re-run it, returning
    /// the divergence of the minimized reproducer.
    fn reproduce(
        &mut self,
        reference: &mut Hart,
        dut: &mut dyn Dut,
        program: &[tf_riscv::Instruction],
    ) -> Option<Divergence> {
        let engine = self.engine;
        let minimized = minimize(program, |candidate| {
            matches!(
                engine.diff(reference, dut, candidate),
                Ok(DiffVerdict::Diverged(_))
            )
        });
        match engine.diff(reference, dut, &minimized) {
            Ok(DiffVerdict::Diverged(divergence)) => Some(divergence),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::{BugScenario, MutantHart};

    fn config(budget: u64) -> CampaignConfig {
        CampaignConfig {
            seed: 0xF00D,
            instruction_budget: budget,
            mem_size: 1 << 16,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn clean_campaign_against_the_reference_model() {
        let mut campaign = Campaign::new(config(2_000));
        let mut dut = Hart::new(1 << 16);
        let report = campaign.run(&mut dut);
        assert!(
            report.is_clean(),
            "reference vs reference diverged:\n{report}"
        );
        assert!(report.instructions_generated >= 2_000);
        assert!(report.unique_traces > 1, "campaign found no variety");
        assert_eq!(report.corpus_size, report.unique_traces);
        assert_eq!(report.dut, "hart");
    }

    #[test]
    fn campaign_flags_the_b2_mutant() {
        let mut campaign = Campaign::new(config(2_000));
        let mut dut = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        let report = campaign.run(&mut dut);
        assert!(!report.is_clean(), "b2 mutant went undetected:\n{report}");
        let divergence = &report.divergences[0];
        // The minimized reproducer localises an FP step: reference traps,
        // mutant retires.
        assert!(
            report.to_string().contains("illegal instruction"),
            "report does not show the reference trap:\n{report}"
        );
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let run = || {
            let mut campaign = Campaign::new(config(1_000));
            let mut dut = Hart::new(1 << 16);
            let report = campaign.run(&mut dut);
            (report.programs, report.steps_executed, report.unique_traces)
        };
        assert_eq!(run(), run());
    }
}
