//! The campaign coordinator: one corpus, many workers, live seed
//! sharing — the LibAFL launcher/broker shape on `std::thread`s.
//!
//! [`CampaignDriver`] is the single entry point for running campaigns
//! (it replaced the four historical doors: `Campaign::run`,
//! `Campaign::resume`, `run_sharded` and `run_sharded_seeded`). A
//! coordinator on the calling thread owns the global [`Corpus`], the
//! union [`CoverageMap`] and the findings; worker threads each own one
//! seed-disjoint campaign and a device under test, and the two sides
//! speak over channels in *synchronisation rounds*:
//!
//! ```text
//!             RoundTask { broadcast, target }
//!   coordinator ──────────────────────────────▶ worker 0..jobs
//!   coordinator ◀────────────────────────────── worker 0..jobs
//!             RoundResult { novel seeds, checkpoint, … }
//! ```
//!
//! Each round, every active worker primes the seeds broadcast by the
//! coordinator (the previous round's global admissions), advances its
//! own campaign to the round's instruction target, and reports back the
//! seeds *it* admitted. The coordinator merges those novel seeds into
//! the global corpus **in worker-id order** — never channel-arrival
//! order — and broadcasts the admitted tail next round, so one worker's
//! discovery reshapes every other worker's power-schedule energies
//! while the campaign runs, deterministically.
//!
//! # Determinism rules
//!
//! * Worker `i` runs [`worker_seed`]`(master, i)` over its
//!   [`shard_config`] budget slice; its trajectory depends only on the
//!   master seed, its index, its budget and the (deterministic)
//!   broadcast stream — never on thread scheduling.
//! * Admission into the global corpus happens in `(round, worker id)`
//!   order, and each round is a barrier: no result is folded before
//!   every active worker has reported.
//! * With `jobs = 1` the broadcast is the worker's own echo (admitting
//!   nothing and touching no RNG), and budget slicing is exact, so the
//!   run is bit-identical to the historical single-threaded campaign.
//! * Autosave cadence is counted in completed batches (one batch = one
//!   worker-round), so checkpoint content never depends on wall-clock.
//!
//! Checkpoints (format v5, [`crate::persist`]) carry the coordinator
//! state — autosave ordinal, batch/round counters, pending-broadcast
//! tail and one [`WorkerStream`] per worker — so `--resume` composes
//! with `--jobs N`: every worker thaws its own RNG streams, corpus and
//! report and the rounds continue where they stopped.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use tf_arch::{Dut, RemoteDutStats};

use crate::campaign::{Campaign, CampaignConfig, CampaignReport, RestoreError};
use crate::corpus::{Corpus, SeedEntry};
use crate::coverage::CoverageMap;
use crate::diff::ConfigError;
use crate::persist::{self, CampaignCheckpoint, LoadedFile, PersistError, WorkerStream};
use crate::rng::SplitMix64;

/// Default per-worker instruction distance between synchronisation
/// rounds ([`CampaignDriver::with_sync_every`]): how often novel seeds
/// are exchanged. `0` disables live sharing (one round per worker).
pub const DEFAULT_SYNC_EVERY: u64 = 1024;

/// The seed worker `worker` runs under a master seed.
///
/// Worker 0 inherits the master seed itself (so `jobs = 1` reproduces
/// the single-threaded campaign bit for bit); workers `i >= 1` take the
/// `i`-th value of a splitmix64 stream seeded with the master seed. The
/// mapping depends only on `(master, worker)`, not on the job count, so
/// worker `i` explores the same programs whether the run uses 2 workers
/// or 16.
#[must_use]
pub fn worker_seed(master: u64, worker: usize) -> u64 {
    if worker == 0 {
        return master;
    }
    let mut stream = SplitMix64::new(master);
    let mut seed = 0;
    for _ in 0..worker {
        seed = stream.next_u64();
    }
    seed
}

/// The configuration worker `worker` of a `jobs`-wide run executes: the
/// master config with the worker's seed and its slice of the instruction
/// budget (the remainder of an uneven split goes to the lowest-indexed
/// workers).
#[must_use]
pub fn shard_config(config: &CampaignConfig, jobs: usize, worker: usize) -> CampaignConfig {
    assert!(worker < jobs, "worker index out of range");
    let jobs = jobs as u64;
    let base = config.instruction_budget / jobs;
    let extra = u64::from((worker as u64) < config.instruction_budget % jobs);
    config
        .clone()
        .with_seed(worker_seed(config.seed, worker))
        .with_instruction_budget(base + extra)
}

/// The identity handed to the DUT factory for each worker it must
/// equip: which worker, under which seed, and — when resuming a run
/// recorded against an out-of-process DUT — the supervisor batch
/// counter to re-base chaos schedules on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpec {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// The seed the worker's campaign runs under
    /// ([`worker_seed`]`(master, worker)`).
    pub seed: u64,
    /// Cumulative batches an out-of-process DUT already served for this
    /// stream (0 for fresh runs and in-process DUTs) — pass to
    /// [`crate::DutSupervisor::spawn`] as the batch offset.
    pub remote_batches: u64,
}

/// What one worker of a coordinated campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// The seed the worker's campaign ran under.
    pub seed: u64,
    /// The worker's own campaign report.
    pub report: CampaignReport,
}

/// A live event from the coordinator, delivered to the run's
/// [`EventSink`] on the coordinator thread, in deterministic order.
/// Counters are cumulative across the whole campaign (including the
/// resumed-from checkpoint), so a sink can derive rates by differencing.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// A corpus file was loaded before the run.
    CorpusLoaded {
        /// Seed records loaded.
        loaded: usize,
        /// Corrupt records skipped.
        skipped: usize,
        /// Whether the file lost a truncated tail.
        truncated: bool,
        /// Whether the file carried a campaign checkpoint.
        checkpoint: bool,
    },
    /// Seeds (from the file and/or [`CampaignDriver::with_seeds`]) were
    /// admitted into the fresh campaign's global corpus.
    CorpusPrimed {
        /// Entries admitted after coverage-key dedup.
        admitted: usize,
    },
    /// A checkpoint thawed; the campaign continues toward a larger
    /// budget.
    Resuming {
        /// Instructions the checkpoint already covers.
        instructions_done: u64,
        /// The new total instruction budget.
        budget: u64,
    },
    /// One worker finished one synchronisation round (one *batch*).
    BatchCompleted {
        /// The worker that finished the batch.
        worker: usize,
        /// Global 1-based batch ordinal (continues across resume).
        batch: u64,
        /// Programs executed, campaign-wide.
        programs: u64,
        /// Instructions generated, campaign-wide.
        instructions: u64,
        /// Lockstep steps executed, campaign-wide.
        steps: u64,
        /// Distinct execution-trace digests in the union coverage.
        unique_traces: usize,
        /// Global corpus size after this batch's admissions.
        corpus: usize,
        /// Divergent runs observed, campaign-wide.
        divergent_runs: u64,
        /// DUT failures recorded, campaign-wide.
        dut_failures: u64,
        /// Seeds this batch admitted into the global corpus.
        admitted: usize,
        /// Seeds admitted by workers that did not discover them,
        /// campaign-wide — the live-sharing counter.
        foreign_admitted: u64,
    },
    /// A worker's divergence counter grew this round.
    DivergenceFound {
        /// The worker that observed the divergence.
        worker: usize,
        /// That worker's cumulative divergent runs.
        divergent_runs: u64,
    },
    /// A worker's DUT-failure counter grew this round.
    DutFailureRecorded {
        /// The worker whose DUT failed.
        worker: usize,
        /// That worker's cumulative failures (crash + hang + desync).
        dut_failures: u64,
    },
    /// A periodic checkpoint was written mid-run.
    AutosaveWritten {
        /// 1-based autosave ordinal (continues across resume).
        ordinal: u64,
        /// Completed batches at the save.
        batches_completed: u64,
    },
}

/// Observer for live campaign statistics. Implementations are invoked
/// on the coordinator thread between rounds — they can block without
/// corrupting the campaign, but long stalls cost wall-clock.
pub trait EventSink {
    /// Observe one coordinator event.
    fn event(&mut self, event: &CampaignEvent);
}

impl<F: FnMut(&CampaignEvent)> EventSink for F {
    fn event(&mut self, event: &CampaignEvent) {
        self(event)
    }
}

/// Why a [`CampaignDriver`] run could not produce an outcome. `Display`
/// renders the operator-facing message the CLI prints verbatim.
#[derive(Debug)]
pub enum DriveError {
    /// The driver configuration is invalid.
    Config(ConfigError),
    /// The DUT factory failed to equip a worker.
    DutFactory(String),
    /// The corpus file exists but could not be loaded.
    Load(PersistError),
    /// Resume was requested but the corpus file does not exist.
    ResumeMissing(PathBuf),
    /// Resume was requested from a file that lost records to
    /// corruption.
    ResumeDamaged {
        /// The damaged file.
        path: PathBuf,
        /// Corrupt records skipped at load.
        skipped: usize,
        /// Whether the tail was truncated.
        truncated: bool,
    },
    /// Resume was requested from a file with no campaign checkpoint.
    NoCheckpoint(PathBuf),
    /// The checkpoint was frozen at a different worker count.
    JobsMismatch {
        /// Worker count the checkpoint was frozen with.
        frozen: usize,
        /// Worker count requested for this run.
        requested: usize,
    },
    /// The checkpoint was recorded against a different DUT.
    DutMismatch {
        /// DUT name in the checkpoint.
        recorded: String,
        /// DUT name the factory produced.
        offered: String,
    },
    /// The checkpoint already covers the requested budget.
    NothingToResume {
        /// Instructions the checkpoint covers.
        covered: u64,
    },
    /// A worker checkpoint could not be restored.
    Restore(RestoreError),
    /// A mid-run autosave failed; the campaign stopped rather than keep
    /// running with a broken crash-recovery guarantee.
    Save(std::io::Error),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Config(error) => error.fmt(f),
            DriveError::DutFactory(error) => f.write_str(error),
            DriveError::Load(error) => error.fmt(f),
            DriveError::ResumeMissing(path) => {
                write!(f, "cannot resume: `{}` does not exist", path.display())
            }
            DriveError::ResumeDamaged {
                path,
                skipped,
                truncated,
            } => write!(
                f,
                "`{}` lost records to corruption ({} skipped{}); a damaged corpus \
                 cannot resume bit-identically — re-run without --resume to reseed from it",
                path.display(),
                skipped,
                if *truncated { ", truncated tail" } else { "" }
            ),
            DriveError::NoCheckpoint(path) => write!(
                f,
                "`{}` carries no campaign checkpoint to resume \
                 (was it written by `corpus merge`?)",
                path.display()
            ),
            DriveError::JobsMismatch { frozen, requested } => write!(
                f,
                "checkpoint was frozen by a --jobs {frozen} run but --jobs {requested} \
                 was requested — per-worker rng streams only resume at the same worker count"
            ),
            DriveError::DutMismatch { recorded, offered } => write!(
                f,
                "checkpoint was recorded against `{recorded}`, not `{offered}` — \
                 pass the same --mutant"
            ),
            DriveError::NothingToResume { covered } => write!(
                f,
                "nothing to resume: the checkpoint already covers {covered} instructions; \
                 raise --steps beyond that to continue the campaign"
            ),
            DriveError::Restore(error) => error.fmt(f),
            DriveError::Save(error) => write!(f, "saving corpus: {error}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// What [`DriveOutcome::save`] wrote, for the caller's bookkeeping line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveSummary {
    /// Seed entries written.
    pub seeds: usize,
    /// Destination file.
    pub path: PathBuf,
}

/// A finished coordinated campaign: the merged view, per-worker detail,
/// the grown corpus and the checkpoint ready to persist.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// All workers folded together ([`CampaignReport::merge`]), with the
    /// coverage counters replaced by the *union* of the per-worker
    /// coverage maps. With one worker this is that worker's report,
    /// verbatim.
    pub report: CampaignReport,
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerReport>,
    /// The union of every worker's coverage.
    pub coverage: CoverageMap,
    /// The global corpus in admission order, deduped by
    /// [`SeedEntry::coverage_key`].
    pub corpus: Vec<SeedEntry>,
    /// Wall-clock time of the parallel section.
    pub elapsed: Duration,
    /// Seeds admitted by workers that did not discover them — proof the
    /// live cross-worker sharing fired.
    pub foreign_admitted: u64,
    /// Worker-rounds completed over the campaign's whole life.
    pub batches_completed: u64,
    /// Synchronisation rounds completed over the campaign's whole life.
    pub rounds_completed: u64,
    /// Autosaves written over the campaign's whole life.
    pub autosaves: u64,
    /// Lifetime statistics of worker 0's out-of-process DUT backend
    /// (`None` for in-process DUTs).
    pub remote: Option<RemoteDutStats>,
    checkpoint: CampaignCheckpoint,
    path: Option<PathBuf>,
}

impl DriveOutcome {
    /// Aggregate lockstep throughput: steps executed across all workers
    /// per wall-clock second.
    #[must_use]
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.report.steps_executed as f64 / secs
        } else {
            0.0
        }
    }

    /// The checkpoint the campaign froze at its end — what
    /// [`DriveOutcome::save`] persists alongside the corpus.
    #[must_use]
    pub fn checkpoint(&self) -> &CampaignCheckpoint {
        &self.checkpoint
    }

    /// Persist the grown corpus and the final checkpoint to the path
    /// the driver was configured with ([`CampaignDriver::with_corpus`]).
    /// Returns `Ok(None)` for ephemeral campaigns. Deliberately a
    /// separate step from [`CampaignDriver::run`] so callers can report
    /// the campaign before risking the save.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying filesystem.
    pub fn save(&self) -> std::io::Result<Option<SaveSummary>> {
        let Some(path) = &self.path else {
            return Ok(None);
        };
        persist::save_campaign(path, &self.corpus, &self.checkpoint)?;
        Ok(Some(SaveSummary {
            seeds: self.corpus.len(),
            path: path.clone(),
        }))
    }
}

impl std::fmt::Display for DriveOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.report)?;
        for worker in &self.workers {
            writeln!(
                f,
                "  worker {}: seed {:#018x}  programs {}  steps {}  divergent {}",
                worker.worker,
                worker.seed,
                worker.report.programs,
                worker.report.steps_executed,
                worker.report.divergent_runs,
            )?;
        }
        write!(
            f,
            "  throughput: {:.0} steps/sec aggregate over {} worker(s) ({:.2} s wall)",
            self.steps_per_sec(),
            self.workers.len(),
            self.elapsed.as_secs_f64(),
        )
    }
}

/// One worker's round assignment: the seeds every worker admitted last
/// round, and the absolute instruction target to advance to.
struct RoundTask {
    broadcast: Vec<SeedEntry>,
    target: u64,
}

/// One worker's round report back to the coordinator.
struct RoundResult {
    worker: usize,
    /// Seeds this worker's own run admitted this round, in admission
    /// order (broadcast-primed foreign seeds are not echoed back).
    novel: Vec<SeedEntry>,
    /// The worker's full corpus at the end of the round — what its
    /// [`WorkerStream`] persists.
    entries: Vec<SeedEntry>,
    /// The worker's frozen campaign state (report, RNG streams,
    /// coverage).
    checkpoint: CampaignCheckpoint,
    remote: Option<RemoteDutStats>,
    finished: bool,
    foreign: u64,
}

/// A worker waiting to be spawned: its campaign, prior report and
/// budget slice.
struct WorkerSeat {
    worker: usize,
    campaign: Campaign,
    prior: CampaignReport,
    foreign: u64,
    budget: u64,
}

/// Cumulative per-worker counters the coordinator tracks for events.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerCounters {
    programs: u64,
    instructions: u64,
    steps: u64,
    divergent: u64,
    failures: u64,
    foreign: u64,
}

impl WorkerCounters {
    fn of(report: &CampaignReport, foreign: u64) -> Self {
        WorkerCounters {
            programs: report.programs,
            instructions: report.instructions_generated,
            steps: report.steps_executed,
            divergent: report.divergent_runs,
            failures: report.dut_failures(),
            foreign,
        }
    }
}

/// Mutable coordinator state shared by the round loop, the autosave
/// writer and the outcome builder.
struct CoordinatorState {
    global: Corpus,
    live_coverage: CoverageMap,
    totals: BTreeMap<usize, WorkerCounters>,
    latest: BTreeMap<usize, RoundResult>,
    pending: Vec<SeedEntry>,
    autosave_ordinal: u64,
    batches_completed: u64,
    rounds_completed: u64,
}

/// The absolute instruction target worker with budget `budget` advances
/// to in round `round` (0-based, absolute across resume).
fn round_target(budget: u64, round: u64, sync_every: u64) -> u64 {
    if sync_every == 0 {
        budget
    } else {
        budget.min(round.saturating_add(1).saturating_mul(sync_every))
    }
}

fn fire(sink: &mut Option<&mut dyn EventSink>, event: &CampaignEvent) {
    if let Some(sink) = sink {
        sink.event(event);
    }
}

/// One worker thread: pull round tasks until finished (or orphaned),
/// prime the broadcast, advance the campaign, report back.
fn worker_loop<D: Dut>(
    mut seat: WorkerSeat,
    mut dut: D,
    tasks: &mpsc::Receiver<RoundTask>,
    results: &mpsc::Sender<RoundResult>,
) {
    let mut report = std::mem::take(&mut seat.prior);
    while let Ok(task) = tasks.recv() {
        seat.foreign += seat.campaign.prime(&task.broadcast) as u64;
        seat.campaign.set_instruction_budget(task.target);
        let before = seat.campaign.corpus().len();
        report = seat.campaign.resume(&mut dut, report);
        // Falling short of the target means the DUT died for good
        // mid-round (respawn budget exhausted); the worker retires with
        // whatever it observed.
        let dead = report.instructions_generated < task.target;
        let finished = dead || task.target >= seat.budget;
        let result = RoundResult {
            worker: seat.worker,
            novel: seat.campaign.corpus().entries()[before..].to_vec(),
            entries: seat.campaign.corpus().entries().to_vec(),
            checkpoint: seat.campaign.checkpoint(&report),
            remote: dut.remote_stats(),
            finished,
            foreign: seat.foreign,
        };
        let delivered = results.send(result).is_ok();
        if finished || !delivered {
            break;
        }
    }
}

/// Merge the latest per-worker states into the aggregate view: reports
/// folded in worker order, coverage counters replaced by the union,
/// corpus size by the global corpus.
/// The live calibration records across every worker's most recent
/// corpus snapshot, keyed by [`SeedEntry::coverage_key`]. When several
/// workers hold the same key the lowest worker id wins (`latest` is a
/// `BTreeMap`, so iteration order is worker-id order) — which for a
/// freshly admitted seed is always the worker that admitted it.
fn live_calibrations(
    latest: &BTreeMap<usize, RoundResult>,
) -> BTreeMap<(u64, u64), crate::SeedCalibration> {
    let mut live = BTreeMap::new();
    for result in latest.values() {
        for entry in &result.entries {
            live.entry(entry.coverage_key())
                .or_insert(entry.calibration);
        }
    }
    live
}

/// Fold the workers' live calibration back into the global corpus.
///
/// Global entries are clones taken at admission time, but the owning
/// worker keeps calibrating its own copy every time the seed is
/// selected and mutated. Before the corpus leaves the coordinator — an
/// autosave or the final outcome — the live values are written back,
/// so a jobs-1 save carries exactly the calibration the plain
/// single-threaded campaign would have saved.
fn refresh_calibration(global: &mut Corpus, latest: &BTreeMap<usize, RoundResult>) {
    let live = live_calibrations(latest);
    for entry in global.entries_mut() {
        if let Some(calibration) = live.get(&entry.coverage_key()) {
            entry.calibration = *calibration;
        }
    }
}

fn merge_latest(
    latest: &BTreeMap<usize, RoundResult>,
    global_len: usize,
) -> (CampaignReport, CoverageMap) {
    let mut coverage = CoverageMap::new();
    let mut merged = CampaignReport::default();
    for result in latest.values() {
        coverage.merge(&result.checkpoint.coverage);
        merged.merge(&result.checkpoint.report);
    }
    merged.unique_traces = coverage.unique();
    merged.unique_trap_sets = coverage.unique_trap_sets();
    merged.corpus_size = global_len;
    (merged, coverage)
}

/// Freeze the whole coordinated campaign. With one worker the global
/// block *is* that worker's campaign state (today's single-campaign
/// checkpoint, verbatim); with more, the global block carries the
/// merged view and one [`WorkerStream`] per worker carries the
/// resumable streams.
fn build_checkpoint(
    config: &CampaignConfig,
    jobs: usize,
    state: &CoordinatorState,
) -> CampaignCheckpoint {
    let mut checkpoint = if jobs == 1 {
        let result = &state.latest[&0];
        let mut checkpoint = result.checkpoint.clone();
        checkpoint.remote_batches = result.remote.map(|stats| stats.batches_issued);
        checkpoint
    } else {
        let (report, coverage) = merge_latest(&state.latest, state.global.len());
        CampaignCheckpoint {
            config_fingerprint: config.fingerprint(),
            report,
            // The resumable streams live in the per-worker sections; the
            // global block's own RNG slots are meaningless and zeroed.
            campaign_rng: 0,
            corpus_rng: 0,
            generator_rng: 0,
            library_rng: 0,
            coverage,
            remote_batches: None,
            autosave_ordinal: 0,
            batches_completed: 0,
            rounds_completed: 0,
            pending_broadcast: 0,
            worker_count: jobs,
            workers: state
                .latest
                .values()
                .map(|result| WorkerStream {
                    worker: result.worker,
                    campaign_rng: result.checkpoint.campaign_rng,
                    corpus_rng: result.checkpoint.corpus_rng,
                    generator_rng: result.checkpoint.generator_rng,
                    library_rng: result.checkpoint.library_rng,
                    foreign_admitted: result.foreign,
                    report: result.checkpoint.report.clone(),
                    coverage: result.checkpoint.coverage.clone(),
                    entries: result.entries.clone(),
                })
                .collect(),
        }
    };
    checkpoint.autosave_ordinal = state.autosave_ordinal;
    checkpoint.batches_completed = state.batches_completed;
    checkpoint.rounds_completed = state.rounds_completed;
    checkpoint.pending_broadcast = state.pending.len();
    checkpoint.worker_count = jobs;
    checkpoint
}

/// Builder-style driver for coordinated campaigns — the one way to run
/// a campaign, ephemeral or persistent, single- or multi-worker.
///
/// ```
/// use tf_arch::{BugScenario, MutantHart};
/// use tf_fuzz::{CampaignConfig, CampaignDriver};
///
/// let config = CampaignConfig::default()
///     .with_instruction_budget(1_000)
///     .with_mem_size(1 << 16);
/// let outcome = CampaignDriver::new(config)
///     .with_jobs(2)
///     .run(|_spec| Ok(MutantHart::new(1 << 16, BugScenario::B2ReservedRounding)))
///     .unwrap();
/// assert!(!outcome.report.is_clean());
/// ```
#[must_use = "a driver does nothing until run"]
pub struct CampaignDriver<'a> {
    config: CampaignConfig,
    jobs: usize,
    corpus: Option<PathBuf>,
    resume: bool,
    seeds: Vec<SeedEntry>,
    autosave_every: u64,
    sync_every: u64,
    sink: Option<&'a mut dyn EventSink>,
}

impl<'a> CampaignDriver<'a> {
    /// A driver for `config`: one worker, ephemeral, live sharing every
    /// [`DEFAULT_SYNC_EVERY`] instructions, autosave off, no sink.
    pub fn new(config: CampaignConfig) -> Self {
        CampaignDriver {
            config,
            jobs: 1,
            corpus: None,
            resume: false,
            seeds: Vec::new(),
            autosave_every: 0,
            sync_every: DEFAULT_SYNC_EVERY,
            sink: None,
        }
    }

    /// Split the instruction budget across `jobs` worker threads
    /// ([`shard_config`]). `jobs = 1` (the default) is bit-identical to
    /// the historical single-threaded campaign.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Make the campaign persistent: seeds (and a checkpoint, if
    /// present) load from `path` before the run, and
    /// [`DriveOutcome::save`] writes the grown corpus plus the final
    /// checkpoint back.
    pub fn with_corpus(mut self, path: impl Into<PathBuf>) -> Self {
        self.corpus = Some(path.into());
        self
    }

    /// Thaw the corpus file's checkpoint and continue toward a raised
    /// budget instead of starting fresh — bit-identical to one
    /// uninterrupted run at the same worker count.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Prime every fresh campaign with these entries (cross-run
    /// cross-pollination), in addition to whatever the corpus file
    /// holds. Ignored on resume — a checkpointed corpus is closed.
    pub fn with_seeds(mut self, seeds: Vec<SeedEntry>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Write a checkpoint every `batches` completed worker-rounds
    /// (deterministic cadence; `0`, the default, disables autosave).
    /// Requires a corpus path.
    pub fn with_autosave_every(mut self, batches: u64) -> Self {
        self.autosave_every = batches;
        self
    }

    /// Per-worker instruction distance between synchronisation rounds —
    /// how often workers exchange novel seeds. `0` disables live
    /// sharing (each worker runs its whole budget in one round).
    pub fn with_sync_every(mut self, instructions: u64) -> Self {
        self.sync_every = instructions;
        self
    }

    /// Deliver live [`CampaignEvent`]s to `sink` during the run.
    pub fn with_event_sink(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Check the invariants [`CampaignDriver::run`] requires.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::Config`] naming the violated invariant:
    /// the embedded [`CampaignConfig`] must validate, `jobs >= 1`, and
    /// resume/autosave both require a corpus path.
    pub fn validate(&self) -> Result<(), DriveError> {
        self.config.validate().map_err(DriveError::Config)?;
        if self.jobs < 1 {
            return Err(DriveError::Config(ConfigError("jobs must be at least 1")));
        }
        if self.resume && self.corpus.is_none() {
            return Err(DriveError::Config(ConfigError(
                "resume requires a corpus path",
            )));
        }
        if self.autosave_every > 0 && self.corpus.is_none() {
            return Err(DriveError::Config(ConfigError(
                "autosave requires a corpus path",
            )));
        }
        Ok(())
    }

    /// Run the campaign. `dut_factory` is called once per worker, on
    /// the coordinator thread, with that worker's [`WorkerSpec`]; the
    /// devices are moved into the worker threads.
    ///
    /// # Errors
    ///
    /// See [`DriveError`] — configuration, load/resume validation,
    /// factory and autosave failures. A clean run that merely *finds*
    /// divergences is `Ok`; outcomes live in the report.
    ///
    /// # Panics
    ///
    /// Panics when a worker thread panics.
    pub fn run<D, F>(mut self, mut dut_factory: F) -> Result<DriveOutcome, DriveError>
    where
        D: Dut + Send,
        F: FnMut(WorkerSpec) -> Result<D, String>,
    {
        self.validate()?;
        let jobs = self.jobs;
        let config = self.config.clone();
        let budget = config.instruction_budget;
        let mut sink = self.sink.take();

        // 1. Load the corpus file, if any.
        let loaded: Option<LoadedFile> = match &self.corpus {
            Some(path) if path.exists() => {
                let loaded = persist::load_file(path).map_err(DriveError::Load)?;
                fire(
                    &mut sink,
                    &CampaignEvent::CorpusLoaded {
                        loaded: loaded.report.loaded,
                        skipped: loaded.report.skipped,
                        truncated: loaded.report.truncated,
                        checkpoint: loaded.checkpoint.is_some(),
                    },
                );
                Some(loaded)
            }
            Some(path) if self.resume => {
                return Err(DriveError::ResumeMissing(path.clone()));
            }
            _ => None,
        };

        // 2. Resume sanity checks that need no DUT.
        let checkpoint: Option<CampaignCheckpoint> = if self.resume {
            let path = self.corpus.as_deref().expect("validated above");
            let loaded = loaded.as_ref().expect("missing-file case handled above");
            if loaded.report.skipped > 0 || loaded.report.truncated {
                return Err(DriveError::ResumeDamaged {
                    path: path.to_path_buf(),
                    skipped: loaded.report.skipped,
                    truncated: loaded.report.truncated,
                });
            }
            let Some(checkpoint) = loaded.checkpoint.clone() else {
                return Err(DriveError::NoCheckpoint(path.to_path_buf()));
            };
            if checkpoint.worker_count != jobs || (jobs > 1 && checkpoint.workers.len() != jobs) {
                return Err(DriveError::JobsMismatch {
                    frozen: checkpoint.worker_count,
                    requested: jobs,
                });
            }
            let found = config.fingerprint();
            if checkpoint.config_fingerprint != found {
                return Err(DriveError::Restore(RestoreError::ConfigMismatch {
                    expected: checkpoint.config_fingerprint,
                    found,
                }));
            }
            Some(checkpoint)
        } else {
            None
        };

        // 3. Equip every worker with a DUT.
        let mut duts: Vec<D> = Vec::with_capacity(jobs);
        for worker in 0..jobs {
            let remote_batches = if jobs == 1 {
                checkpoint
                    .as_ref()
                    .and_then(|c| c.remote_batches)
                    .unwrap_or(0)
            } else {
                0
            };
            let spec = WorkerSpec {
                worker,
                seed: worker_seed(config.seed, worker),
                remote_batches,
            };
            duts.push(dut_factory(spec).map_err(DriveError::DutFactory)?);
        }

        // 4. Build the worker seats and the coordinator state.
        let mut state = CoordinatorState {
            global: Corpus::new(config.seed),
            live_coverage: CoverageMap::new(),
            totals: BTreeMap::new(),
            latest: BTreeMap::new(),
            pending: Vec::new(),
            autosave_ordinal: 0,
            batches_completed: 0,
            rounds_completed: 0,
        };
        let seats: Vec<WorkerSeat> = if let Some(checkpoint) = &checkpoint {
            let dut_name = duts[0].name();
            if checkpoint.report.dut != dut_name {
                return Err(DriveError::DutMismatch {
                    recorded: checkpoint.report.dut.clone(),
                    offered: dut_name.to_string(),
                });
            }
            if checkpoint.report.instructions_generated >= budget {
                return Err(DriveError::NothingToResume {
                    covered: checkpoint.report.instructions_generated,
                });
            }
            fire(
                &mut sink,
                &CampaignEvent::Resuming {
                    instructions_done: checkpoint.report.instructions_generated,
                    budget,
                },
            );
            let entries = &loaded.as_ref().expect("resume loads a file").entries;
            state.global.merge_entries(entries);
            state.autosave_ordinal = checkpoint.autosave_ordinal;
            state.batches_completed = checkpoint.batches_completed;
            state.rounds_completed = checkpoint.rounds_completed;
            let tail = checkpoint.pending_broadcast.min(state.global.len());
            state.pending = state.global.entries()[state.global.len() - tail..].to_vec();
            if jobs == 1 {
                let worker_config = shard_config(&config, 1, 0);
                let campaign = Campaign::restore(worker_config, checkpoint, entries)
                    .map_err(DriveError::Restore)?;
                vec![WorkerSeat {
                    worker: 0,
                    campaign,
                    prior: checkpoint.report.clone(),
                    foreign: 0,
                    budget,
                }]
            } else {
                let mut streams: Vec<&WorkerStream> = checkpoint.workers.iter().collect();
                streams.sort_by_key(|stream| stream.worker);
                let mut seats = Vec::with_capacity(jobs);
                for (index, stream) in streams.into_iter().enumerate() {
                    if stream.worker != index {
                        return Err(DriveError::JobsMismatch {
                            frozen: checkpoint.worker_count,
                            requested: jobs,
                        });
                    }
                    let worker_config = shard_config(&config, jobs, stream.worker);
                    let worker_budget = worker_config.instruction_budget;
                    let adapted = CampaignCheckpoint {
                        config_fingerprint: worker_config.fingerprint(),
                        report: stream.report.clone(),
                        campaign_rng: stream.campaign_rng,
                        corpus_rng: stream.corpus_rng,
                        generator_rng: stream.generator_rng,
                        library_rng: stream.library_rng,
                        coverage: stream.coverage.clone(),
                        remote_batches: None,
                        autosave_ordinal: 0,
                        batches_completed: 0,
                        rounds_completed: 0,
                        pending_broadcast: 0,
                        worker_count: 1,
                        workers: Vec::new(),
                    };
                    let campaign = Campaign::restore(worker_config, &adapted, &stream.entries)
                        .map_err(DriveError::Restore)?;
                    seats.push(WorkerSeat {
                        worker: stream.worker,
                        campaign,
                        prior: stream.report.clone(),
                        foreign: stream.foreign_admitted,
                        budget: worker_budget,
                    });
                }
                seats
            }
        } else {
            // Fresh run: the global corpus is primed once, up front, and
            // every worker primes it at its seat — so the round-0
            // broadcast is empty and primed seeds never count as
            // foreign admissions.
            let mut admitted = 0usize;
            if let Some(loaded) = &loaded {
                admitted += state.global.merge_entries(&loaded.entries);
            }
            admitted += state.global.merge_entries(&self.seeds);
            // Fires whenever there was anything to prime from — even an
            // (empty) existing file — so persistent runs always log the
            // admission count.
            if loaded.is_some() || !self.seeds.is_empty() {
                fire(&mut sink, &CampaignEvent::CorpusPrimed { admitted });
            }
            (0..jobs)
                .map(|worker| {
                    let worker_config = shard_config(&config, jobs, worker);
                    let worker_budget = worker_config.instruction_budget;
                    let mut campaign = Campaign::new(worker_config);
                    campaign.prime(state.global.entries());
                    WorkerSeat {
                        worker,
                        campaign,
                        prior: CampaignReport::default(),
                        foreign: 0,
                        budget: worker_budget,
                    }
                })
                .collect()
        };
        state.totals = seats
            .iter()
            .map(|seat| (seat.worker, WorkerCounters::of(&seat.prior, seat.foreign)))
            .collect();
        let budgets: Vec<u64> = (0..jobs)
            .map(|worker| shard_config(&config, jobs, worker).instruction_budget)
            .collect();

        // 5. The round loop, inside a thread scope.
        let sync_every = self.sync_every;
        let autosave_every = self.autosave_every;
        let mut next_autosave = state.batches_completed + autosave_every;
        let path = self.corpus.clone();
        let start = Instant::now();
        std::thread::scope(|scope| -> Result<(), DriveError> {
            let (result_tx, result_rx) = mpsc::channel::<RoundResult>();
            let mut active: Vec<(usize, mpsc::Sender<RoundTask>)> = Vec::with_capacity(jobs);
            for (seat, dut) in seats.into_iter().zip(duts) {
                let (task_tx, task_rx) = mpsc::channel::<RoundTask>();
                let results = result_tx.clone();
                active.push((seat.worker, task_tx));
                scope.spawn(move || worker_loop(seat, dut, &task_rx, &results));
            }
            drop(result_tx);

            let mut round = state.rounds_completed;
            while !active.is_empty() {
                for (worker, tasks) in &active {
                    let task = RoundTask {
                        broadcast: state.pending.clone(),
                        target: round_target(budgets[*worker], round, sync_every),
                    };
                    let _ = tasks.send(task);
                }
                let mut batch = Vec::with_capacity(active.len());
                for _ in 0..active.len() {
                    match result_rx.recv() {
                        Ok(result) => batch.push(result),
                        // Every worker hung up without reporting: a
                        // worker panicked; the scope join will re-raise.
                        Err(_) => return Ok(()),
                    }
                }
                // Admission order is (round, worker id) — never channel
                // arrival order — which is what makes a fixed worker
                // count deterministic.
                batch.sort_by_key(|result| result.worker);
                round += 1;
                state.rounds_completed += 1;
                let tail_start = state.global.len();
                for result in &batch {
                    state.batches_completed += 1;
                    let admitted = state.global.merge_entries(&result.novel);
                    state.live_coverage.merge(&result.checkpoint.coverage);
                    let counters = WorkerCounters::of(&result.checkpoint.report, result.foreign);
                    let previous = state
                        .totals
                        .insert(result.worker, counters)
                        .unwrap_or_default();
                    let mut sum = WorkerCounters::default();
                    for c in state.totals.values() {
                        sum.programs += c.programs;
                        sum.instructions += c.instructions;
                        sum.steps += c.steps;
                        sum.divergent += c.divergent;
                        sum.failures += c.failures;
                        sum.foreign += c.foreign;
                    }
                    fire(
                        &mut sink,
                        &CampaignEvent::BatchCompleted {
                            worker: result.worker,
                            batch: state.batches_completed,
                            programs: sum.programs,
                            instructions: sum.instructions,
                            steps: sum.steps,
                            unique_traces: state.live_coverage.unique(),
                            corpus: state.global.len(),
                            divergent_runs: sum.divergent,
                            dut_failures: sum.failures,
                            admitted,
                            foreign_admitted: sum.foreign,
                        },
                    );
                    if counters.divergent > previous.divergent {
                        fire(
                            &mut sink,
                            &CampaignEvent::DivergenceFound {
                                worker: result.worker,
                                divergent_runs: counters.divergent,
                            },
                        );
                    }
                    if counters.failures > previous.failures {
                        fire(
                            &mut sink,
                            &CampaignEvent::DutFailureRecorded {
                                worker: result.worker,
                                dut_failures: counters.failures,
                            },
                        );
                    }
                }
                for result in batch {
                    if result.finished {
                        active.retain(|(worker, _)| *worker != result.worker);
                    }
                    state.latest.insert(result.worker, result);
                }
                // The broadcast tail carries the admitting worker's
                // *live* calibration, not the admission-time clone, so
                // a resumed run (whose pending tail is rebuilt from the
                // refreshed saved entries) primes byte-identical seeds.
                let live = live_calibrations(&state.latest);
                state.pending = state.global.entries()[tail_start..]
                    .iter()
                    .cloned()
                    .map(|mut entry| {
                        if let Some(calibration) = live.get(&entry.coverage_key()) {
                            entry.calibration = *calibration;
                        }
                        entry
                    })
                    .collect();
                if autosave_every > 0 && state.batches_completed >= next_autosave {
                    let path = path.as_deref().expect("validated: autosave needs a path");
                    state.autosave_ordinal += 1;
                    refresh_calibration(&mut state.global, &state.latest);
                    let frozen = build_checkpoint(&config, jobs, &state);
                    persist::save_campaign(path, state.global.entries(), &frozen)
                        .map_err(DriveError::Save)?;
                    fire(
                        &mut sink,
                        &CampaignEvent::AutosaveWritten {
                            ordinal: state.autosave_ordinal,
                            batches_completed: state.batches_completed,
                        },
                    );
                    while next_autosave <= state.batches_completed {
                        next_autosave += autosave_every;
                    }
                }
            }
            Ok(())
        })?;
        let elapsed = start.elapsed();

        // 6. Fold the final outcome.
        assert!(
            state.latest.len() == jobs,
            "campaign worker panicked before reporting"
        );
        refresh_calibration(&mut state.global, &state.latest);
        let (report, coverage) = if jobs == 1 {
            // One worker: the merged view is that worker's report,
            // verbatim — including any same-fingerprint repeats it chose
            // to record — keeping the jobs=1 bit-identity guarantee.
            let result = &state.latest[&0];
            (
                result.checkpoint.report.clone(),
                result.checkpoint.coverage.clone(),
            )
        } else {
            merge_latest(&state.latest, state.global.len())
        };
        let workers: Vec<WorkerReport> = state
            .latest
            .values()
            .map(|result| WorkerReport {
                worker: result.worker,
                seed: worker_seed(config.seed, result.worker),
                report: result.checkpoint.report.clone(),
            })
            .collect();
        let foreign_admitted = state.latest.values().map(|result| result.foreign).sum();
        let remote = state.latest.get(&0).and_then(|result| result.remote);
        let checkpoint = build_checkpoint(&config, jobs, &state);
        Ok(DriveOutcome {
            report,
            workers,
            coverage,
            corpus: state.global.into_entries(),
            elapsed,
            foreign_admitted,
            batches_completed: state.batches_completed,
            rounds_completed: state.rounds_completed,
            autosaves: state.autosave_ordinal,
            remote,
            checkpoint,
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::{BugScenario, Hart, MutantHart};

    fn config(budget: u64) -> CampaignConfig {
        CampaignConfig::default()
            .with_seed(0xF00D)
            .with_instruction_budget(budget)
            .with_mem_size(1 << 16)
    }

    #[test]
    fn worker_seeds_are_stable_and_job_count_independent() {
        assert_eq!(worker_seed(42, 0), 42, "worker 0 inherits the master");
        let w1 = worker_seed(42, 1);
        let w2 = worker_seed(42, 2);
        assert_ne!(w1, 42);
        assert_ne!(w1, w2);
        // Re-derivation is stable: there is no hidden job-count input.
        assert_eq!(worker_seed(42, 1), w1);
        assert_eq!(worker_seed(42, 2), w2);
    }

    #[test]
    fn shard_budgets_cover_the_master_budget_exactly() {
        let config = CampaignConfig {
            instruction_budget: 10_001,
            ..CampaignConfig::default()
        };
        for jobs in 1..=7 {
            let total: u64 = (0..jobs)
                .map(|w| shard_config(&config, jobs, w).instruction_budget)
                .sum();
            assert_eq!(total, 10_001, "budget lost or invented at jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn shard_config_rejects_out_of_range_workers() {
        let _ = shard_config(&CampaignConfig::default(), 2, 2);
    }

    #[test]
    fn one_worker_is_bit_identical_to_the_plain_campaign() {
        // The tentpole invariant: coordinated jobs=1 — rounds, echo
        // broadcasts and all — reproduces Campaign::run bit for bit.
        let mut campaign = Campaign::new(config(3_000));
        let mut dut = MutantHart::new(1 << 16, BugScenario::B2ReservedRounding);
        let plain = campaign.run(&mut dut);

        let outcome = CampaignDriver::new(config(3_000))
            .run(|_| Ok(MutantHart::new(1 << 16, BugScenario::B2ReservedRounding)))
            .unwrap();
        assert_eq!(outcome.report, plain, "driver drifted from Campaign::run");
        assert_eq!(outcome.corpus, campaign.corpus().entries());
        assert_eq!(outcome.foreign_admitted, 0, "echo broadcasts admit nothing");
    }

    #[test]
    fn one_worker_identity_holds_across_sync_cadences() {
        let run = |sync_every: u64| {
            let outcome = CampaignDriver::new(config(2_000))
                .with_sync_every(sync_every)
                .run(|_| Ok(Hart::new(1 << 16)))
                .unwrap();
            (outcome.report.clone(), outcome.corpus.clone())
        };
        let whole = run(0);
        for sync_every in [64, 512, 1024] {
            assert_eq!(run(sync_every), whole, "sync {sync_every} drifted");
        }
    }

    #[test]
    fn multi_worker_campaigns_share_seeds_while_running() {
        // The live-sharing acceptance criterion: a jobs-4 campaign
        // admits at least one seed discovered by a different worker
        // before the run ends.
        let outcome = CampaignDriver::new(config(8_000))
            .with_jobs(4)
            .with_sync_every(512)
            .run(|_| Ok(Hart::new(1 << 16)))
            .unwrap();
        assert!(
            outcome.foreign_admitted >= 1,
            "no cross-worker admissions in {} rounds",
            outcome.rounds_completed
        );
        assert_eq!(outcome.workers.len(), 4);
    }

    #[test]
    fn multi_worker_campaigns_are_deterministic() {
        let run = || {
            let outcome = CampaignDriver::new(config(6_000))
                .with_jobs(4)
                .run(|_| Ok(MutantHart::new(1 << 16, BugScenario::OffByOneImmediate)))
                .unwrap();
            (
                outcome.report.clone(),
                outcome.corpus.clone(),
                outcome.foreign_admitted,
            )
        };
        assert_eq!(run(), run(), "jobs=4 reran differently");
    }

    #[test]
    fn event_sinks_see_the_campaign_grow() {
        let mut batches = 0u64;
        let mut last_instructions = 0u64;
        let mut sink = |event: &CampaignEvent| {
            if let CampaignEvent::BatchCompleted {
                batch,
                instructions,
                ..
            } = event
            {
                batches = *batch;
                assert!(*instructions >= last_instructions, "counters ran backward");
                last_instructions = *instructions;
            }
        };
        let outcome = CampaignDriver::new(config(2_000))
            .with_event_sink(&mut sink)
            .run(|_| Ok(Hart::new(1 << 16)))
            .unwrap();
        assert_eq!(batches, outcome.batches_completed);
        assert_eq!(last_instructions, outcome.report.instructions_generated);
    }

    #[test]
    fn the_driver_validates_before_running() {
        assert!(matches!(
            CampaignDriver::new(config(1_000)).with_jobs(0).validate(),
            Err(DriveError::Config(_))
        ));
        assert!(matches!(
            CampaignDriver::new(config(1_000))
                .with_resume(true)
                .validate(),
            Err(DriveError::Config(_))
        ));
        assert!(matches!(
            CampaignDriver::new(config(1_000))
                .with_autosave_every(4)
                .validate(),
            Err(DriveError::Config(_))
        ));
        assert!(CampaignDriver::new(config(1_000)).validate().is_ok());
    }

    #[test]
    fn a_failing_dut_factory_surfaces_cleanly() {
        let error = CampaignDriver::new(config(1_000))
            .run(|_| -> Result<Hart, String> { Err("no such device".into()) })
            .unwrap_err();
        assert_eq!(error.to_string(), "no such device");
    }
}
