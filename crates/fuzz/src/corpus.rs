//! The seed corpus: interesting programs and how to evolve them.
//!
//! Programs that produced new coverage are saved with their coverage
//! keys (trace digest and trap-cause set) and a [`SeedCalibration`]
//! record — execution cost, coverage yield and mutation fecundity —
//! that the campaign's [`PowerSchedule`] turns into selection energy.
//! Later campaign iterations draw on the corpus instead of always
//! generating from scratch: [`Corpus::mutate_into`] picks a seed by
//! energy-weighted deterministic selection and applies small structural
//! edits (replace / insert / delete) that preserve the `ebreak`
//! terminator, and [`minimize`] shrinks a divergence-triggering program
//! to a near-minimal reproducer before it is reported — the classic
//! corpus/stage decomposition of coverage-guided fuzzers.
//!
//! A corpus also outlives the process: [`Corpus::save`] writes the
//! entries to the versioned on-disk format of the [`persist`] module
//! (atomically — temp file plus rename) and [`Corpus::load`] reads them
//! back, skipping corrupt entries, so campaigns can resume and seeds can
//! cross-pollinate between runs.
//!
//! [`persist`]: crate::persist

use std::path::Path;

use tf_riscv::Instruction;

use crate::generator::ProgramGenerator;
use crate::persist::{self, LoadReport, PersistError};
use crate::rng::SplitMix64;
use crate::schedule::PowerSchedule;

/// A seed's calibration record: what it cost to execute, what coverage
/// it brought in, and how its mutants have fared — the raw material a
/// [`PowerSchedule`] turns into selection energy. All counters are
/// exact integers so schedules stay bit-deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedCalibration {
    /// Instructions the admitting run retired (execution cost).
    pub cost: u64,
    /// How many of the four coverage-key families (trace digest,
    /// trap-cause set, pc-pair fold, opcode-class fold) this seed's
    /// admitting run lit up for the first time: `0..=4`.
    pub cov_yield: u8,
    /// Mutations drawn from this seed so far.
    pub spent: u64,
    /// Mutants of this seed that themselves earned a corpus slot.
    pub children: u64,
}

/// One saved program and the coverage keys that made it interesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedEntry {
    /// The program, `ebreak`-terminated.
    pub program: Vec<Instruction>,
    /// Digest of the reference execution trace it produced.
    pub trace_digest: u64,
    /// Trap-cause bitmask of the run (the coarse secondary coverage key).
    pub trap_causes: u64,
    /// Scheduler metadata: cost, yield and fecundity.
    pub calibration: SeedCalibration,
}

impl SeedEntry {
    /// The pair of coverage keys the corpus deduplicates on when merging:
    /// a campaign only records an entry when at least one of the two keys
    /// is novel, so within one campaign no two entries share the pair.
    #[must_use]
    pub fn coverage_key(&self) -> (u64, u64) {
        (self.trace_digest, self.trap_causes)
    }
}

/// Seed programs that earned their place by producing new coverage.
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<SeedEntry>,
    // Coverage keys of `entries`, maintained incrementally so repeated
    // `merge_entries` calls (one per worker, one per merged file) stay
    // linear instead of re-hashing the whole corpus each time.
    keys: std::collections::HashSet<(u64, u64)>,
    rng: SplitMix64,
}

impl Corpus {
    /// An empty corpus with a deterministic mutation stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Corpus {
            entries: Vec::new(),
            keys: std::collections::HashSet::new(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Record a program, the coverage keys it earned and its calibration
    /// record. The program is cloned here — on the rare admission path —
    /// so the campaign hot loop can keep reusing its program buffer.
    pub fn add(
        &mut self,
        program: &[Instruction],
        trace_digest: u64,
        trap_causes: u64,
        calibration: SeedCalibration,
    ) {
        self.keys.insert((trace_digest, trap_causes));
        self.entries.push(SeedEntry {
            program: program.to_vec(),
            trace_digest,
            trap_causes,
            calibration,
        });
    }

    /// Fold foreign entries in, skipping any whose
    /// [`SeedEntry::coverage_key`] is already present — the dedup rule
    /// sharded-campaign merges and `tf-cli corpus merge` share. Returns
    /// how many entries were actually admitted.
    pub fn merge_entries<'a, I>(&mut self, entries: I) -> usize
    where
        I: IntoIterator<Item = &'a SeedEntry>,
    {
        let mut admitted = 0;
        for entry in entries {
            if self.keys.insert(entry.coverage_key()) {
                self.entries.push(entry.clone());
                admitted += 1;
            }
        }
        admitted
    }

    /// The saved entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[SeedEntry] {
        &self.entries
    }

    /// Mutable access for the campaign coordinator, which folds the
    /// owning workers' live calibration back into its admission-time
    /// clones before the corpus leaves the coordinator.
    pub(crate) fn entries_mut(&mut self) -> &mut [SeedEntry] {
        &mut self.entries
    }

    /// Consume the corpus, yielding its entries without cloning the
    /// programs — for handing a finished campaign's corpus to a report
    /// or the persistence layer.
    #[must_use]
    pub fn into_entries(self) -> Vec<SeedEntry> {
        self.entries
    }

    /// Write the corpus to `path` in the versioned on-disk format
    /// ([`persist::save_entries`]): atomic temp-file-plus-rename, so a
    /// crash mid-save never clobbers an existing corpus.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying filesystem.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        persist::save_entries(path, &self.entries)
    }

    /// Load a corpus from `path`, with a fresh mutation stream seeded by
    /// `seed`. Corrupt entries are skipped (counted in the returned
    /// [`LoadReport`]); a bad header — wrong magic, unsupported format
    /// version, or a digest-scheme fingerprint mismatch — rejects the
    /// whole file instead of silently mis-replaying stale digests.
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] for I/O failures and header mismatches.
    pub fn load(path: &Path, seed: u64) -> Result<(Self, LoadReport), PersistError> {
        let loaded = persist::load_file(path)?;
        let corpus = Corpus {
            keys: loaded.entries.iter().map(SeedEntry::coverage_key).collect(),
            entries: loaded.entries,
            rng: SplitMix64::new(seed),
        };
        Ok((corpus, loaded.report))
    }

    /// The current state of the mutation-scheduling RNG (for campaign
    /// checkpoints).
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restore the mutation stream to a checkpointed position.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng.set_state(state);
    }

    /// Number of saved seeds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been saved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Draw a seed index by energy-weighted deterministic selection:
    /// each entry weighs [`PowerSchedule::energy`] of its calibration,
    /// and a single RNG draw below the energy total picks the seed by
    /// subtractive walk. Under [`PowerSchedule::Uniform`] every weight
    /// is 1, the total is the corpus length, and the draw collapses to
    /// exactly the historical uniform pick — same single draw from the
    /// same stream, bit for bit.
    ///
    /// Returns `None` when the corpus is empty.
    pub fn select(&mut self, schedule: PowerSchedule) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let total: u64 = self
            .entries
            .iter()
            .map(|entry| schedule.energy(&entry.calibration))
            .sum();
        let mut draw = self.rng.below(total);
        for (index, entry) in self.entries.iter().enumerate() {
            let energy = schedule.energy(&entry.calibration);
            if draw < energy {
                return Some(index);
            }
            draw -= energy;
        }
        unreachable!("draw is below the energy total");
    }

    /// Pick a saved seed under `schedule` and derive a mutant from it
    /// into `out`: one to three edits (replace an instruction with a
    /// fresh library sample, insert one, or delete one), never touching
    /// the trailing `ebreak`. The picked seed's
    /// [`SeedCalibration::spent`] counter is charged, and its index is
    /// returned so an admitted mutant can be credited back with
    /// [`Corpus::record_child`].
    ///
    /// Returns `None` when the corpus is empty or the generator's
    /// library cannot supply replacement instructions.
    pub fn mutate_into(
        &mut self,
        generator: &mut ProgramGenerator,
        schedule: PowerSchedule,
        out: &mut Vec<Instruction>,
    ) -> Option<usize> {
        let pick = self.select(schedule)?;
        self.entries[pick].calibration.spent += 1;
        out.clear();
        out.extend_from_slice(&self.entries[pick].program);
        let edits = 1 + self.rng.below(3);
        for _ in 0..edits {
            // The final ebreak is immutable; body is everything before it.
            let body = out.len() - 1;
            match self.rng.below(3) {
                0 if body > 0 => {
                    let at = self.rng.below(body as u64) as usize;
                    out[at] = generator.sample_insn()?;
                }
                1 => {
                    let at = self.rng.below(body as u64 + 1) as usize;
                    out.insert(at, generator.sample_insn()?);
                }
                _ if body > 0 => {
                    let at = self.rng.below(body as u64) as usize;
                    out.remove(at);
                }
                _ => {}
            }
        }
        Some(pick)
    }

    /// [`Corpus::mutate_into`] under the uniform schedule, returning the
    /// mutant by value — the pre-scheduler convenience shape, same RNG
    /// stream.
    pub fn mutate(&mut self, generator: &mut ProgramGenerator) -> Option<Vec<Instruction>> {
        let mut out = Vec::new();
        self.mutate_into(generator, PowerSchedule::Uniform, &mut out)
            .map(|_| out)
    }

    /// Credit the seed at `parent` with an admitted child — its mutant
    /// earned a corpus slot, raising the seed's fecundity signal.
    pub fn record_child(&mut self, parent: usize) {
        self.entries[parent].calibration.children += 1;
    }
}

/// Shrink an interesting program while a predicate stays true.
///
/// Greedy one-instruction elimination, iterated to a fixed point: each
/// round tries dropping every body instruction in turn and keeps the
/// removal whenever `still_interesting` accepts the shorter program. The
/// trailing `ebreak` terminator is never removed. The predicate is
/// typically "the diff engine still reports a divergence", making the
/// result a near-minimal reproducer.
pub fn minimize<F>(program: &[Instruction], mut still_interesting: F) -> Vec<Instruction>
where
    F: FnMut(&[Instruction]) -> bool,
{
    let mut current = program.to_vec();
    let mut shrunk = true;
    while shrunk && current.len() > 1 {
        shrunk = false;
        let mut at = 0;
        while at + 1 < current.len() {
            let mut candidate = current.clone();
            candidate.remove(at);
            if still_interesting(&candidate) {
                current = candidate;
                shrunk = true;
            } else {
                at += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::{Gpr, InstructionLibrary, LibraryConfig, Opcode};

    fn ebreak() -> Instruction {
        Instruction::system(Opcode::Ebreak)
    }

    fn addi(rd: u8, imm: i64) -> Instruction {
        Instruction::i_type(Opcode::Addi, Gpr::new(rd).unwrap(), Gpr::ZERO, imm).unwrap()
    }

    fn generator() -> ProgramGenerator {
        ProgramGenerator::new(InstructionLibrary::new(LibraryConfig::all(), 5), 5)
    }

    #[test]
    fn mutate_preserves_the_terminator() {
        let mut corpus = Corpus::new(1);
        corpus.add(
            &[addi(1, 1), addi(2, 2), addi(3, 3), ebreak()],
            0x11,
            0,
            SeedCalibration::default(),
        );
        let mut generator = generator();
        for _ in 0..64 {
            let mutated = corpus.mutate(&mut generator).unwrap();
            assert_eq!(mutated.last().unwrap().opcode(), Opcode::Ebreak);
            assert!(!mutated.is_empty());
        }
        assert_eq!(
            corpus.entries()[0].calibration.spent,
            64,
            "every mutation charges the picked seed"
        );
    }

    #[test]
    fn mutate_on_empty_corpus_is_none() {
        let mut corpus = Corpus::new(1);
        assert!(corpus.mutate(&mut generator()).is_none());
        assert!(corpus.select(PowerSchedule::Fast).is_none());
        assert!(corpus.is_empty());
        assert_eq!(corpus.len(), 0);
    }

    #[test]
    fn mutants_eventually_differ_from_their_seed() {
        let seed_program = vec![addi(1, 1), addi(2, 2), ebreak()];
        let mut corpus = Corpus::new(2);
        corpus.add(&seed_program, 0x22, 0, SeedCalibration::default());
        let mut generator = generator();
        let changed = (0..32)
            .filter_map(|_| corpus.mutate(&mut generator))
            .any(|m| m != seed_program);
        assert!(changed, "32 mutations never changed the program");
    }

    #[test]
    fn selection_follows_energy_and_uniform_ignores_it() {
        // Seed 0 is stale and weak, seed 1 fresh and fecund: under the
        // fast schedule the draw should overwhelmingly favour seed 1,
        // while uniform keeps an even split of the same RNG stream.
        let weak = SeedCalibration {
            cost: 1 << 20,
            cov_yield: 0,
            spent: 1000,
            children: 0,
        };
        let hot = SeedCalibration {
            cost: 16,
            cov_yield: 4,
            spent: 0,
            children: 8,
        };
        let mut counts = [[0u32; 2]; 2];
        for (which, schedule) in [PowerSchedule::Uniform, PowerSchedule::Fast]
            .into_iter()
            .enumerate()
        {
            let mut corpus = Corpus::new(3);
            corpus.add(&[addi(1, 1), ebreak()], 0x1, 0, weak);
            corpus.add(&[addi(2, 2), ebreak()], 0x2, 0, hot);
            for _ in 0..512 {
                counts[which][corpus.select(schedule).unwrap()] += 1;
            }
        }
        let [uniform, fast] = counts;
        assert!(uniform[0] > 180 && uniform[1] > 180, "{uniform:?}");
        assert!(fast[1] > 490, "fast must favour the hot seed: {fast:?}");
        assert!(fast[0] > 0, "energy floor keeps the weak seed alive");
    }

    #[test]
    fn record_child_raises_fecundity() {
        let mut corpus = Corpus::new(4);
        corpus.add(&[ebreak()], 0x1, 0, SeedCalibration::default());
        corpus.record_child(0);
        corpus.record_child(0);
        assert_eq!(corpus.entries()[0].calibration.children, 2);
    }

    #[test]
    fn minimize_strips_irrelevant_instructions() {
        // Interesting iff the program still writes 7 into x5.
        let program = vec![addi(1, 1), addi(5, 7), addi(2, 2), addi(3, 3), ebreak()];
        let minimized = minimize(&program, |p| p.contains(&addi(5, 7)));
        assert_eq!(minimized, vec![addi(5, 7), ebreak()]);
    }

    #[test]
    fn minimize_never_drops_the_terminator() {
        let program = vec![addi(1, 1), ebreak()];
        let minimized = minimize(&program, |_| true);
        assert_eq!(minimized, vec![ebreak()]);
    }
}
