//! Trace-digest coverage: which architectural paths a campaign has seen.
//!
//! The paper's coverage model compares *behaviour*, not branches: two
//! runs cover the same point iff their execution traces digest equally
//! (same pcs, words, outcomes and defined values — see
//! [`ExecutionTrace::digest`](tf_arch::ExecutionTrace::digest)). The
//! [`CoverageMap`] is the campaign's memory of those digests; a program
//! whose trace digest is new is interesting and earns a corpus slot.

use std::collections::HashSet;

/// Set of execution-trace digests observed so far.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>,
    observations: u64,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a trace digest. Returns `true` when it is new coverage.
    pub fn observe(&mut self, trace_digest: u64) -> bool {
        self.observations += 1;
        self.seen.insert(trace_digest)
    }

    /// True when the digest has been observed before.
    #[must_use]
    pub fn contains(&self, trace_digest: u64) -> bool {
        self.seen.contains(&trace_digest)
    }

    /// Number of distinct trace digests seen.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.seen.len()
    }

    /// Total observations, including repeats.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_new_repeat_is_not() {
        let mut map = CoverageMap::new();
        assert!(map.observe(0xAB));
        assert!(!map.observe(0xAB));
        assert!(map.observe(0xCD));
        assert_eq!(map.unique(), 2);
        assert_eq!(map.observations(), 3);
        assert!(map.contains(0xAB));
        assert!(!map.contains(0xEF));
    }
}
