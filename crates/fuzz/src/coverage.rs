//! Trace-digest coverage: which architectural paths a campaign has seen.
//!
//! The paper's coverage model compares *behaviour*, not branches: two
//! runs cover the same point iff their execution traces digest equally
//! (same pcs, words, outcomes and defined values — see
//! [`ExecutionTrace::digest`](tf_arch::ExecutionTrace::digest)). The
//! [`CoverageMap`] is the campaign's memory of those digests; a program
//! whose trace digest is new is interesting and earns a corpus slot.
//!
//! Exact-trace novelty alone makes the corpus blind to *partial*
//! novelty, so the map also keeps a coarse secondary key: the set of
//! trap-cause codes a run raised (as a bitmask). A program that raises a
//! never-before-seen combination of trap causes is interesting even when
//! its exact trace digest collides with nothing new.
//!
//! Two further cheap keys feed the scheduler's yield signal (they do not
//! gate corpus admission): the [`pc-transition-pair
//! fold`](tf_arch::fold_pc_pair) — a digest of the run's control-flow
//! edge sequence — and the [`opcode-class
//! histogram fold`](tf_arch::fold_op_classes) — a digest of how many
//! instructions of each major-opcode class retired. Both come free out
//! of [`BatchOutcome`](tf_arch::BatchOutcome), so observing them costs
//! the hot loop nothing; a seed that lights up a new pc-pair or
//! opcode-mix digest earns scheduler energy even when its exact trace
//! digest is old news.

use std::collections::HashSet;

/// Set of execution-trace digests (and coarse trap-cause sets) observed
/// so far, plus the pc-pair and opcode-class digests feeding the
/// scheduler's yield signal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    seen: HashSet<u64>,
    trap_sets: HashSet<u64>,
    pc_pairs: HashSet<u64>,
    op_classes: HashSet<u64>,
    observations: u64,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a trace digest. Returns `true` when it is new coverage.
    pub fn observe(&mut self, trace_digest: u64) -> bool {
        self.observations += 1;
        self.seen.insert(trace_digest)
    }

    /// Record the trap-cause bitmask of one run (bit `c` set iff a trap
    /// with cause code `c` occurred). Returns `true` when this exact
    /// combination of causes is new coverage.
    pub fn observe_trap_set(&mut self, trap_causes: u64) -> bool {
        self.trap_sets.insert(trap_causes)
    }

    /// Record a pc-transition-pair fold. Returns `true` when this
    /// control-flow edge digest is new.
    pub fn observe_pc_pairs(&mut self, pc_pairs: u64) -> bool {
        self.pc_pairs.insert(pc_pairs)
    }

    /// Record an opcode-class histogram fold. Returns `true` when this
    /// instruction-mix digest is new.
    pub fn observe_op_classes(&mut self, op_classes: u64) -> bool {
        self.op_classes.insert(op_classes)
    }

    /// True when the digest has been observed before.
    #[must_use]
    pub fn contains(&self, trace_digest: u64) -> bool {
        self.seen.contains(&trace_digest)
    }

    /// Number of distinct trace digests seen.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.seen.len()
    }

    /// Number of distinct trap-cause sets seen.
    #[must_use]
    pub fn unique_trap_sets(&self) -> usize {
        self.trap_sets.len()
    }

    /// Number of distinct pc-transition-pair folds seen.
    #[must_use]
    pub fn unique_pc_pairs(&self) -> usize {
        self.pc_pairs.len()
    }

    /// Number of distinct opcode-class histogram folds seen.
    #[must_use]
    pub fn unique_op_classes(&self) -> usize {
        self.op_classes.len()
    }

    /// Total observations, including repeats.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Fold another map into this one: coverage sets union, observation
    /// counts add. Sharded campaign workers each grow a private map;
    /// the driver merges them into the aggregate view.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.seen.extend(&other.seen);
        self.trap_sets.extend(&other.trap_sets);
        self.pc_pairs.extend(&other.pc_pairs);
        self.op_classes.extend(&other.op_classes);
        self.observations += other.observations;
    }

    /// The observed trace digests in sorted order — the deterministic
    /// iteration persistence needs (hash-set order varies run to run).
    #[must_use]
    pub fn digests_sorted(&self) -> Vec<u64> {
        let mut digests: Vec<u64> = self.seen.iter().copied().collect();
        digests.sort_unstable();
        digests
    }

    /// The observed trap-cause sets in sorted order.
    #[must_use]
    pub fn trap_sets_sorted(&self) -> Vec<u64> {
        let mut sets: Vec<u64> = self.trap_sets.iter().copied().collect();
        sets.sort_unstable();
        sets
    }

    /// The observed pc-transition-pair folds in sorted order.
    #[must_use]
    pub fn pc_pairs_sorted(&self) -> Vec<u64> {
        let mut folds: Vec<u64> = self.pc_pairs.iter().copied().collect();
        folds.sort_unstable();
        folds
    }

    /// The observed opcode-class histogram folds in sorted order.
    #[must_use]
    pub fn op_classes_sorted(&self) -> Vec<u64> {
        let mut folds: Vec<u64> = self.op_classes.iter().copied().collect();
        folds.sort_unstable();
        folds
    }

    /// Mark a trace digest as already covered without counting an
    /// observation — how checkpoint restore and corpus priming pre-load
    /// coverage that was earned in an earlier run.
    pub fn admit(&mut self, trace_digest: u64) {
        self.seen.insert(trace_digest);
    }

    /// Mark a trap-cause set as already covered (no observation counted).
    pub fn admit_trap_set(&mut self, trap_causes: u64) {
        self.trap_sets.insert(trap_causes);
    }

    /// Mark a pc-transition-pair fold as already covered (no observation
    /// counted).
    pub fn admit_pc_pairs(&mut self, pc_pairs: u64) {
        self.pc_pairs.insert(pc_pairs);
    }

    /// Mark an opcode-class histogram fold as already covered (no
    /// observation counted).
    pub fn admit_op_classes(&mut self, op_classes: u64) {
        self.op_classes.insert(op_classes);
    }

    /// Overwrite the observation counter — checkpoint restore only.
    pub fn set_observations(&mut self, observations: u64) {
        self.observations = observations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_new_repeat_is_not() {
        let mut map = CoverageMap::new();
        assert!(map.observe(0xAB));
        assert!(!map.observe(0xAB));
        assert!(map.observe(0xCD));
        assert_eq!(map.unique(), 2);
        assert_eq!(map.observations(), 3);
        assert!(map.contains(0xAB));
        assert!(!map.contains(0xEF));
    }

    #[test]
    fn trap_sets_are_a_separate_coarse_key() {
        let mut map = CoverageMap::new();
        assert!(map.observe_trap_set(0b1000));
        assert!(!map.observe_trap_set(0b1000));
        assert!(map.observe_trap_set(0b1100), "a superset is still new");
        assert_eq!(map.unique_trap_sets(), 2);
        assert_eq!(map.unique(), 0, "trap sets do not pollute trace keys");
        assert_eq!(map.observations(), 0);
    }

    #[test]
    fn merge_unions_coverage_and_adds_observations() {
        let mut a = CoverageMap::new();
        a.observe(1);
        a.observe(2);
        a.observe_trap_set(0b1000);
        a.observe_pc_pairs(0x10);
        let mut b = CoverageMap::new();
        b.observe(2);
        b.observe(3);
        b.observe_trap_set(0b1010);
        b.observe_pc_pairs(0x10);
        b.observe_pc_pairs(0x11);
        b.observe_op_classes(0x20);
        a.merge(&b);
        assert_eq!(a.unique(), 3);
        assert_eq!(a.unique_trap_sets(), 2);
        assert_eq!(a.unique_pc_pairs(), 2);
        assert_eq!(a.unique_op_classes(), 1);
        assert_eq!(a.observations(), 4);
        assert!(a.contains(3));
    }

    #[test]
    fn yield_keys_are_separate_and_do_not_count_observations() {
        let mut map = CoverageMap::new();
        assert!(map.observe_pc_pairs(7));
        assert!(!map.observe_pc_pairs(7));
        assert!(map.observe_op_classes(7), "key families are disjoint");
        assert!(!map.observe_op_classes(7));
        assert_eq!(map.unique(), 0);
        assert_eq!(map.observations(), 0);
        assert_eq!(map.pc_pairs_sorted(), vec![7]);
        assert_eq!(map.op_classes_sorted(), vec![7]);
        let mut restored = CoverageMap::new();
        restored.admit_pc_pairs(7);
        restored.admit_op_classes(7);
        assert_eq!(restored, map, "admit mirrors observe minus the count");
    }
}
