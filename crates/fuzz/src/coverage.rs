//! Trace-digest coverage: which architectural paths a campaign has seen.
//!
//! The paper's coverage model compares *behaviour*, not branches: two
//! runs cover the same point iff their execution traces digest equally
//! (same pcs, words, outcomes and defined values — see
//! [`ExecutionTrace::digest`](tf_arch::ExecutionTrace::digest)). The
//! [`CoverageMap`] is the campaign's memory of those digests; a program
//! whose trace digest is new is interesting and earns a corpus slot.
//!
//! Exact-trace novelty alone makes the corpus blind to *partial*
//! novelty, so the map also keeps a coarse secondary key: the set of
//! trap-cause codes a run raised (as a bitmask). A program that raises a
//! never-before-seen combination of trap causes is interesting even when
//! its exact trace digest collides with nothing new.

use std::collections::HashSet;

/// Set of execution-trace digests (and coarse trap-cause sets) observed
/// so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    seen: HashSet<u64>,
    trap_sets: HashSet<u64>,
    observations: u64,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a trace digest. Returns `true` when it is new coverage.
    pub fn observe(&mut self, trace_digest: u64) -> bool {
        self.observations += 1;
        self.seen.insert(trace_digest)
    }

    /// Record the trap-cause bitmask of one run (bit `c` set iff a trap
    /// with cause code `c` occurred). Returns `true` when this exact
    /// combination of causes is new coverage.
    pub fn observe_trap_set(&mut self, trap_causes: u64) -> bool {
        self.trap_sets.insert(trap_causes)
    }

    /// True when the digest has been observed before.
    #[must_use]
    pub fn contains(&self, trace_digest: u64) -> bool {
        self.seen.contains(&trace_digest)
    }

    /// Number of distinct trace digests seen.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.seen.len()
    }

    /// Number of distinct trap-cause sets seen.
    #[must_use]
    pub fn unique_trap_sets(&self) -> usize {
        self.trap_sets.len()
    }

    /// Total observations, including repeats.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Fold another map into this one: coverage sets union, observation
    /// counts add. Sharded campaign workers each grow a private map;
    /// the driver merges them into the aggregate view.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.seen.extend(&other.seen);
        self.trap_sets.extend(&other.trap_sets);
        self.observations += other.observations;
    }

    /// The observed trace digests in sorted order — the deterministic
    /// iteration persistence needs (hash-set order varies run to run).
    #[must_use]
    pub fn digests_sorted(&self) -> Vec<u64> {
        let mut digests: Vec<u64> = self.seen.iter().copied().collect();
        digests.sort_unstable();
        digests
    }

    /// The observed trap-cause sets in sorted order.
    #[must_use]
    pub fn trap_sets_sorted(&self) -> Vec<u64> {
        let mut sets: Vec<u64> = self.trap_sets.iter().copied().collect();
        sets.sort_unstable();
        sets
    }

    /// Mark a trace digest as already covered without counting an
    /// observation — how checkpoint restore and corpus priming pre-load
    /// coverage that was earned in an earlier run.
    pub fn admit(&mut self, trace_digest: u64) {
        self.seen.insert(trace_digest);
    }

    /// Mark a trap-cause set as already covered (no observation counted).
    pub fn admit_trap_set(&mut self, trap_causes: u64) {
        self.trap_sets.insert(trap_causes);
    }

    /// Overwrite the observation counter — checkpoint restore only.
    pub fn set_observations(&mut self, observations: u64) {
        self.observations = observations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_new_repeat_is_not() {
        let mut map = CoverageMap::new();
        assert!(map.observe(0xAB));
        assert!(!map.observe(0xAB));
        assert!(map.observe(0xCD));
        assert_eq!(map.unique(), 2);
        assert_eq!(map.observations(), 3);
        assert!(map.contains(0xAB));
        assert!(!map.contains(0xEF));
    }

    #[test]
    fn trap_sets_are_a_separate_coarse_key() {
        let mut map = CoverageMap::new();
        assert!(map.observe_trap_set(0b1000));
        assert!(!map.observe_trap_set(0b1000));
        assert!(map.observe_trap_set(0b1100), "a superset is still new");
        assert_eq!(map.unique_trap_sets(), 2);
        assert_eq!(map.unique(), 0, "trap sets do not pollute trace keys");
        assert_eq!(map.observations(), 0);
    }

    #[test]
    fn merge_unions_coverage_and_adds_observations() {
        let mut a = CoverageMap::new();
        a.observe(1);
        a.observe(2);
        a.observe_trap_set(0b1000);
        let mut b = CoverageMap::new();
        b.observe(2);
        b.observe(3);
        b.observe_trap_set(0b1010);
        a.merge(&b);
        assert_eq!(a.unique(), 3);
        assert_eq!(a.unique_trap_sets(), 2);
        assert_eq!(a.observations(), 4);
        assert!(a.contains(3));
    }
}
