//! Lockstep differential execution: reference vs device under test.
//!
//! The [`DiffEngine`] loads the same program into the golden reference
//! and a [`Dut`], steps both in lockstep and compares after every step:
//! first the recorded [`TraceEntry`]s (pc, fetched word, outcome,
//! defined-register value), then the full architectural digests
//! (registers, CSRs and memory — catching divergences trace entries
//! cannot see, like a dropped `fflags` update). The first mismatching
//! step is reported as a [`Divergence`] carrying both sides' entries,
//! which is the paper's bug-scenario localisation: not just *that* the
//! device differs, but the exact instruction where it went wrong.

use tf_arch::digest::Fnv;
use tf_arch::{Dut, RunExit, StepOutcome, TraceEntry, Trap};
use tf_riscv::Instruction;

/// How a differential run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Reference and DUT agreed at every step.
    Agree {
        /// Steps both sides executed.
        steps: u64,
        /// Why the run ended.
        exit: RunExit,
        /// Digest of the reference execution trace (coverage key).
        trace_digest: u64,
        /// Bitmask of privileged-spec trap-cause codes the reference
        /// raised during the run (bit `c` set iff a trap with
        /// `mcause == c` occurred) — the coarse secondary coverage key.
        trap_causes: u64,
    },
    /// The DUT diverged from the reference.
    Diverged(Divergence),
}

/// The first observed disagreement between reference and DUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based step index at which the divergence was observed.
    pub step: u64,
    /// What the reference did at that step, when tracing captured it.
    pub reference: Option<TraceEntry>,
    /// What the DUT did at that step.
    pub dut: Option<TraceEntry>,
    /// Reference architectural digest after the step.
    pub reference_digest: u64,
    /// DUT architectural digest after the step.
    pub dut_digest: u64,
}

impl Divergence {
    /// Stable fingerprint identifying the divergence *signature* rather
    /// than the run it came from: for each side's diverging entry, the
    /// opcode it retired or the trap cause it raised. Two workers
    /// tripping the same bug at different pcs, with different operand
    /// registers or register values, fingerprint equally — which is what
    /// merged campaign reports deduplicate on. (Deliberately coarse: the
    /// raw instruction word is excluded because it encodes operand
    /// fields, which would make every generated trigger look unique.)
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fn write_entry(fnv: &mut Fnv, entry: Option<&TraceEntry>) {
            let Some(entry) = entry else {
                fnv.write_u64(u64::MAX);
                return;
            };
            match entry.outcome {
                StepOutcome::Retired(insn) => {
                    fnv.write_u64(0);
                    fnv.write_bytes(insn.opcode().mnemonic().as_bytes());
                }
                StepOutcome::Trapped(trap) => fnv.write_u64(1 + trap.cause().code()),
            }
        }
        let mut fnv = Fnv::new();
        write_entry(&mut fnv, self.reference.as_ref());
        write_entry(&mut fnv, self.dut.as_ref());
        fnv.finish()
    }
}

fn write_entry(f: &mut std::fmt::Formatter<'_>, entry: Option<&TraceEntry>) -> std::fmt::Result {
    match entry {
        None => f.write_str("<no trace entry>"),
        Some(entry) => {
            write!(f, "pc={:#x}", entry.pc)?;
            if let Some(word) = entry.word {
                write!(f, " word={word:#010x}")?;
            }
            match &entry.outcome {
                StepOutcome::Retired(insn) => write!(f, " retired `{insn}`")?,
                StepOutcome::Trapped(trap) => write!(f, " trapped: {trap}")?,
            }
            if let Some((reg, value)) = entry.def {
                write!(f, " ({reg} <- {value:#x})")?;
            }
            Ok(())
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "divergence at step {}:", self.step)?;
        f.write_str("  reference: ")?;
        write_entry(f, self.reference.as_ref())?;
        f.write_str("\n  dut:       ")?;
        write_entry(f, self.dut.as_ref())?;
        write!(
            f,
            "\n  digests:   reference {:#018x} vs dut {:#018x}",
            self.reference_digest, self.dut_digest
        )
    }
}

/// Lockstep differential executor.
#[derive(Debug, Clone, Copy)]
pub struct DiffEngine {
    base: u64,
    max_steps: u64,
}

impl DiffEngine {
    /// An engine loading programs at `base` with a per-run step budget.
    #[must_use]
    pub fn new(base: u64, max_steps: u64) -> Self {
        DiffEngine { base, max_steps }
    }

    /// The per-run step budget.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Reset both devices, load `program` into each, and execute in
    /// lockstep until divergence, program end (`ebreak`/`ecall`) or the
    /// step budget.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised when the program cannot be loaded
    /// (does not fit in memory, or fails to encode).
    pub fn diff(
        &self,
        reference: &mut dyn Dut,
        dut: &mut dyn Dut,
        program: &[Instruction],
    ) -> Result<DiffVerdict, Trap> {
        reference.reset();
        dut.reset();
        reference.load(self.base, program)?;
        dut.load(self.base, program)?;
        reference.enable_tracing();
        dut.enable_tracing();

        let mut verdict = None;
        let mut steps = 0;
        let mut trap_causes = 0u64;
        while steps < self.max_steps {
            let ref_outcome = reference.step();
            let dut_outcome = dut.step();
            steps += 1;
            let (ref_digest, dut_digest) = (reference.digest(), dut.digest());
            if ref_outcome != dut_outcome || ref_digest != dut_digest {
                verdict = Some((steps, ref_digest, dut_digest));
                break;
            }
            if let StepOutcome::Trapped(trap) = ref_outcome {
                trap_causes |= 1 << (trap.cause().code() & 63);
            }
            match ref_outcome {
                StepOutcome::Trapped(Trap::Breakpoint { .. }) => {
                    return Ok(self.agree(
                        reference,
                        dut,
                        RunExit::Breakpoint { steps },
                        steps,
                        trap_causes,
                    ));
                }
                StepOutcome::Trapped(Trap::EnvironmentCall) => {
                    return Ok(self.agree(
                        reference,
                        dut,
                        RunExit::EnvironmentCall { steps },
                        steps,
                        trap_causes,
                    ));
                }
                _ => {}
            }
        }
        match verdict {
            None => Ok(self.agree(reference, dut, RunExit::OutOfGas, steps, trap_causes)),
            Some((step, reference_digest, dut_digest)) => {
                let ref_entry = reference
                    .take_trace()
                    .and_then(|t| t.entries().last().copied());
                let dut_entry = dut.take_trace().and_then(|t| t.entries().last().copied());
                Ok(DiffVerdict::Diverged(Divergence {
                    step,
                    reference: ref_entry,
                    dut: dut_entry,
                    reference_digest,
                    dut_digest,
                }))
            }
        }
    }

    fn agree(
        &self,
        reference: &mut dyn Dut,
        dut: &mut dyn Dut,
        exit: RunExit,
        steps: u64,
        trap_causes: u64,
    ) -> DiffVerdict {
        let trace_digest = reference.take_trace().map_or(0, |t| t.digest());
        dut.take_trace();
        DiffVerdict::Agree {
            steps,
            exit,
            trace_digest,
            trap_causes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::{BugScenario, Hart, MutantHart};
    use tf_riscv::{csr, Fpr, Gpr, Opcode, RoundingMode};

    const MEM: u64 = 1 << 16;

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn identical_devices_agree() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::r_type(Opcode::Add, x(2), x(1), x(1)),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(0, 100);
        let mut reference = Hart::new(MEM);
        let mut dut = Hart::new(MEM);
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        match verdict {
            DiffVerdict::Agree {
                steps,
                exit,
                trace_digest,
                trap_causes,
            } => {
                assert_eq!(steps, 3);
                assert_eq!(exit, RunExit::Breakpoint { steps: 3 });
                assert_ne!(trace_digest, 0);
                // The only trap was the terminating breakpoint (cause 3).
                assert_eq!(trap_causes, 1 << 3);
            }
            DiffVerdict::Diverged(d) => panic!("unexpected divergence: {d}"),
        }
    }

    #[test]
    fn fingerprints_identify_the_signature_not_the_run() {
        // Two B2-style divergences at different pcs fingerprint equally;
        // a different divergence signature does not.
        let engine = DiffEngine::new(0, 100);
        let prelude = Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap();
        let fadd = Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
            .unwrap();
        let diverge = |program: &[Instruction]| {
            let mut reference = Hart::new(MEM);
            let mut dut = MutantHart::new(MEM, BugScenario::B2ReservedRounding);
            match engine.diff(&mut reference, &mut dut, program).unwrap() {
                DiffVerdict::Diverged(d) => d,
                DiffVerdict::Agree { .. } => panic!("expected divergence"),
            }
        };
        let near = diverge(&[prelude, fadd, Instruction::system(Opcode::Ebreak)]);
        let far = diverge(&[
            prelude,
            Instruction::nop(),
            Instruction::nop(),
            fadd,
            Instruction::system(Opcode::Ebreak),
        ]);
        assert_ne!(near.reference.unwrap().pc, far.reference.unwrap().pc);
        assert_eq!(near.fingerprint(), far.fingerprint());

        // Different operand registers encode to a different word but are
        // still the same bug signature — generated triggers must dedupe.
        let fadd_other =
            Instruction::fp_r_type(Opcode::FaddS, f(4), f(5), f(6), Some(RoundingMode::Dyn))
                .unwrap();
        assert_ne!(fadd.encode().unwrap(), fadd_other.encode().unwrap());
        let regs = diverge(&[prelude, fadd_other, Instruction::system(Opcode::Ebreak)]);
        assert_eq!(near.fingerprint(), regs.fingerprint());

        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::OffByOneImmediate);
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let DiffVerdict::Diverged(other) = engine.diff(&mut reference, &mut dut, &program).unwrap()
        else {
            panic!("imm mutant must diverge");
        };
        assert_ne!(near.fingerprint(), other.fingerprint());
    }

    #[test]
    fn b2_mutant_divergence_is_localised_to_the_fp_step() {
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(0, 100);
        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::B2ReservedRounding);
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        let DiffVerdict::Diverged(divergence) = verdict else {
            panic!("b2 mutant must diverge");
        };
        assert_eq!(divergence.step, 2, "divergence is at the FP instruction");
        assert!(matches!(
            divergence.reference.unwrap().outcome,
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        assert!(matches!(
            divergence.dut.unwrap().outcome,
            StepOutcome::Retired(_)
        ));
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
        let report = divergence.to_string();
        assert!(report.contains("divergence at step 2"), "{report}");
        assert!(report.contains("illegal instruction"), "{report}");
    }

    #[test]
    fn fflags_mutant_diverges_on_digest_despite_equal_entries() {
        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::DroppedFflags);
        // 1/3 is inexact -> reference accrues NX, mutant drops it. Both
        // retire the same instruction with the same register result.
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1).unwrap(),
            Instruction::fp_unary(
                Opcode::FcvtSW,
                tf_riscv::Reg::F(f(2)),
                tf_riscv::Reg::X(x(1)),
                Some(RoundingMode::Rne),
            )
            .unwrap(),
            Instruction::i_type(Opcode::Addi, x(3), Gpr::ZERO, 3).unwrap(),
            Instruction::fp_unary(
                Opcode::FcvtSW,
                tf_riscv::Reg::F(f(4)),
                tf_riscv::Reg::X(x(3)),
                Some(RoundingMode::Rne),
            )
            .unwrap(),
            Instruction::fp_r_type(Opcode::FdivS, f(5), f(2), f(4), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(0, 100);
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        let DiffVerdict::Diverged(divergence) = verdict else {
            panic!("fflags mutant must diverge");
        };
        assert_eq!(divergence.step, 5, "localised to the inexact division");
        // Same retirement on both sides; only the digest disagrees.
        assert_eq!(divergence.reference, divergence.dut);
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
    }

    #[test]
    fn load_failures_surface_as_traps() {
        let engine = DiffEngine::new(0, 10);
        let mut reference = Hart::new(16);
        let mut dut = Hart::new(16);
        let program = vec![Instruction::nop(); 32];
        let err = engine.diff(&mut reference, &mut dut, &program).unwrap_err();
        assert!(matches!(err, Trap::StoreFault { .. }));
    }

    #[test]
    fn out_of_gas_still_agrees() {
        let engine = DiffEngine::new(0, 4);
        let mut reference = Hart::new(MEM);
        let mut dut = Hart::new(MEM);
        // An infinite loop: jal x0, 0 jumps to itself.
        let program = [Instruction::j_type(
            Opcode::Jal,
            Gpr::ZERO,
            tf_riscv::JumpOffset::new(0).unwrap(),
        )];
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        assert!(matches!(
            verdict,
            DiffVerdict::Agree {
                steps: 4,
                exit: RunExit::OutOfGas,
                ..
            }
        ));
    }
}
