//! Windowed lockstep differential execution: reference vs device under
//! test.
//!
//! The [`DiffEngine`] loads the same program into the golden reference
//! and a [`Dut`] and compares their executions. With
//! [`DiffConfig::window`]` == 1` it steps both in lockstep and compares
//! after every step: outcome first, then the full architectural digests
//! (registers, CSRs and memory — catching divergences trace entries
//! cannot see, like a dropped `fflags` update). With a window `k > 1` it
//! instead runs each side as one batched [`Dut::run`] that samples the
//! digest every `k` steps, and compares the two [`BatchOutcome`]s — the
//! digest cost amortises by `k`. When the batches disagree the engine
//! replays the run exactly (execution is deterministic, so the replay
//! bisects the offending window down to its first diverging step), which
//! makes the reported [`Divergence`] bit-identical to what `window == 1`
//! reports. The divergence carries both sides' [`TraceEntry`]s, which is
//! the paper's bug-scenario localisation: not just *that* the device
//! differs, but the exact instruction where it went wrong.
//!
//! The reference's [`Dut::run`] is the hart's native predecoded-block
//! engine (see `tf_arch::Hart`), which is proven bit-identical to the
//! default per-step trait body — so the windowed fast path, the exact
//! replay and the `window == 1` loop all agree on every sample, every
//! verdict and every replayed trace regardless of which engine produced
//! them.
//!
//! Windowed detection loses no sensitivity: each sample folds not just
//! the state digest but the device's cumulative *write history*
//! ([`tf_arch::Dut::write_history`], via [`tf_arch::fold_sample`]), and
//! a fold over the write sequence never reconverges once the two sides
//! first wrote differently — so even a divergence whose architectural
//! side effects cancel out again before the next sample point still
//! flips every later sample and triggers the exact replay. Backends
//! that leave `write_history` at its constant default stay correct
//! too, at a cost: every window against the history-bearing reference
//! mismatches and replays, degrading to `window = 1` throughput.

use tf_arch::digest::Fnv;
use tf_arch::{
    fold_op_classes, fold_pc_pair, op_class, BatchOutcome, Dut, RunExit, StepOutcome, TraceEntry,
    Trap, OP_CLASS_BUCKETS, PC_PAIRS_SEED,
};
use tf_riscv::Instruction;

/// Default comparison window: digests are sampled and compared every
/// this many steps (see [`DiffConfig::window`]).
pub const DEFAULT_WINDOW: u64 = 16;

/// A rejected configuration, explaining which invariant failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub(crate) &'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ConfigError {}

/// How a [`DiffEngine`] runs: where programs load, the per-run step
/// budget and the comparison window. Mirrors
/// [`CampaignConfig`](crate::CampaignConfig): public fields plus
/// `#[must_use]` builder setters ([`DiffConfig::with_window`] and
/// friends) and [`DiffConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffConfig {
    /// Address programs are loaded at.
    pub base: u64,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Steps between digest comparisons. `1` compares after every step
    /// (the exhaustive pre-windowing behaviour, bit for bit); larger
    /// windows amortise digest cost and localise mismatches by exact
    /// replay. `max_steps` need not be a multiple: a trailing partial
    /// window is closed by the unconditional final sample of
    /// [`Dut::run`]. Must be at least 1.
    pub window: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            base: 0,
            max_steps: 128,
            window: DEFAULT_WINDOW,
        }
    }
}

impl DiffConfig {
    /// This config with `base` replaced.
    #[must_use]
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// This config with `max_steps` replaced.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// This config with `window` replaced.
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Check the invariants [`DiffEngine::new`] requires.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated invariant:
    /// `window >= 1` and `max_steps >= 1`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window < 1 {
            return Err(ConfigError("window must be at least 1"));
        }
        if self.max_steps < 1 {
            return Err(ConfigError("max_steps must be at least 1"));
        }
        Ok(())
    }
}

/// How a differential run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Reference and DUT agreed at every step.
    Agree {
        /// Steps both sides executed.
        steps: u64,
        /// Why the run ended.
        exit: RunExit,
        /// Digest of the reference execution trace (coverage key).
        trace_digest: u64,
        /// Bitmask of privileged-spec trap-cause codes the reference
        /// raised during the run (bit `c` set iff a trap with
        /// `mcause == c` occurred) — the coarse secondary coverage key.
        trap_causes: u64,
        /// [`fold_pc_pair`] fold of the reference's control-flow edge
        /// sequence — the cheap path-shape key feeding the scheduler's
        /// yield signal.
        pc_pairs: u64,
        /// [`fold_op_classes`] fold of the reference's retired
        /// opcode-class histogram — the cheap instruction-mix key
        /// feeding the scheduler's yield signal.
        op_classes: u64,
    },
    /// The DUT diverged from the reference.
    Diverged(Divergence),
}

/// The first observed disagreement between reference and DUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 1-based step index at which the divergence was observed.
    pub step: u64,
    /// What the reference did at that step, when tracing captured it.
    pub reference: Option<TraceEntry>,
    /// What the DUT did at that step.
    pub dut: Option<TraceEntry>,
    /// Reference architectural digest after the step.
    pub reference_digest: u64,
    /// DUT architectural digest after the step.
    pub dut_digest: u64,
}

impl Divergence {
    /// Stable fingerprint identifying the divergence *signature* rather
    /// than the run it came from: for each side's diverging entry, the
    /// opcode it retired or the trap cause it raised. Two workers
    /// tripping the same bug at different pcs, with different operand
    /// registers or register values, fingerprint equally — which is what
    /// merged campaign reports deduplicate on. (Deliberately coarse: the
    /// raw instruction word is excluded because it encodes operand
    /// fields, which would make every generated trigger look unique.)
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fn write_entry(fnv: &mut Fnv, entry: Option<&TraceEntry>) {
            let Some(entry) = entry else {
                fnv.write_u64(u64::MAX);
                return;
            };
            match entry.outcome {
                StepOutcome::Retired(insn) => {
                    fnv.write_u64(0);
                    fnv.write_bytes(insn.opcode().mnemonic().as_bytes());
                }
                StepOutcome::Trapped(trap) => fnv.write_u64(1 + trap.cause().code()),
            }
        }
        let mut fnv = Fnv::new();
        write_entry(&mut fnv, self.reference.as_ref());
        write_entry(&mut fnv, self.dut.as_ref());
        fnv.finish()
    }
}

fn write_entry(f: &mut std::fmt::Formatter<'_>, entry: Option<&TraceEntry>) -> std::fmt::Result {
    match entry {
        None => f.write_str("<no trace entry>"),
        Some(entry) => {
            write!(f, "pc={:#x}", entry.pc)?;
            if let Some(word) = entry.word {
                write!(f, " word={word:#010x}")?;
            }
            match &entry.outcome {
                StepOutcome::Retired(insn) => write!(f, " retired `{insn}`")?,
                StepOutcome::Trapped(trap) => write!(f, " trapped: {trap}")?,
            }
            if let Some((reg, value)) = entry.def {
                write!(f, " ({reg} <- {value:#x})")?;
            }
            Ok(())
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "divergence at step {}:", self.step)?;
        f.write_str("  reference: ")?;
        write_entry(f, self.reference.as_ref())?;
        f.write_str("\n  dut:       ")?;
        write_entry(f, self.dut.as_ref())?;
        write!(
            f,
            "\n  digests:   reference {:#018x} vs dut {:#018x}",
            self.reference_digest, self.dut_digest
        )
    }
}

/// Reusable per-diff buffers: the two [`BatchOutcome`]s a windowed run
/// fills. Campaign hot loops hold one of these and pass it to
/// [`DiffEngine::diff_with`] so the per-window sample vectors are
/// cleared, never reallocated, across thousands of runs.
#[derive(Debug, Clone, Default)]
pub struct DiffScratch {
    /// The reference side's batch outcome.
    pub reference: BatchOutcome,
    /// The DUT side's batch outcome.
    pub dut: BatchOutcome,
}

/// Windowed lockstep differential executor.
#[derive(Debug, Clone, Copy)]
pub struct DiffEngine {
    config: DiffConfig,
}

impl DiffEngine {
    /// An engine running under `config`.
    ///
    /// # Panics
    ///
    /// Panics when [`DiffConfig::validate`] rejects the config.
    #[must_use]
    pub fn new(config: DiffConfig) -> Self {
        if let Err(error) = config.validate() {
            panic!("invalid DiffConfig: {error}");
        }
        DiffEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> DiffConfig {
        self.config
    }

    /// Reset both devices, load `program` into each, and execute both
    /// sides until divergence, program end (`ebreak`/`ecall`) or the
    /// step budget, comparing digests every [`DiffConfig::window`]
    /// steps.
    ///
    /// A window mismatch is localised by exact replay: both sides are
    /// reset and re-run in per-step lockstep, which — execution being a
    /// pure function of the loaded program — reports the same
    /// [`Divergence`], bit for bit, that `window == 1` would have.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised when the program cannot be loaded
    /// (does not fit in memory, or fails to encode).
    pub fn diff(
        &self,
        reference: &mut dyn Dut,
        dut: &mut dyn Dut,
        program: &[Instruction],
    ) -> Result<DiffVerdict, Trap> {
        let mut scratch = DiffScratch::default();
        self.diff_with(reference, dut, program, &mut scratch)
    }

    /// [`DiffEngine::diff`] with caller-owned batch buffers: the windowed
    /// run fills `scratch` via [`Dut::run_into`] instead of allocating
    /// two fresh [`BatchOutcome`]s, so a campaign's one-batch-per-program
    /// hot loop never reallocates the sample vectors. The verdict is
    /// bit-identical to [`DiffEngine::diff`]'s.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised when the program cannot be loaded
    /// (does not fit in memory, or fails to encode).
    pub fn diff_with(
        &self,
        reference: &mut dyn Dut,
        dut: &mut dyn Dut,
        program: &[Instruction],
        scratch: &mut DiffScratch,
    ) -> Result<DiffVerdict, Trap> {
        reference.reset();
        dut.reset();
        reference.load(self.config.base, program)?;
        dut.load(self.config.base, program)?;
        if self.config.window > 1 {
            // Trace the reference only: the trace feeds the coverage key
            // on agreement, and the replay recollects both sides' traces
            // on mismatch.
            reference.enable_tracing();
            reference.run_into(
                self.config.max_steps,
                self.config.window,
                &mut scratch.reference,
            );
            dut.run_into(self.config.max_steps, self.config.window, &mut scratch.dut);
            if let Some(verdict) =
                self.agree_on_batches(reference, &scratch.reference, &scratch.dut)
            {
                return Ok(verdict);
            }
            // Some window disagreed: replay from reset, step by step, to
            // bisect it down to the exact diverging step.
            reference.reset();
            dut.reset();
            reference.load(self.config.base, program)?;
            dut.load(self.config.base, program)?;
        }
        Ok(self.diff_exact(reference, dut))
    }

    /// The windowed agreement check: equal batches become the verdict
    /// the exact loop would have produced, a mismatch becomes `None`.
    fn agree_on_batches(
        &self,
        reference: &mut dyn Dut,
        ref_batch: &BatchOutcome,
        dut_batch: &BatchOutcome,
    ) -> Option<DiffVerdict> {
        if ref_batch != dut_batch {
            reference.take_trace();
            return None;
        }
        let trace_digest = reference.take_trace().map_or(0, |t| t.digest());
        Some(DiffVerdict::Agree {
            steps: ref_batch.steps,
            exit: ref_batch.exit,
            trace_digest,
            trap_causes: ref_batch.trap_causes,
            pc_pairs: ref_batch.pc_pairs,
            op_classes: ref_batch.op_classes,
        })
    }

    /// The exhaustive per-step loop: compare outcome and digest after
    /// every single step. Callers have already reset and loaded both
    /// sides.
    fn diff_exact(&self, reference: &mut dyn Dut, dut: &mut dyn Dut) -> DiffVerdict {
        reference.enable_tracing();
        dut.enable_tracing();

        let mut verdict = None;
        let mut steps = 0;
        let mut trap_causes = 0u64;
        // The yield-signal folds are computed reference-side with the
        // exact scheme the default `Dut::run_into` uses, so windowed and
        // exact verdicts carry bit-identical folds.
        let mut pc_pairs = PC_PAIRS_SEED;
        let mut classes = [0u32; OP_CLASS_BUCKETS];
        while steps < self.config.max_steps {
            let from = reference.pc();
            let ref_outcome = reference.step();
            let dut_outcome = dut.step();
            steps += 1;
            pc_pairs = fold_pc_pair(pc_pairs, from, reference.pc());
            if let StepOutcome::Retired(insn) = ref_outcome {
                classes[op_class(&insn)] += 1;
            }
            let (ref_digest, dut_digest) = (reference.digest(), dut.digest());
            if ref_outcome != dut_outcome || ref_digest != dut_digest {
                verdict = Some((steps, ref_digest, dut_digest));
                break;
            }
            if let StepOutcome::Trapped(trap) = ref_outcome {
                trap_causes |= 1 << (trap.cause().code() & 63);
            }
            match ref_outcome {
                StepOutcome::Trapped(Trap::Breakpoint { .. }) => {
                    return self.agree(
                        reference,
                        dut,
                        RunExit::Breakpoint { steps },
                        steps,
                        trap_causes,
                        pc_pairs,
                        &classes,
                    );
                }
                StepOutcome::Trapped(Trap::EnvironmentCall) => {
                    return self.agree(
                        reference,
                        dut,
                        RunExit::EnvironmentCall { steps },
                        steps,
                        trap_causes,
                        pc_pairs,
                        &classes,
                    );
                }
                _ => {}
            }
        }
        match verdict {
            None => self.agree(
                reference,
                dut,
                RunExit::OutOfGas,
                steps,
                trap_causes,
                pc_pairs,
                &classes,
            ),
            Some((step, reference_digest, dut_digest)) => {
                let ref_entry = reference
                    .take_trace()
                    .and_then(|t| t.entries().last().copied());
                let dut_entry = dut.take_trace().and_then(|t| t.entries().last().copied());
                DiffVerdict::Diverged(Divergence {
                    step,
                    reference: ref_entry,
                    dut: dut_entry,
                    reference_digest,
                    dut_digest,
                })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn agree(
        &self,
        reference: &mut dyn Dut,
        dut: &mut dyn Dut,
        exit: RunExit,
        steps: u64,
        trap_causes: u64,
        pc_pairs: u64,
        classes: &[u32; OP_CLASS_BUCKETS],
    ) -> DiffVerdict {
        let trace_digest = reference.take_trace().map_or(0, |t| t.digest());
        dut.take_trace();
        DiffVerdict::Agree {
            steps,
            exit,
            trace_digest,
            trap_causes,
            pc_pairs,
            op_classes: fold_op_classes(classes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_arch::{BugScenario, Hart, MutantHart};
    use tf_riscv::{csr, Fpr, Gpr, Opcode, RoundingMode};

    const MEM: u64 = 1 << 16;

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn f(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn identical_devices_agree() {
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::r_type(Opcode::Add, x(2), x(1), x(1)),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(100));
        let mut reference = Hart::new(MEM);
        let mut dut = Hart::new(MEM);
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        match verdict {
            DiffVerdict::Agree {
                steps,
                exit,
                trace_digest,
                trap_causes,
                pc_pairs,
                op_classes,
            } => {
                assert_eq!(steps, 3);
                assert_eq!(exit, RunExit::Breakpoint { steps: 3 });
                assert_ne!(trace_digest, 0);
                // The only trap was the terminating breakpoint (cause 3).
                assert_eq!(trap_causes, 1 << 3);
                // Three steps folded into the path key; two retirements
                // into the instruction-mix key.
                assert_ne!(pc_pairs, PC_PAIRS_SEED);
                assert_ne!(op_classes, fold_op_classes(&[0; OP_CLASS_BUCKETS]));
            }
            DiffVerdict::Diverged(d) => panic!("unexpected divergence: {d}"),
        }
    }

    #[test]
    fn fingerprints_identify_the_signature_not_the_run() {
        // Two B2-style divergences at different pcs fingerprint equally;
        // a different divergence signature does not.
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(100));
        let prelude = Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap();
        let fadd = Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
            .unwrap();
        let diverge = |program: &[Instruction]| {
            let mut reference = Hart::new(MEM);
            let mut dut = MutantHart::new(MEM, BugScenario::B2ReservedRounding);
            match engine.diff(&mut reference, &mut dut, program).unwrap() {
                DiffVerdict::Diverged(d) => d,
                DiffVerdict::Agree { .. } => panic!("expected divergence"),
            }
        };
        let near = diverge(&[prelude, fadd, Instruction::system(Opcode::Ebreak)]);
        let far = diverge(&[
            prelude,
            Instruction::nop(),
            Instruction::nop(),
            fadd,
            Instruction::system(Opcode::Ebreak),
        ]);
        assert_ne!(near.reference.unwrap().pc, far.reference.unwrap().pc);
        assert_eq!(near.fingerprint(), far.fingerprint());

        // Different operand registers encode to a different word but are
        // still the same bug signature — generated triggers must dedupe.
        let fadd_other =
            Instruction::fp_r_type(Opcode::FaddS, f(4), f(5), f(6), Some(RoundingMode::Dyn))
                .unwrap();
        assert_ne!(fadd.encode().unwrap(), fadd_other.encode().unwrap());
        let regs = diverge(&[prelude, fadd_other, Instruction::system(Opcode::Ebreak)]);
        assert_eq!(near.fingerprint(), regs.fingerprint());

        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::OffByOneImmediate);
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let DiffVerdict::Diverged(other) = engine.diff(&mut reference, &mut dut, &program).unwrap()
        else {
            panic!("imm mutant must diverge");
        };
        assert_ne!(near.fingerprint(), other.fingerprint());
    }

    #[test]
    fn b2_mutant_divergence_is_localised_to_the_fp_step() {
        let program = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(100));
        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::B2ReservedRounding);
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        let DiffVerdict::Diverged(divergence) = verdict else {
            panic!("b2 mutant must diverge");
        };
        assert_eq!(divergence.step, 2, "divergence is at the FP instruction");
        assert!(matches!(
            divergence.reference.unwrap().outcome,
            StepOutcome::Trapped(Trap::IllegalInstruction { .. })
        ));
        assert!(matches!(
            divergence.dut.unwrap().outcome,
            StepOutcome::Retired(_)
        ));
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
        let report = divergence.to_string();
        assert!(report.contains("divergence at step 2"), "{report}");
        assert!(report.contains("illegal instruction"), "{report}");
    }

    #[test]
    fn fflags_mutant_diverges_on_digest_despite_equal_entries() {
        let mut reference = Hart::new(MEM);
        let mut dut = MutantHart::new(MEM, BugScenario::DroppedFflags);
        // 1/3 is inexact -> reference accrues NX, mutant drops it. Both
        // retire the same instruction with the same register result.
        let program = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 1).unwrap(),
            Instruction::fp_unary(
                Opcode::FcvtSW,
                tf_riscv::Reg::F(f(2)),
                tf_riscv::Reg::X(x(1)),
                Some(RoundingMode::Rne),
            )
            .unwrap(),
            Instruction::i_type(Opcode::Addi, x(3), Gpr::ZERO, 3).unwrap(),
            Instruction::fp_unary(
                Opcode::FcvtSW,
                tf_riscv::Reg::F(f(4)),
                tf_riscv::Reg::X(x(3)),
                Some(RoundingMode::Rne),
            )
            .unwrap(),
            Instruction::fp_r_type(Opcode::FdivS, f(5), f(2), f(4), Some(RoundingMode::Rne))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(100));
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        let DiffVerdict::Diverged(divergence) = verdict else {
            panic!("fflags mutant must diverge");
        };
        assert_eq!(divergence.step, 5, "localised to the inexact division");
        // Same retirement on both sides; only the digest disagrees.
        assert_eq!(divergence.reference, divergence.dut);
        assert_ne!(divergence.reference_digest, divergence.dut_digest);
    }

    #[test]
    fn load_failures_surface_as_traps() {
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(10));
        let mut reference = Hart::new(16);
        let mut dut = Hart::new(16);
        let program = vec![Instruction::nop(); 32];
        let err = engine.diff(&mut reference, &mut dut, &program).unwrap_err();
        assert!(matches!(err, Trap::StoreFault { .. }));
    }

    #[test]
    fn out_of_gas_still_agrees() {
        let engine = DiffEngine::new(DiffConfig::default().with_max_steps(4));
        let mut reference = Hart::new(MEM);
        let mut dut = Hart::new(MEM);
        // An infinite loop: jal x0, 0 jumps to itself.
        let program = [Instruction::j_type(
            Opcode::Jal,
            Gpr::ZERO,
            tf_riscv::JumpOffset::new(0).unwrap(),
        )];
        let verdict = engine.diff(&mut reference, &mut dut, &program).unwrap();
        assert!(matches!(
            verdict,
            DiffVerdict::Agree {
                steps: 4,
                exit: RunExit::OutOfGas,
                ..
            }
        ));
    }

    #[test]
    fn builders_compose_and_validation_names_the_invariant() {
        let config = DiffConfig::default()
            .with_base(0x1000)
            .with_max_steps(64)
            .with_window(4);
        assert_eq!(
            config,
            DiffConfig {
                base: 0x1000,
                max_steps: 64,
                window: 4
            }
        );
        assert_eq!(config.validate(), Ok(()));
        // max_steps need not be a multiple of the window.
        assert_eq!(config.with_max_steps(63).validate(), Ok(()));
        assert!(config
            .with_window(0)
            .validate()
            .unwrap_err()
            .to_string()
            .contains("window"));
        assert!(config
            .with_max_steps(0)
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_steps"));
        let engine = DiffEngine::new(config);
        assert_eq!(engine.config(), config);
    }

    #[test]
    #[should_panic(expected = "invalid DiffConfig")]
    fn the_engine_rejects_a_zero_window() {
        let _ = DiffEngine::new(DiffConfig::default().with_window(0));
    }

    #[test]
    fn every_window_reports_the_exact_loop_verdict() {
        // The replay guarantee, in miniature (the 1k-seed property test
        // lives in tests/windowed_equivalence.rs): agreement and
        // divergence verdicts at every window equal window=1's, bit for
        // bit — including a budget that is not a window multiple.
        let diverging = [
            Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, 0b101).unwrap(),
            Instruction::fp_r_type(Opcode::FaddS, f(1), f(2), f(3), Some(RoundingMode::Dyn))
                .unwrap(),
            Instruction::system(Opcode::Ebreak),
        ];
        let clean = [
            Instruction::i_type(Opcode::Addi, x(1), Gpr::ZERO, 5).unwrap(),
            Instruction::r_type(Opcode::Add, x(2), x(1), x(1)),
            Instruction::system(Opcode::Ebreak),
        ];
        for max_steps in [100, 7] {
            let exact = DiffEngine::new(
                DiffConfig::default()
                    .with_max_steps(max_steps)
                    .with_window(1),
            );
            for window in [4, 16, 64] {
                let windowed = DiffEngine::new(
                    DiffConfig::default()
                        .with_max_steps(max_steps)
                        .with_window(window),
                );
                for program in [&diverging[..], &clean[..]] {
                    let mut reference = Hart::new(MEM);
                    let mut dut = MutantHart::new(MEM, BugScenario::B2ReservedRounding);
                    let expected = exact.diff(&mut reference, &mut dut, program).unwrap();
                    let got = windowed.diff(&mut reference, &mut dut, program).unwrap();
                    assert_eq!(got, expected, "window {window}, max_steps {max_steps}");
                }
            }
        }
    }
}
