//! Dataflow-aware program generation on top of the instruction library.
//!
//! The library samples uniformly over its active opcode set; uniform
//! operand choice, however, makes most instructions read registers
//! nothing ever wrote, so generated programs barely propagate values.
//! [`ProgramGenerator`] adds the paper's dataflow bias on top: each slot
//! runs a small tournament of library candidates and keeps the one whose
//! [`Operands::uses`](tf_riscv::Operands::uses) overlap the registers
//! recently defined by earlier instructions, so values flow forward
//! through the program. Every generated program ends in `ebreak`, the
//! conventional end-of-program marker [`Dut::run`](tf_arch::Dut::run)
//! stops on.
//!
//! The generator also plants *rounding-mode stressors*: with small
//! probability it emits a `csrrwi frm, <reserved>` followed by an FP
//! instruction using the dynamic rounding mode. On a conforming device
//! the FP instruction must trap (reserved `frm`); a device with the
//! paper's B2 bug retires it — exactly the divergence the campaign layer
//! exists to flag.

use tf_riscv::{
    csr, BranchOffset, Format, Fpr, Gpr, Instruction, InstructionLibrary, JumpOffset,
    LibraryConfig, Opcode, Reg, RoundingMode,
};

use crate::rng::SplitMix64;

/// How many recently defined registers the dataflow bias remembers.
const LIVE_WINDOW: usize = 8;

/// Tuning knobs for [`ProgramGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Candidates drawn per slot; the best-scoring one is kept. `1`
    /// disables the dataflow bias entirely.
    pub tournament: usize,
    /// Probability (out of 256) of planting a rounding-mode stressor
    /// pair at a slot instead of a tournament winner.
    pub rm_stress: u8,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            tournament: 4,
            rm_stress: 16,
        }
    }
}

/// Samples prime-instruction programs from an [`InstructionLibrary`],
/// biased toward register reuse and always terminated by `ebreak`.
#[derive(Debug, Clone)]
pub struct ProgramGenerator {
    library: InstructionLibrary,
    config: GeneratorConfig,
    rng: SplitMix64,
    live: Vec<Reg>,
}

impl ProgramGenerator {
    /// Build a generator over `library` with its own decision seed.
    #[must_use]
    pub fn new(library: InstructionLibrary, seed: u64) -> Self {
        Self::with_config(library, seed, GeneratorConfig::default())
    }

    /// Build a generator with explicit tuning.
    #[must_use]
    pub fn with_config(library: InstructionLibrary, seed: u64, config: GeneratorConfig) -> Self {
        ProgramGenerator {
            library,
            config,
            rng: SplitMix64::new(seed),
            live: Vec::with_capacity(LIVE_WINDOW),
        }
    }

    /// The underlying library's configuration.
    #[must_use]
    pub fn library_config(&self) -> &LibraryConfig {
        self.library.config()
    }

    /// The generator's two RNG stream positions: its own decision stream
    /// and the instruction library's sampling stream. Campaign
    /// checkpoints persist both so a resumed run generates the exact
    /// program sequence an uninterrupted run would have.
    #[must_use]
    pub fn rng_states(&self) -> (u64, u64) {
        (self.rng.state(), self.library.rng_state())
    }

    /// Restore stream positions captured by
    /// [`rng_states`](Self::rng_states). The live-register window is not
    /// part of the checkpoint: [`generate`](Self::generate) clears it at
    /// the top of every program, so it carries no state across programs.
    pub fn set_rng_states(&mut self, own: u64, library: u64) {
        self.rng.set_state(own);
        self.library.set_rng_state(library);
    }

    /// Sample one instruction from the underlying library, domesticated
    /// like a generated slot (used by corpus mutation, so mutants keep
    /// the recoverable-program discipline). `None` when the library is
    /// empty.
    pub fn sample_insn(&mut self) -> Option<Instruction> {
        let insn = self.library.sample()?;
        Some(self.domesticate(insn))
    }

    /// Generate a program of at most `len` instructions, the last of
    /// which is always `ebreak`.
    ///
    /// An empty library degenerates to the bare `ebreak` terminator —
    /// never a panic, matching the library's own empty-set contract.
    pub fn generate(&mut self, len: usize) -> Vec<Instruction> {
        let mut program = Vec::with_capacity(len.max(1));
        self.generate_into(len, &mut program);
        program
    }

    /// [`generate`](Self::generate) into a caller-owned buffer, which is
    /// cleared first — the campaign hot loop's one-program-per-run
    /// allocation, amortised away. Consumes exactly the RNG draws
    /// `generate` would, so the two are interchangeable mid-stream.
    pub fn generate_into(&mut self, len: usize, out: &mut Vec<Instruction>) {
        let len = len.max(1);
        out.clear();
        self.live.clear();
        while out.len() + 1 < len {
            if self.rng.chance(self.config.rm_stress) {
                let space = len - 1 - out.len();
                if self.plant_rm_stressor(out, space) {
                    continue;
                }
            }
            match self.tournament() {
                Some(insn) => out.push(insn),
                None => break,
            }
        }
        out.push(Instruction::system(Opcode::Ebreak));
    }

    /// Draw `tournament` candidates and keep the one using the most
    /// recently defined registers (first wins ties, so `tournament == 1`
    /// is plain library sampling). `ebreak` candidates are penalised —
    /// an early terminator wastes the rest of the slot budget.
    fn tournament(&mut self) -> Option<Instruction> {
        let rounds = self.config.tournament.max(1);
        let mut best: Option<(i64, Instruction)> = None;
        for _ in 0..rounds {
            let candidate = self.library.sample()?;
            let score = if candidate.opcode() == Opcode::Ebreak {
                -1
            } else {
                let ops = candidate.operands();
                ops.uses().filter(|r| self.live.contains(r)).count() as i64
            };
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, candidate));
            }
        }
        let (_, insn) = best?;
        let insn = self.domesticate(insn);
        if let Some(def) = insn.operands().defs() {
            if self.live.len() == LIVE_WINDOW {
                self.live.remove(0);
            }
            self.live.push(def);
        }
        Some(insn)
    }

    /// Rebuild the operands that would derail execution, the paper's
    /// recoverable-program discipline.
    ///
    /// The library samples offsets and base registers uniformly, which
    /// flings execution off the program within a few steps — a wild
    /// branch target or a load through a garbage-valued base register
    /// traps, vectors to `mtvec`, and the rest of the program never
    /// retires. Generated programs must stay on the rails for deep
    /// slots to exercise the device:
    ///
    /// * branches and `jal` get short forward skips (1–4 instructions);
    /// * loads and stores are rebased to `x0` plus an 8-aligned offset
    ///   into a scratch region above the program (stores feed later
    ///   loads, so memory dataflow survives);
    /// * AMOs address memory through `x0` directly (address 0 — aliasing
    ///   the program text, deterministically on both devices).
    ///
    /// `jalr` stays wild — its target is data-dependent — and the
    /// rounding-mode stressors trap by design, so the trap paths remain
    /// covered.
    fn domesticate(&mut self, insn: Instruction) -> Instruction {
        let opcode = insn.opcode();
        // 8-aligned scratch offsets in [1024, 2040]: within the 12-bit
        // immediate, aligned for every access width, above the program.
        let mut scratch = || 1024 + 8 * self.rng.below(128) as i64;
        match opcode.format() {
            Format::B => {
                let skip = 4 * (1 + self.rng.below(4) as i64);
                let offset = BranchOffset::new(skip).expect("small skip is encodable");
                Instruction::b_type(
                    opcode,
                    Gpr::wrapping(insn.rs1()),
                    Gpr::wrapping(insn.rs2()),
                    offset,
                )
            }
            Format::J => {
                let skip = 4 * (1 + self.rng.below(4) as i64);
                let offset = JumpOffset::new(skip).expect("small skip is encodable");
                Instruction::j_type(opcode, Gpr::wrapping(insn.rd()), offset)
            }
            Format::I if opcode.is_load() => {
                Instruction::i_type(opcode, Gpr::wrapping(insn.rd()), Gpr::ZERO, scratch())
                    .expect("scratch offset fits 12 bits")
            }
            Format::S => {
                Instruction::s_type(opcode, Gpr::ZERO, Gpr::wrapping(insn.rs2()), scratch())
                    .expect("scratch offset fits 12 bits")
            }
            Format::FpLoad => {
                Instruction::fp_load(opcode, Fpr::wrapping(insn.rd()), Gpr::ZERO, scratch())
                    .expect("scratch offset fits 12 bits")
            }
            Format::FpStore => {
                Instruction::fp_store(opcode, Gpr::ZERO, Fpr::wrapping(insn.rs2()), scratch())
                    .expect("scratch offset fits 12 bits")
            }
            Format::Amo => Instruction::amo(
                opcode,
                Gpr::wrapping(insn.rd()),
                Gpr::ZERO,
                Gpr::wrapping(insn.rs2()),
                insn.aq(),
                insn.rl(),
            )
            .expect("amo operands in range"),
            _ => insn,
        }
    }

    /// Emit `csrrwi frm, <reserved>` + an FP instruction with the
    /// dynamic rounding mode, when the active categories allow both and
    /// `space` fits the pair. Returns whether anything was planted.
    fn plant_rm_stressor(&mut self, program: &mut Vec<Instruction>, space: usize) -> bool {
        if space < 2
            || !self.library.contains(Opcode::Csrrwi)
            || !self.library.contains(Opcode::FaddS)
        {
            return false;
        }
        let reserved = if self.rng.chance(128) { 0b101 } else { 0b110 };
        let set_frm = Instruction::csr_imm(Opcode::Csrrwi, Gpr::ZERO, csr::FRM, reserved)
            .expect("5-bit zimm in range");
        let (a, b) = (self.fpr(), self.fpr());
        let rd = self.fpr();
        let dyn_op = Instruction::fp_r_type(Opcode::FaddS, rd, a, b, Some(RoundingMode::Dyn))
            .expect("fadd.s takes a rounding mode");
        program.push(set_frm);
        program.push(dyn_op);
        true
    }

    fn fpr(&mut self) -> Fpr {
        Fpr::wrapping(self.rng.next_u64() as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::Extension;

    fn generator(seed: u64) -> ProgramGenerator {
        ProgramGenerator::new(InstructionLibrary::new(LibraryConfig::all(), seed), seed)
    }

    #[test]
    fn programs_always_end_in_ebreak() {
        let mut generator = generator(1);
        for len in [1, 2, 8, 64] {
            let program = generator.generate(len);
            assert!(program.len() <= len.max(1));
            assert_eq!(program.last().unwrap().opcode(), Opcode::Ebreak);
        }
    }

    #[test]
    fn empty_library_degenerates_to_bare_terminator() {
        let lib = InstructionLibrary::new(LibraryConfig::none(), 1);
        let mut generator = ProgramGenerator::new(lib, 1);
        assert_eq!(
            generator.generate(32),
            vec![Instruction::system(Opcode::Ebreak)]
        );
    }

    #[test]
    fn same_seed_same_program() {
        let mut a = generator(42);
        let mut b = generator(42);
        assert_eq!(a.generate(64), b.generate(64));
    }

    #[test]
    fn dataflow_bias_increases_register_reuse() {
        // Compare reuse (an instruction reading a register some earlier
        // instruction defined) with and without the tournament.
        let reuse = |tournament: usize| -> usize {
            let lib = InstructionLibrary::new(LibraryConfig::all(), 7);
            let config = GeneratorConfig {
                tournament,
                rm_stress: 0,
            };
            let mut generator = ProgramGenerator::with_config(lib, 7, config);
            let mut count = 0;
            for _ in 0..16 {
                let program = generator.generate(64);
                let mut defined: Vec<Reg> = Vec::new();
                for insn in &program {
                    let ops = insn.operands();
                    count += ops.uses().filter(|r| defined.contains(r)).count();
                    if let Some(def) = ops.defs() {
                        defined.push(def);
                    }
                }
            }
            count
        };
        let unbiased = reuse(1);
        let biased = reuse(4);
        assert!(
            biased > unbiased,
            "tournament should raise reuse: biased {biased} vs unbiased {unbiased}"
        );
    }

    #[test]
    fn rm_stressors_plant_reserved_frm_pairs() {
        let lib = InstructionLibrary::new(LibraryConfig::all(), 3);
        let config = GeneratorConfig {
            tournament: 4,
            rm_stress: 64,
        };
        let mut generator = ProgramGenerator::with_config(lib, 3, config);
        let program = generator.generate(128);
        let stressors = program
            .windows(2)
            .filter(|w| {
                w[0].opcode() == Opcode::Csrrwi
                    && w[0].csr_addr() == Some(csr::FRM)
                    && w[1].rm() == Some(RoundingMode::Dyn)
            })
            .count();
        assert!(stressors > 0, "no stressor pairs in 128 slots at p=1/4");
    }

    #[test]
    fn stressors_respect_deactivated_categories() {
        // Without the F extension no stressor (or any FP instruction)
        // may appear.
        let mut config = LibraryConfig::all();
        config.deactivate_extension(Extension::F);
        config.deactivate_extension(Extension::D);
        let lib = InstructionLibrary::new(config, 3);
        let mut generator = ProgramGenerator::with_config(
            lib,
            3,
            GeneratorConfig {
                tournament: 4,
                rm_stress: 255,
            },
        );
        let program = generator.generate(256);
        assert!(program
            .iter()
            .all(|i| !matches!(i.opcode().extension(), Extension::F | Extension::D)));
    }
}
