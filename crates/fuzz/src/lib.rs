//! Differential fuzzing core for the TurboFuzz reproduction.
//!
//! This crate is the third layer of the workspace: it closes the paper's
//! loop by sampling prime-instruction programs from the configurable
//! repository ([`tf_riscv::InstructionLibrary`]), executing them on a
//! device under test behind the [`tf_arch::Dut`] boundary, and differencing
//! every step against the golden [`tf_arch::Hart`] reference model.
//!
//! * [`ProgramGenerator`] — dataflow-aware generation: per-slot candidate
//!   tournaments bias operand choice toward reusing recently defined
//!   registers, rounding-mode stressors target the paper's B2 scenario, and
//!   every program ends in `ebreak`.
//! * [`CoverageMap`] — behavioural coverage keyed on execution-trace
//!   digests ([`tf_arch::ExecutionTrace::digest`]).
//! * [`Corpus`] — seed programs that earned new coverage, with
//!   deterministic mutation ([`Corpus::mutate_into`]) and reproducer
//!   shrinking ([`minimize`]). Each seed carries a [`SeedCalibration`]
//!   record (cost, coverage yield, fecundity) that a [`PowerSchedule`]
//!   turns into energy-weighted selection — uniform, AFL-fast-flavoured
//!   or explore — without giving up bit-determinism.
//! * [`DiffEngine`] — windowed lockstep reference-vs-DUT execution
//!   (configured by [`DiffConfig`]): digests are compared every
//!   [`DiffConfig::window`] steps via the batched [`tf_arch::Dut::run`],
//!   and a mismatching window is replayed step-at-a-time so the reported
//!   [`Divergence`] — down to the first diverging
//!   [`tf_arch::TraceEntry`] — is bit-identical to an exact run.
//! * [`CampaignDriver`] — the single entry point for running campaigns:
//!   a builder (`with_jobs`, `with_corpus`, `with_resume`,
//!   `with_event_sink`, …) whose [`CampaignDriver::run`] spins up a
//!   coordinator that owns the [`Corpus`], [`CoverageMap`] and findings
//!   while worker threads pull seed batches over channels. Seeds one
//!   worker discovers are admitted centrally *while the campaign runs*
//!   and broadcast to every other worker, reshaping their power-schedule
//!   energies mid-flight — yet admission is ordered by worker id, not
//!   channel arrival, so a `--jobs N` campaign is deterministic for a
//!   fixed `N` and `--jobs 1` is bit-identical to the single-threaded
//!   [`Campaign`]. Progress streams through the [`EventSink`] trait as
//!   [`CampaignEvent`]s, and the merged result is a [`DriveOutcome`]
//!   with aggregate steps/sec.
//! * [`persist`] — the versioned on-disk corpus format: seed entries plus
//!   an optional [`CampaignCheckpoint`](persist::CampaignCheckpoint)
//!   (which since format v5 carries per-worker rng streams, so `--resume`
//!   composes with `--jobs N`), with a header that pins the format
//!   version and the
//!   [`digest stability fingerprint`](tf_arch::digest::STABILITY_FINGERPRINT)
//!   so stale corpora are rejected, per-record checksums so corrupt
//!   entries are skipped, and atomic writes. [`Corpus::save`],
//!   [`Corpus::load`] and the driver's `with_corpus`/`with_resume` are
//!   the high-level doors; together they make campaigns resumable
//!   (`tf-cli fuzz --corpus C --resume` is bit-identical to an
//!   uninterrupted run) and corpora shareable between runs.
//! * [`proto`] / [`remote`] / [`mod@serve`] — the out-of-process DUT
//!   boundary: a versioned, length-prefixed wire protocol over
//!   stdin/stdout, the fault-tolerant [`DutSupervisor`] client
//!   (per-batch deadline, bounded respawn with exponential backoff,
//!   crash/hang/desync surfaced as campaign [`Finding`]s) and the
//!   server loop behind `tf-cli serve`, whose deterministic chaos
//!   injection makes the whole failure path hermetically testable.
//!
//! # Example
//!
//! A thousand-instruction campaign against a device with the paper's B2
//! bug (reserved dynamic rounding modes are accepted instead of trapping)
//! flags the divergence; the same campaign against the golden model is
//! clean:
//!
//! ```
//! use tf_arch::{BugScenario, Hart, MutantHart};
//! use tf_fuzz::{CampaignConfig, CampaignDriver};
//!
//! let config = CampaignConfig {
//!     instruction_budget: 1_000,
//!     mem_size: 1 << 16,
//!     ..CampaignConfig::default()
//! };
//! let outcome = CampaignDriver::new(config.clone())
//!     .run(|_spec| Ok(MutantHart::new(1 << 16, BugScenario::B2ReservedRounding)))
//!     .unwrap();
//! assert!(!outcome.report.is_clean());
//!
//! let outcome = CampaignDriver::new(config)
//!     .run(|_spec| Ok(Hart::new(1 << 16)))
//!     .unwrap();
//! assert!(outcome.report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod coordinator;
mod corpus;
mod coverage;
mod diff;
mod generator;
pub mod persist;
pub mod proto;
pub mod remote;
mod rng;
mod schedule;
pub mod serve;

pub use campaign::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignReport, Finding, FindingKind, RestoreError,
};
pub use coordinator::{
    shard_config, worker_seed, CampaignDriver, CampaignEvent, DriveError, DriveOutcome, EventSink,
    SaveSummary, WorkerReport, WorkerSpec, DEFAULT_SYNC_EVERY,
};
pub use corpus::{minimize, Corpus, SeedCalibration, SeedEntry};
pub use coverage::CoverageMap;
pub use diff::{
    ConfigError, DiffConfig, DiffEngine, DiffScratch, DiffVerdict, Divergence, DEFAULT_WINDOW,
};
pub use generator::{GeneratorConfig, ProgramGenerator};
pub use remote::{DutSupervisor, SpawnError, SupervisorConfig};
pub use schedule::{PowerSchedule, MAX_ENERGY};
pub use serve::{serve, ChaosConfig, ServeOutcome};

pub mod prelude {
    //! One-stop import for campaign-facing code.
    //!
    //! Everything a driver needs to configure, run, shard, persist and
    //! report on a differential campaign — including the [`tf_arch`]
    //! types that cross the API surface (the [`Dut`] boundary, the
    //! golden [`Hart`], the [`MutantHart`] validation backends) — so
    //! binaries and integration tests write
    //! `use tf_fuzz::prelude::*;` instead of mirroring the crate
    //! layout:
    //!
    //! ```
    //! use tf_fuzz::prelude::*;
    //!
    //! let config = CampaignConfig::default()
    //!     .with_instruction_budget(1_000)
    //!     .with_mem_size(1 << 16);
    //! let outcome = CampaignDriver::new(config)
    //!     .run(|_spec| Ok(MutantHart::new(1 << 16, BugScenario::B2ReservedRounding)))
    //!     .unwrap();
    //! assert!(!outcome.report.is_clean());
    //! ```

    pub use crate::persist::{self, LoadReport, LoadedFile, PersistError};
    pub use crate::{
        minimize, serve, shard_config, worker_seed, Campaign, CampaignConfig, CampaignDriver,
        CampaignEvent, CampaignOutcome, CampaignReport, ChaosConfig, ConfigError, Corpus,
        CoverageMap, DiffConfig, DiffEngine, DiffScratch, DiffVerdict, Divergence, DriveError,
        DriveOutcome, DutSupervisor, EventSink, Finding, FindingKind, PowerSchedule, RestoreError,
        SaveSummary, SeedCalibration, SeedEntry, ServeOutcome, SpawnError, SupervisorConfig,
        WorkerReport, WorkerSpec, DEFAULT_SYNC_EVERY, DEFAULT_WINDOW,
    };
    pub use tf_arch::{
        fold_sample, BatchOutcome, BugScenario, Dut, DutFailure, DutFailureKind, Hart, MutantHart,
        RunExit,
    };
}
