//! The versioned on-disk corpus format: seeds and campaign checkpoints
//! that outlive the process.
//!
//! A corpus file is a small header followed by a sequence of
//! independently checksummed records. The header carries the format
//! version and the [`STABILITY_FINGERPRINT`] of the digest scheme, so a
//! reader whose hasher drifted — or a file written by a future
//! incompatible format — is *rejected* rather than silently mis-replayed
//! as coverage. Each record frame carries a one-byte check over its tag
//! and length plus a full FNV-1a checksum over its payload, giving two
//! distinct failure modes: a corrupt *payload* costs exactly that one
//! record (the frame length is still trustworthy, so the reader skips it
//! and continues), while a corrupt *frame header* means the record
//! boundaries themselves can no longer be trusted — the reader
//! fail-stops there, salvaging every record before it (reported as a
//! truncated stream). A physically truncated tail likewise ends the
//! stream early.
//!
//! ```text
//! header   "TFCORPUS" magic (8) · format version u32 · digest fingerprint u64
//! record   tag u8 · payload length u32 · FNV-1a(tag·length) low byte
//!          · payload · FNV-1a(payload) u64
//! ```
//!
//! Two record tags exist today. [`TAG_SEED`] records are corpus entries
//! — the program words, both coverage keys and the seed's scheduler
//! calibration record — and are what
//! `tf-cli corpus info|merge|minimize` operate on. A [`TAG_CHECKPOINT`]
//! record is a full campaign freeze (counters, every RNG stream
//! position, the coverage map, recorded divergences): together with the
//! seed records it makes `tf-cli fuzz --resume` continue a campaign
//! *bit-identically* to a run that was never interrupted. Unknown tags
//! are skipped, so older readers survive newer writers of the same
//! version.
//!
//! All multi-byte values are little-endian. Writes go through a
//! temporary file in the target directory followed by a rename, so a
//! crash mid-save never destroys the previous corpus.
//!
//! [`STABILITY_FINGERPRINT`]: tf_arch::digest::STABILITY_FINGERPRINT

use std::collections::HashSet;
use std::io::{Read, Write};
use std::path::Path;

use tf_arch::digest::{Fnv, STABILITY_FINGERPRINT};
use tf_arch::{StepOutcome, TraceEntry, Trap};
use tf_riscv::csr::Cause;
use tf_riscv::{Fpr, Gpr, Instruction, Reg};

use crate::campaign::{CampaignReport, Finding, FindingKind};
use crate::corpus::{SeedCalibration, SeedEntry};
use crate::coverage::CoverageMap;
use crate::diff::Divergence;

/// File magic: the first eight bytes of every corpus file.
pub const MAGIC: [u8; 8] = *b"TFCORPUS";

/// Current format version. Bumped on any incompatible layout change;
/// readers reject other versions outright (versioning policy: no silent
/// cross-version migration, corpora are cheap to regrow).
///
/// Version 2 accompanies digest scheme v2
/// ([`tf_arch::digest::STABILITY_FINGERPRINT`]):
/// checkpoints embed state digests, so a digest-scheme change is a
/// layout-compatible but *semantically* incompatible change and gets a
/// version bump of its own on top of the fingerprint check.
///
/// Version 3 adds scheduler state: every seed record carries its
/// [`SeedCalibration`] (cost, coverage yield,
/// mutations spent, children admitted), and checkpoints additionally
/// freeze the yield-signal coverage sets (pc-pair and opcode-class
/// folds) plus the report's first-divergence latency. A v2 corpus is
/// rejected outright — replaying it with zeroed calibration would give
/// power schedules a silently different energy landscape than the run
/// that wrote it.
///
/// Version 4 adds out-of-process DUT robustness state to checkpoints:
/// the crash/hang/desync counters, the recorded
/// [`Finding`]s (cause, offending program, batch
/// ordinal, repeat count) and the supervisor's issued-batch counter
/// ([`CampaignCheckpoint::remote_batches`]), so `--resume` against a
/// respawned external DUT — chaos schedules included — stays
/// bit-identical to an uninterrupted run.
///
/// Version 5 makes checkpoints coordinator-aware: the global block is
/// re-laid-out (all report fields together, then the coverage sets) and
/// gains the autosave ordinal, the completed-batch and completed-round
/// counters, the pending-broadcast tail length, the worker count, and —
/// for multi-worker campaigns — one [`WorkerStream`] section per worker
/// (its four RNG stream positions, its own report, coverage map and
/// corpus entries, and its foreign-admission counter), so `--resume`
/// composes with `--jobs N`. Seed records are unchanged from v3/v4.
pub const FORMAT_VERSION: u32 = 5;

/// Record tag for one corpus seed entry.
pub const TAG_SEED: u8 = 1;

/// Record tag for a campaign checkpoint.
pub const TAG_CHECKPOINT: u8 = 2;

/// Why a corpus file could not be opened at all. Per-entry corruption is
/// *not* an error — corrupt entries are skipped and counted in the
/// [`LoadReport`].
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The file was written under a different digest scheme: its stored
    /// trace digests are incomparable with ours and must not be replayed.
    FingerprintMismatch {
        /// The fingerprint the file carries.
        found: u64,
    },
    /// The header itself is truncated.
    TruncatedHeader,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "corpus i/o error: {e}"),
            PersistError::BadMagic => f.write_str("not a corpus file (bad magic)"),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported corpus format version {found} (this build reads {FORMAT_VERSION})"
            ),
            PersistError::FingerprintMismatch { found } => write!(
                f,
                "corpus digest fingerprint {found:#018x} does not match this build's \
                 {STABILITY_FINGERPRINT:#018x}; its stored digests cannot be replayed"
            ),
            PersistError::TruncatedHeader => f.write_str("corpus header is truncated"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// What loading salvaged beyond the entries themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Seed entries successfully decoded.
    pub loaded: usize,
    /// Records lost to damage: checksum mismatch or undecodable payload.
    pub skipped: usize,
    /// Intact records with a tag this build does not know — the
    /// forward-compat path, *not* corruption (resume treats the two
    /// differently).
    pub unknown: usize,
    /// The record stream ended early: the file is physically truncated,
    /// or a corrupt frame header made the remaining record boundaries
    /// untrustworthy (everything before that point is salvaged).
    pub truncated: bool,
}

/// A fully parsed corpus file.
#[derive(Debug, Clone, Default)]
pub struct LoadedFile {
    /// The surviving seed entries, in file order.
    pub entries: Vec<SeedEntry>,
    /// The campaign checkpoint, when the file carries one (last wins).
    pub checkpoint: Option<CampaignCheckpoint>,
    /// Salvage statistics.
    pub report: LoadReport,
}

/// A frozen campaign: everything `Campaign::run` needs to continue a
/// half-spent budget exactly as if it had never stopped.
///
/// The corpus entries themselves are *not* duplicated here — they live
/// as ordinary [`TAG_SEED`] records in the same file, which is what
/// keeps checkpointed corpora directly usable by `corpus merge` and as
/// plain cross-run seed material.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Fingerprint of the [`CampaignConfig`](crate::CampaignConfig) the
    /// campaign ran under (budget excluded — resuming raises it).
    pub config_fingerprint: u64,
    /// The report counters as of the freeze, divergences included.
    pub report: CampaignReport,
    /// Campaign scheduling stream position.
    pub campaign_rng: u64,
    /// Corpus mutation stream position.
    pub corpus_rng: u64,
    /// Generator decision stream position.
    pub generator_rng: u64,
    /// Instruction-library sampling stream position.
    pub library_rng: u64,
    /// The coverage map as of the freeze.
    pub coverage: CoverageMap,
    /// For campaigns driven through an out-of-process DUT supervisor:
    /// the number of `run` batches issued to the child-process lineage
    /// as of the freeze. A resumed campaign hands this back to the
    /// server as its chaos-counter offset, so deterministic fault
    /// schedules fire at the same cumulative batch whether or not the
    /// campaign was interrupted. `None` for in-process DUTs.
    pub remote_batches: Option<u64>,
    /// How many autosave checkpoints the campaign has written so far
    /// (v5; the coordinator bumps this on every periodic freeze).
    pub autosave_ordinal: u64,
    /// Worker round-slices completed across the whole campaign — the
    /// deterministic currency the autosave cadence is counted in (v5).
    pub batches_completed: u64,
    /// Coordinator rounds completed; a resumed campaign continues its
    /// round-slice targets from here so two resumed runs slice their
    /// budgets identically (v5).
    pub rounds_completed: u64,
    /// Length of the global corpus tail that was admitted in the final
    /// completed round and not yet broadcast to the workers. A resumed
    /// coordinator re-broadcasts exactly these entries first (v5).
    pub pending_broadcast: usize,
    /// Worker count the campaign ran with. `--resume` requires the same
    /// `--jobs` value: per-worker streams only continue at the worker
    /// count they were frozen at (v5).
    pub worker_count: usize,
    /// Per-worker stream sections for multi-worker campaigns; empty for
    /// single-worker campaigns, whose state *is* the global block (v5).
    pub workers: Vec<WorkerStream>,
}

/// The frozen mid-run state of one coordinator worker: everything needed
/// to rebuild its [`Campaign`](crate::Campaign) exactly — RNG stream
/// positions, its own report and coverage, and its private corpus (which
/// can differ from the merged global corpus: two workers may discover
/// different programs with the same coverage key, and only the
/// lower-indexed worker's program enters the global corpus).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStream {
    /// Worker index, `0..worker_count`.
    pub worker: usize,
    /// Campaign scheduling stream position.
    pub campaign_rng: u64,
    /// Corpus mutation stream position.
    pub corpus_rng: u64,
    /// Generator decision stream position.
    pub generator_rng: u64,
    /// Instruction-library sampling stream position.
    pub library_rng: u64,
    /// Seeds this worker admitted that were discovered by *other*
    /// workers — the live cross-worker sharing counter.
    pub foreign_admitted: u64,
    /// The worker's own report counters as of the freeze.
    pub report: CampaignReport,
    /// The worker's own coverage map as of the freeze.
    pub coverage: CoverageMap,
    /// The worker's private corpus entries, in admission order.
    pub entries: Vec<SeedEntry>,
}

// ---- byte-level helpers ------------------------------------------------

/// Append-only little-endian byte sink. Shared with the remote-DUT wire
/// protocol ([`crate::proto`]), which frames its messages with the same
/// byte-level idiom as on-disk records.
#[derive(Default)]
pub(crate) struct Cursor {
    pub(crate) bytes: Vec<u8>,
}

impl Cursor {
    pub(crate) fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian reader over a record payload. Every getter returns
/// `None` past the end, which the record loaders treat as corruption.
pub(crate) struct Slice<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Slice<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Slice { bytes, at: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let chunk = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(chunk)
    }
    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    pub(crate) fn exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }
}

pub(crate) fn checksum(payload: &[u8]) -> u64 {
    let mut fnv = Fnv::new();
    fnv.write_bytes(payload);
    fnv.finish()
}

/// One-byte integrity check over a frame's tag and length. The payload
/// checksum cannot vouch for the length that located the payload in the
/// first place; this byte can, so a corrupt frame header is detected at
/// the frame boundary instead of desynchronizing the record stream.
pub(crate) fn frame_check(tag: u8, len: u32) -> u8 {
    let mut fnv = Fnv::new();
    fnv.write_bytes(&[tag]);
    fnv.write_bytes(&len.to_le_bytes());
    (fnv.finish() & 0xFF) as u8
}

// ---- record payloads ---------------------------------------------------

fn write_seed(entry: &SeedEntry) -> Vec<u8> {
    let mut c = Cursor::default();
    c.u64(entry.trace_digest);
    c.u64(entry.trap_causes);
    c.u32(entry.program.len() as u32);
    for insn in &entry.program {
        c.u32(insn.encode_lossy());
    }
    // v3: the calibration record that power schedules turn into energy.
    c.u64(entry.calibration.cost);
    c.u8(entry.calibration.cov_yield);
    c.u64(entry.calibration.spent);
    c.u64(entry.calibration.children);
    c.bytes
}

fn read_seed(payload: &[u8]) -> Option<SeedEntry> {
    let mut s = Slice::new(payload);
    let trace_digest = s.u64()?;
    let trap_causes = s.u64()?;
    let count = s.u32()? as usize;
    let mut program = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let word = s.u32()?;
        program.push(Instruction::decode(word).ok()?);
    }
    // Every legitimate writer emits `ebreak`-terminated programs (the
    // generator guarantees it, mutation and minimization preserve it, and
    // `Corpus::mutate` relies on a non-empty body-plus-terminator shape).
    // An empty or unterminated program is corruption, not a seed.
    if program.last().map(Instruction::opcode) != Some(tf_riscv::Opcode::Ebreak) {
        return None;
    }
    let calibration = SeedCalibration {
        cost: s.u64()?,
        cov_yield: s.u8()?,
        spent: s.u64()?,
        children: s.u64()?,
    };
    s.exhausted().then_some(SeedEntry {
        program,
        trace_digest,
        trap_causes,
        calibration,
    })
}

pub(crate) fn write_trap(c: &mut Cursor, trap: &Trap) {
    c.u64(trap.cause().code());
    c.u64(trap.tval());
}

/// Rebuild a [`Trap`] from its privileged cause code and `mtval`
/// payload — the inverse of [`Trap::cause`]/[`Trap::tval`].
pub(crate) fn read_trap(code: u64, tval: u64) -> Option<Trap> {
    Some(match code {
        c if c == Cause::InstructionMisaligned.code() => Trap::InstructionMisaligned { addr: tval },
        c if c == Cause::InstructionFault.code() => Trap::InstructionFault { addr: tval },
        c if c == Cause::IllegalInstruction.code() => Trap::IllegalInstruction {
            word: u32::try_from(tval).ok()?,
        },
        c if c == Cause::Breakpoint.code() => Trap::Breakpoint { addr: tval },
        c if c == Cause::LoadMisaligned.code() => Trap::LoadMisaligned { addr: tval },
        c if c == Cause::LoadFault.code() => Trap::LoadFault { addr: tval },
        c if c == Cause::StoreMisaligned.code() => Trap::StoreMisaligned { addr: tval },
        c if c == Cause::StoreFault.code() => Trap::StoreFault { addr: tval },
        c if c == Cause::EnvironmentCall.code() => Trap::EnvironmentCall,
        _ => return None,
    })
}

pub(crate) fn write_trace_entry(c: &mut Cursor, entry: Option<&TraceEntry>) {
    let Some(entry) = entry else {
        c.u8(0);
        return;
    };
    c.u8(1);
    c.u64(entry.pc);
    match entry.word {
        None => c.u8(0),
        Some(word) => {
            c.u8(1);
            c.u32(word);
        }
    }
    match &entry.outcome {
        StepOutcome::Retired(insn) => {
            c.u8(0);
            c.u32(insn.encode_lossy());
        }
        StepOutcome::Trapped(trap) => {
            c.u8(1);
            write_trap(c, trap);
        }
    }
    match entry.def {
        None => c.u8(0),
        Some((reg, value)) => {
            c.u8(1);
            c.u8(u8::from(reg.is_fpr()));
            c.u8(reg.index());
            c.u64(value);
        }
    }
}

pub(crate) fn read_trace_entry(s: &mut Slice) -> Option<Option<TraceEntry>> {
    if s.u8()? == 0 {
        return Some(None);
    }
    let pc = s.u64()?;
    let word = if s.u8()? == 0 { None } else { Some(s.u32()?) };
    let outcome = if s.u8()? == 0 {
        StepOutcome::Retired(Instruction::decode(s.u32()?).ok()?)
    } else {
        let code = s.u64()?;
        let tval = s.u64()?;
        StepOutcome::Trapped(read_trap(code, tval)?)
    };
    let def = if s.u8()? == 0 {
        None
    } else {
        let is_fpr = s.u8()? != 0;
        let index = s.u8()?;
        let value = s.u64()?;
        let reg = if is_fpr {
            Reg::F(Fpr::wrapping(index))
        } else {
            Reg::X(Gpr::wrapping(index))
        };
        Some((reg, value))
    };
    Some(Some(TraceEntry {
        pc,
        word,
        outcome,
        def,
    }))
}

/// Serialize a full [`CampaignReport`] — counters, detection latency,
/// divergences, robustness counters and findings. Shared between the
/// global checkpoint block and every per-worker stream section. The
/// coverage-derived `unique_traces`/`unique_trap_sets` fields are *not*
/// written; readers rederive them from the coverage map stored next to
/// the report.
fn write_report(c: &mut Cursor, r: &CampaignReport) {
    c.str(&r.dut);
    for counter in [
        r.programs,
        r.instructions_generated,
        r.steps_executed,
        r.breakpoint_exits,
        r.ecall_exits,
        r.out_of_gas_exits,
        r.divergent_runs,
        r.corpus_size as u64,
    ] {
        c.u64(counter);
    }
    // `u64::MAX` is the no-divergence-yet sentinel (a real campaign
    // cannot generate that many instructions).
    c.u64(r.first_divergence_at.unwrap_or(u64::MAX));
    c.u32(r.divergences.len() as u32);
    for d in &r.divergences {
        c.u64(d.step);
        write_trace_entry(c, d.reference.as_ref());
        write_trace_entry(c, d.dut.as_ref());
        c.u64(d.reference_digest);
        c.u64(d.dut_digest);
    }
    c.u64(r.dut_crashes);
    c.u64(r.dut_hangs);
    c.u64(r.dut_desyncs);
    c.u32(r.findings.len() as u32);
    for finding in &r.findings {
        c.u8(match finding.kind {
            FindingKind::DutCrash => 0,
            FindingKind::DutHang => 1,
            FindingKind::DutDesync => 2,
        });
        c.str(&finding.cause);
        c.u64(finding.at_batch);
        c.u64(finding.repeats);
        c.u32(finding.program.len() as u32);
        for insn in &finding.program {
            c.u32(insn.encode_lossy());
        }
    }
}

/// Inverse of [`write_report`]. The coverage-derived unique counters are
/// left at zero; the caller sets them from the coverage map read
/// alongside.
fn read_report(s: &mut Slice) -> Option<CampaignReport> {
    let mut report = CampaignReport {
        dut: s.str()?,
        ..CampaignReport::default()
    };
    report.programs = s.u64()?;
    report.instructions_generated = s.u64()?;
    report.steps_executed = s.u64()?;
    report.breakpoint_exits = s.u64()?;
    report.ecall_exits = s.u64()?;
    report.out_of_gas_exits = s.u64()?;
    report.divergent_runs = s.u64()?;
    report.corpus_size = usize::try_from(s.u64()?).ok()?;
    report.first_divergence_at = match s.u64()? {
        u64::MAX => None,
        at => Some(at),
    };
    let divergences = s.u32()? as usize;
    for _ in 0..divergences.min(1 << 10) {
        let step = s.u64()?;
        let reference = read_trace_entry(s)?;
        let dut = read_trace_entry(s)?;
        let reference_digest = s.u64()?;
        let dut_digest = s.u64()?;
        report.divergences.push(Divergence {
            step,
            reference,
            dut,
            reference_digest,
            dut_digest,
        });
    }
    report.dut_crashes = s.u64()?;
    report.dut_hangs = s.u64()?;
    report.dut_desyncs = s.u64()?;
    let findings = s.u32()? as usize;
    for _ in 0..findings.min(1 << 10) {
        let kind = match s.u8()? {
            0 => FindingKind::DutCrash,
            1 => FindingKind::DutHang,
            2 => FindingKind::DutDesync,
            _ => return None,
        };
        let cause = s.str()?;
        let at_batch = s.u64()?;
        let repeats = s.u64()?;
        let count = s.u32()? as usize;
        let mut program = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            program.push(Instruction::decode(s.u32()?).ok()?);
        }
        report.findings.push(Finding {
            kind,
            cause,
            program,
            at_batch,
            repeats,
        });
    }
    Some(report)
}

/// Serialize a [`CoverageMap`]: all four key families plus the
/// observation counter. Hash-set iteration order is nondeterministic;
/// each family is sorted so identical campaigns write byte-identical
/// checkpoints.
fn write_coverage(c: &mut Cursor, coverage: &CoverageMap) {
    let digests = coverage.digests_sorted();
    c.u32(digests.len() as u32);
    digests.into_iter().for_each(|d| c.u64(d));
    let trap_sets = coverage.trap_sets_sorted();
    c.u32(trap_sets.len() as u32);
    trap_sets.into_iter().for_each(|t| c.u64(t));
    let pc_pairs = coverage.pc_pairs_sorted();
    c.u32(pc_pairs.len() as u32);
    pc_pairs.into_iter().for_each(|p| c.u64(p));
    let op_classes = coverage.op_classes_sorted();
    c.u32(op_classes.len() as u32);
    op_classes.into_iter().for_each(|o| c.u64(o));
    c.u64(coverage.observations());
}

/// Inverse of [`write_coverage`].
fn read_coverage(s: &mut Slice) -> Option<CoverageMap> {
    let mut coverage = CoverageMap::new();
    let digests = s.u32()? as usize;
    for _ in 0..digests {
        coverage.admit(s.u64()?);
    }
    let trap_sets = s.u32()? as usize;
    for _ in 0..trap_sets {
        coverage.admit_trap_set(s.u64()?);
    }
    let pc_pairs = s.u32()? as usize;
    for _ in 0..pc_pairs {
        coverage.admit_pc_pairs(s.u64()?);
    }
    let op_classes = s.u32()? as usize;
    for _ in 0..op_classes {
        coverage.admit_op_classes(s.u64()?);
    }
    coverage.set_observations(s.u64()?);
    Some(coverage)
}

fn write_worker_stream(c: &mut Cursor, ws: &WorkerStream) {
    c.u32(ws.worker as u32);
    c.u64(ws.campaign_rng);
    c.u64(ws.corpus_rng);
    c.u64(ws.generator_rng);
    c.u64(ws.library_rng);
    c.u64(ws.foreign_admitted);
    write_report(c, &ws.report);
    write_coverage(c, &ws.coverage);
    // Entries are embedded length-prefixed so the seed-record codec is
    // reused verbatim (it validates against its exact payload length).
    c.u32(ws.entries.len() as u32);
    for entry in &ws.entries {
        let payload = write_seed(entry);
        c.u32(payload.len() as u32);
        c.bytes.extend_from_slice(&payload);
    }
}

fn read_worker_stream(s: &mut Slice) -> Option<WorkerStream> {
    let worker = s.u32()? as usize;
    let campaign_rng = s.u64()?;
    let corpus_rng = s.u64()?;
    let generator_rng = s.u64()?;
    let library_rng = s.u64()?;
    let foreign_admitted = s.u64()?;
    let mut report = read_report(s)?;
    let coverage = read_coverage(s)?;
    report.unique_traces = coverage.unique();
    report.unique_trap_sets = coverage.unique_trap_sets();
    let count = s.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let len = s.u32()? as usize;
        let payload = s.take(len)?;
        entries.push(read_seed(payload)?);
    }
    Some(WorkerStream {
        worker,
        campaign_rng,
        corpus_rng,
        generator_rng,
        library_rng,
        foreign_admitted,
        report,
        coverage,
        entries,
    })
}

fn write_checkpoint(cp: &CampaignCheckpoint) -> Vec<u8> {
    let mut c = Cursor::default();
    c.u64(cp.config_fingerprint);
    c.u64(cp.campaign_rng);
    c.u64(cp.corpus_rng);
    c.u64(cp.generator_rng);
    c.u64(cp.library_rng);
    write_report(&mut c, &cp.report);
    write_coverage(&mut c, &cp.coverage);
    // `u64::MAX` is the in-process "no supervisor" sentinel.
    c.u64(cp.remote_batches.unwrap_or(u64::MAX));
    // v5 tail: coordinator state.
    c.u64(cp.autosave_ordinal);
    c.u64(cp.batches_completed);
    c.u64(cp.rounds_completed);
    c.u64(cp.pending_broadcast as u64);
    c.u32(cp.worker_count as u32);
    c.u32(cp.workers.len() as u32);
    for ws in &cp.workers {
        write_worker_stream(&mut c, ws);
    }
    c.bytes
}

fn read_checkpoint(payload: &[u8]) -> Option<CampaignCheckpoint> {
    let mut s = Slice::new(payload);
    let config_fingerprint = s.u64()?;
    let campaign_rng = s.u64()?;
    let corpus_rng = s.u64()?;
    let generator_rng = s.u64()?;
    let library_rng = s.u64()?;
    let mut report = read_report(&mut s)?;
    let coverage = read_coverage(&mut s)?;
    report.unique_traces = coverage.unique();
    report.unique_trap_sets = coverage.unique_trap_sets();
    let remote_batches = match s.u64()? {
        u64::MAX => None,
        issued => Some(issued),
    };
    let autosave_ordinal = s.u64()?;
    let batches_completed = s.u64()?;
    let rounds_completed = s.u64()?;
    let pending_broadcast = usize::try_from(s.u64()?).ok()?;
    let worker_count = s.u32()? as usize;
    let streams = s.u32()? as usize;
    let mut workers = Vec::with_capacity(streams.min(1 << 10));
    for _ in 0..streams.min(1 << 10) {
        workers.push(read_worker_stream(&mut s)?);
    }

    s.exhausted().then_some(CampaignCheckpoint {
        config_fingerprint,
        report,
        campaign_rng,
        corpus_rng,
        generator_rng,
        library_rng,
        coverage,
        remote_batches,
        autosave_ordinal,
        batches_completed,
        rounds_completed,
        pending_broadcast,
        worker_count,
        workers,
    })
}

// ---- file-level save / load -------------------------------------------

fn write_record(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let len = payload.len() as u32;
    out.push(tag);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(frame_check(tag, len));
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_le_bytes());
}

fn file_bytes(entries: &[SeedEntry], checkpoint: Option<&CampaignCheckpoint>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&STABILITY_FINGERPRINT.to_le_bytes());
    for entry in entries {
        write_record(&mut out, TAG_SEED, &write_seed(entry));
    }
    if let Some(cp) = checkpoint {
        write_record(&mut out, TAG_CHECKPOINT, &write_checkpoint(cp));
    }
    out
}

/// Atomically write `bytes` to `path`: a uniquely named temp file in the
/// same directory, flushed, then renamed over the target.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Save seed entries (no checkpoint) to `path`, atomically.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save_entries(path: &Path, entries: &[SeedEntry]) -> std::io::Result<()> {
    atomic_write(path, &file_bytes(entries, None))
}

/// Save seed entries plus a campaign checkpoint to `path`, atomically.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save_campaign(
    path: &Path,
    entries: &[SeedEntry],
    checkpoint: &CampaignCheckpoint,
) -> std::io::Result<()> {
    atomic_write(path, &file_bytes(entries, Some(checkpoint)))
}

/// Parse corpus bytes: validate the header, then salvage every record
/// that survives its checksum and decodes.
///
/// # Errors
///
/// Returns a [`PersistError`] when the header is missing, has the wrong
/// magic or version, or was written under a different digest scheme.
pub fn load_bytes(bytes: &[u8]) -> Result<LoadedFile, PersistError> {
    let mut s = Slice::new(bytes);
    let magic = s.take(8).ok_or(PersistError::TruncatedHeader)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = s.u32().ok_or(PersistError::TruncatedHeader)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let fingerprint = s.u64().ok_or(PersistError::TruncatedHeader)?;
    if fingerprint != STABILITY_FINGERPRINT {
        return Err(PersistError::FingerprintMismatch { found: fingerprint });
    }

    let mut loaded = LoadedFile::default();
    while !s.exhausted() {
        let Some((tag, payload)) = read_frame(&mut s) else {
            loaded.report.truncated = true;
            break;
        };
        let Some(payload) = payload else {
            // Intact frame, bad checksum: one record lost.
            loaded.report.skipped += 1;
            continue;
        };
        match tag {
            TAG_SEED => match read_seed(payload) {
                Some(entry) => {
                    loaded.entries.push(entry);
                    loaded.report.loaded += 1;
                }
                None => loaded.report.skipped += 1,
            },
            TAG_CHECKPOINT => match read_checkpoint(payload) {
                Some(cp) => loaded.checkpoint = Some(cp),
                None => loaded.report.skipped += 1,
            },
            _ => loaded.report.unknown += 1,
        }
    }
    Ok(loaded)
}

/// Read one `tag · len · frame-check · payload · checksum` frame. Outer
/// `None` means the record boundaries can no longer be trusted — the
/// stream ended mid-frame or the frame header itself is corrupt — so the
/// caller must fail-stop (everything before this frame is already
/// salvaged). Inner `None` means the frame is sound but its payload
/// checksum did not match: exactly this record is lost and the caller
/// may continue at the next frame.
fn read_frame<'a>(s: &mut Slice<'a>) -> Option<(u8, Option<&'a [u8]>)> {
    let tag = s.u8()?;
    let len = s.u32()?;
    if s.u8()? != frame_check(tag, len) {
        return None;
    }
    let payload = s.take(len as usize)?;
    let stored = s.u64()?;
    Some((tag, (checksum(payload) == stored).then_some(payload)))
}

/// Load and parse a corpus file from disk.
///
/// # Errors
///
/// Returns a [`PersistError`] for I/O failures and header mismatches.
pub fn load_file(path: &Path) -> Result<LoadedFile, PersistError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    load_bytes(&bytes)
}

/// Keep the minimal prefix-greedy subset of `entries` that preserves the
/// union of both coverage keys: an entry survives iff it contributes a
/// trace digest or a trap-cause set no earlier survivor already covers.
/// This is the classic corpus-minimization (`cmin`) pass behind
/// `tf-cli corpus minimize`.
#[must_use]
pub fn minimize_entries(entries: &[SeedEntry]) -> Vec<SeedEntry> {
    let mut digests = HashSet::new();
    let mut trap_sets = HashSet::new();
    let mut kept = Vec::new();
    for entry in entries {
        let new_digest = digests.insert(entry.trace_digest);
        let new_traps = trap_sets.insert(entry.trap_causes);
        if new_digest || new_traps {
            kept.push(entry.clone());
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use tf_riscv::Opcode;

    fn entry(words: &[Instruction], digest: u64, traps: u64) -> SeedEntry {
        SeedEntry {
            program: words.to_vec(),
            trace_digest: digest,
            trap_causes: traps,
            calibration: SeedCalibration::default(),
        }
    }

    fn ebreak() -> Instruction {
        Instruction::system(Opcode::Ebreak)
    }

    #[test]
    fn bytes_round_trip() {
        let entries = vec![
            entry(&[Instruction::nop(), ebreak()], 0xAAAA, 0b1000),
            entry(&[ebreak()], 0xBBBB, 0),
        ];
        let bytes = file_bytes(&entries, None);
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.entries, entries);
        assert_eq!(loaded.report.loaded, 2);
        assert_eq!(loaded.report.skipped, 0);
        assert!(!loaded.report.truncated);
        assert!(loaded.checkpoint.is_none());
    }

    #[test]
    fn calibration_round_trips_through_seed_records() {
        let mut seeded = entry(&[Instruction::nop(), ebreak()], 0xC0DE, 0b10);
        seeded.calibration = SeedCalibration {
            cost: 12_345,
            cov_yield: 3,
            spent: 77,
            children: 9,
        };
        let plain = entry(&[ebreak()], 0xF00D, 0);
        let bytes = file_bytes(&[seeded.clone(), plain.clone()], None);
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.entries, vec![seeded, plain]);
        assert_eq!(loaded.entries[0].calibration.cost, 12_345);
        assert_eq!(loaded.entries[1].calibration, SeedCalibration::default());
    }

    #[test]
    fn a_version_2_corpus_is_rejected_with_a_clear_error() {
        let mut v2 = file_bytes(&[entry(&[ebreak()], 1, 0)], None);
        v2[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = load_bytes(&v2).unwrap_err();
        assert!(matches!(err, PersistError::UnsupportedVersion { found: 2 }));
        let message = err.to_string();
        assert!(
            message.contains("version 2") && message.contains("reads 5"),
            "{message}"
        );
    }

    #[test]
    fn header_mismatches_reject_the_file() {
        let good = file_bytes(&[], None);

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            load_bytes(&bad_magic),
            Err(PersistError::BadMagic)
        ));

        let mut bad_version = good.clone();
        bad_version[8] = 0xFE;
        assert!(matches!(
            load_bytes(&bad_version),
            Err(PersistError::UnsupportedVersion { found: 0xFE })
        ));

        let mut bad_fingerprint = good.clone();
        bad_fingerprint[12] ^= 0x01;
        assert!(matches!(
            load_bytes(&bad_fingerprint),
            Err(PersistError::FingerprintMismatch { .. })
        ));

        assert!(matches!(
            load_bytes(&good[..10]),
            Err(PersistError::TruncatedHeader)
        ));
    }

    #[test]
    fn corrupt_entry_is_skipped_not_fatal() {
        let entries = vec![
            entry(&[Instruction::nop(), ebreak()], 1, 0),
            entry(&[ebreak()], 2, 0),
            entry(&[Instruction::nop(), ebreak()], 3, 0),
        ];
        let mut bytes = file_bytes(&entries, None);
        // Flip one byte inside the second record's payload (header is 20
        // bytes; record 1 occupies 1 + 4 + 1 + 53 + 8 = 67 bytes, and the
        // second record's payload starts after its own 6-byte frame
        // header).
        let second_payload_start = 20 + 67 + 6;
        bytes[second_payload_start] ^= 0xFF;
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.report.loaded, 2);
        assert_eq!(loaded.report.skipped, 1);
        assert!(!loaded.report.truncated, "payload damage is local");
        assert_eq!(loaded.entries[0].trace_digest, 1);
        assert_eq!(loaded.entries[1].trace_digest, 3);
    }

    #[test]
    fn corrupt_frame_header_fail_stops_with_the_prefix_salvaged() {
        let entries = vec![
            entry(&[Instruction::nop(), ebreak()], 1, 0),
            entry(&[ebreak()], 2, 0),
            entry(&[Instruction::nop(), ebreak()], 3, 0),
        ];
        let mut bytes = file_bytes(&entries, None);
        // Flip a byte of the second record's *length* field (bytes the
        // payload checksum cannot cover): the frame check catches it and
        // parsing stops instead of consuming the tail as garbage.
        let second_len_field = 20 + 67 + 1;
        bytes[second_len_field] ^= 0xFF;
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.report.loaded, 1);
        assert_eq!(loaded.report.skipped, 0, "no garbage frames consumed");
        assert!(loaded.report.truncated, "header damage is a fail-stop");
        assert_eq!(loaded.entries[0].trace_digest, 1);
    }

    #[test]
    fn truncated_tail_ends_the_stream_cleanly() {
        let entries = vec![
            entry(&[ebreak()], 1, 0),
            entry(&[Instruction::nop(), ebreak()], 2, 0),
        ];
        let bytes = file_bytes(&entries, None);
        let loaded = load_bytes(&bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(loaded.report.loaded, 1);
        assert!(loaded.report.truncated);
    }

    #[test]
    fn empty_or_unterminated_seed_records_are_corrupt() {
        let mut bytes = file_bytes(&[], None);
        // A checksum-valid record with zero program words.
        let mut c = Cursor::default();
        c.u64(1);
        c.u64(0);
        c.u32(0);
        write_record(&mut bytes, TAG_SEED, &c.bytes);
        // A checksum-valid record whose program does not end in ebreak.
        let mut c = Cursor::default();
        c.u64(2);
        c.u64(0);
        c.u32(1);
        c.u32(Instruction::nop().encode_lossy());
        write_record(&mut bytes, TAG_SEED, &c.bytes);
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.report.loaded, 0);
        assert_eq!(loaded.report.skipped, 2);
        assert!(loaded.entries.is_empty());
    }

    #[test]
    fn unknown_tags_are_skipped_for_forward_compat() {
        let mut bytes = file_bytes(&[entry(&[ebreak()], 7, 0)], None);
        write_record(&mut bytes, 0x7F, b"future record kind");
        let loaded = load_bytes(&bytes).unwrap();
        assert_eq!(loaded.report.loaded, 1);
        assert_eq!(loaded.report.unknown, 1);
        assert_eq!(
            loaded.report.skipped, 0,
            "an extension record is not corruption"
        );
    }

    #[test]
    fn trap_serialisation_round_trips_every_variant() {
        for trap in [
            Trap::InstructionMisaligned { addr: 2 },
            Trap::InstructionFault { addr: 0x8000 },
            Trap::IllegalInstruction { word: 0xDEAD_BEEF },
            Trap::Breakpoint { addr: 8 },
            Trap::LoadMisaligned { addr: 3 },
            Trap::LoadFault { addr: 0x9000 },
            Trap::StoreMisaligned { addr: 5 },
            Trap::StoreFault { addr: 0xA000 },
            Trap::EnvironmentCall,
        ] {
            let rebuilt = read_trap(trap.cause().code(), trap.tval()).unwrap();
            assert_eq!(rebuilt, trap);
        }
        assert_eq!(read_trap(999, 0), None);
    }

    #[test]
    fn minimize_keeps_only_coverage_contributors() {
        let entries = vec![
            entry(&[ebreak()], 1, 0b01),
            entry(&[ebreak()], 2, 0b01), // new digest
            entry(&[ebreak()], 1, 0b10), // new trap set
            entry(&[ebreak()], 1, 0b01), // contributes nothing
            entry(&[ebreak()], 2, 0b10), // contributes nothing
        ];
        let kept = minimize_entries(&entries);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].coverage_key(), (1, 0b01));
        assert_eq!(kept[1].coverage_key(), (2, 0b01));
        assert_eq!(kept[2].coverage_key(), (1, 0b10));
    }

    #[test]
    fn atomic_save_and_load_via_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("tf-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tfc");
        let entries = vec![entry(&[Instruction::nop(), ebreak()], 0x1234, 0b1000)];
        save_entries(&path, &entries).unwrap();
        // Overwriting goes through the same rename path.
        save_entries(&path, &entries).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.entries, entries);
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name() != "corpus.tfc")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
