//! The remote-DUT wire protocol: versioned, length-prefixed binary
//! frames over a byte stream (the stdin/stdout pipes of a `tf-cli
//! serve` child, or any other process speaking the same format).
//!
//! The protocol is deliberately batch-oriented: the campaign hot loop
//! exchanges exactly one `Run` frame (and one `BatchOutcome` reply) per
//! generated program, never a step-at-a-time RPC — per-step requests
//! (`Step`, `Digest`) exist only for exact divergence replay, which the
//! windowed engine enters rarely. Framing reuses the corpus format's
//! byte-level idiom (see [`crate::persist`]): every frame is
//!
//! ```text
//! tag u8 · payload length u32 · FNV-1a(tag·length) low byte
//!        · payload · FNV-1a(payload) u64
//! ```
//!
//! little-endian throughout. The one-byte frame check catches a corrupt
//! header before the length desynchronizes the stream; the payload
//! checksum catches corrupt bodies. Either way the connection is
//! untrustworthy afterwards and the supervisor tears it down as a
//! *desync* finding.
//!
//! The session starts with a handshake: the server speaks first with
//! [`Response::Hello`] (protocol version, digest-scheme fingerprint,
//! DUT name), the client validates it against its own build and answers
//! with [`Request::Hello`] carrying the same version/fingerprint plus
//! its cumulative issued-batch offset — the chaos-schedule clock a
//! resumed or respawned child continues from. Version or fingerprint
//! mismatch on either side kills the session before any execution
//! state flows.

use std::io::{ErrorKind, Read, Write};

use tf_arch::digest::STABILITY_FINGERPRINT;
use tf_arch::{BatchOutcome, RunExit, StepOutcome, TraceEntry, Trap};
use tf_riscv::Instruction;

use crate::persist::{
    checksum, frame_check, read_trace_entry, read_trap, write_trace_entry, write_trap, Cursor,
    Slice,
};

/// Wire-protocol version. Bumped on any frame-layout change; both sides
/// reject a peer speaking another version during the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload. Honest peers stay far below it
/// (programs are tens of instructions, traces a few hundred entries);
/// anything larger is treated as a garbled stream rather than an
/// allocation request.
const MAX_PAYLOAD: u32 = 1 << 22;

// Client → server frame tags.
const TAG_REQ_HELLO: u8 = 0x01;
const TAG_REQ_RESET: u8 = 0x02;
const TAG_REQ_LOAD: u8 = 0x03;
const TAG_REQ_RUN: u8 = 0x04;
const TAG_REQ_STEP: u8 = 0x05;
const TAG_REQ_DIGEST: u8 = 0x06;
const TAG_REQ_TRACE_ON: u8 = 0x07;
const TAG_REQ_TRACE_TAKE: u8 = 0x08;
const TAG_REQ_SHUTDOWN: u8 = 0x09;

// Server → client frame tags (disjoint from request tags so a frame
// echoed into the wrong direction is caught as garbage, not misparsed).
const TAG_RSP_HELLO: u8 = 0x41;
const TAG_RSP_OK: u8 = 0x42;
const TAG_RSP_LOADED: u8 = 0x43;
const TAG_RSP_BATCH: u8 = 0x44;
const TAG_RSP_STEPPED: u8 = 0x45;
const TAG_RSP_DIGESTED: u8 = 0x46;
const TAG_RSP_TRACE: u8 = 0x47;

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake reply: the client's protocol version and digest-scheme
    /// fingerprint (both must match the server's), plus the cumulative
    /// count of `Run` frames already issued to this child's lineage —
    /// the offset deterministic chaos schedules resume counting from.
    Hello {
        /// [`PROTOCOL_VERSION`] of the client build.
        version: u32,
        /// [`STABILITY_FINGERPRINT`] of the client build.
        fingerprint: u64,
        /// `Run` frames issued before this connection was (re)opened.
        batch_offset: u64,
    },
    /// [`tf_arch::Dut::reset`]. Answered with [`Response::Ok`].
    Reset,
    /// [`tf_arch::Dut::load`]: encoded instruction words to place at
    /// `base`. Answered with [`Response::Loaded`].
    Load {
        /// Load address.
        base: u64,
        /// `encode_lossy` words of the program, in order.
        words: Vec<u32>,
    },
    /// [`tf_arch::Dut::run`] — the batch frame the hot loop lives on.
    /// Answered with [`Response::Batch`].
    Run {
        /// Step budget for the batch.
        max_steps: u64,
        /// Interior digest sampling interval (`0` disables).
        digest_every: u64,
    },
    /// [`tf_arch::Dut::step`] (exact-replay path only). Answered with
    /// [`Response::Stepped`].
    Step,
    /// [`tf_arch::Dut::digest`] (exact-replay path only). Answered with
    /// [`Response::Digested`].
    Digest,
    /// [`tf_arch::Dut::enable_tracing`]. Answered with [`Response::Ok`].
    TraceOn,
    /// [`tf_arch::Dut::take_trace`]. Answered with [`Response::Trace`].
    TraceTake,
    /// Orderly goodbye; the server exits cleanly without replying.
    Shutdown,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Server-first handshake: version, fingerprint and the served
    /// DUT's [`tf_arch::Dut::name`] (which the supervisor passes
    /// through, so campaign reports name the real backend).
    Hello {
        /// [`PROTOCOL_VERSION`] of the server build.
        version: u32,
        /// [`STABILITY_FINGERPRINT`] of the server build.
        fingerprint: u64,
        /// Name of the device behind the server.
        name: String,
    },
    /// Acknowledgement for `Reset` / `TraceOn`.
    Ok,
    /// `Load` result: `None` on success, the load [`Trap`] otherwise.
    Loaded(Option<Trap>),
    /// `Run` result.
    Batch(BatchOutcome),
    /// `Step` result.
    Stepped(StepOutcome),
    /// `Digest` result.
    Digested(u64),
    /// `TraceTake` result.
    Trace(Option<Vec<TraceEntry>>),
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly at a frame boundary.
    Eof,
    /// Bytes arrived that are not a well-formed frame of the expected
    /// direction: corrupt header or checksum, truncated mid-frame,
    /// unknown tag or undecodable payload. The stream can no longer be
    /// trusted.
    Garbled(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Eof => f.write_str("peer closed the stream"),
            WireError::Garbled(what) => write!(f, "garbled frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- frame layer -------------------------------------------------------

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[frame_check(tag, payload.len() as u32)])?;
    w.write_all(payload)?;
    w.write_all(&checksum(payload).to_le_bytes())?;
    w.flush()
}

/// Read exactly `buf.len()` bytes; a stream ending mid-read is a
/// garbled frame (the header promised more bytes than arrived).
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        ErrorKind::UnexpectedEof => WireError::Garbled(what),
        _ => WireError::Io(e),
    })
}

/// Read one raw frame. [`WireError::Eof`] only at a clean frame
/// boundary; any partial or inconsistent frame is [`WireError::Garbled`].
fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), WireError> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Err(WireError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let mut head = [0u8; 5];
    read_exact_or(r, &mut head, "truncated frame header")?;
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
    if head[4] != frame_check(tag[0], len) {
        return Err(WireError::Garbled("frame check mismatch"));
    }
    if len > MAX_PAYLOAD {
        return Err(WireError::Garbled("oversized frame"));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "truncated payload")?;
    let mut stored = [0u8; 8];
    read_exact_or(r, &mut stored, "truncated checksum")?;
    if u64::from_le_bytes(stored) != checksum(&payload) {
        return Err(WireError::Garbled("payload checksum mismatch"));
    }
    Ok((tag[0], payload))
}

// ---- request serialization --------------------------------------------

/// Write one request frame (flushes, so the server sees it now).
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_request(w: &mut impl Write, request: &Request) -> std::io::Result<()> {
    let mut c = Cursor::default();
    let tag = match request {
        Request::Hello {
            version,
            fingerprint,
            batch_offset,
        } => {
            c.u32(*version);
            c.u64(*fingerprint);
            c.u64(*batch_offset);
            TAG_REQ_HELLO
        }
        Request::Reset => TAG_REQ_RESET,
        Request::Load { base, words } => {
            c.u64(*base);
            c.u32(words.len() as u32);
            words.iter().for_each(|&word| c.u32(word));
            TAG_REQ_LOAD
        }
        Request::Run {
            max_steps,
            digest_every,
        } => {
            c.u64(*max_steps);
            c.u64(*digest_every);
            TAG_REQ_RUN
        }
        Request::Step => TAG_REQ_STEP,
        Request::Digest => TAG_REQ_DIGEST,
        Request::TraceOn => TAG_REQ_TRACE_ON,
        Request::TraceTake => TAG_REQ_TRACE_TAKE,
        Request::Shutdown => TAG_REQ_SHUTDOWN,
    };
    write_frame(w, tag, &c.bytes)
}

/// Read one request frame (the server's read loop).
///
/// # Errors
///
/// [`WireError::Eof`] when the client hung up cleanly, otherwise I/O or
/// garble classification per [`WireError`].
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    let (tag, payload) = read_frame(r)?;
    let mut s = Slice::new(&payload);
    let garbled = || WireError::Garbled("undecodable request payload");
    let request = match tag {
        TAG_REQ_HELLO => Request::Hello {
            version: s.u32().ok_or_else(garbled)?,
            fingerprint: s.u64().ok_or_else(garbled)?,
            batch_offset: s.u64().ok_or_else(garbled)?,
        },
        TAG_REQ_RESET => Request::Reset,
        TAG_REQ_LOAD => {
            let base = s.u64().ok_or_else(garbled)?;
            let count = s.u32().ok_or_else(garbled)? as usize;
            let mut words = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                words.push(s.u32().ok_or_else(garbled)?);
            }
            Request::Load { base, words }
        }
        TAG_REQ_RUN => Request::Run {
            max_steps: s.u64().ok_or_else(garbled)?,
            digest_every: s.u64().ok_or_else(garbled)?,
        },
        TAG_REQ_STEP => Request::Step,
        TAG_REQ_DIGEST => Request::Digest,
        TAG_REQ_TRACE_ON => Request::TraceOn,
        TAG_REQ_TRACE_TAKE => Request::TraceTake,
        TAG_REQ_SHUTDOWN => Request::Shutdown,
        _ => return Err(WireError::Garbled("unknown request tag")),
    };
    s.exhausted()
        .then_some(request)
        .ok_or(WireError::Garbled("trailing request bytes"))
}

// ---- response serialization -------------------------------------------

fn write_step_outcome(c: &mut Cursor, outcome: &StepOutcome) {
    match outcome {
        StepOutcome::Retired(insn) => {
            c.u8(0);
            c.u32(insn.encode_lossy());
        }
        StepOutcome::Trapped(trap) => {
            c.u8(1);
            write_trap(c, trap);
        }
    }
}

fn read_step_outcome(s: &mut Slice) -> Option<StepOutcome> {
    Some(if s.u8()? == 0 {
        StepOutcome::Retired(Instruction::decode(s.u32()?).ok()?)
    } else {
        let code = s.u64()?;
        let tval = s.u64()?;
        StepOutcome::Trapped(read_trap(code, tval)?)
    })
}

fn write_exit(c: &mut Cursor, exit: &RunExit) {
    match exit {
        RunExit::Breakpoint { steps } => {
            c.u8(0);
            c.u64(*steps);
        }
        RunExit::EnvironmentCall { steps } => {
            c.u8(1);
            c.u64(*steps);
        }
        RunExit::OutOfGas => {
            c.u8(2);
            c.u64(0);
        }
    }
}

fn read_exit(s: &mut Slice) -> Option<RunExit> {
    let kind = s.u8()?;
    let steps = s.u64()?;
    Some(match kind {
        0 => RunExit::Breakpoint { steps },
        1 => RunExit::EnvironmentCall { steps },
        2 => RunExit::OutOfGas,
        _ => return None,
    })
}

/// Write one response frame (flushes, so the client sees it now).
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut c = Cursor::default();
    let tag = match response {
        Response::Hello {
            version,
            fingerprint,
            name,
        } => {
            c.u32(*version);
            c.u64(*fingerprint);
            c.str(name);
            TAG_RSP_HELLO
        }
        Response::Ok => TAG_RSP_OK,
        Response::Loaded(trap) => {
            match trap {
                None => c.u8(0),
                Some(trap) => {
                    c.u8(1);
                    write_trap(&mut c, trap);
                }
            }
            TAG_RSP_LOADED
        }
        Response::Batch(batch) => {
            c.u64(batch.steps);
            write_exit(&mut c, &batch.exit);
            c.u64(batch.trap_causes);
            c.u32(batch.samples.len() as u32);
            batch.samples.iter().for_each(|&sample| c.u64(sample));
            c.u64(batch.pc_pairs);
            c.u64(batch.op_classes);
            TAG_RSP_BATCH
        }
        Response::Stepped(outcome) => {
            write_step_outcome(&mut c, outcome);
            TAG_RSP_STEPPED
        }
        Response::Digested(digest) => {
            c.u64(*digest);
            TAG_RSP_DIGESTED
        }
        Response::Trace(trace) => {
            match trace {
                None => c.u8(0),
                Some(entries) => {
                    c.u8(1);
                    c.u32(entries.len() as u32);
                    for entry in entries {
                        write_trace_entry(&mut c, Some(entry));
                    }
                }
            }
            TAG_RSP_TRACE
        }
    };
    write_frame(w, tag, &c.bytes)
}

/// Read one response frame (the supervisor's reader thread).
///
/// # Errors
///
/// [`WireError::Eof`] when the server hung up cleanly, otherwise I/O or
/// garble classification per [`WireError`].
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    let (tag, payload) = read_frame(r)?;
    let mut s = Slice::new(&payload);
    let garbled = || WireError::Garbled("undecodable response payload");
    let response = match tag {
        TAG_RSP_HELLO => Response::Hello {
            version: s.u32().ok_or_else(garbled)?,
            fingerprint: s.u64().ok_or_else(garbled)?,
            name: s.str().ok_or_else(garbled)?,
        },
        TAG_RSP_OK => Response::Ok,
        TAG_RSP_LOADED => {
            if s.u8().ok_or_else(garbled)? == 0 {
                Response::Loaded(None)
            } else {
                let code = s.u64().ok_or_else(garbled)?;
                let tval = s.u64().ok_or_else(garbled)?;
                Response::Loaded(Some(read_trap(code, tval).ok_or_else(garbled)?))
            }
        }
        TAG_RSP_BATCH => {
            let steps = s.u64().ok_or_else(garbled)?;
            let exit = read_exit(&mut s).ok_or_else(garbled)?;
            let trap_causes = s.u64().ok_or_else(garbled)?;
            let count = s.u32().ok_or_else(garbled)? as usize;
            let mut samples = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                samples.push(s.u64().ok_or_else(garbled)?);
            }
            let pc_pairs = s.u64().ok_or_else(garbled)?;
            let op_classes = s.u64().ok_or_else(garbled)?;
            Response::Batch(BatchOutcome {
                steps,
                exit,
                trap_causes,
                samples,
                pc_pairs,
                op_classes,
            })
        }
        TAG_RSP_STEPPED => Response::Stepped(read_step_outcome(&mut s).ok_or_else(garbled)?),
        TAG_RSP_DIGESTED => Response::Digested(s.u64().ok_or_else(garbled)?),
        TAG_RSP_TRACE => {
            if s.u8().ok_or_else(garbled)? == 0 {
                Response::Trace(None)
            } else {
                let count = s.u32().ok_or_else(garbled)? as usize;
                let mut entries = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    entries.push(read_trace_entry(&mut s).flatten().ok_or_else(garbled)?);
                }
                Response::Trace(Some(entries))
            }
        }
        _ => return Err(WireError::Garbled("unknown response tag")),
    };
    s.exhausted()
        .then_some(response)
        .ok_or(WireError::Garbled("trailing response bytes"))
}

/// Validate a peer's handshake version and digest-scheme fingerprint
/// against this build's. Used symmetrically: the client checks the
/// server's [`Response::Hello`], the server checks the client's
/// [`Request::Hello`].
///
/// # Errors
///
/// A human-readable description of the mismatch.
pub fn check_handshake(version: u32, fingerprint: u64) -> Result<(), String> {
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "peer speaks protocol version {version}, this build speaks {PROTOCOL_VERSION}"
        ));
    }
    if fingerprint != STABILITY_FINGERPRINT {
        return Err(format!(
            "peer digest fingerprint {fingerprint:#018x} does not match this build's \
             {STABILITY_FINGERPRINT:#018x}"
        ));
    }
    Ok(())
}

/// Deliberately emit a frame whose payload checksum is wrong — the
/// chaos-garble injection `tf-cli serve --chaos-garble-after` uses to
/// exercise the supervisor's desync handling deterministically.
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_garbled_frame(w: &mut impl Write) -> std::io::Result<()> {
    let payload = b"chaos";
    w.write_all(&[TAG_RSP_OK])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[frame_check(TAG_RSP_OK, payload.len() as u32)])?;
    w.write_all(payload)?;
    // Off-by-one checksum: the frame header parses, the payload does not.
    w.write_all(&(checksum(payload) ^ 1).to_le_bytes())?;
    w.flush()
}
