//! The fault-tolerant out-of-process DUT client: [`DutSupervisor`].
//!
//! A supervisor owns a child process speaking the [`crate::proto`]
//! frame protocol (typically `tf-cli serve …`) and presents it behind
//! the ordinary [`Dut`] trait, so campaigns difference an external
//! simulator exactly like an in-process hart. The robustness policy is
//! the point:
//!
//! * **Deadline** — every request has a wall-clock budget
//!   ([`SupervisorConfig::deadline`]); a missed deadline is a *hang*,
//!   and the child is killed.
//! * **Crash detection** — child exit, death by signal, or a cleanly
//!   closed stream mid-conversation is a *crash*, classified from the
//!   collected exit status.
//! * **Desync detection** — bytes that are not a well-formed frame (or
//!   a well-formed frame of the wrong kind) mean the stream can no
//!   longer be trusted: a *desync*, and the child is killed.
//! * **Bounded respawn with exponential backoff** — after a failure the
//!   next [`Dut::reset`] respawns a fresh child, waiting
//!   [`backoff_delay`] first; [`SupervisorConfig::max_consecutive_failures`]
//!   failures without an intervening successful response exhaust the
//!   budget and the supervisor goes permanently inert.
//! * **Graceful degradation** — failures never panic and never abort
//!   the campaign mid-verdict. The supervisor parks a
//!   [`DutFailure`] for [`Dut::take_failure`], answers everything with
//!   inert placeholders until the campaign drains it, and the campaign
//!   records the finding and keeps fuzzing on the respawned child.
//!
//! Determinism: the supervisor counts every `Run` frame it issues
//! ([`DutSupervisor::batches_issued`]) and hands the count to each new
//! child in the handshake, so the server's deterministic chaos
//! schedules fire at the same cumulative batch ordinal across respawns
//! *and* across checkpoint/resume.

use std::cell::RefCell;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

use tf_arch::{BatchOutcome, Dut, DutFailure, DutFailureKind, ExecutionTrace, StepOutcome, Trap};
use tf_riscv::Instruction;

use crate::proto::{
    check_handshake, read_response, write_request, Request, Response, WireError, PROTOCOL_VERSION,
};
use tf_arch::digest::STABILITY_FINGERPRINT;

/// Robustness policy knobs for a [`DutSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Wall-clock budget per request (the handshake included). A child
    /// that misses it is a hang and is killed.
    pub deadline: Duration,
    /// Consecutive failures (of any kind, respawn attempts included)
    /// that exhaust the respawn budget. A successful response resets
    /// the count.
    pub max_consecutive_failures: u32,
    /// Backoff before the first respawn attempt; doubles per further
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: Duration::from_secs(5),
            max_consecutive_failures: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// The exponential-backoff schedule: before retrying after the `n`-th
/// consecutive failure (1-based) the supervisor sleeps
/// `backoff_base * 2^(n-1)`, capped at `backoff_cap`.
#[must_use]
pub fn backoff_delay(config: &SupervisorConfig, consecutive_failures: u32) -> Duration {
    let doublings = consecutive_failures.saturating_sub(1).min(16);
    config
        .backoff_base
        .saturating_mul(1 << doublings)
        .min(config.backoff_cap)
}

/// Why [`DutSupervisor::spawn`] could not bring up its first child.
/// (Failures *after* a successful spawn surface as [`DutFailure`]
/// findings instead.)
#[derive(Debug)]
pub enum SpawnError {
    /// The process could not be started at all.
    Io(std::io::Error),
    /// The child started but never completed a valid handshake.
    Handshake(String),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Io(e) => write!(f, "failed to spawn dut command: {e}"),
            SpawnError::Handshake(what) => write!(f, "dut handshake failed: {what}"),
        }
    }
}

impl std::error::Error for SpawnError {}

/// A live protocol connection to one child process.
#[derive(Debug)]
struct Link {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<Result<Response, &'static str>>,
    reader: Option<JoinHandle<()>>,
}

impl Link {
    /// Spawn `argv` and complete the handshake, passing `batch_offset`
    /// as the child's chaos-counter base. On error the child is
    /// reliably torn down.
    fn open(
        argv: &[String],
        deadline: Duration,
        batch_offset: u64,
    ) -> Result<(Link, String), SpawnError> {
        let (program, args) = argv
            .split_first()
            .ok_or_else(|| SpawnError::Handshake("empty dut command".to_string()))?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(SpawnError::Io)?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel();
        // Pipes have no portable timeout, so a dedicated thread parses
        // frames and the supervisor waits on the channel with
        // `recv_timeout`. The thread exits on EOF (child death or
        // teardown closes the pipe) and after the first garble — a
        // desynced stream must not be re-interpreted.
        let reader = std::thread::spawn(move || loop {
            match read_response(&mut stdout) {
                Ok(response) => {
                    if tx.send(Ok(response)).is_err() {
                        return;
                    }
                }
                Err(WireError::Garbled(what)) => {
                    let _ = tx.send(Err(what));
                    return;
                }
                Err(_) => return,
            }
        });
        let mut link = Link {
            child,
            stdin,
            rx,
            reader: Some(reader),
        };
        match link.await_hello(deadline, batch_offset) {
            Ok(name) => Ok((link, name)),
            Err(what) => {
                link.kill();
                Err(SpawnError::Handshake(what))
            }
        }
    }

    fn await_hello(&mut self, deadline: Duration, batch_offset: u64) -> Result<String, String> {
        let name = match self.rx.recv_timeout(deadline) {
            Ok(Ok(Response::Hello {
                version,
                fingerprint,
                name,
            })) => {
                check_handshake(version, fingerprint)?;
                name
            }
            Ok(Ok(_)) => return Err("first frame was not a server hello".to_string()),
            Ok(Err(what)) => return Err(format!("garbled server hello: {what}")),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(format!("no server hello within {}ms", deadline.as_millis()))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(format!(
                    "server closed its stream before the hello ({})",
                    exit_detail(&mut self.child)
                ))
            }
        };
        write_request(
            &mut self.stdin,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                fingerprint: STABILITY_FINGERPRINT,
                batch_offset,
            },
        )
        .map_err(|e| format!("could not send client hello: {e}"))?;
        Ok(name)
    }

    /// Hard teardown: kill, reap, join the reader.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }

    /// Orderly teardown: ask the server to exit, give it a moment, then
    /// make sure.
    fn shutdown(mut self) {
        let _ = write_request(&mut self.stdin, &Request::Shutdown);
        for _ in 0..20 {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => break,
            }
        }
        self.kill();
    }
}

/// Deterministic description of how a child ended. Waits briefly for
/// the exit status to become collectable (the pipe can close a beat
/// before the process is reapable), then kills a child that closed its
/// stream while still alive.
fn exit_detail(child: &mut Child) -> String {
    for _ in 0..25 {
        match child.try_wait() {
            Ok(Some(status)) => return status_detail(status),
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => return format!("unwaitable child: {e}"),
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    "closed its stream while still running".to_string()
}

fn status_detail(status: std::process::ExitStatus) -> String {
    if let Some(code) = status.code() {
        return format!("exited with code {code}");
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(signal) = status.signal() {
            return format!("killed by signal {signal}");
        }
    }
    "terminated abnormally".to_string()
}

/// Mutable supervisor state, behind a `RefCell` because
/// [`Dut::digest`] takes `&self` but a remote digest is still a
/// request/response round trip.
#[derive(Debug)]
struct Inner {
    link: Option<Link>,
    /// `Run` frames issued across the whole child lineage.
    issued: u64,
    /// Successful respawns performed (the initial spawn not counted).
    respawns: u64,
    /// Failures since the last successful response.
    consecutive_failures: u32,
    /// Failure awaiting [`Dut::take_failure`]; while parked, every
    /// operation is inert.
    pending: Option<DutFailure>,
    /// Respawn budget exhausted: permanently inert.
    dead: bool,
}

impl Inner {
    /// Record a failure: tear the link down, park the finding, and
    /// account it against the respawn budget.
    fn fail(&mut self, config: &SupervisorConfig, kind: DutFailureKind, detail: String) {
        if let Some(link) = self.link.take() {
            link.kill();
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= config.max_consecutive_failures {
            self.dead = true;
        }
        if self.pending.is_none() {
            self.pending = Some(DutFailure {
                kind,
                detail,
                can_continue: !self.dead,
            });
        } else if self.dead {
            if let Some(pending) = &mut self.pending {
                pending.can_continue = false;
            }
        }
    }

    /// True when requests must not be attempted.
    fn inert(&self) -> bool {
        self.dead || self.pending.is_some() || self.link.is_none()
    }

    /// One request/response round trip under the deadline. `None` means
    /// the supervisor is (or just became) inert; the caller returns an
    /// inert placeholder.
    fn transact(&mut self, config: &SupervisorConfig, request: &Request) -> Option<Response> {
        if self.inert() {
            return None;
        }
        if matches!(request, Request::Run { .. }) {
            // Counted at issue time — a batch that kills the child still
            // consumed the server-side chaos ordinal, and respawned or
            // resumed children must continue from the frame *after* it.
            self.issued += 1;
        }
        let link = self.link.as_mut().expect("checked by inert()");
        if let Err(e) = write_request(&mut link.stdin, request) {
            let detail = exit_detail(&mut link.child);
            let _ = e; // the exit status is the better diagnostic
            self.fail(config, DutFailureKind::Crash, detail);
            return None;
        }
        match link.rx.recv_timeout(config.deadline) {
            Ok(Ok(response)) => {
                self.consecutive_failures = 0;
                Some(response)
            }
            Ok(Err(what)) => {
                self.fail(
                    config,
                    DutFailureKind::Desync,
                    format!("garbled frame: {what}"),
                );
                None
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.fail(
                    config,
                    DutFailureKind::Hang,
                    format!("no response within {}ms", config.deadline.as_millis()),
                );
                None
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let detail = exit_detail(&mut self.link.as_mut().expect("link present").child);
                self.fail(config, DutFailureKind::Crash, detail);
                None
            }
        }
    }
}

/// An out-of-process [`Dut`] behind the robustness policy described in
/// the [module docs](self).
#[derive(Debug)]
pub struct DutSupervisor {
    argv: Vec<String>,
    config: SupervisorConfig,
    /// The served DUT's name from the handshake, passed through so
    /// campaign reports (and resume identity checks) see the real
    /// backend name. Leaked once per supervisor to satisfy the trait's
    /// `&'static str`.
    name_static: &'static str,
    name: String,
    inner: RefCell<Inner>,
}

impl DutSupervisor {
    /// Spawn `argv` and complete the protocol handshake eagerly, so a
    /// mistyped command or incompatible server fails loudly up front
    /// instead of surfacing as a crash finding. `batch_offset` is the
    /// issued-batch count a resumed campaign carries over from its
    /// checkpoint (`0` for a fresh campaign).
    ///
    /// # Errors
    ///
    /// [`SpawnError`] when the child cannot be started or does not
    /// complete a compatible handshake within the deadline.
    pub fn spawn(
        argv: Vec<String>,
        config: SupervisorConfig,
        batch_offset: u64,
    ) -> Result<Self, SpawnError> {
        let (link, name) = Link::open(&argv, config.deadline, batch_offset)?;
        Ok(DutSupervisor {
            argv,
            config,
            name_static: Box::leak(name.clone().into_boxed_str()),
            name,
            inner: RefCell::new(Inner {
                link: Some(link),
                issued: batch_offset,
                respawns: 0,
                consecutive_failures: 0,
                pending: None,
                dead: false,
            }),
        })
    }

    /// Total `Run` frames issued across all children so far — the value
    /// checkpoints persist so `--resume` keeps chaos schedules aligned.
    #[must_use]
    pub fn batches_issued(&self) -> u64 {
        self.inner.borrow().issued
    }

    /// Successful respawns performed (the initial spawn not counted).
    #[must_use]
    pub fn respawns(&self) -> u64 {
        self.inner.borrow().respawns
    }

    /// True when the respawn budget is exhausted and the supervisor is
    /// permanently inert.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.inner.borrow().dead
    }

    fn transact(&self, request: &Request) -> Option<Response> {
        self.inner.borrow_mut().transact(&self.config, request)
    }

    /// A well-formed frame of the wrong kind arrived: the stream is as
    /// untrustworthy as a garbled one.
    fn protocol_desync(&self, what: &'static str) {
        self.inner.borrow_mut().fail(
            &self.config,
            DutFailureKind::Desync,
            format!("protocol desync: {what}"),
        );
    }

    /// Bring a fresh child up after a failure (called from
    /// [`Dut::reset`], the campaign's natural re-seeding point): sleep
    /// the backoff, spawn, handshake with the lineage's issued-batch
    /// offset, and verify the served DUT is still the same device.
    fn respawn(&self, inner: &mut Inner) {
        while inner.link.is_none() && !inner.dead {
            std::thread::sleep(backoff_delay(
                &self.config,
                inner.consecutive_failures.max(1),
            ));
            match Link::open(&self.argv, self.config.deadline, inner.issued) {
                Ok((link, name)) if name == self.name => {
                    inner.link = Some(link);
                    inner.respawns += 1;
                }
                Ok((link, name)) => {
                    link.kill();
                    inner.fail(
                        &self.config,
                        DutFailureKind::Desync,
                        format!(
                            "respawned server identifies as `{name}`, expected `{}`",
                            self.name
                        ),
                    );
                }
                Err(error) => {
                    inner.fail(&self.config, DutFailureKind::Crash, error.to_string());
                }
            }
        }
    }
}

/// The placeholder a failed backend answers [`Dut::step`] with: an
/// immediate trap, guaranteed to disagree with any real reference step
/// so the exact-replay loop terminates at once. The verdict is
/// discarded anyway — the campaign drains [`Dut::take_failure`] before
/// looking at it.
const INERT_STEP: StepOutcome = StepOutcome::Trapped(Trap::Breakpoint { addr: 0 });

impl Dut for DutSupervisor {
    fn name(&self) -> &'static str {
        self.name_static
    }

    fn remote_stats(&self) -> Option<tf_arch::RemoteDutStats> {
        Some(tf_arch::RemoteDutStats {
            batches_issued: self.batches_issued(),
            respawns: self.respawns(),
            dead: self.is_dead(),
        })
    }

    fn reset(&mut self) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.dead || inner.pending.is_some() {
                return;
            }
            if inner.link.is_none() {
                self.respawn(&mut inner);
            }
        }
        match self.transact(&Request::Reset) {
            Some(Response::Ok) | None => {}
            Some(_) => self.protocol_desync("unexpected response to reset"),
        }
    }

    fn load(&mut self, base: u64, program: &[Instruction]) -> Result<(), Trap> {
        let words = program.iter().map(Instruction::encode_lossy).collect();
        match self.transact(&Request::Load { base, words }) {
            Some(Response::Loaded(None)) | None => Ok(()),
            Some(Response::Loaded(Some(trap))) => Err(trap),
            Some(_) => {
                self.protocol_desync("unexpected response to load");
                Ok(())
            }
        }
    }

    fn step(&mut self) -> StepOutcome {
        match self.transact(&Request::Step) {
            Some(Response::Stepped(outcome)) => outcome,
            None => INERT_STEP,
            Some(_) => {
                self.protocol_desync("unexpected response to step");
                INERT_STEP
            }
        }
    }

    fn digest(&self) -> u64 {
        match self.transact(&Request::Digest) {
            Some(Response::Digested(digest)) => digest,
            None => 0,
            Some(_) => {
                self.protocol_desync("unexpected response to digest");
                0
            }
        }
    }

    fn enable_tracing(&mut self) {
        match self.transact(&Request::TraceOn) {
            Some(Response::Ok) | None => {}
            Some(_) => self.protocol_desync("unexpected response to trace-on"),
        }
    }

    fn take_trace(&mut self) -> Option<ExecutionTrace> {
        match self.transact(&Request::TraceTake) {
            Some(Response::Trace(Some(entries))) => Some(ExecutionTrace::from_entries(entries)),
            Some(Response::Trace(None)) | None => None,
            Some(_) => {
                self.protocol_desync("unexpected response to trace-take");
                None
            }
        }
    }

    fn take_failure(&mut self) -> Option<DutFailure> {
        self.inner.borrow_mut().pending.take()
    }

    fn run_into(&mut self, max_steps: u64, digest_every: u64, out: &mut BatchOutcome) {
        // Inert placeholder first: zero steps and no samples can never
        // equal a real reference outcome (which always carries a final
        // sample), so a failed batch reads as a mismatch whose verdict
        // the campaign discards after draining the failure.
        let inert = BatchOutcome::default();
        out.steps = inert.steps;
        out.exit = inert.exit;
        out.trap_causes = inert.trap_causes;
        out.samples.clear();
        out.pc_pairs = inert.pc_pairs;
        out.op_classes = inert.op_classes;
        match self.transact(&Request::Run {
            max_steps,
            digest_every,
        }) {
            Some(Response::Batch(batch)) => {
                out.steps = batch.steps;
                out.exit = batch.exit;
                out.trap_causes = batch.trap_causes;
                out.samples.extend_from_slice(&batch.samples);
                out.pc_pairs = batch.pc_pairs;
                out.op_classes = batch.op_classes;
            }
            None => {}
            Some(_) => self.protocol_desync("unexpected response to run"),
        }
    }
}

impl Drop for DutSupervisor {
    fn drop(&mut self) {
        if let Some(link) = self.inner.borrow_mut().link.take() {
            link.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_saturates_at_the_cap() {
        let config = SupervisorConfig {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            ..SupervisorConfig::default()
        };
        let schedule: Vec<Duration> = (1..=8).map(|n| backoff_delay(&config, n)).collect();
        assert_eq!(
            schedule,
            [50, 100, 200, 400, 800, 1600, 2000, 2000]
                .into_iter()
                .map(Duration::from_millis)
                .collect::<Vec<_>>()
        );
        // Degenerate inputs stay sane: zero failures behaves like one,
        // and absurd counts do not overflow.
        assert_eq!(backoff_delay(&config, 0), Duration::from_millis(50));
        assert_eq!(backoff_delay(&config, u32::MAX), Duration::from_secs(2));
    }

    #[test]
    fn spawning_a_nonexistent_command_is_a_clean_error() {
        let err = DutSupervisor::spawn(
            vec!["/nonexistent/tf-dut-binary".to_string()],
            SupervisorConfig::default(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SpawnError::Io(_)), "{err}");
        assert!(err.to_string().contains("failed to spawn"));
    }

    #[test]
    fn an_empty_argv_is_rejected_before_spawning() {
        let err = DutSupervisor::spawn(Vec::new(), SupervisorConfig::default(), 0).unwrap_err();
        assert!(err.to_string().contains("empty dut command"), "{err}");
    }
}
