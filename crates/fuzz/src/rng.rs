//! Seeded splitmix64 stream for fuzzer-side decisions.
//!
//! The instruction library owns its own deterministic stream for operand
//! synthesis; this one drives the decisions layered above it — candidate
//! tournaments, corpus scheduling, mutation choices — so that a campaign
//! is a pure function of its seed.

/// Deterministic splitmix64 generator (same recurrence the instruction
/// library uses, independently seeded).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current stream position. Together with [`set_state`] this lets
    /// campaign checkpoints freeze and resume every decision stream
    /// bit-exactly.
    ///
    /// [`set_state`]: SplitMix64::set_state
    pub(crate) fn state(&self) -> u64 {
        self.state
    }

    /// Restore a stream position captured by [`SplitMix64::state`].
    pub(crate) fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// True with probability `num / 256`.
    pub(crate) fn chance(&mut self, num: u8) -> bool {
        (self.next_u64() & 0xFF) < u64::from(num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_tracks_its_probability() {
        let mut rng = SplitMix64::new(1);
        assert!(!(0..1000).any(|_| rng.chance(0)), "0/256 never fires");
        let hits = (0..1000).filter(|_| rng.chance(64)).count();
        // 64/256 = 25%; a deterministic stream lands close to it.
        assert!((150..350).contains(&hits), "{hits} hits for p=0.25");
    }
}
