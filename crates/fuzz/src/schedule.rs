//! Power schedules: how much mutation energy each corpus seed earns.
//!
//! Uniform seed selection spends as many mutations on a stale,
//! expensive seed as on a fresh one that keeps producing new coverage.
//! AFL-style power schedules fix that by assigning each seed an
//! *energy* from its calibration record
//! ([`SeedCalibration`]) — execution cost,
//! coverage yield and mutation fecundity — and drawing seeds with
//! probability proportional to energy. The arithmetic is integer-only
//! and branch-free of any float rounding, so campaigns stay
//! bit-deterministic across platforms: same seed, same schedule, same
//! byte-identical report.
//!
//! [`PowerSchedule::Uniform`] assigns every seed energy 1, which makes
//! the weighted draw collapse to exactly the pre-scheduler uniform
//! pick — one RNG draw, identical stream — so the uniform schedule
//! reproduces historical campaigns bit for bit.
//!
//! Under a multi-worker [`CampaignDriver`](crate::CampaignDriver) the
//! energy table is live across the fleet: seeds another worker
//! discovered arrive at each round boundary carrying their admitting
//! worker's calibration, enter this worker's corpus like local
//! admissions, and compete for mutation energy from the next draw on.
//! A high-yield seed found by worker 3 therefore starts soaking up
//! energy on worker 0 mid-run — the feedback loop the schedules
//! implement spans workers, not just one campaign's own corpus.

use crate::corpus::SeedCalibration;

/// Ceiling on any seed's energy, bounding how hard a hot seed can
/// starve the rest of the corpus.
pub const MAX_ENERGY: u64 = 256;

/// A deterministic power schedule mapping a seed's calibration record
/// to its selection energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PowerSchedule {
    /// Every seed gets energy 1: the historical uniform pick,
    /// bit-identical to pre-scheduler campaigns.
    #[default]
    Uniform,
    /// AFL-fast flavoured: energy grows with coverage yield and
    /// fecundity (children admitted), shrinks logarithmically with
    /// mutation attempts already spent and with execution cost.
    Fast,
    /// Novelty-hunting: fresh seeds start hot (energy 64) and cool by
    /// halving per mutation spent, with a floor of 1 plus the seed's
    /// coverage yield — cheap breadth-first sweeps of new corpus
    /// entries.
    Explore,
}

impl PowerSchedule {
    /// Every schedule, in the order `--schedule` documents them.
    pub const ALL: [PowerSchedule; 3] = [
        PowerSchedule::Uniform,
        PowerSchedule::Fast,
        PowerSchedule::Explore,
    ];

    /// Stable identifier, as accepted by [`PowerSchedule::parse`] and
    /// the `--schedule` CLI flag.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            PowerSchedule::Uniform => "uniform",
            PowerSchedule::Fast => "fast",
            PowerSchedule::Explore => "explore",
        }
    }

    /// Parse an identifier produced by [`PowerSchedule::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<PowerSchedule> {
        PowerSchedule::ALL
            .into_iter()
            .find(|schedule| schedule.id() == id)
    }

    /// The selection energy `calibration` earns under this schedule.
    /// Always in `1..=MAX_ENERGY`: no seed is ever starved completely,
    /// and no seed can dominate the draw unboundedly.
    #[must_use]
    pub fn energy(self, calibration: &SeedCalibration) -> u64 {
        let SeedCalibration {
            cost,
            cov_yield,
            spent,
            children,
        } = *calibration;
        match self {
            PowerSchedule::Uniform => 1,
            PowerSchedule::Fast => {
                let reward = 8 * (1 + u64::from(cov_yield)) * (1 + children.min(8));
                let fatigue = 1 + u64::from(spent.saturating_add(1).ilog2());
                let expense = 1 + u64::from(cost.max(1).ilog2());
                (reward / (fatigue * expense)).clamp(1, MAX_ENERGY)
            }
            PowerSchedule::Explore => {
                let heat = 64u64 >> spent.min(6);
                heat.max(1) + u64::from(cov_yield)
            }
        }
    }
}

impl std::fmt::Display for PowerSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibration(cost: u64, cov_yield: u8, spent: u64, children: u64) -> SeedCalibration {
        SeedCalibration {
            cost,
            cov_yield,
            spent,
            children,
        }
    }

    #[test]
    fn ids_round_trip_and_default_is_uniform() {
        for schedule in PowerSchedule::ALL {
            assert_eq!(PowerSchedule::parse(schedule.id()), Some(schedule));
            assert_eq!(schedule.to_string(), schedule.id());
        }
        assert_eq!(PowerSchedule::parse("nope"), None);
        assert_eq!(PowerSchedule::default(), PowerSchedule::Uniform);
    }

    #[test]
    fn uniform_energy_is_always_one() {
        for calibration in [calibration(0, 0, 0, 0), calibration(1_000_000, 4, 999, 50)] {
            assert_eq!(PowerSchedule::Uniform.energy(&calibration), 1);
        }
    }

    #[test]
    fn every_energy_is_bounded_and_positive() {
        for schedule in PowerSchedule::ALL {
            for cost in [0, 1, 17, 1 << 40, u64::MAX] {
                for cov_yield in [0, 1, 4] {
                    for spent in [0, 1, 6, 1 << 50, u64::MAX] {
                        for children in [0, 3, u64::MAX] {
                            let energy =
                                schedule.energy(&calibration(cost, cov_yield, spent, children));
                            assert!(
                                (1..=MAX_ENERGY).contains(&energy),
                                "{schedule} gave energy {energy}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_rewards_yield_and_fecundity_and_penalises_cost_and_spend() {
        let fast = PowerSchedule::Fast;
        let base = calibration(64, 1, 0, 1);
        assert!(fast.energy(&calibration(64, 4, 0, 1)) > fast.energy(&base));
        assert!(fast.energy(&calibration(64, 1, 0, 8)) > fast.energy(&base));
        assert!(fast.energy(&calibration(1 << 20, 1, 0, 1)) < fast.energy(&base));
        assert!(fast.energy(&calibration(64, 1, 500, 1)) < fast.energy(&base));
    }

    #[test]
    fn explore_cools_as_mutations_are_spent() {
        let explore = PowerSchedule::Explore;
        let fresh = explore.energy(&calibration(64, 0, 0, 0));
        let warm = explore.energy(&calibration(64, 0, 3, 0));
        let cold = explore.energy(&calibration(64, 0, 100, 0));
        assert_eq!(fresh, 64);
        assert!(fresh > warm && warm > cold);
        assert_eq!(cold, 1, "cooled seeds keep the floor energy");
        assert_eq!(
            explore.energy(&calibration(64, 3, 100, 0)),
            4,
            "yield lifts the floor"
        );
    }
}
