//! The server side of the remote-DUT protocol: run any in-process
//! [`Dut`] behind [`crate::proto`] frames on a byte stream — what
//! `tf-cli serve [--mutant <scenario>]` wraps around stdin/stdout.
//!
//! Besides the honest path, the server carries deterministic
//! fault-injection ([`ChaosConfig`]): at a configured cumulative batch
//! ordinal it crashes, hangs or garbles its stream *once*, making every
//! supervisor failure path — deadline, kill, respawn, backoff, finding
//! capture — hermetically and bit-deterministically testable with no
//! external simulator. The triggers count `Run` frames across the whole
//! child *lineage*: the client's handshake carries the number of
//! batches already issued (to previous incarnations, or before a
//! checkpoint), so a respawned or resumed child continues the count
//! instead of re-firing the same fault forever.

use std::io::{Read, Write};

use tf_arch::{BatchOutcome, Dut, Trap};
use tf_riscv::Instruction;

use crate::proto::{
    check_handshake, read_request, write_response, Request, Response, WireError, PROTOCOL_VERSION,
};
use tf_arch::digest::STABILITY_FINGERPRINT;

/// Deterministic fault-injection schedule, counted in cumulative `Run`
/// batches (0-based). Each trigger fires at most once per campaign:
/// when the counter *equals* the configured ordinal. When several
/// triggers name the same ordinal, crash wins over hang over garble.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Exit abruptly (without answering) at this batch ordinal.
    pub crash_after: Option<u64>,
    /// Stop answering (sleep forever) at this batch ordinal.
    pub hang_after: Option<u64>,
    /// Send a checksum-corrupted frame at this batch ordinal, then exit.
    pub garble_after: Option<u64>,
}

impl ChaosConfig {
    /// True when no fault is scheduled.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.crash_after.is_none() && self.hang_after.is_none() && self.garble_after.is_none()
    }
}

/// How a [`serve`] session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The client sent an orderly [`Request::Shutdown`].
    ClientShutdown,
    /// The client closed the stream without a shutdown frame (the
    /// supervisor was killed, or simply dropped the child).
    ClientEof,
    /// A scheduled chaos crash fired: the caller should exit abruptly
    /// with a distinctive status, *without* flushing anything further.
    ChaosCrash,
    /// A scheduled chaos garble fired: the corrupt frame is already
    /// written and the caller should exit.
    ChaosGarbled,
}

/// Why a [`serve`] session failed (all fatal: the caller reports the
/// error and exits nonzero).
#[derive(Debug)]
pub enum ServeError {
    /// Writing a response failed.
    Io(std::io::Error),
    /// The client's byte stream is not well-formed protocol.
    Wire(WireError),
    /// The client's handshake named an incompatible version or digest
    /// fingerprint.
    Handshake(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Wire(e) => write!(f, "serve protocol error: {e}"),
            ServeError::Handshake(what) => write!(f, "serve handshake rejected: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Serve `dut` over the wire protocol until the client hangs up or a
/// chaos trigger fires. Speaks first (the server hello), then answers
/// requests one-for-one. Never writes anything to the stream that is
/// not a protocol frame.
///
/// # Errors
///
/// Fatal session failures only — a malformed client stream, a rejected
/// handshake, or I/O errors. A clean client EOF is *not* an error.
pub fn serve(
    dut: &mut dyn Dut,
    chaos: &ChaosConfig,
    input: &mut impl Read,
    output: &mut impl Write,
) -> Result<ServeOutcome, ServeError> {
    write_response(
        output,
        &Response::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: STABILITY_FINGERPRINT,
            name: dut.name().to_string(),
        },
    )?;
    // Cumulative `Run` ordinal across the child lineage; the client's
    // hello rebases it for respawned/resumed children.
    let mut batches: u64 = 0;
    let mut scratch = BatchOutcome::default();
    loop {
        let request = match read_request(input) {
            Ok(request) => request,
            Err(WireError::Eof) => return Ok(ServeOutcome::ClientEof),
            Err(e) => return Err(ServeError::Wire(e)),
        };
        match request {
            Request::Hello {
                version,
                fingerprint,
                batch_offset,
            } => {
                check_handshake(version, fingerprint).map_err(ServeError::Handshake)?;
                batches = batch_offset;
            }
            Request::Reset => {
                dut.reset();
                write_response(output, &Response::Ok)?;
            }
            Request::Load { base, words } => {
                let response = match decode_program(&words) {
                    Ok(program) => Response::Loaded(dut.load(base, &program).err()),
                    Err(trap) => Response::Loaded(Some(trap)),
                };
                write_response(output, &response)?;
            }
            Request::Run {
                max_steps,
                digest_every,
            } => {
                if chaos.crash_after == Some(batches) {
                    return Ok(ServeOutcome::ChaosCrash);
                }
                if chaos.hang_after == Some(batches) {
                    // Deliberately wedge: the supervisor's deadline must
                    // fire and kill this process.
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(3600));
                    }
                }
                if chaos.garble_after == Some(batches) {
                    crate::proto::write_garbled_frame(output)?;
                    return Ok(ServeOutcome::ChaosGarbled);
                }
                batches += 1;
                dut.run_into(max_steps, digest_every, &mut scratch);
                write_response(output, &Response::Batch(scratch.clone()))?;
            }
            Request::Step => {
                write_response(output, &Response::Stepped(dut.step()))?;
            }
            Request::Digest => {
                write_response(output, &Response::Digested(dut.digest()))?;
            }
            Request::TraceOn => {
                dut.enable_tracing();
                write_response(output, &Response::Ok)?;
            }
            Request::TraceTake => {
                let entries = dut.take_trace().map(|t| t.entries().to_vec());
                write_response(output, &Response::Trace(entries))?;
            }
            Request::Shutdown => return Ok(ServeOutcome::ClientShutdown),
        }
    }
}

/// Decode wire words back into instructions. An undecodable word is
/// answered as the illegal-instruction trap its fetch would raise.
fn decode_program(words: &[u32]) -> Result<Vec<Instruction>, Trap> {
    words
        .iter()
        .map(|&word| Instruction::decode(word).map_err(|_| Trap::IllegalInstruction { word }))
        .collect()
}
