//! Sharded campaigns: one instruction budget split across worker threads.
//!
//! A [`Campaign`] is seed-deterministic and self-contained, which makes
//! parallelisation embarrassingly simple — the PreSiFuzz recipe: give
//! every worker its own [`Campaign`] with a disjoint seed stream and a
//! slice of the master instruction budget, run the workers on
//! `std::thread`s, and fold the per-worker [`CampaignReport`]s and
//! [`CoverageMap`]s back together. Each worker is *individually*
//! deterministic — worker `i`'s result depends only on the master seed,
//! its index and its budget slice, never on thread scheduling — so a
//! sharded run is reproducible and worker 0 of a one-job run is
//! bit-identical to the plain single-threaded [`Campaign`].

use std::time::{Duration, Instant};

use tf_arch::Dut;

use crate::campaign::{Campaign, CampaignConfig, CampaignReport};
use crate::corpus::{Corpus, SeedEntry};
use crate::coverage::CoverageMap;
use crate::rng::SplitMix64;

/// The seed worker `worker` runs under a master seed.
///
/// Worker 0 inherits the master seed itself (so `jobs = 1` reproduces
/// the single-threaded campaign bit for bit); workers `i >= 1` take the
/// `i`-th value of a splitmix64 stream seeded with the master seed. The
/// mapping depends only on `(master, worker)`, not on the job count, so
/// worker `i` explores the same programs whether the run uses 2 workers
/// or 16.
#[must_use]
pub fn worker_seed(master: u64, worker: usize) -> u64 {
    if worker == 0 {
        return master;
    }
    let mut stream = SplitMix64::new(master);
    let mut seed = 0;
    for _ in 0..worker {
        seed = stream.next_u64();
    }
    seed
}

/// The configuration worker `worker` of a `jobs`-wide run executes: the
/// master config with the worker's seed and its slice of the instruction
/// budget (the remainder of an uneven split goes to the lowest-indexed
/// workers).
#[must_use]
pub fn shard_config(config: &CampaignConfig, jobs: usize, worker: usize) -> CampaignConfig {
    assert!(worker < jobs, "worker index out of range");
    let jobs = jobs as u64;
    let base = config.instruction_budget / jobs;
    let extra = u64::from((worker as u64) < config.instruction_budget % jobs);
    config
        .clone()
        .with_seed(worker_seed(config.seed, worker))
        .with_instruction_budget(base + extra)
}

/// What one worker of a sharded campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index, `0..jobs`.
    pub worker: usize,
    /// The seed the worker's campaign ran under.
    pub seed: u64,
    /// The worker's own campaign report.
    pub report: CampaignReport,
}

/// A finished sharded campaign: the merged view plus per-worker detail.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// All workers folded together ([`CampaignReport::merge`]), with the
    /// coverage counters replaced by the *union* of the per-worker
    /// coverage maps.
    pub merged: CampaignReport,
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerReport>,
    /// The union of every worker's coverage.
    pub coverage: CoverageMap,
    /// Every worker's corpus folded together in worker order, deduped by
    /// [`SeedEntry::coverage_key`] — the seeds a persistent campaign
    /// saves so later runs can cross-pollinate. (Workers used to discard
    /// these after the merge.)
    pub corpus: Vec<SeedEntry>,
    /// Wall-clock time of the parallel section.
    pub elapsed: Duration,
}

impl ShardedReport {
    /// Aggregate lockstep throughput: steps executed across all workers
    /// per wall-clock second.
    #[must_use]
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.merged.steps_executed as f64 / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ShardedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.merged)?;
        for worker in &self.workers {
            writeln!(
                f,
                "  worker {}: seed {:#018x}  programs {}  steps {}  divergent {}",
                worker.worker,
                worker.seed,
                worker.report.programs,
                worker.report.steps_executed,
                worker.report.divergent_runs,
            )?;
        }
        write!(
            f,
            "  throughput: {:.0} steps/sec aggregate over {} worker(s) ({:.2} s wall)",
            self.steps_per_sec(),
            self.workers.len(),
            self.elapsed.as_secs_f64(),
        )
    }
}

/// Run one instruction budget split across `jobs` worker threads.
///
/// Every worker builds its own [`Campaign`] from
/// [`shard_config`]`(config, jobs, worker)` and its own device under
/// test from `dut_factory(worker)`, so no state is shared between
/// workers and the merged result is deterministic for a given
/// `(config, jobs)` regardless of scheduling. With `jobs == 1` the
/// merged report is bit-identical to `Campaign::new(config.clone())
/// .run(&mut dut_factory(0))`.
///
/// # Panics
///
/// Panics when `jobs` is zero or a worker thread panics.
pub fn run_sharded<D, F>(config: &CampaignConfig, jobs: usize, dut_factory: F) -> ShardedReport
where
    D: Dut,
    F: Fn(usize) -> D + Send + Sync,
{
    run_sharded_seeded(config, jobs, &[], dut_factory)
}

/// [`run_sharded`] with cross-run seed material: every worker is primed
/// with `seeds` ([`Campaign::prime`]) before it runs, so corpora saved by
/// earlier campaigns guide all workers of this one. An empty slice is
/// exactly `run_sharded`.
///
/// # Panics
///
/// Panics when `jobs` is zero or a worker thread panics.
pub fn run_sharded_seeded<D, F>(
    config: &CampaignConfig,
    jobs: usize,
    seeds: &[SeedEntry],
    dut_factory: F,
) -> ShardedReport
where
    D: Dut,
    F: Fn(usize) -> D + Send + Sync,
{
    assert!(jobs >= 1, "a sharded campaign needs at least one worker");
    let start = Instant::now();
    let results: Vec<(CampaignReport, CoverageMap, Vec<SeedEntry>)> = std::thread::scope(|scope| {
        let factory = &dut_factory;
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let worker_config = shard_config(config, jobs, worker);
                scope.spawn(move || {
                    let mut campaign = Campaign::new(worker_config);
                    campaign.prime(seeds);
                    let mut dut = factory(worker);
                    let report = campaign.run(&mut dut);
                    let coverage = campaign.coverage().clone();
                    (report, coverage, campaign.into_corpus().into_entries())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("campaign worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut coverage = CoverageMap::new();
    let mut corpus = Corpus::new(config.seed);
    let mut merged = CampaignReport::default();
    let mut workers = Vec::with_capacity(jobs);
    for (worker, (report, worker_coverage, entries)) in results.into_iter().enumerate() {
        coverage.merge(&worker_coverage);
        corpus.merge_entries(&entries);
        if jobs == 1 {
            // One worker: the merged view is that worker's report,
            // verbatim — including any same-fingerprint repeats it chose
            // to record — keeping the jobs=1 bit-identity guarantee.
            merged = report.clone();
        } else {
            merged.merge(&report);
        }
        workers.push(WorkerReport {
            worker,
            seed: worker_seed(config.seed, worker),
            report,
        });
    }
    // Replace the summed per-worker counters with the deduplicated union.
    // Within one worker no two entries share a coverage-key pair, so for
    // jobs == 1 the deduped corpus is the worker's corpus verbatim and
    // the bit-identity guarantee holds here too.
    merged.unique_traces = coverage.unique();
    merged.unique_trap_sets = coverage.unique_trap_sets();
    merged.corpus_size = corpus.len();
    ShardedReport {
        merged,
        workers,
        coverage,
        corpus: corpus.into_entries(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_seeds_are_stable_and_job_count_independent() {
        assert_eq!(worker_seed(42, 0), 42, "worker 0 inherits the master");
        let w1 = worker_seed(42, 1);
        let w2 = worker_seed(42, 2);
        assert_ne!(w1, 42);
        assert_ne!(w1, w2);
        // Re-derivation is stable: there is no hidden job-count input.
        assert_eq!(worker_seed(42, 1), w1);
        assert_eq!(worker_seed(42, 2), w2);
    }

    #[test]
    fn shard_budgets_cover_the_master_budget_exactly() {
        let config = CampaignConfig {
            instruction_budget: 10_001,
            ..CampaignConfig::default()
        };
        for jobs in 1..=7 {
            let total: u64 = (0..jobs)
                .map(|w| shard_config(&config, jobs, w).instruction_budget)
                .sum();
            assert_eq!(total, 10_001, "budget lost or invented at jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn shard_config_rejects_out_of_range_workers() {
        let _ = shard_config(&CampaignConfig::default(), 2, 2);
    }
}
