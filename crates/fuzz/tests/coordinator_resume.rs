//! Crash-recovery composition tests for the campaign coordinator: a
//! campaign resumed from a *mid-run autosave* — the file a SIGKILL at
//! that moment would leave behind (saves are atomic temp+rename) — must
//! land on the identical outcome an uninterrupted campaign produces, at
//! any worker count. The per-worker RNG streams in the v5 checkpoint
//! are exactly what makes `--resume` compose with `--jobs N`.

use std::path::PathBuf;

use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tf-coord-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

#[test]
fn resume_from_a_mid_run_autosave_is_bit_identical_at_any_job_count() {
    for jobs in [1usize, 4] {
        let budget = 8_000;
        let want = CampaignDriver::new(config(0xA117, budget))
            .with_jobs(jobs)
            .with_sync_every(512)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();

        // An autosaving run; the sink freezes the first autosave's file
        // the instant it lands, simulating a kill right after the write.
        let live = temp_path(&format!("autosave-live-{jobs}.tfc"));
        let frozen = temp_path(&format!("autosave-frozen-{jobs}.tfc"));
        let _ = std::fs::remove_file(&live);
        let _ = std::fs::remove_file(&frozen);
        let mut sink = |event: &CampaignEvent| {
            if let CampaignEvent::AutosaveWritten { ordinal, .. } = event {
                if *ordinal == 1 {
                    std::fs::copy(&live, &frozen).unwrap();
                }
            }
        };
        let completed = CampaignDriver::new(config(0xA117, budget))
            .with_jobs(jobs)
            .with_sync_every(512)
            .with_corpus(&live)
            .with_autosave_every(3)
            .with_event_sink(&mut sink)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();
        assert!(completed.autosaves >= 1, "jobs {jobs}: no autosave fired");
        assert!(frozen.exists(), "jobs {jobs}: autosave was not frozen");

        // The frozen file is a genuine mid-run state, not the final one.
        let snapshot = persist::load_file(&frozen).unwrap();
        let checkpoint = snapshot.checkpoint.expect("autosave carries a checkpoint");
        assert!(
            checkpoint.report.instructions_generated < budget,
            "jobs {jobs}: the frozen autosave already covers the budget"
        );

        let got = CampaignDriver::new(config(0xA117, budget))
            .with_jobs(jobs)
            .with_sync_every(512)
            .with_corpus(&frozen)
            .with_resume(true)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();
        assert_eq!(got.report, want.report, "jobs {jobs}: report drifted");
        assert_eq!(got.corpus, want.corpus, "jobs {jobs}: corpus drifted");
        assert_eq!(got.workers, want.workers, "jobs {jobs}: workers drifted");

        std::fs::remove_file(&live).unwrap();
        std::fs::remove_file(&frozen).unwrap();
    }
}

#[test]
fn checkpoints_are_pinned_to_their_worker_count() {
    let path = temp_path("jobs-pinned.tfc");
    let _ = std::fs::remove_file(&path);
    let outcome = CampaignDriver::new(config(0x10B5, 4_000))
        .with_jobs(2)
        .with_corpus(&path)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    outcome.save().unwrap().expect("persistent outcome saves");

    let rejected = CampaignDriver::new(config(0x10B5, 8_000))
        .with_jobs(3)
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)));
    match rejected {
        Err(DriveError::JobsMismatch { frozen, requested }) => {
            assert_eq!((frozen, requested), (2, 3));
        }
        other => panic!("expected JobsMismatch, got {other:?}"),
    }

    // At the frozen worker count the same file resumes fine.
    let resumed = CampaignDriver::new(config(0x10B5, 8_000))
        .with_jobs(2)
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert!(resumed.report.instructions_generated >= 8_000);
    std::fs::remove_file(&path).unwrap();
}
