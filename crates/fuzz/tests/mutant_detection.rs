//! End-to-end fuzzer validation against every planted bug scenario.
//!
//! The acceptance bar from ISSUE 3: a campaign against a mutant device
//! must flag a divergence and localise it, while the identical campaign
//! against the unmodified reference stays clean. This suite runs that
//! matrix for the whole [`BugScenario`] catalogue.

use tf_arch::{StepOutcome, Trap};
use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

fn run_mutant(scenario: BugScenario, budget: u64) -> CampaignReport {
    CampaignDriver::new(config(7, budget))
        .run(|_| Ok(MutantHart::new(MEM, scenario)))
        .unwrap()
        .report
}

#[test]
fn every_scenario_is_detected_and_localised() {
    for scenario in BugScenario::ALL {
        let report = run_mutant(scenario, 3_000);
        assert!(
            !report.is_clean(),
            "{} went undetected:\n{report}",
            scenario.id()
        );
        assert!(
            !report.divergences.is_empty(),
            "{} has no localised report",
            scenario.id()
        );
        for divergence in &report.divergences {
            assert_ne!(
                divergence.reference_digest,
                divergence.dut_digest,
                "{}: divergence without digest disagreement",
                scenario.id()
            );
            assert!(divergence.step >= 1);
        }
    }
}

#[test]
fn b2_divergence_shows_reference_trap_and_mutant_retirement() {
    let report = run_mutant(BugScenario::B2ReservedRounding, 2_000);
    let localised = report.divergences.iter().any(|d| {
        matches!(
            d.reference.as_ref().map(|e| &e.outcome),
            Some(StepOutcome::Trapped(Trap::IllegalInstruction { .. }))
        ) && matches!(
            d.dut.as_ref().map(|e| &e.outcome),
            Some(StepOutcome::Retired(_))
        )
    });
    assert!(
        localised,
        "no divergence shows trap-vs-retire at the B2 site:\n{report}"
    );
}

#[test]
fn reference_campaign_is_clean_over_ten_thousand_instructions() {
    // The zero-false-positive half of the acceptance bar, at the full
    // 10k-instruction scale (the CI gate repeats this with the release
    // binary through tf-cli).
    let report = CampaignDriver::new(config(7, 10_000))
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap()
        .report;
    assert!(
        report.is_clean(),
        "reference vs reference diverged:\n{report}"
    );
    assert!(report.instructions_generated >= 10_000);
}

#[test]
fn mutants_are_quiet_when_their_trigger_is_never_generated() {
    // An integer-only library cannot trip the FP scenarios: the mutants
    // must look exactly like the reference (no false positives from the
    // wrappers themselves).
    use tf_riscv::LibraryConfig;
    for scenario in [BugScenario::B2ReservedRounding, BugScenario::DroppedFflags] {
        let mut config = config(11, 1_500);
        config.library = LibraryConfig::base_integer();
        let report = CampaignDriver::new(config)
            .run(|_| Ok(MutantHart::new(MEM, scenario)))
            .unwrap()
            .report;
        assert!(
            report.is_clean(),
            "{} diverged without its trigger:\n{report}",
            scenario.id()
        );
        assert_eq!(report.dut, MutantHart::new(MEM, scenario).name());
    }
}
