//! Persistence-format validation: property-style round trips over
//! realistic generated programs, header rejection, salvage behaviour,
//! and the save → load → resume pipeline end to end.

use std::path::PathBuf;

use tf_fuzz::prelude::*;
use tf_fuzz::ProgramGenerator;
use tf_riscv::{InstructionLibrary, LibraryConfig};

const MEM: u64 = 1 << 16;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tf-persist-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

/// Property: any corpus of generator-produced programs round-trips
/// through the on-disk format exactly — words, digests and trap sets.
/// The generator samples the full IMAFD+Zicsr library, so this sweeps
/// every encodable instruction class the fuzzer can emit.
#[test]
fn generated_corpora_round_trip_exactly() {
    for seed in 0..8 {
        let library = InstructionLibrary::new(LibraryConfig::all(), seed);
        let mut generator = ProgramGenerator::new(library, seed);
        let mut corpus = Corpus::new(seed);
        for i in 0..32 {
            let program = generator.generate(3 + (i % 29));
            let calibration = SeedCalibration {
                cost: 10 + i as u64,
                cov_yield: (i % 5) as u8,
                spent: i as u64 * 3,
                children: i as u64 % 4,
            };
            corpus.add(
                &program,
                seed.wrapping_mul(31) ^ i as u64,
                i as u64 & 0xFF,
                calibration,
            );
        }
        let path = temp_path(&format!("roundtrip-{seed}.tfc"));
        corpus.save(&path).unwrap();
        let (loaded, report) = Corpus::load(&path, seed).unwrap();
        assert_eq!(loaded.entries(), corpus.entries(), "seed {seed}");
        assert_eq!(report.loaded, 32);
        assert_eq!(report.skipped, 0);
        assert!(!report.truncated);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn header_rejection_is_loud_not_silent() {
    let path = temp_path("rejection.tfc");
    let corpus = Corpus::new(1);
    corpus.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();

    // Version drift.
    bytes[8] = 99;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Corpus::load(&path, 1),
        Err(PersistError::UnsupportedVersion { found: 99 })
    ));

    // Digest-scheme drift.
    bytes[8] = persist::FORMAT_VERSION as u8;
    bytes[12] ^= 0xA5;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Corpus::load(&path, 1),
        Err(PersistError::FingerprintMismatch { .. })
    ));

    // Not a corpus at all.
    std::fs::write(&path, b"definitely not a corpus file").unwrap();
    assert!(matches!(
        Corpus::load(&path, 1),
        Err(PersistError::BadMagic)
    ));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncation_and_corruption_salvage_the_rest() {
    let library = InstructionLibrary::new(LibraryConfig::all(), 9);
    let mut generator = ProgramGenerator::new(library, 9);
    let mut corpus = Corpus::new(9);
    for i in 0..10 {
        corpus.add(&generator.generate(8), i, 0, SeedCalibration::default());
    }
    let path = temp_path("salvage.tfc");
    corpus.save(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Chop the file mid-record: a prefix of entries survives.
    std::fs::write(&path, &pristine[..pristine.len() - 17]).unwrap();
    let (loaded, report) = Corpus::load(&path, 9).unwrap();
    assert!(report.truncated);
    assert_eq!(loaded.len(), report.loaded);
    assert!(report.loaded >= 8, "only the cut tail may be lost");
    assert_eq!(
        loaded.entries(),
        &corpus.entries()[..loaded.len()],
        "surviving prefix is intact"
    );

    // Flip a byte mid-file: a payload hit loses exactly that record and
    // the stream continues; a frame-header hit fail-stops with the
    // prefix salvaged. Either way, most records survive and none are
    // invented.
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    std::fs::write(&path, &corrupt).unwrap();
    let (loaded, report) = Corpus::load(&path, 9).unwrap();
    assert!(report.skipped >= 1 || report.truncated);
    assert!(report.loaded >= 4, "at least the prefix must be salvaged");
    assert!(report.loaded + report.skipped <= 10);
    for entry in loaded.entries() {
        assert!(corpus.entries().contains(entry), "no invented entries");
    }

    std::fs::remove_file(&path).unwrap();
}

/// The full pipeline the CLI drives: a campaign saved mid-budget, loaded
/// back, restored, and resumed must land on the identical report an
/// uninterrupted campaign produces — through the *file*, not just
/// in-memory checkpoints.
#[test]
fn resume_through_the_file_is_bit_identical() {
    let full_budget = 4_000;
    let want = CampaignDriver::new(config(0xF00D, full_budget))
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();

    // First half, frozen to disk.
    let path = temp_path("resume.tfc");
    let _ = std::fs::remove_file(&path);
    let first = CampaignDriver::new(config(0xF00D, full_budget / 2))
        .with_corpus(&path)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    first.save().unwrap().expect("persistent outcome saves");

    // The checkpoint round-trips through the file exactly.
    let loaded = persist::load_file(&path).unwrap();
    let checkpoint = loaded.checkpoint.expect("checkpoint was saved");
    assert_eq!(
        &checkpoint,
        first.checkpoint(),
        "the checkpoint must round-trip through the file exactly"
    );

    // Second half, thawed from disk.
    let got = CampaignDriver::new(config(0xF00D, full_budget))
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(
        got.report, want.report,
        "file-mediated resume must be bit-identical"
    );
    assert_eq!(got.corpus, want.corpus);

    // A mismatched config is rejected at restore, not discovered later.
    let rejected = CampaignDriver::new(config(0xF00D, full_budget).with_program_len(16))
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)));
    assert!(matches!(
        rejected,
        Err(DriveError::Restore(RestoreError::ConfigMismatch { .. }))
    ));

    std::fs::remove_file(&path).unwrap();
}

/// Same pipeline under a non-uniform power schedule: the calibration
/// records and yield-signal coverage sets that drive energy assignment
/// must survive the file round trip, or the resumed half would walk a
/// different selection trajectory.
#[test]
fn resume_through_the_file_is_bit_identical_under_a_feedback_schedule() {
    let schedule_config = |budget: u64| config(0xFA57, budget).with_schedule(PowerSchedule::Fast);
    let full_budget = 4_000;
    let want = CampaignDriver::new(schedule_config(full_budget))
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();

    let path = temp_path("resume-fast.tfc");
    let _ = std::fs::remove_file(&path);
    let first = CampaignDriver::new(schedule_config(full_budget / 2))
        .with_corpus(&path)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    first.save().unwrap().expect("persistent outcome saves");

    let got = CampaignDriver::new(schedule_config(full_budget))
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(
        got.report, want.report,
        "feedback-schedule resume must be bit-identical"
    );
    assert_eq!(got.corpus, want.corpus);

    // The same checkpoint under a different schedule is a config
    // mismatch, caught at restore.
    let rejected = CampaignDriver::new(config(0xFA57, full_budget))
        .with_corpus(&path)
        .with_resume(true)
        .run(|_| Ok(Hart::new(MEM)));
    assert!(matches!(
        rejected,
        Err(DriveError::Restore(RestoreError::ConfigMismatch { .. }))
    ));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn merge_entries_dedups_by_coverage_key() {
    let entry = |digest: u64, traps: u64| SeedEntry {
        program: vec![tf_riscv::Instruction::nop()],
        trace_digest: digest,
        trap_causes: traps,
        calibration: SeedCalibration::default(),
    };
    let mut corpus = Corpus::new(0);
    assert_eq!(corpus.merge_entries(&[entry(1, 0), entry(2, 0)]), 2);
    // Same digest with a new trap set is new coverage; exact repeats are
    // not.
    assert_eq!(
        corpus.merge_entries(&[entry(1, 0), entry(1, 8), entry(2, 0)]),
        1
    );
    assert_eq!(corpus.len(), 3);
}

/// Saved corpora actually steer later campaigns: a campaign primed from
/// another run's file starts from its coverage instead of rediscovering
/// it.
#[test]
fn cross_run_seeding_carries_coverage_forward() {
    let path = temp_path("cross-run.tfc");
    let _ = std::fs::remove_file(&path);
    let donor = CampaignDriver::new(config(21, 2_000))
        .with_corpus(&path)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    donor.save().unwrap().expect("persistent outcome saves");

    // A fresh (non-resume) campaign over the same file primes every
    // donor seed; the admission count surfaces through the event sink.
    let mut primed = None;
    let mut sink = |event: &CampaignEvent| {
        if let CampaignEvent::CorpusPrimed { admitted } = event {
            primed = Some(*admitted);
        }
    };
    let receiver = CampaignDriver::new(config(22, 2_000))
        .with_corpus(&path)
        .with_event_sink(&mut sink)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(primed, Some(donor.report.corpus_size));
    assert!(
        receiver.report.unique_traces > donor.report.unique_traces,
        "the receiving campaign builds on the donor's coverage"
    );
    std::fs::remove_file(&path).unwrap();
}
