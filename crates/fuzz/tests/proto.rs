//! Wire-protocol validation: property-style round trips over realistic
//! messages, frame rejection (truncation, corruption, wrong direction,
//! wrong version), and in-memory `serve` sessions — including the
//! deterministic chaos triggers — without spawning any process.

use std::io::Cursor;

use tf_arch::digest::STABILITY_FINGERPRINT;
use tf_arch::{Hart, StepOutcome, TraceEntry, Trap};
use tf_fuzz::prelude::*;
use tf_fuzz::proto::{
    check_handshake, read_request, read_response, write_garbled_frame, write_request,
    write_response, Request, Response, WireError, PROTOCOL_VERSION,
};
use tf_fuzz::ProgramGenerator;
use tf_riscv::{Instruction, InstructionLibrary, LibraryConfig};

const MEM: u64 = 1 << 16;

fn roundtrip_request(request: &Request) -> Request {
    let mut wire = Vec::new();
    write_request(&mut wire, request).unwrap();
    read_request(&mut Cursor::new(wire)).unwrap()
}

fn roundtrip_response(response: &Response) -> Response {
    let mut wire = Vec::new();
    write_response(&mut wire, response).unwrap();
    read_response(&mut Cursor::new(wire)).unwrap()
}

fn generated_program(seed: u64, len: usize) -> Vec<Instruction> {
    let library = InstructionLibrary::new(LibraryConfig::all(), seed);
    ProgramGenerator::new(library, seed).generate(len)
}

#[test]
fn every_request_kind_round_trips_exactly() {
    let program = generated_program(3, 24);
    let words: Vec<u32> = program.iter().map(Instruction::encode_lossy).collect();
    let requests = [
        Request::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: STABILITY_FINGERPRINT,
            batch_offset: 0xDEAD_BEEF,
        },
        Request::Reset,
        Request::Load {
            base: 0x8000_0000,
            words,
        },
        Request::Load {
            base: 0,
            words: Vec::new(),
        },
        Request::Run {
            max_steps: 4096,
            digest_every: 16,
        },
        Request::Step,
        Request::Digest,
        Request::TraceOn,
        Request::TraceTake,
        Request::Shutdown,
    ];
    for request in &requests {
        assert_eq!(&roundtrip_request(request), request);
    }
    // Several frames back to back parse in order off one stream.
    let mut wire = Vec::new();
    for request in &requests {
        write_request(&mut wire, request).unwrap();
    }
    let mut stream = Cursor::new(wire);
    for request in &requests {
        assert_eq!(&read_request(&mut stream).unwrap(), request);
    }
    assert!(matches!(read_request(&mut stream), Err(WireError::Eof)));
}

#[test]
fn every_response_kind_round_trips_exactly() {
    // A real traced batch gives the trace/step/batch variants honest
    // payloads: run a generated program on the golden hart.
    let program = generated_program(7, 24);
    let mut hart = Hart::new(MEM);
    hart.enable_tracing();
    hart.load(0, &program).unwrap();
    let batch = Dut::run(&mut hart, 4096, 16);
    assert!(batch.steps > 0, "the program must actually execute");
    let trace = Dut::take_trace(&mut hart).expect("tracing was enabled");
    let entries: Vec<TraceEntry> = trace.entries().to_vec();
    assert!(!entries.is_empty());

    let responses = [
        Response::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: STABILITY_FINGERPRINT,
            name: "mutant-b2".to_string(),
        },
        Response::Ok,
        Response::Loaded(None),
        Response::Loaded(Some(Trap::IllegalInstruction { word: 0xFFFF_FFFF })),
        Response::Batch(batch),
        Response::Stepped(StepOutcome::Trapped(Trap::Breakpoint { addr: 0x44 })),
        Response::Stepped(entries[0].outcome),
        Response::Digested(0x0123_4567_89AB_CDEF),
        Response::Trace(None),
        Response::Trace(Some(entries)),
    ];
    for response in &responses {
        assert_eq!(&roundtrip_response(response), response);
    }
}

#[test]
fn truncated_and_corrupted_frames_are_garbled_not_misparsed() {
    let mut wire = Vec::new();
    write_response(
        &mut wire,
        &Response::Batch(tf_arch::BatchOutcome {
            samples: vec![1, 2, 3],
            ..Default::default()
        }),
    )
    .unwrap();

    // Every proper prefix is garbled (except the empty one, a clean EOF).
    for cut in 1..wire.len() {
        let result = read_response(&mut Cursor::new(&wire[..cut]));
        assert!(
            matches!(result, Err(WireError::Garbled(_))),
            "prefix of {cut} bytes should be garbled, got {result:?}"
        );
    }
    assert!(matches!(
        read_response(&mut Cursor::new(&wire[..0])),
        Err(WireError::Eof)
    ));

    // A flipped byte anywhere is caught by the frame check (header) or
    // the payload checksum — never silently accepted as different data.
    for position in 0..wire.len() {
        let mut corrupt = wire.clone();
        corrupt[position] ^= 0x10;
        let result = read_response(&mut Cursor::new(corrupt));
        assert!(
            matches!(result, Err(WireError::Garbled(_))),
            "flip at byte {position} should be garbled, got {result:?}"
        );
    }

    // Arbitrary non-protocol bytes are garbage, not a parse.
    assert!(matches!(
        read_response(&mut Cursor::new(b"not a protocol frame at all".to_vec())),
        Err(WireError::Garbled(_))
    ));

    // Frames cross directions: a request tag is not a valid response.
    let mut request_wire = Vec::new();
    write_request(&mut request_wire, &Request::Reset).unwrap();
    assert!(matches!(
        read_response(&mut Cursor::new(request_wire.clone())),
        Err(WireError::Garbled("unknown response tag"))
    ));
    let mut response_wire = Vec::new();
    write_response(&mut response_wire, &Response::Ok).unwrap();
    assert!(matches!(
        read_request(&mut Cursor::new(response_wire)),
        Err(WireError::Garbled("unknown request tag"))
    ));

    // The deliberate chaos frame is caught by the payload checksum.
    let mut garbled = Vec::new();
    write_garbled_frame(&mut garbled).unwrap();
    assert!(matches!(
        read_response(&mut Cursor::new(garbled)),
        Err(WireError::Garbled("payload checksum mismatch"))
    ));
}

#[test]
fn handshake_rejects_version_and_fingerprint_drift() {
    assert!(check_handshake(PROTOCOL_VERSION, STABILITY_FINGERPRINT).is_ok());
    let err = check_handshake(PROTOCOL_VERSION + 1, STABILITY_FINGERPRINT).unwrap_err();
    assert!(err.contains("protocol version"), "{err}");
    let err = check_handshake(PROTOCOL_VERSION, STABILITY_FINGERPRINT ^ 0xA5).unwrap_err();
    assert!(err.contains("fingerprint"), "{err}");
}

/// Drive a full in-memory serve session: the batch a served hart
/// reports over the wire must equal the batch an identical in-process
/// hart produces directly.
#[test]
fn served_batches_match_in_process_execution_exactly() {
    let program = generated_program(11, 24);
    let words: Vec<u32> = program.iter().map(Instruction::encode_lossy).collect();

    let mut requests = Vec::new();
    write_request(
        &mut requests,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: STABILITY_FINGERPRINT,
            batch_offset: 0,
        },
    )
    .unwrap();
    write_request(&mut requests, &Request::Reset).unwrap();
    write_request(&mut requests, &Request::Load { base: 0, words }).unwrap();
    write_request(
        &mut requests,
        &Request::Run {
            max_steps: 4096,
            digest_every: 16,
        },
    )
    .unwrap();
    write_request(&mut requests, &Request::Digest).unwrap();
    write_request(&mut requests, &Request::Shutdown).unwrap();

    let mut served = Hart::new(MEM);
    let mut output = Vec::new();
    let outcome = serve(
        &mut served,
        &ChaosConfig::default(),
        &mut Cursor::new(requests),
        &mut output,
    )
    .unwrap();
    assert_eq!(outcome, ServeOutcome::ClientShutdown);

    let mut direct = Hart::new(MEM);
    Dut::reset(&mut direct);
    direct.load(0, &program).unwrap();
    let want_batch = Dut::run(&mut direct, 4096, 16);
    let want_digest = Dut::digest(&direct);

    let mut stream = Cursor::new(output);
    assert_eq!(
        read_response(&mut stream).unwrap(),
        Response::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: STABILITY_FINGERPRINT,
            name: direct.name().to_string(),
        }
    );
    assert_eq!(read_response(&mut stream).unwrap(), Response::Ok);
    assert_eq!(read_response(&mut stream).unwrap(), Response::Loaded(None));
    assert_eq!(
        read_response(&mut stream).unwrap(),
        Response::Batch(want_batch)
    );
    assert_eq!(
        read_response(&mut stream).unwrap(),
        Response::Digested(want_digest)
    );
    assert!(matches!(read_response(&mut stream), Err(WireError::Eof)));
}

#[test]
fn serve_rejects_an_incompatible_client_hello() {
    let mut requests = Vec::new();
    write_request(
        &mut requests,
        &Request::Hello {
            version: PROTOCOL_VERSION + 9,
            fingerprint: STABILITY_FINGERPRINT,
            batch_offset: 0,
        },
    )
    .unwrap();
    let mut served = Hart::new(MEM);
    let mut output = Vec::new();
    let err = serve(
        &mut served,
        &ChaosConfig::default(),
        &mut Cursor::new(requests),
        &mut output,
    )
    .unwrap_err();
    assert!(err.to_string().contains("handshake rejected"), "{err}");
}

/// Chaos crash and garble fire at the exact configured cumulative batch
/// ordinal — including when the client hello rebases the counter, the
/// mechanism that keeps respawned and resumed children from re-firing.
#[test]
fn chaos_triggers_fire_once_at_the_exact_batch_ordinal() {
    let run = Request::Run {
        max_steps: 64,
        digest_every: 0,
    };
    let session = |batch_offset: u64, runs: usize, chaos: ChaosConfig| {
        let mut requests = Vec::new();
        write_request(
            &mut requests,
            &Request::Hello {
                version: PROTOCOL_VERSION,
                fingerprint: STABILITY_FINGERPRINT,
                batch_offset,
            },
        )
        .unwrap();
        for _ in 0..runs {
            write_request(&mut requests, &run).unwrap();
        }
        write_request(&mut requests, &Request::Shutdown).unwrap();
        let mut served = Hart::new(MEM);
        let mut output = Vec::new();
        let outcome = serve(&mut served, &chaos, &mut Cursor::new(requests), &mut output);
        (outcome.unwrap(), output)
    };

    // Crash at ordinal 1: the second Run dies unanswered.
    let chaos = ChaosConfig {
        crash_after: Some(1),
        ..ChaosConfig::default()
    };
    let (outcome, output) = session(0, 3, chaos);
    assert_eq!(outcome, ServeOutcome::ChaosCrash);
    let mut stream = Cursor::new(output);
    assert!(matches!(
        read_response(&mut stream).unwrap(),
        Response::Hello { .. }
    ));
    assert!(matches!(
        read_response(&mut stream).unwrap(),
        Response::Batch(_)
    ));
    assert!(
        matches!(read_response(&mut stream), Err(WireError::Eof)),
        "the crashing batch must not be answered"
    );

    // The same schedule with the counter rebased past the ordinal never
    // fires: this is what a respawned child sees.
    let chaos = ChaosConfig {
        crash_after: Some(1),
        ..ChaosConfig::default()
    };
    let (outcome, _) = session(2, 3, chaos);
    assert_eq!(outcome, ServeOutcome::ClientShutdown);

    // Garble at ordinal 0: the first Run answers with a corrupt frame.
    let chaos = ChaosConfig {
        garble_after: Some(0),
        ..ChaosConfig::default()
    };
    let (outcome, output) = session(0, 2, chaos);
    assert_eq!(outcome, ServeOutcome::ChaosGarbled);
    let mut stream = Cursor::new(output);
    assert!(matches!(
        read_response(&mut stream).unwrap(),
        Response::Hello { .. }
    ));
    assert!(matches!(
        read_response(&mut stream),
        Err(WireError::Garbled(_))
    ));
}
