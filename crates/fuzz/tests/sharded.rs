//! Coordinated-campaign integration tests: merge algebra, fingerprint
//! deduplication, per-worker determinism, the jobs=1 identity, and the
//! worker-corpus merge that feeds corpus persistence.

use std::collections::HashSet;

use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

/// A report with at least one divergence, from a mutant campaign of the
/// given budget.
fn divergent_report(seed: u64, scenario: BugScenario, budget: u64) -> CampaignReport {
    let outcome = CampaignDriver::new(config(seed, budget))
        .run(|_| Ok(MutantHart::new(MEM, scenario)))
        .unwrap();
    assert!(
        !outcome.report.is_clean(),
        "campaign produced no divergence"
    );
    outcome.report
}

#[test]
fn merging_is_associative() {
    let a = divergent_report(1, BugScenario::B2ReservedRounding, 2_000);
    let b = divergent_report(2, BugScenario::OffByOneImmediate, 2_000);
    let c = divergent_report(3, BugScenario::DroppedFflags, 3_000);

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);

    let mut right_tail = b.clone();
    right_tail.merge(&c);
    let mut right = a.clone();
    right.merge(&right_tail);

    assert_eq!(left, right, "(a·b)·c != a·(b·c)");

    // Merging the empty report into a is the identity; merging a into
    // the empty report reproduces a with its findings deduplicated.
    let mut into_a = a.clone();
    into_a.merge(&CampaignReport::default());
    assert_eq!(into_a, a);
    let mut from_empty = CampaignReport::default();
    from_empty.merge(&a);
    assert_eq!(from_empty.divergent_runs, a.divergent_runs);
    assert_eq!(from_empty.programs, a.programs);
    let fingerprints = |report: &CampaignReport| {
        let mut prints: Vec<u64> = report
            .divergences
            .iter()
            .map(Divergence::fingerprint)
            .collect();
        prints.sort_unstable();
        prints
    };
    let mut deduped = fingerprints(&a);
    deduped.dedup();
    assert_eq!(fingerprints(&from_empty), deduped);
}

#[test]
fn merge_deduplicates_findings_by_fingerprint() {
    // A small budget keeps the report under the 16-finding cap so there
    // is room for merged-in findings.
    let a = divergent_report(1, BugScenario::B2ReservedRounding, 600);
    assert!(a.divergences.len() < 16, "report already at the cap");
    let mut doubled = a.clone();
    doubled.merge(&a);
    assert_eq!(
        doubled.divergences.len(),
        a.divergences.len(),
        "identical findings were not deduplicated"
    );
    assert_eq!(doubled.divergent_runs, 2 * a.divergent_runs);
    assert_eq!(doubled.programs, 2 * a.programs);

    // A different scenario's findings fingerprint differently and merge in.
    let b = divergent_report(2, BugScenario::OffByOneImmediate, 2_000);
    let mut combined = a.clone();
    combined.merge(&b);
    assert!(combined.divergences.len() > a.divergences.len());
}

#[test]
fn jobs_one_reports_the_single_worker_verbatim() {
    let config = config(0xF00D, 2_000);
    let outcome = CampaignDriver::new(config.clone())
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(outcome.workers.len(), 1);
    assert_eq!(outcome.workers[0].report, outcome.report);
    assert_eq!(outcome.workers[0].seed, config.seed);
    assert_eq!(outcome.foreign_admitted, 0, "echo broadcasts admit nothing");
    // Live sharing is a no-op with one worker: any sync cadence lands on
    // the same report and corpus.
    let whole = CampaignDriver::new(config)
        .with_sync_every(0)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(outcome.report, whole.report);
    assert_eq!(outcome.corpus, whole.corpus);
}

#[test]
fn workers_are_deterministic_regardless_of_scheduling_and_job_count() {
    let config = config(0xBEEF, 4_000);
    let run = || {
        CampaignDriver::new(config.clone())
            .with_jobs(4)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.report, second.report,
        "coordinated run not reproducible"
    );
    assert_eq!(first.workers, second.workers);
    assert_eq!(first.corpus, second.corpus);

    // With live sharing disabled every worker's report equals a
    // standalone campaign run from its shard config: worker results then
    // depend only on (master seed, index, budget slice), never on what
    // the sibling threads did.
    let independent = CampaignDriver::new(config.clone())
        .with_jobs(4)
        .with_sync_every(0)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    for worker in &independent.workers {
        let worker_config = shard_config(&config, 4, worker.worker);
        assert_eq!(worker.seed, worker_config.seed);
        let standalone = CampaignDriver::new(worker_config)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();
        assert_eq!(
            worker.report, standalone.report,
            "worker {} diverged from its standalone replay",
            worker.worker
        );
    }
}

#[test]
fn sharded_mutant_campaign_detects_and_deduplicates_the_bug() {
    let config = config(7, 8_000);
    let outcome = CampaignDriver::new(config)
        .with_jobs(4)
        .run(|_| Ok(MutantHart::new(MEM, BugScenario::B2ReservedRounding)))
        .unwrap();
    assert!(
        !outcome.report.is_clean(),
        "b2 went undetected across 4 workers:\n{outcome}"
    );
    // Dedup holds across the merged view.
    let mut fingerprints: Vec<u64> = outcome
        .report
        .divergences
        .iter()
        .map(Divergence::fingerprint)
        .collect();
    fingerprints.sort_unstable();
    let before = fingerprints.len();
    fingerprints.dedup();
    assert_eq!(
        before,
        fingerprints.len(),
        "duplicate fingerprints survived"
    );
    // Coverage is the union, never more than the per-worker sum.
    let summed: usize = outcome.workers.iter().map(|w| w.report.unique_traces).sum();
    assert!(outcome.report.unique_traces <= summed);
    assert!(outcome.report.unique_traces > 0);
}

#[test]
fn worker_corpora_are_merged_into_the_report_not_dropped() {
    let config = config(5, 6_000);
    let outcome = CampaignDriver::new(config.clone())
        .with_jobs(3)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert!(
        !outcome.corpus.is_empty(),
        "worker corpora must survive the merge"
    );
    // The merged corpus is deduped by coverage key and its size is what
    // the merged report advertises.
    let keys: HashSet<(u64, u64)> = outcome.corpus.iter().map(SeedEntry::coverage_key).collect();
    assert_eq!(keys.len(), outcome.corpus.len(), "duplicate keys survived");
    assert_eq!(outcome.report.corpus_size, outcome.corpus.len());
    // Every entry came from some worker; the union covers every worker's
    // coverage-earning traces.
    let summed: usize = outcome.workers.iter().map(|w| w.report.corpus_size).sum();
    assert!(outcome.corpus.len() <= summed);
    // With jobs=1 the merged corpus is exactly the single worker's: its
    // advertised corpus size matches the global corpus.
    let single = CampaignDriver::new(config)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert_eq!(single.report.corpus_size, single.corpus.len());
    assert_eq!(single.workers[0].report.corpus_size, single.corpus.len());
}

#[test]
fn seeded_sharded_runs_build_on_donor_corpora() {
    let donor = CampaignDriver::new(config(31, 3_000))
        .with_jobs(2)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    let receiver = CampaignDriver::new(config(32, 3_000))
        .with_jobs(2)
        .with_seeds(donor.corpus.clone())
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert!(
        receiver.report.unique_traces > donor.report.unique_traces,
        "seeding must carry the donor's coverage forward"
    );
    // Donor seeds are admitted into the receiver's merged corpus.
    let receiver_keys: HashSet<(u64, u64)> = receiver
        .corpus
        .iter()
        .map(SeedEntry::coverage_key)
        .collect();
    for entry in &donor.corpus {
        assert!(
            receiver_keys.contains(&entry.coverage_key()),
            "donor seed lost in the seeded run"
        );
    }
}

#[test]
fn sharded_reference_campaign_stays_clean() {
    let config = config(21, 6_000);
    let outcome = CampaignDriver::new(config)
        .with_jobs(3)
        .run(|_| Ok(Hart::new(MEM)))
        .unwrap();
    assert!(
        outcome.report.is_clean(),
        "reference vs reference diverged:\n{outcome}"
    );
    assert!(outcome.report.instructions_generated >= 6_000);
    let report = outcome.to_string();
    assert!(report.contains("worker 2:"), "{report}");
    assert!(report.contains("steps/sec aggregate"), "{report}");
}
