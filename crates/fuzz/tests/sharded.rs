//! Sharded-campaign integration tests: merge algebra, fingerprint
//! deduplication, per-worker determinism, the jobs=1 identity, and the
//! worker-corpus merge that feeds corpus persistence.

use std::collections::HashSet;

use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

/// A report with at least one divergence, from a mutant campaign of the
/// given budget.
fn divergent_report(seed: u64, scenario: BugScenario, budget: u64) -> CampaignReport {
    let mut dut = MutantHart::new(MEM, scenario);
    let report = Campaign::new(config(seed, budget)).run(&mut dut);
    assert!(!report.is_clean(), "campaign produced no divergence");
    report
}

#[test]
fn merging_is_associative() {
    let a = divergent_report(1, BugScenario::B2ReservedRounding, 2_000);
    let b = divergent_report(2, BugScenario::OffByOneImmediate, 2_000);
    let c = divergent_report(3, BugScenario::DroppedFflags, 3_000);

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);

    let mut right_tail = b.clone();
    right_tail.merge(&c);
    let mut right = a.clone();
    right.merge(&right_tail);

    assert_eq!(left, right, "(a·b)·c != a·(b·c)");

    // Merging the empty report into a is the identity; merging a into
    // the empty report reproduces a with its findings deduplicated.
    let mut into_a = a.clone();
    into_a.merge(&CampaignReport::default());
    assert_eq!(into_a, a);
    let mut from_empty = CampaignReport::default();
    from_empty.merge(&a);
    assert_eq!(from_empty.divergent_runs, a.divergent_runs);
    assert_eq!(from_empty.programs, a.programs);
    let fingerprints = |report: &CampaignReport| {
        let mut prints: Vec<u64> = report
            .divergences
            .iter()
            .map(Divergence::fingerprint)
            .collect();
        prints.sort_unstable();
        prints
    };
    let mut deduped = fingerprints(&a);
    deduped.dedup();
    assert_eq!(fingerprints(&from_empty), deduped);
}

#[test]
fn merge_deduplicates_findings_by_fingerprint() {
    // A small budget keeps the report under the 16-finding cap so there
    // is room for merged-in findings.
    let a = divergent_report(1, BugScenario::B2ReservedRounding, 600);
    assert!(a.divergences.len() < 16, "report already at the cap");
    let mut doubled = a.clone();
    doubled.merge(&a);
    assert_eq!(
        doubled.divergences.len(),
        a.divergences.len(),
        "identical findings were not deduplicated"
    );
    assert_eq!(doubled.divergent_runs, 2 * a.divergent_runs);
    assert_eq!(doubled.programs, 2 * a.programs);

    // A different scenario's findings fingerprint differently and merge in.
    let b = divergent_report(2, BugScenario::OffByOneImmediate, 2_000);
    let mut combined = a.clone();
    combined.merge(&b);
    assert!(combined.divergences.len() > a.divergences.len());
}

#[test]
fn jobs_one_is_bit_identical_to_the_single_threaded_campaign() {
    let config = config(0xF00D, 2_000);
    let mut dut = Hart::new(MEM);
    let single = Campaign::new(config.clone()).run(&mut dut);
    let sharded = run_sharded(&config, 1, |_| Hart::new(MEM));
    assert_eq!(sharded.merged, single);
    assert_eq!(sharded.workers.len(), 1);
    assert_eq!(sharded.workers[0].report, single);
    assert_eq!(sharded.workers[0].seed, config.seed);
}

#[test]
fn workers_are_deterministic_regardless_of_scheduling_and_job_count() {
    let config = config(0xBEEF, 4_000);
    let first = run_sharded(&config, 4, |_| Hart::new(MEM));
    let second = run_sharded(&config, 4, |_| Hart::new(MEM));
    assert_eq!(first.merged, second.merged, "sharded run not reproducible");
    assert_eq!(first.workers, second.workers);

    // Every worker's report equals a standalone campaign run from its
    // shard config: worker results depend only on (master seed, index,
    // budget slice), never on what the sibling threads did.
    for worker in &first.workers {
        let worker_config = shard_config(&config, 4, worker.worker);
        assert_eq!(worker.seed, worker_config.seed);
        let mut dut = Hart::new(MEM);
        let standalone = Campaign::new(worker_config).run(&mut dut);
        assert_eq!(
            worker.report, standalone,
            "worker {} diverged from its standalone replay",
            worker.worker
        );
    }
}

#[test]
fn sharded_mutant_campaign_detects_and_deduplicates_the_bug() {
    let config = config(7, 8_000);
    let sharded = run_sharded(&config, 4, |_| {
        MutantHart::new(MEM, BugScenario::B2ReservedRounding)
    });
    assert!(
        !sharded.merged.is_clean(),
        "b2 went undetected across 4 workers:\n{sharded}"
    );
    // Dedup holds across the merged view.
    let mut fingerprints: Vec<u64> = sharded
        .merged
        .divergences
        .iter()
        .map(Divergence::fingerprint)
        .collect();
    fingerprints.sort_unstable();
    let before = fingerprints.len();
    fingerprints.dedup();
    assert_eq!(
        before,
        fingerprints.len(),
        "duplicate fingerprints survived"
    );
    // Coverage is the union, never more than the per-worker sum.
    let summed: usize = sharded.workers.iter().map(|w| w.report.unique_traces).sum();
    assert!(sharded.merged.unique_traces <= summed);
    assert!(sharded.merged.unique_traces > 0);
}

#[test]
fn worker_corpora_are_merged_into_the_report_not_dropped() {
    let config = config(5, 6_000);
    let sharded = run_sharded(&config, 3, |_| Hart::new(MEM));
    assert!(
        !sharded.corpus.is_empty(),
        "worker corpora must survive the merge"
    );
    // The merged corpus is deduped by coverage key and its size is what
    // the merged report advertises.
    let keys: HashSet<(u64, u64)> = sharded.corpus.iter().map(SeedEntry::coverage_key).collect();
    assert_eq!(keys.len(), sharded.corpus.len(), "duplicate keys survived");
    assert_eq!(sharded.merged.corpus_size, sharded.corpus.len());
    // Every entry came from some worker; the union covers every worker's
    // coverage-earning traces.
    let summed: usize = sharded.workers.iter().map(|w| w.report.corpus_size).sum();
    assert!(sharded.corpus.len() <= summed);
    // With jobs=1 the merged corpus is exactly the single campaign's.
    let single_shard = run_sharded(&config, 1, |_| Hart::new(MEM));
    let mut dut = Hart::new(MEM);
    let mut campaign = Campaign::new(config);
    campaign.run(&mut dut);
    assert_eq!(single_shard.corpus, campaign.corpus().entries());
}

#[test]
fn seeded_sharded_runs_build_on_donor_corpora() {
    let donor = run_sharded(&config(31, 3_000), 2, |_| Hart::new(MEM));
    let receiver = run_sharded_seeded(&config(32, 3_000), 2, &donor.corpus, |_| Hart::new(MEM));
    assert!(
        receiver.merged.unique_traces > donor.merged.unique_traces,
        "seeding must carry the donor's coverage forward"
    );
    // Donor seeds are admitted into the receiver's merged corpus.
    let receiver_keys: HashSet<(u64, u64)> = receiver
        .corpus
        .iter()
        .map(SeedEntry::coverage_key)
        .collect();
    for entry in &donor.corpus {
        assert!(
            receiver_keys.contains(&entry.coverage_key()),
            "donor seed lost in the seeded run"
        );
    }
}

#[test]
fn sharded_reference_campaign_stays_clean() {
    let config = config(21, 6_000);
    let sharded = run_sharded(&config, 3, |_| Hart::new(MEM));
    assert!(
        sharded.merged.is_clean(),
        "reference vs reference diverged:\n{sharded}"
    );
    assert!(sharded.merged.instructions_generated >= 6_000);
    let report = sharded.to_string();
    assert!(report.contains("worker 2:"), "{report}");
    assert!(report.contains("steps/sec aggregate"), "{report}");
}
