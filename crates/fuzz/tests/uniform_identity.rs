//! Frozen-behaviour property test for the uniform schedule.
//!
//! The scheduler rework (power schedules, calibration, weighted
//! selection) must leave `--schedule uniform` byte-identical to the
//! pre-scheduler campaign: same report text on stdout and the same
//! corpus content (programs, trace digests, trap-cause sets) for every
//! seed. These fingerprints were captured at the commit immediately
//! before the scheduler landed (PR 7 HEAD) by running this exact
//! workload and folding every observable into an FNV accumulator; the
//! test re-runs the workload and requires the identical fold.
//!
//! The workload now runs through [`CampaignDriver`] at jobs=1 — whose
//! bit-identity to the historical single-threaded campaign is exactly
//! what keeps these frozen fingerprints reachable.
//!
//! The corpus fold deliberately covers only the fields that existed
//! before the format grew calibration metadata — the on-disk bytes
//! necessarily change with `FORMAT_VERSION`, but the *behavioural*
//! content (which programs earned admission, with which coverage keys)
//! must not.

use tf_fuzz::prelude::*;

const MEM: u64 = 1 << 16;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold_u64(acc: u64, value: u64) -> u64 {
    (acc ^ value).wrapping_mul(FNV_PRIME)
}

fn fold_bytes(mut acc: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        acc = (acc ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    acc
}

fn fold_campaign(mut acc: u64, outcome: &DriveOutcome) -> u64 {
    acc = fold_bytes(acc, outcome.report.to_string().as_bytes());
    for entry in &outcome.corpus {
        acc = fold_u64(acc, entry.program.len() as u64);
        for insn in &entry.program {
            acc = fold_u64(
                acc,
                u64::from(insn.encode().expect("corpus programs encode")),
            );
        }
        acc = fold_u64(acc, entry.trace_digest);
        acc = fold_u64(acc, entry.trap_causes);
    }
    acc
}

fn config(seed: u64, budget: u64) -> CampaignConfig {
    CampaignConfig::default()
        .with_seed(seed)
        .with_instruction_budget(budget)
        .with_mem_size(MEM)
}

/// 100 clean campaigns: report text + admitted-corpus content.
fn clean_fingerprint() -> u64 {
    let mut acc = FNV_OFFSET;
    for seed in 0..100 {
        let outcome = CampaignDriver::new(config(seed, 800))
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();
        acc = fold_campaign(acc, &outcome);
    }
    acc
}

/// Divergent campaigns against the four scenarios that existed at the
/// baseline commit (later catalogue additions have no pre-scheduler
/// behaviour to preserve, so they are deliberately not in this fold).
fn mutant_fingerprint() -> u64 {
    let mut acc = FNV_OFFSET;
    for id in ["b2", "imm", "fflags", "csrmask"] {
        let scenario = BugScenario::parse(id).expect("baseline scenario id");
        for seed in 0..10 {
            let outcome = CampaignDriver::new(config(seed, 1_500))
                .run(|_| Ok(MutantHart::new(MEM, scenario)))
                .unwrap();
            acc = fold_campaign(acc, &outcome);
        }
    }
    acc
}

/// Fingerprints captured by running this workload at the pre-scheduler
/// commit (PR 7 HEAD) — see the module doc.
const CLEAN_FINGERPRINT: u64 = 0x23e1_0bb7_ca94_1522;
const MUTANT_FINGERPRINT: u64 = 0x7c9f_120b_0bdc_43ce;

#[test]
fn uniform_schedule_reproduces_the_pre_scheduler_clean_campaigns() {
    assert_eq!(
        clean_fingerprint(),
        CLEAN_FINGERPRINT,
        "uniform-schedule clean campaigns drifted from the pre-scheduler baseline"
    );
}

#[test]
fn uniform_schedule_reproduces_the_pre_scheduler_mutant_campaigns() {
    assert_eq!(
        mutant_fingerprint(),
        MUTANT_FINGERPRINT,
        "uniform-schedule mutant campaigns drifted from the pre-scheduler baseline"
    );
}
