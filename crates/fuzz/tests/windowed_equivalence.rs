//! Property test for the tentpole guarantee of windowed diffing: for
//! every window size, [`DiffEngine::diff`] returns the *bit-identical*
//! verdict of the exhaustive `window = 1` loop — same agreement
//! metadata, and on divergence the same step, trace entries and digests.
//!
//! The sweep drives generated programs (the same generator campaigns
//! use) against every [`BugScenario`] mutant plus the clean reference,
//! at windows 1, 4, 16 and 64. Reconvergent divergences — the ones a
//! state-digest-only sample would miss — occur naturally in this mix
//! (the csrmask and fflags scenarios produce them), so the sweep
//! exercises the write-history fold, not just the happy path.

use tf_fuzz::prelude::*;
use tf_fuzz::{GeneratorConfig, ProgramGenerator};
use tf_riscv::{InstructionLibrary, LibraryConfig};

const MEM: u64 = 1 << 16;
const PROGRAM_LEN: usize = 32;
const MAX_STEPS: u64 = 128;

/// Seeds per scenario: enough for release CI to sweep 1000 per scenario
/// while keeping the tier-1 debug run (which also pays for the
/// debug-assert digest oracles) fast.
const SEEDS: u64 = if cfg!(debug_assertions) { 150 } else { 1000 };

fn sweep(scenario: Option<BugScenario>) {
    let library = InstructionLibrary::new(LibraryConfig::all(), 0xA11);
    let mut generator = ProgramGenerator::with_config(library, 0xA11, GeneratorConfig::default());
    let exact = DiffEngine::new(
        DiffConfig::default()
            .with_max_steps(MAX_STEPS)
            .with_window(1),
    );
    let windowed: Vec<DiffEngine> = [4, 16, 64]
        .into_iter()
        .map(|window| {
            DiffEngine::new(
                DiffConfig::default()
                    .with_max_steps(MAX_STEPS)
                    .with_window(window),
            )
        })
        .collect();
    let mut reference = Hart::new(MEM);
    let mut divergences = 0u64;
    for seed in 0..SEEDS {
        let program = generator.generate(PROGRAM_LEN);
        let mut dut: Box<dyn Dut> = match scenario {
            Some(scenario) => Box::new(MutantHart::new(MEM, scenario)),
            None => Box::new(Hart::new(MEM)),
        };
        let expected = exact.diff(&mut reference, dut.as_mut(), &program).unwrap();
        if matches!(expected, DiffVerdict::Diverged(_)) {
            divergences += 1;
        }
        for engine in &windowed {
            let got = engine.diff(&mut reference, dut.as_mut(), &program).unwrap();
            assert_eq!(
                got,
                expected,
                "window {} drifted from exact at seed {seed} ({:?})",
                engine.config().window,
                scenario,
            );
        }
    }
    match scenario {
        // The generated mix must actually trip each mutant, or the
        // equivalence sweep would be vacuous for the divergence arm.
        Some(scenario) => assert!(
            divergences > 0,
            "{} never diverged across {SEEDS} seeds",
            scenario.id()
        ),
        None => assert_eq!(divergences, 0, "reference vs reference diverged"),
    }
}

/// Forwards every [`Dut`] method except `run`, which stays the default
/// per-step trait body. Campaigns driven through this wrapper take the
/// exact schedule the native block engine must reproduce.
struct PerStep<D: Dut>(D);

impl<D: Dut> Dut for PerStep<D> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn load(&mut self, base: u64, program: &[tf_riscv::Instruction]) -> Result<(), tf_arch::Trap> {
        self.0.load(base, program)
    }
    fn step(&mut self) -> tf_arch::StepOutcome {
        self.0.step()
    }
    fn pc(&self) -> u64 {
        self.0.pc()
    }
    fn digest(&self) -> u64 {
        self.0.digest()
    }
    fn write_history(&self) -> u64 {
        self.0.write_history()
    }
    fn enable_tracing(&mut self) {
        self.0.enable_tracing();
    }
    fn take_trace(&mut self) -> Option<tf_arch::ExecutionTrace> {
        self.0.take_trace()
    }
}

/// Whole-campaign stdout is byte-identical whether the reference hart
/// runs its native block engine or the default per-step `Dut::run`: the
/// merged [`CampaignReport`] rendering (the campaign's stdout surface)
/// and every per-worker counter must match exactly, clean and divergent
/// alike.
#[test]
fn campaign_stdout_is_identical_under_the_native_run_engine() {
    let config = CampaignConfig::default()
        .with_seed(0xD1FF)
        .with_instruction_budget(6_000)
        .with_mem_size(MEM)
        .with_max_steps_per_program(MAX_STEPS);
    for jobs in [1, 2] {
        let native = CampaignDriver::new(config.clone())
            .with_jobs(jobs)
            .run(|_| Ok(Hart::new(MEM)))
            .unwrap();
        let per_step = CampaignDriver::new(config.clone())
            .with_jobs(jobs)
            .run(|_| Ok(PerStep(Hart::new(MEM))))
            .unwrap();
        assert_eq!(
            native.report.to_string(),
            per_step.report.to_string(),
            "campaign stdout drifted under the native engine (jobs {jobs})"
        );
        assert_eq!(
            native.report, per_step.report,
            "merged reports (jobs {jobs})"
        );
        assert_eq!(
            native.workers, per_step.workers,
            "worker reports (jobs {jobs})"
        );
        // Divergent campaigns too: a mutant DUT against the native
        // reference must render the same divergence text as against the
        // per-step reference.
        for scenario in BugScenario::ALL {
            let native = CampaignDriver::new(config.clone())
                .with_jobs(jobs)
                .run(|_| Ok(MutantHart::new(MEM, scenario)))
                .unwrap();
            let per_step = CampaignDriver::new(config.clone())
                .with_jobs(jobs)
                .run(|_| Ok(PerStep(MutantHart::new(MEM, scenario))))
                .unwrap();
            assert_eq!(
                native.report.to_string(),
                per_step.report.to_string(),
                "{} campaign stdout drifted (jobs {jobs})",
                scenario.id()
            );
            assert_eq!(
                native.workers,
                per_step.workers,
                "{} workers",
                scenario.id()
            );
        }
    }
}

#[test]
fn clean_reference_agrees_at_every_window() {
    sweep(None);
}

#[test]
fn b2_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::B2ReservedRounding));
}

#[test]
fn imm_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::OffByOneImmediate));
}

#[test]
fn fflags_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::DroppedFflags));
}

#[test]
fn csrmask_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::CsrWriteMask));
}

#[test]
fn btrunc_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::BranchOffsetTruncation));
}

#[test]
fn ldsext_verdicts_are_window_invariant() {
    sweep(Some(BugScenario::SignExtensionDroppedLoad));
}
