//! Control-and-status-register addresses and field layouts.
//!
//! Only the CSRs that the reference model, the DUT models and the bug
//! scenarios touch are modelled. The set mirrors the registers the paper's
//! checker tracks (`fcsr`, `fflags`, `frm`, `mstatus`, `mepc`, `mcause`,
//! `mtval`/`stval`, `minstret`, `mcycle`, `misa`, `mtvec`).

use crate::RiscvError;

/// A CSR address, guaranteed to be within the 12-bit address space.
///
/// Construct with [`CsrAddr::new`]; the inner value is crate-private so the
/// validation cannot be bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CsrAddr(pub(crate) u16);

impl CsrAddr {
    /// Create a CSR address, validating that it fits the 12-bit address
    /// space.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::InvalidCsrAddress`] when `addr >= 0x1000`.
    pub fn new(addr: u16) -> Result<Self, RiscvError> {
        if addr < 0x1000 {
            Ok(CsrAddr(addr))
        } else {
            Err(RiscvError::InvalidCsrAddress { addr })
        }
    }

    /// The raw 12-bit address.
    #[must_use]
    pub fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for CsrAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match name(*self) {
            Some(n) => f.write_str(n),
            None => write!(f, "csr{:#05x}", self.0),
        }
    }
}

/// Floating-point accrued exception flags (`fflags`, CSR 0x001).
pub const FFLAGS: CsrAddr = CsrAddr(0x001);
/// Floating-point dynamic rounding mode (`frm`, CSR 0x002).
pub const FRM: CsrAddr = CsrAddr(0x002);
/// Floating-point control and status register (`fcsr`, CSR 0x003).
pub const FCSR: CsrAddr = CsrAddr(0x003);
/// Supervisor trap value register.
pub const STVAL: CsrAddr = CsrAddr(0x143);
/// Supervisor trap cause.
pub const SCAUSE: CsrAddr = CsrAddr(0x142);
/// Supervisor exception program counter.
pub const SEPC: CsrAddr = CsrAddr(0x141);
/// Machine status register.
pub const MSTATUS: CsrAddr = CsrAddr(0x300);
/// Machine ISA register.
pub const MISA: CsrAddr = CsrAddr(0x301);
/// Machine trap-vector base address.
pub const MTVEC: CsrAddr = CsrAddr(0x305);
/// Machine exception program counter.
pub const MEPC: CsrAddr = CsrAddr(0x341);
/// Machine trap cause.
pub const MCAUSE: CsrAddr = CsrAddr(0x342);
/// Machine trap value.
pub const MTVAL: CsrAddr = CsrAddr(0x343);
/// Machine cycle counter.
pub const MCYCLE: CsrAddr = CsrAddr(0xB00);
/// Machine retired-instruction counter.
pub const MINSTRET: CsrAddr = CsrAddr(0xB02);
/// Cycle counter (read-only shadow).
pub const CYCLE: CsrAddr = CsrAddr(0xC00);
/// Retired-instruction counter (read-only shadow).
pub const INSTRET: CsrAddr = CsrAddr(0xC02);

/// CSRs the fuzzer is allowed to target when generating `Zicsr` instructions.
/// Restricting the set keeps generated programs recoverable (no writes to
/// `mtvec`-like registers that would derail execution) while still exercising
/// the CSR datapath, matching the paper's template-based exception handling.
pub const FUZZABLE: &[CsrAddr] = &[
    FFLAGS, FRM, FCSR, MSTATUS, MEPC, MCAUSE, MTVAL, STVAL, MCYCLE, MINSTRET,
];

/// All modelled CSRs.
pub const ALL: &[CsrAddr] = &[
    FFLAGS, FRM, FCSR, STVAL, SCAUSE, SEPC, MSTATUS, MISA, MTVEC, MEPC, MCAUSE, MTVAL, MCYCLE,
    MINSTRET, CYCLE, INSTRET,
];

/// Symbolic name of a modelled CSR, if it is one of the known addresses.
#[must_use]
pub fn name(addr: CsrAddr) -> Option<&'static str> {
    Some(match addr {
        FFLAGS => "fflags",
        FRM => "frm",
        FCSR => "fcsr",
        STVAL => "stval",
        SCAUSE => "scause",
        SEPC => "sepc",
        MSTATUS => "mstatus",
        MISA => "misa",
        MTVEC => "mtvec",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MTVAL => "mtval",
        MCYCLE => "mcycle",
        MINSTRET => "minstret",
        CYCLE => "cycle",
        INSTRET => "instret",
        _ => return None,
    })
}

/// Bit positions of the accrued floating-point exception flags inside
/// `fflags` / `fcsr[4:0]`.
pub mod fflags {
    /// Inexact.
    pub const NX: u64 = 1 << 0;
    /// Underflow.
    pub const UF: u64 = 1 << 1;
    /// Overflow.
    pub const OF: u64 = 1 << 2;
    /// Divide by zero.
    pub const DZ: u64 = 1 << 3;
    /// Invalid operation.
    pub const NV: u64 = 1 << 4;
    /// Mask covering every flag.
    pub const MASK: u64 = 0x1F;
}

/// Field layout of `fcsr`: flags in bits 4:0, rounding mode in bits 7:5.
pub mod fcsr {
    /// Extract the accrued exception flags.
    #[must_use]
    pub fn flags(value: u64) -> u64 {
        value & super::fflags::MASK
    }

    /// Extract the dynamic rounding mode field.
    #[must_use]
    pub fn frm(value: u64) -> u8 {
        ((value >> 5) & 0b111) as u8
    }

    /// Compose an `fcsr` value from flags and rounding mode.
    #[must_use]
    pub fn compose(flags: u64, frm: u8) -> u64 {
        (flags & super::fflags::MASK) | ((u64::from(frm) & 0b111) << 5)
    }
}

/// Exception causes used by the trap model (subset of the privileged spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cause {
    /// Instruction address misaligned.
    InstructionMisaligned,
    /// Illegal instruction.
    IllegalInstruction,
    /// Breakpoint (`ebreak`).
    Breakpoint,
    /// Load address misaligned.
    LoadMisaligned,
    /// Load access fault.
    LoadFault,
    /// Store address misaligned.
    StoreMisaligned,
    /// Store access fault.
    StoreFault,
    /// Environment call (`ecall`).
    EnvironmentCall,
}

impl Cause {
    /// Numeric cause code as written to `mcause`.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Cause::InstructionMisaligned => 0,
            Cause::IllegalInstruction => 2,
            Cause::Breakpoint => 3,
            Cause::LoadMisaligned => 4,
            Cause::LoadFault => 5,
            Cause::StoreMisaligned => 6,
            Cause::StoreFault => 7,
            Cause::EnvironmentCall => 11,
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Cause::InstructionMisaligned => "instruction address misaligned",
            Cause::IllegalInstruction => "illegal instruction",
            Cause::Breakpoint => "breakpoint",
            Cause::LoadMisaligned => "load address misaligned",
            Cause::LoadFault => "load access fault",
            Cause::StoreMisaligned => "store address misaligned",
            Cause::StoreFault => "store access fault",
            Cause::EnvironmentCall => "environment call",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_address_space() {
        assert_eq!(CsrAddr::new(0x003), Ok(FCSR));
        assert_eq!(CsrAddr::new(0xFFF), Ok(CsrAddr(0xFFF)));
        assert_eq!(
            CsrAddr::new(0x1000),
            Err(RiscvError::InvalidCsrAddress { addr: 0x1000 })
        );
    }

    #[test]
    fn csr_names_resolve() {
        assert_eq!(name(FCSR), Some("fcsr"));
        assert_eq!(name(MINSTRET), Some("minstret"));
        assert_eq!(name(CsrAddr(0x7C0)), None);
    }

    #[test]
    fn every_modelled_csr_has_a_name() {
        for &addr in ALL {
            assert!(name(addr).is_some(), "{addr:?} has no name");
        }
    }

    #[test]
    fn fuzzable_is_subset_of_all() {
        for addr in FUZZABLE {
            assert!(ALL.contains(addr));
        }
    }

    #[test]
    fn fcsr_compose_round_trip() {
        let v = fcsr::compose(fflags::DZ | fflags::NX, 0b010);
        assert_eq!(fcsr::flags(v), fflags::DZ | fflags::NX);
        assert_eq!(fcsr::frm(v), 0b010);
    }

    #[test]
    fn cause_codes_match_privileged_spec() {
        assert_eq!(Cause::IllegalInstruction.code(), 2);
        assert_eq!(Cause::Breakpoint.code(), 3);
        assert_eq!(Cause::EnvironmentCall.code(), 11);
    }

    #[test]
    fn display_uses_symbolic_names() {
        assert_eq!(FCSR.to_string(), "fcsr");
        assert_eq!(CsrAddr(0x7C0).to_string(), "csr0x7c0");
    }
}
