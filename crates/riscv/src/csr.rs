//! Control-and-status-register addresses and field layouts.
//!
//! Only the CSRs that the reference model, the DUT models and the bug
//! scenarios touch are modelled. The set mirrors the registers the paper's
//! checker tracks (`fcsr`, `fflags`, `frm`, `mstatus`, `mepc`, `mcause`,
//! `mtval`/`stval`, `minstret`, `mcycle`, `misa`, `mtvec`).

use crate::RiscvError;

/// A CSR address, guaranteed to be within the 12-bit address space.
///
/// Construct with [`CsrAddr::new`]; the inner value is crate-private so the
/// validation cannot be bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CsrAddr(pub(crate) u16);

impl CsrAddr {
    /// Create a CSR address, validating that it fits the 12-bit address
    /// space.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::InvalidCsrAddress`] when `addr >= 0x1000`.
    pub fn new(addr: u16) -> Result<Self, RiscvError> {
        if addr < 0x1000 {
            Ok(CsrAddr(addr))
        } else {
            Err(RiscvError::InvalidCsrAddress { addr })
        }
    }

    /// The raw 12-bit address.
    #[must_use]
    pub fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for CsrAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match name(*self) {
            Some(n) => f.write_str(n),
            None => write!(f, "csr{:#05x}", self.0),
        }
    }
}

/// Floating-point accrued exception flags (`fflags`, CSR 0x001).
pub const FFLAGS: CsrAddr = CsrAddr(0x001);
/// Floating-point dynamic rounding mode (`frm`, CSR 0x002).
pub const FRM: CsrAddr = CsrAddr(0x002);
/// Floating-point control and status register (`fcsr`, CSR 0x003).
pub const FCSR: CsrAddr = CsrAddr(0x003);
/// Supervisor trap value register.
pub const STVAL: CsrAddr = CsrAddr(0x143);
/// Supervisor trap cause.
pub const SCAUSE: CsrAddr = CsrAddr(0x142);
/// Supervisor exception program counter.
pub const SEPC: CsrAddr = CsrAddr(0x141);
/// Machine status register.
pub const MSTATUS: CsrAddr = CsrAddr(0x300);
/// Machine ISA register.
pub const MISA: CsrAddr = CsrAddr(0x301);
/// Machine interrupt-enable register.
pub const MIE: CsrAddr = CsrAddr(0x304);
/// Machine trap-vector base address.
pub const MTVEC: CsrAddr = CsrAddr(0x305);
/// Machine exception program counter.
pub const MEPC: CsrAddr = CsrAddr(0x341);
/// Machine trap cause.
pub const MCAUSE: CsrAddr = CsrAddr(0x342);
/// Machine trap value.
pub const MTVAL: CsrAddr = CsrAddr(0x343);
/// Machine interrupt-pending register.
pub const MIP: CsrAddr = CsrAddr(0x344);
/// Machine cycle counter.
pub const MCYCLE: CsrAddr = CsrAddr(0xB00);
/// Machine retired-instruction counter.
pub const MINSTRET: CsrAddr = CsrAddr(0xB02);
/// Cycle counter (read-only shadow).
pub const CYCLE: CsrAddr = CsrAddr(0xC00);
/// Retired-instruction counter (read-only shadow).
pub const INSTRET: CsrAddr = CsrAddr(0xC02);
/// Hart ID (read-only).
pub const MHARTID: CsrAddr = CsrAddr(0xF14);

/// CSRs the fuzzer is allowed to target when generating `Zicsr` instructions.
/// Restricting the set keeps generated programs recoverable (no writes to
/// `mtvec`-like registers that would derail execution) while still exercising
/// the CSR datapath, matching the paper's template-based exception handling.
pub const FUZZABLE: &[CsrAddr] = &[
    FFLAGS, FRM, FCSR, MSTATUS, MEPC, MCAUSE, MTVAL, STVAL, MCYCLE, MINSTRET,
];

/// All modelled CSRs.
pub const ALL: &[CsrAddr] = &[
    FFLAGS, FRM, FCSR, STVAL, SCAUSE, SEPC, MSTATUS, MISA, MIE, MTVEC, MEPC, MCAUSE, MTVAL, MIP,
    MCYCLE, MINSTRET, CYCLE, INSTRET, MHARTID,
];

/// Symbolic name of a modelled CSR, if it is one of the known addresses.
#[must_use]
pub fn name(addr: CsrAddr) -> Option<&'static str> {
    Some(match addr {
        FFLAGS => "fflags",
        FRM => "frm",
        FCSR => "fcsr",
        STVAL => "stval",
        SCAUSE => "scause",
        SEPC => "sepc",
        MSTATUS => "mstatus",
        MISA => "misa",
        MIE => "mie",
        MTVEC => "mtvec",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MTVAL => "mtval",
        MIP => "mip",
        MCYCLE => "mcycle",
        MINSTRET => "minstret",
        CYCLE => "cycle",
        INSTRET => "instret",
        MHARTID => "mhartid",
        _ => return None,
    })
}

/// Bit positions of the accrued floating-point exception flags inside
/// `fflags` / `fcsr[4:0]`.
pub mod fflags {
    /// Inexact.
    pub const NX: u64 = 1 << 0;
    /// Underflow.
    pub const UF: u64 = 1 << 1;
    /// Overflow.
    pub const OF: u64 = 1 << 2;
    /// Divide by zero.
    pub const DZ: u64 = 1 << 3;
    /// Invalid operation.
    pub const NV: u64 = 1 << 4;
    /// Mask covering every flag.
    pub const MASK: u64 = 0x1F;
}

/// Field layout of `fcsr`: flags in bits 4:0, rounding mode in bits 7:5.
pub mod fcsr {
    /// Extract the accrued exception flags.
    #[must_use]
    pub fn flags(value: u64) -> u64 {
        value & super::fflags::MASK
    }

    /// Extract the dynamic rounding mode field.
    #[must_use]
    pub fn frm(value: u64) -> u8 {
        ((value >> 5) & 0b111) as u8
    }

    /// Compose an `fcsr` value from flags and rounding mode.
    #[must_use]
    pub fn compose(flags: u64, frm: u8) -> u64 {
        (flags & super::fflags::MASK) | ((u64::from(frm) & 0b111) << 5)
    }
}

/// Field layout of `mstatus` (the machine-mode subset the reference model
/// tracks).
pub mod mstatus {
    /// Machine interrupt enable (bit 3).
    pub const MIE: u64 = 1 << 3;
    /// Previous machine interrupt enable, saved on trap entry (bit 7).
    pub const MPIE: u64 = 1 << 7;
    /// Shift of the previous-privilege field (bits 12:11).
    pub const MPP_SHIFT: u32 = 11;
    /// Mask of the previous-privilege field in place.
    pub const MPP_MASK: u64 = 0b11 << MPP_SHIFT;
    /// Machine-mode encoding of the privilege field.
    pub const MPP_MACHINE: u64 = 0b11 << MPP_SHIFT;
    /// Shift of the floating-point unit status field (bits 14:13).
    pub const FS_SHIFT: u32 = 13;
    /// Mask of the floating-point unit status field in place.
    pub const FS_MASK: u64 = 0b11 << FS_SHIFT;
    /// FS encoding: FP unit off — FP instructions raise illegal
    /// instruction.
    pub const FS_OFF: u64 = 0b00;
    /// FS encoding: initial state.
    pub const FS_INITIAL: u64 = 0b01;
    /// FS encoding: clean state.
    pub const FS_CLEAN: u64 = 0b10;
    /// FS encoding: dirty state (FP state has been written).
    pub const FS_DIRTY: u64 = 0b11;

    /// Extract the FS field value (one of the `FS_*` encodings).
    #[must_use]
    pub fn fs(value: u64) -> u64 {
        (value & FS_MASK) >> FS_SHIFT
    }
}

/// Field layout of `mtvec`: trap-vector base address and mode.
pub mod mtvec {
    /// Mask of the mode field (bits 1:0).
    pub const MODE_MASK: u64 = 0b11;
    /// Direct mode: all traps set `pc` to `base`.
    pub const MODE_DIRECT: u64 = 0b00;
    /// Vectored mode: interrupts offset into the table (unused by the
    /// machine-mode exception-only model, which is WARL-fixed to direct).
    pub const MODE_VECTORED: u64 = 0b01;

    /// Extract the 4-byte-aligned trap-vector base address.
    #[must_use]
    pub fn base(value: u64) -> u64 {
        value & !MODE_MASK
    }

    /// Extract the mode field.
    #[must_use]
    pub fn mode(value: u64) -> u64 {
        value & MODE_MASK
    }
}

/// Field layout of `mcause`: interrupt bit and exception code.
pub mod mcause {
    /// The interrupt bit (bit 63 on RV64).
    pub const INTERRUPT: u64 = 1 << 63;

    /// True when the cause records an interrupt rather than an exception.
    #[must_use]
    pub fn is_interrupt(value: u64) -> bool {
        value & INTERRUPT != 0
    }

    /// Extract the exception (or interrupt) code.
    #[must_use]
    pub fn code(value: u64) -> u64 {
        value & !INTERRUPT
    }
}

/// Bit positions shared by `mie` (interrupt enable) and `mip` (interrupt
/// pending).
pub mod mi {
    /// Machine software interrupt (bit 3).
    pub const MSI: u64 = 1 << 3;
    /// Machine timer interrupt (bit 7).
    pub const MTI: u64 = 1 << 7;
    /// Machine external interrupt (bit 11).
    pub const MEI: u64 = 1 << 11;
    /// Mask covering every machine-mode interrupt bit.
    pub const MASK: u64 = MSI | MTI | MEI;
}

/// Exception causes used by the trap model (subset of the privileged spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cause {
    /// Instruction address misaligned.
    InstructionMisaligned,
    /// Instruction access fault.
    InstructionFault,
    /// Illegal instruction.
    IllegalInstruction,
    /// Breakpoint (`ebreak`).
    Breakpoint,
    /// Load address misaligned.
    LoadMisaligned,
    /// Load access fault.
    LoadFault,
    /// Store address misaligned.
    StoreMisaligned,
    /// Store access fault.
    StoreFault,
    /// Environment call (`ecall`).
    EnvironmentCall,
}

impl Cause {
    /// Numeric cause code as written to `mcause`.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Cause::InstructionMisaligned => 0,
            Cause::InstructionFault => 1,
            Cause::IllegalInstruction => 2,
            Cause::Breakpoint => 3,
            Cause::LoadMisaligned => 4,
            Cause::LoadFault => 5,
            Cause::StoreMisaligned => 6,
            Cause::StoreFault => 7,
            Cause::EnvironmentCall => 11,
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Cause::InstructionMisaligned => "instruction address misaligned",
            Cause::InstructionFault => "instruction access fault",
            Cause::IllegalInstruction => "illegal instruction",
            Cause::Breakpoint => "breakpoint",
            Cause::LoadMisaligned => "load address misaligned",
            Cause::LoadFault => "load access fault",
            Cause::StoreMisaligned => "store address misaligned",
            Cause::StoreFault => "store access fault",
            Cause::EnvironmentCall => "environment call",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_address_space() {
        assert_eq!(CsrAddr::new(0x003), Ok(FCSR));
        assert_eq!(CsrAddr::new(0xFFF), Ok(CsrAddr(0xFFF)));
        assert_eq!(
            CsrAddr::new(0x1000),
            Err(RiscvError::InvalidCsrAddress { addr: 0x1000 })
        );
    }

    #[test]
    fn csr_names_resolve() {
        assert_eq!(name(FCSR), Some("fcsr"));
        assert_eq!(name(MINSTRET), Some("minstret"));
        assert_eq!(name(CsrAddr(0x7C0)), None);
    }

    #[test]
    fn every_modelled_csr_has_a_name() {
        for &addr in ALL {
            assert!(name(addr).is_some(), "{addr:?} has no name");
        }
    }

    #[test]
    fn fuzzable_is_subset_of_all() {
        for addr in FUZZABLE {
            assert!(ALL.contains(addr));
        }
    }

    #[test]
    fn fcsr_compose_round_trip() {
        let v = fcsr::compose(fflags::DZ | fflags::NX, 0b010);
        assert_eq!(fcsr::flags(v), fflags::DZ | fflags::NX);
        assert_eq!(fcsr::frm(v), 0b010);
    }

    #[test]
    fn cause_codes_match_privileged_spec() {
        assert_eq!(Cause::IllegalInstruction.code(), 2);
        assert_eq!(Cause::Breakpoint.code(), 3);
        assert_eq!(Cause::EnvironmentCall.code(), 11);
    }

    #[test]
    fn display_uses_symbolic_names() {
        assert_eq!(FCSR.to_string(), "fcsr");
        assert_eq!(CsrAddr(0x7C0).to_string(), "csr0x7c0");
    }

    #[test]
    fn machine_trap_csrs_are_named() {
        assert_eq!(name(MIE), Some("mie"));
        assert_eq!(name(MIP), Some("mip"));
        assert_eq!(name(MHARTID), Some("mhartid"));
        assert_eq!(MIE.to_string(), "mie");
        assert_eq!(MHARTID.to_string(), "mhartid");
    }

    #[test]
    fn mstatus_field_layout() {
        assert_eq!(mstatus::MIE, 0b1000);
        assert_eq!(mstatus::MPIE, 0b1000_0000);
        assert_eq!(mstatus::MPP_MACHINE, 0b11 << 11);
        assert_eq!(mstatus::fs(mstatus::FS_DIRTY << mstatus::FS_SHIFT), 0b11);
        assert_eq!(mstatus::fs(0), mstatus::FS_OFF);
    }

    #[test]
    fn mtvec_field_layout() {
        let v = 0x8000_0001u64;
        assert_eq!(mtvec::base(v), 0x8000_0000);
        assert_eq!(mtvec::mode(v), mtvec::MODE_VECTORED);
        assert_eq!(mtvec::mode(0x100), mtvec::MODE_DIRECT);
    }

    #[test]
    fn mcause_field_layout() {
        let v = mcause::INTERRUPT | 7;
        assert!(mcause::is_interrupt(v));
        assert_eq!(mcause::code(v), 7);
        assert!(!mcause::is_interrupt(Cause::IllegalInstruction.code()));
    }

    #[test]
    fn interrupt_bits_are_disjoint() {
        assert_eq!(mi::MSI & mi::MTI, 0);
        assert_eq!(mi::MASK, mi::MSI | mi::MTI | mi::MEI);
        assert_eq!(Cause::InstructionFault.code(), 1);
    }
}
