//! A readable disassembler: `Display` for [`Instruction`].
//!
//! Output follows the common assembler syntax (`addi x1, x2, -1`,
//! `lw x1, 8(x2)`, `amoadd.w.aqrl x5, x6, (x7)`), with CSRs printed by
//! their symbolic names when known. Test assertions and future trace
//! logging both rely on this rendering, so it stays deterministic and free
//! of padding.

use crate::insn::Instruction;
use crate::opcode::{Format, Opcode};
use crate::regs::Reg;
use crate::RoundingMode;
use std::fmt;

/// One of the `iorw` ordering sets of a `fence`.
fn fence_set(bits: i64) -> String {
    if bits == 0 {
        return "0".to_string();
    }
    let mut s = String::new();
    for (bit, c) in [(3, 'i'), (2, 'o'), (1, 'r'), (0, 'w')] {
        if bits >> bit & 1 != 0 {
            s.push(c);
        }
    }
    s
}

/// Render an optional register slot; absent slots never reach the output,
/// but rendering must stay total so `Display` cannot panic.
fn reg(slot: Option<Reg>) -> String {
    slot.map(|r| r.to_string()).unwrap_or_default()
}

/// Append `, rm` unless the mode is dynamic, matching the assembler
/// convention of leaving the default implicit.
fn rm_suffix(rm: Option<RoundingMode>) -> String {
    match rm {
        Some(m) if m != RoundingMode::Dyn => format!(", {m}"),
        _ => String::new(),
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = self.opcode();
        let ops = self.operands();
        let m = op.mnemonic();
        // The Operands view resolves register classes, so the renderer no
        // longer consults the per-format fpr metadata.
        let rd = reg(ops.rd());
        let rs1 = reg(ops.rs1());
        let rs2 = reg(ops.rs2());
        let imm = ops.imm().unwrap_or(0);
        match op.format() {
            Format::R | Format::Fp => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Format::I if op.is_load() || op == Opcode::Jalr => {
                write!(f, "{m} {rd}, {imm}({rs1})")
            }
            Format::I => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Format::FpLoad => write!(f, "{m} {rd}, {imm}({rs1})"),
            Format::S | Format::FpStore => write!(f, "{m} {rs2}, {imm}({rs1})"),
            Format::B => write!(f, "{m} {rs1}, {rs2}, {imm}"),
            // The stored immediate is sign-extended; print the 20-bit field
            // value so the operand is valid assembler syntax.
            Format::U => write!(f, "{m} {rd}, {:#x}", imm & 0xF_FFFF),
            Format::J => write!(f, "{m} {rd}, {imm}"),
            Format::Shamt | Format::ShamtW => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Format::Fence => {
                write!(
                    f,
                    "{m} {}, {}",
                    fence_set(imm >> 4 & 0xF),
                    fence_set(imm & 0xF)
                )
            }
            Format::System => f.write_str(m),
            Format::Csr => match ops.csr() {
                Some(csr) => write!(f, "{m} {rd}, {csr}, {rs1}"),
                None => write!(f, "{m} {rd}, ?, {rs1}"),
            },
            Format::CsrImm => match ops.csr() {
                Some(csr) => write!(f, "{m} {rd}, {csr}, {imm}"),
                None => write!(f, "{m} {rd}, ?, {imm}"),
            },
            Format::Amo => {
                let order = match (self.aq(), self.rl()) {
                    (false, false) => "",
                    (true, false) => ".aq",
                    (false, true) => ".rl",
                    (true, true) => ".aqrl",
                };
                match ops.rs2() {
                    // Load-reserved has no rs2 operand.
                    None => write!(f, "{m}{order} {rd}, ({rs1})"),
                    Some(_) => write!(f, "{m}{order} {rd}, {rs2}, ({rs1})"),
                }
            }
            Format::R4 => {
                let rs3 = reg(ops.rs3().map(Reg::F));
                write!(f, "{m} {rd}, {rs1}, {rs2}, {rs3}{}", rm_suffix(self.rm()))
            }
            Format::FpUnary => write!(f, "{m} {rd}, {rs1}{}", rm_suffix(self.rm())),
        }?;
        // Arithmetic Fp two-source ops carry an rm; comparisons do not.
        if matches!(op.format(), Format::Fp) {
            f.write_str(&rm_suffix(self.rm()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::imm::{BranchOffset, JumpOffset};
    use crate::{csr, Fpr, Gpr, Instruction, Opcode, Reg, RoundingMode};

    fn x(i: u8) -> Gpr {
        Gpr::new(i).unwrap()
    }

    fn fr(i: u8) -> Fpr {
        Fpr::new(i).unwrap()
    }

    #[test]
    fn integer_forms() {
        assert_eq!(
            Instruction::r_type(Opcode::Add, x(1), x(2), x(3)).to_string(),
            "add x1, x2, x3"
        );
        assert_eq!(
            Instruction::i_type(Opcode::Addi, x(1), x(2), -1)
                .unwrap()
                .to_string(),
            "addi x1, x2, -1"
        );
        assert_eq!(
            Instruction::i_type(Opcode::Lw, x(1), x(2), 8)
                .unwrap()
                .to_string(),
            "lw x1, 8(x2)"
        );
        assert_eq!(
            Instruction::i_type(Opcode::Jalr, x(1), x(2), 4)
                .unwrap()
                .to_string(),
            "jalr x1, 4(x2)"
        );
        assert_eq!(
            Instruction::s_type(Opcode::Sd, x(2), x(3), 8)
                .unwrap()
                .to_string(),
            "sd x3, 8(x2)"
        );
        assert_eq!(
            Instruction::b_type(Opcode::Beq, x(1), x(2), BranchOffset::new(-16).unwrap())
                .to_string(),
            "beq x1, x2, -16"
        );
        assert_eq!(
            Instruction::u_type(Opcode::Lui, x(5), 0x12345)
                .unwrap()
                .to_string(),
            "lui x5, 0x12345"
        );
        // Sign-extended storage must still print as the 20-bit field value.
        assert_eq!(
            Instruction::u_type(Opcode::Lui, x(1), -1)
                .unwrap()
                .to_string(),
            "lui x1, 0xfffff"
        );
        assert_eq!(
            Instruction::j_type(Opcode::Jal, x(1), JumpOffset::new(2048).unwrap()).to_string(),
            "jal x1, 2048"
        );
        assert_eq!(
            Instruction::shift(Opcode::Srai, x(1), x(2), 63)
                .unwrap()
                .to_string(),
            "srai x1, x2, 63"
        );
        assert_eq!(Instruction::system(Opcode::Ecall).to_string(), "ecall");
        assert_eq!(
            Instruction::fence(0xF, 0x3).unwrap().to_string(),
            "fence iorw, rw"
        );
    }

    #[test]
    fn csr_forms_use_symbolic_names() {
        assert_eq!(
            Instruction::csr_reg(Opcode::Csrrw, x(1), csr::FCSR, x(2))
                .unwrap()
                .to_string(),
            "csrrw x1, fcsr, x2"
        );
        assert_eq!(
            Instruction::csr_imm(Opcode::Csrrwi, x(1), csr::FRM, 5)
                .unwrap()
                .to_string(),
            "csrrwi x1, frm, 5"
        );
    }

    #[test]
    fn amo_forms_show_ordering() {
        assert_eq!(
            Instruction::amo(Opcode::AmoaddW, x(5), x(7), x(6), false, false)
                .unwrap()
                .to_string(),
            "amoadd.w x5, x6, (x7)"
        );
        assert_eq!(
            Instruction::amo(Opcode::AmoswapD, x(5), x(7), x(6), true, true)
                .unwrap()
                .to_string(),
            "amoswap.d.aqrl x5, x6, (x7)"
        );
        assert_eq!(
            Instruction::amo(Opcode::LrW, x(5), x(7), Gpr::ZERO, true, false)
                .unwrap()
                .to_string(),
            "lr.w.aq x5, (x7)"
        );
    }

    #[test]
    fn fp_forms() {
        assert_eq!(
            Instruction::fp_r_type(Opcode::FaddD, fr(1), fr(2), fr(3), Some(RoundingMode::Rne))
                .unwrap()
                .to_string(),
            "fadd.d f1, f2, f3, rne"
        );
        assert_eq!(
            Instruction::fp_r_type(Opcode::FaddD, fr(1), fr(2), fr(3), Some(RoundingMode::Dyn))
                .unwrap()
                .to_string(),
            "fadd.d f1, f2, f3"
        );
        assert_eq!(
            Instruction::fp_compare(Opcode::FeqD, x(5), fr(1), fr(2))
                .unwrap()
                .to_string(),
            "feq.d x5, f1, f2"
        );
        assert_eq!(
            Instruction::r4_type(
                Opcode::FmaddS,
                fr(1),
                fr(2),
                fr(3),
                fr(4),
                RoundingMode::Rtz
            )
            .to_string(),
            "fmadd.s f1, f2, f3, f4, rtz"
        );
        assert_eq!(
            Instruction::fp_unary(
                Opcode::FcvtWS,
                Reg::X(x(1)),
                Reg::F(fr(2)),
                Some(RoundingMode::Rtz)
            )
            .unwrap()
            .to_string(),
            "fcvt.w.s x1, f2, rtz"
        );
        assert_eq!(
            Instruction::fp_load(Opcode::Fld, fr(1), x(2), 16)
                .unwrap()
                .to_string(),
            "fld f1, 16(x2)"
        );
        assert_eq!(
            Instruction::fp_store(Opcode::Fsw, x(2), fr(1), -4)
                .unwrap()
                .to_string(),
            "fsw f1, -4(x2)"
        );
    }
}
