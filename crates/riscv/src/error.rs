//! Error type shared by the encoding/decoding and validation paths.

use std::fmt;

/// Errors produced while constructing, encoding or decoding RV64
/// instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RiscvError {
    /// A register index outside `0..32` was supplied.
    InvalidRegisterIndex {
        /// The offending index.
        index: u8,
    },
    /// An immediate does not fit the field of the requested instruction
    /// format.
    ImmediateOutOfRange {
        /// Mnemonic of the instruction being encoded.
        mnemonic: &'static str,
        /// The offending immediate value.
        value: i64,
        /// Number of bits available in the encoding.
        bits: u32,
    },
    /// An immediate violates an alignment constraint (branch and jump
    /// offsets must be even; this crate only emits 4-byte aligned targets).
    MisalignedImmediate {
        /// Mnemonic of the instruction being encoded.
        mnemonic: &'static str,
        /// The offending immediate value.
        value: i64,
        /// Required alignment in bytes.
        alignment: u64,
    },
    /// A CSR address outside the 12-bit address space was supplied.
    InvalidCsrAddress {
        /// The offending address.
        addr: u16,
    },
    /// The 32-bit word does not decode to any supported instruction.
    UnknownEncoding {
        /// The raw machine word.
        word: u32,
    },
    /// The instruction uses a reserved rounding-mode encoding.
    InvalidRoundingMode {
        /// The raw 3-bit `rm` field.
        bits: u8,
    },
    /// An operand required by the instruction format was not provided, or an
    /// operand not used by the format was provided.
    MalformedOperands {
        /// Mnemonic of the instruction.
        mnemonic: &'static str,
        /// Human readable description of the problem.
        detail: &'static str,
    },
}

impl fmt::Display for RiscvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiscvError::InvalidRegisterIndex { index } => {
                write!(f, "register index {index} is out of range (0..32)")
            }
            RiscvError::ImmediateOutOfRange {
                mnemonic,
                value,
                bits,
            } => write!(
                f,
                "immediate {value} does not fit in the {bits}-bit field of `{mnemonic}`"
            ),
            RiscvError::MisalignedImmediate {
                mnemonic,
                value,
                alignment,
            } => write!(
                f,
                "immediate {value} of `{mnemonic}` is not aligned to {alignment} bytes"
            ),
            RiscvError::InvalidCsrAddress { addr } => {
                write!(f, "csr address {addr:#x} is out of range (0..0x1000)")
            }
            RiscvError::UnknownEncoding { word } => {
                write!(f, "word {word:#010x} is not a supported rv64 instruction")
            }
            RiscvError::InvalidRoundingMode { bits } => {
                write!(f, "rounding mode encoding {bits:#05b} is reserved")
            }
            RiscvError::MalformedOperands { mnemonic, detail } => {
                write!(f, "malformed operands for `{mnemonic}`: {detail}")
            }
        }
    }
}

impl std::error::Error for RiscvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = RiscvError::InvalidRegisterIndex { index: 40 };
        let msg = err.to_string();
        assert!(msg.starts_with("register index"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RiscvError>();
    }
}
