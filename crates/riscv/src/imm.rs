//! Immediate helpers: sign extension, branch/jump offset wrappers.

use crate::RiscvError;

/// Sign-extend the low `bits` bits of `value` to 64 bits.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 64.
#[must_use]
pub fn sign_extend(value: u64, bits: u32) -> i64 {
    assert!(bits > 0 && bits <= 64, "bit width must be in 1..=64");
    if bits == 64 {
        return value as i64;
    }
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

/// Check that `value` fits in a signed immediate field of `bits` bits.
#[must_use]
pub fn fits_signed(value: i64, bits: u32) -> bool {
    debug_assert!(bits > 0 && bits <= 64);
    if bits == 64 {
        return true;
    }
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    value >= min && value <= max
}

/// Check that `value` fits in an unsigned immediate field of `bits` bits.
#[must_use]
pub fn fits_unsigned(value: u64, bits: u32) -> bool {
    debug_assert!(bits > 0 && bits <= 64);
    if bits == 64 {
        return true;
    }
    value < (1u64 << bits)
}

/// A validated B-type branch offset: 13-bit signed, 2-byte aligned (we only
/// ever emit 4-byte aligned targets because the corpus stores whole 32-bit
/// instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BranchOffset(i64);

impl BranchOffset {
    /// Number of encodable bits (including the implicit low zero bit).
    pub const BITS: u32 = 13;

    /// Create a branch offset, validating range and alignment.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when the offset does not
    /// fit in 13 signed bits, and [`RiscvError::MisalignedImmediate`] when it
    /// is not 4-byte aligned.
    pub fn new(offset: i64) -> Result<Self, RiscvError> {
        if !fits_signed(offset, Self::BITS) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: "branch",
                value: offset,
                bits: Self::BITS,
            });
        }
        if offset % 4 != 0 {
            return Err(RiscvError::MisalignedImmediate {
                mnemonic: "branch",
                value: offset,
                alignment: 4,
            });
        }
        Ok(BranchOffset(offset))
    }

    /// The raw byte offset.
    #[must_use]
    pub fn value(self) -> i64 {
        self.0
    }
}

/// A validated J-type jump offset: 21-bit signed, 4-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct JumpOffset(i64);

impl JumpOffset {
    /// Number of encodable bits (including the implicit low zero bit).
    pub const BITS: u32 = 21;

    /// Create a jump offset, validating range and alignment.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when the offset does not
    /// fit in 21 signed bits, and [`RiscvError::MisalignedImmediate`] when it
    /// is not 4-byte aligned.
    pub fn new(offset: i64) -> Result<Self, RiscvError> {
        if !fits_signed(offset, Self::BITS) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: "jal",
                value: offset,
                bits: Self::BITS,
            });
        }
        if offset % 4 != 0 {
            return Err(RiscvError::MisalignedImmediate {
                mnemonic: "jal",
                value: offset,
                alignment: 4,
            });
        }
        Ok(JumpOffset(offset))
    }

    /// The raw byte offset.
    #[must_use]
    pub fn value(self) -> i64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extension_basic() {
        assert_eq!(sign_extend(0xFFF, 12), -1);
        assert_eq!(sign_extend(0x7FF, 12), 2047);
        assert_eq!(sign_extend(0x800, 12), -2048);
        assert_eq!(sign_extend(0x0, 12), 0);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }

    #[test]
    fn signed_fit() {
        assert!(fits_signed(2047, 12));
        assert!(!fits_signed(2048, 12));
        assert!(fits_signed(-2048, 12));
        assert!(!fits_signed(-2049, 12));
    }

    #[test]
    fn unsigned_fit() {
        assert!(fits_unsigned(31, 5));
        assert!(!fits_unsigned(32, 5));
        assert!(fits_unsigned(u64::MAX, 64));
    }

    #[test]
    fn branch_offset_bounds() {
        assert!(BranchOffset::new(4092).is_ok());
        assert!(BranchOffset::new(-4096).is_ok());
        assert!(BranchOffset::new(4096).is_err());
        assert!(BranchOffset::new(2).is_err());
    }

    #[test]
    fn jump_offset_bounds() {
        assert!(JumpOffset::new((1 << 20) - 4).is_ok());
        assert!(JumpOffset::new(-(1 << 20)).is_ok());
        assert!(JumpOffset::new(1 << 20).is_err());
        assert!(JumpOffset::new(6).is_err());
    }
}
