//! [`Instruction`]: a decoded RV64 instruction that round-trips through its
//! 32-bit machine encoding.
//!
//! Construction is format-typed: each constructor accepts exactly the
//! operands its [`Format`] uses, validated at the boundary (register indices
//! through [`Gpr`]/[`Fpr`], immediates against their field widths, branch
//! and jump targets through [`BranchOffset`]/[`JumpOffset`]). A constructed
//! instruction therefore always encodes, and [`Instruction::decode`]
//! normalises a machine word back into the identical value, so
//! `decode(encode(i)) == i` holds for every instruction this crate can
//! build.

use crate::csr::CsrAddr;
use crate::imm::{fits_signed, fits_unsigned, sign_extend, BranchOffset, JumpOffset};
use crate::opcode::{Format, Opcode};
use crate::operands::Operands;
use crate::regs::{Fpr, Gpr, Reg};
use crate::{RiscvError, RoundingMode};

/// A decoded instruction: an [`Opcode`] plus its operands.
///
/// Operand fields are stored as raw 5-bit indices; their register class
/// (integer vs floating point) is a property of the opcode, exposed through
/// [`Opcode::rd_is_fpr`] and friends. The `imm` field holds the
/// sign-extended immediate for I/S/B/U/J-style formats, the shift amount
/// for shifts, the `pred`/`succ` bits for `fence` and the CSR address for
/// Zicsr opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    opcode: Opcode,
    rd: u8,
    rs1: u8,
    rs2: u8,
    rs3: u8,
    imm: i64,
    rm: Option<RoundingMode>,
    aq: bool,
    rl: bool,
}

fn check_format(opcode: Opcode, want: Format) -> Result<(), RiscvError> {
    if opcode.format() == want {
        Ok(())
    } else {
        Err(RiscvError::MalformedOperands {
            mnemonic: opcode.mnemonic(),
            detail: "opcode does not use this instruction format",
        })
    }
}

fn assert_format(opcode: Opcode, want: Format) {
    assert_eq!(
        opcode.format(),
        want,
        "{} is not a {want}-format opcode",
        opcode.mnemonic()
    );
}

impl Instruction {
    fn raw(opcode: Opcode) -> Self {
        Instruction {
            opcode,
            rd: 0,
            rs1: 0,
            rs2: 0,
            rs3: 0,
            imm: 0,
            rm: None,
            aq: false,
            rl: false,
        }
    }

    /// The canonical no-op, `addi x0, x0, 0`.
    #[must_use]
    pub fn nop() -> Self {
        Self::raw(Opcode::Addi)
    }

    /// Build an integer register-register instruction (`add`, `sub`, `mul`,
    /// …).
    ///
    /// # Panics
    ///
    /// Panics when `opcode` is not an R-format opcode; passing a
    /// non-R-format opcode is a programming error, not an input error.
    #[must_use]
    pub fn r_type(opcode: Opcode, rd: Gpr, rs1: Gpr, rs2: Gpr) -> Self {
        assert_format(opcode, Format::R);
        Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            ..Self::raw(opcode)
        }
    }

    /// Build a register-immediate instruction, a load or `jalr`.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `imm` does not fit
    /// in 12 signed bits and [`RiscvError::MalformedOperands`] when the
    /// opcode is not I-format.
    pub fn i_type(opcode: Opcode, rd: Gpr, rs1: Gpr, imm: i64) -> Result<Self, RiscvError> {
        check_format(opcode, Format::I)?;
        if !fits_signed(imm, 12) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: imm,
                bits: 12,
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            imm,
            ..Self::raw(opcode)
        })
    }

    /// Build a constant shift (`slli`/`srli`/`srai` and their `w`
    /// variants).
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when the shift amount
    /// does not fit (6 bits for 64-bit shifts, 5 bits for word shifts) and
    /// [`RiscvError::MalformedOperands`] for non-shift opcodes.
    pub fn shift(opcode: Opcode, rd: Gpr, rs1: Gpr, shamt: u8) -> Result<Self, RiscvError> {
        let bits = match opcode.format() {
            Format::Shamt => 6,
            Format::ShamtW => 5,
            _ => {
                return Err(RiscvError::MalformedOperands {
                    mnemonic: opcode.mnemonic(),
                    detail: "opcode does not use this instruction format",
                })
            }
        };
        if !fits_unsigned(u64::from(shamt), bits) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: i64::from(shamt),
                bits,
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            imm: i64::from(shamt),
            ..Self::raw(opcode)
        })
    }

    /// Build an integer store.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `imm` does not fit
    /// in 12 signed bits and [`RiscvError::MalformedOperands`] when the
    /// opcode is not S-format.
    pub fn s_type(opcode: Opcode, rs1: Gpr, rs2: Gpr, imm: i64) -> Result<Self, RiscvError> {
        check_format(opcode, Format::S)?;
        if !fits_signed(imm, 12) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: imm,
                bits: 12,
            });
        }
        Ok(Instruction {
            rs1: rs1.index(),
            rs2: rs2.index(),
            imm,
            ..Self::raw(opcode)
        })
    }

    /// Build a conditional branch. The offset is pre-validated by
    /// [`BranchOffset`].
    ///
    /// # Panics
    ///
    /// Panics when `opcode` is not a B-format opcode.
    #[must_use]
    pub fn b_type(opcode: Opcode, rs1: Gpr, rs2: Gpr, offset: BranchOffset) -> Self {
        assert_format(opcode, Format::B);
        Instruction {
            rs1: rs1.index(),
            rs2: rs2.index(),
            imm: offset.value(),
            ..Self::raw(opcode)
        }
    }

    /// Build an upper-immediate instruction (`lui`, `auipc`).
    ///
    /// `imm` is the 20-bit value placed in bits 31:12; both signed
    /// (`-0x80000..0x80000`) and unsigned (`0..0x100000`) spellings are
    /// accepted and normalised to the sign-extended form that
    /// [`Instruction::decode`] produces.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `imm` does not fit
    /// in 20 bits and [`RiscvError::MalformedOperands`] when the opcode is
    /// not U-format.
    pub fn u_type(opcode: Opcode, rd: Gpr, imm: i64) -> Result<Self, RiscvError> {
        check_format(opcode, Format::U)?;
        let unsigned_ok = imm >= 0 && fits_unsigned(imm.unsigned_abs(), 20);
        if !fits_signed(imm, 20) && !unsigned_ok {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: imm,
                bits: 20,
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            imm: sign_extend((imm as u64) & 0xF_FFFF, 20),
            ..Self::raw(opcode)
        })
    }

    /// Build a `jal`. The offset is pre-validated by [`JumpOffset`].
    ///
    /// # Panics
    ///
    /// Panics when `opcode` is not a J-format opcode.
    #[must_use]
    pub fn j_type(opcode: Opcode, rd: Gpr, offset: JumpOffset) -> Self {
        assert_format(opcode, Format::J);
        Instruction {
            rd: rd.index(),
            imm: offset.value(),
            ..Self::raw(opcode)
        }
    }

    /// Build a memory-ordering `fence` from its predecessor and successor
    /// sets (bit 3 = input/reads-device, 2 = output/writes-device,
    /// 1 = reads, 0 = writes).
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when either set does not
    /// fit in 4 bits.
    pub fn fence(pred: u8, succ: u8) -> Result<Self, RiscvError> {
        for set in [pred, succ] {
            if !fits_unsigned(u64::from(set), 4) {
                return Err(RiscvError::ImmediateOutOfRange {
                    mnemonic: "fence",
                    value: i64::from(set),
                    bits: 4,
                });
            }
        }
        Ok(Instruction {
            imm: i64::from(pred) << 4 | i64::from(succ),
            ..Self::raw(Opcode::Fence)
        })
    }

    /// Build an operand-less system instruction (`ecall`, `ebreak`).
    ///
    /// # Panics
    ///
    /// Panics when `opcode` is not a System-format opcode.
    #[must_use]
    pub fn system(opcode: Opcode) -> Self {
        assert_format(opcode, Format::System);
        Self::raw(opcode)
    }

    /// Build a register-source CSR access (`csrrw`, `csrrs`, `csrrc`).
    /// The address is pre-validated by [`CsrAddr::new`].
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::MalformedOperands`] when the opcode is not
    /// Csr-format.
    pub fn csr_reg(opcode: Opcode, rd: Gpr, csr: CsrAddr, rs1: Gpr) -> Result<Self, RiscvError> {
        check_format(opcode, Format::Csr)?;
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            imm: i64::from(csr.value()),
            ..Self::raw(opcode)
        })
    }

    /// Build an immediate-source CSR access (`csrrwi`, `csrrsi`,
    /// `csrrci`). The 5-bit immediate is stored in the `rs1` operand slot,
    /// mirroring the machine encoding.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `zimm >= 32` and
    /// [`RiscvError::MalformedOperands`] when the opcode is not
    /// CsrImm-format.
    pub fn csr_imm(opcode: Opcode, rd: Gpr, csr: CsrAddr, zimm: u8) -> Result<Self, RiscvError> {
        check_format(opcode, Format::CsrImm)?;
        if !fits_unsigned(u64::from(zimm), 5) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: i64::from(zimm),
                bits: 5,
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: zimm,
            imm: i64::from(csr.value()),
            ..Self::raw(opcode)
        })
    }

    /// Build an atomic instruction (`lr`/`sc`/`amo*`) with its
    /// acquire/release ordering bits.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::MalformedOperands`] when the opcode is not
    /// Amo-format, or when a load-reserved opcode is given a non-zero
    /// `rs2` (the field is a function code in the `lr` encoding).
    pub fn amo(
        opcode: Opcode,
        rd: Gpr,
        rs1: Gpr,
        rs2: Gpr,
        aq: bool,
        rl: bool,
    ) -> Result<Self, RiscvError> {
        check_format(opcode, Format::Amo)?;
        if opcode.encoding().rs2.is_some() && !rs2.is_zero() {
            return Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "load-reserved takes no rs2 operand",
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            aq,
            rl,
            ..Self::raw(opcode)
        })
    }

    /// Build an FP load (`flw`, `fld`): FP destination, integer base.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `imm` does not fit
    /// in 12 signed bits and [`RiscvError::MalformedOperands`] when the
    /// opcode is not FpLoad-format.
    pub fn fp_load(opcode: Opcode, rd: Fpr, rs1: Gpr, imm: i64) -> Result<Self, RiscvError> {
        check_format(opcode, Format::FpLoad)?;
        if !fits_signed(imm, 12) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: imm,
                bits: 12,
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            imm,
            ..Self::raw(opcode)
        })
    }

    /// Build an FP store (`fsw`, `fsd`): FP source, integer base.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::ImmediateOutOfRange`] when `imm` does not fit
    /// in 12 signed bits and [`RiscvError::MalformedOperands`] when the
    /// opcode is not FpStore-format.
    pub fn fp_store(opcode: Opcode, rs1: Gpr, rs2: Fpr, imm: i64) -> Result<Self, RiscvError> {
        check_format(opcode, Format::FpStore)?;
        if !fits_signed(imm, 12) {
            return Err(RiscvError::ImmediateOutOfRange {
                mnemonic: opcode.mnemonic(),
                value: imm,
                bits: 12,
            });
        }
        Ok(Instruction {
            rs1: rs1.index(),
            rs2: rs2.index(),
            imm,
            ..Self::raw(opcode)
        })
    }

    /// Build a fused multiply-add family instruction (`fmadd`, `fmsub`,
    /// `fnmsub`, `fnmadd`).
    ///
    /// # Panics
    ///
    /// Panics when `opcode` is not an R4-format opcode.
    #[must_use]
    pub fn r4_type(
        opcode: Opcode,
        rd: Fpr,
        rs1: Fpr,
        rs2: Fpr,
        rs3: Fpr,
        rm: RoundingMode,
    ) -> Self {
        assert_format(opcode, Format::R4);
        Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            rs3: rs3.index(),
            rm: Some(rm),
            ..Self::raw(opcode)
        }
    }

    /// Build a two-source OP-FP instruction with an FP destination
    /// (`fadd`, `fsub`, `fmul`, `fdiv`, `fsgnj*`, `fmin`, `fmax`).
    ///
    /// `rm` must be `Some` exactly when [`Opcode::uses_rm`] is true
    /// (arithmetic) and `None` for sign-injection/min/max, whose `funct3`
    /// is a function code.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::MalformedOperands`] when the opcode is not a
    /// two-source FP opcode with FP destination, or when the rounding mode
    /// presence does not match the opcode.
    pub fn fp_r_type(
        opcode: Opcode,
        rd: Fpr,
        rs1: Fpr,
        rs2: Fpr,
        rm: Option<RoundingMode>,
    ) -> Result<Self, RiscvError> {
        check_format(opcode, Format::Fp)?;
        if !opcode.rd_is_fpr() {
            return Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "comparison writes an integer rd; use fp_compare",
            });
        }
        Self::check_rm(opcode, rm)?;
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            rm,
            ..Self::raw(opcode)
        })
    }

    /// Build an FP comparison (`feq`, `flt`, `fle`): integer destination,
    /// FP sources.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::MalformedOperands`] when the opcode is not an
    /// FP comparison.
    pub fn fp_compare(opcode: Opcode, rd: Gpr, rs1: Fpr, rs2: Fpr) -> Result<Self, RiscvError> {
        check_format(opcode, Format::Fp)?;
        if opcode.rd_is_fpr() {
            return Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "opcode writes an fp rd; use fp_r_type",
            });
        }
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rs2: rs2.index(),
            ..Self::raw(opcode)
        })
    }

    /// Build a single-source OP-FP instruction (`fsqrt`, `fcvt.*`,
    /// `fmv.*`, `fclass`). Register classes vary per opcode, so operands
    /// are passed as [`Reg`] and validated against the opcode's metadata.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::MalformedOperands`] when the opcode is not
    /// FpUnary-format, when a register class does not match the opcode, or
    /// when the rounding-mode presence does not match [`Opcode::uses_rm`].
    pub fn fp_unary(
        opcode: Opcode,
        rd: Reg,
        rs1: Reg,
        rm: Option<RoundingMode>,
    ) -> Result<Self, RiscvError> {
        check_format(opcode, Format::FpUnary)?;
        if rd.is_fpr() != opcode.rd_is_fpr() || rs1.is_fpr() != opcode.rs1_is_fpr() {
            return Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "register class does not match the opcode",
            });
        }
        Self::check_rm(opcode, rm)?;
        Ok(Instruction {
            rd: rd.index(),
            rs1: rs1.index(),
            rm,
            ..Self::raw(opcode)
        })
    }

    fn check_rm(opcode: Opcode, rm: Option<RoundingMode>) -> Result<(), RiscvError> {
        match (opcode.uses_rm(), rm) {
            (true, Some(_)) | (false, None) => Ok(()),
            (true, None) => Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "opcode requires a rounding mode",
            }),
            (false, Some(_)) => Err(RiscvError::MalformedOperands {
                mnemonic: opcode.mnemonic(),
                detail: "opcode has no rounding-mode field",
            }),
        }
    }

    /// The opcode.
    #[must_use]
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// Raw destination register index (class per [`Opcode::rd_is_fpr`]).
    #[must_use]
    pub fn rd(&self) -> u8 {
        self.rd
    }

    /// Raw first-source register index. For `csrrwi`-style opcodes this
    /// slot holds the 5-bit zero-extended immediate, as in the machine
    /// encoding.
    #[must_use]
    pub fn rs1(&self) -> u8 {
        self.rs1
    }

    /// Raw second-source register index.
    #[must_use]
    pub fn rs2(&self) -> u8 {
        self.rs2
    }

    /// Raw third-source register index (R4 formats only).
    #[must_use]
    pub fn rs3(&self) -> u8 {
        self.rs3
    }

    /// The immediate operand: sign-extended value for I/S/B/U/J formats,
    /// shift amount for shifts, `pred<<4|succ` for `fence`, CSR address for
    /// Zicsr opcodes, zero otherwise.
    #[must_use]
    pub fn imm(&self) -> i64 {
        self.imm
    }

    /// The rounding mode, for opcodes that carry one.
    #[must_use]
    pub fn rm(&self) -> Option<RoundingMode> {
        self.rm
    }

    /// The acquire ordering bit (atomics only).
    #[must_use]
    pub fn aq(&self) -> bool {
        self.aq
    }

    /// The release ordering bit (atomics only).
    #[must_use]
    pub fn rl(&self) -> bool {
        self.rl
    }

    /// The CSR address targeted by a Zicsr instruction, if any.
    #[must_use]
    pub fn csr_addr(&self) -> Option<CsrAddr> {
        matches!(self.opcode.format(), Format::Csr | Format::CsrImm)
            .then(|| CsrAddr(self.imm as u16))
    }

    /// Project the instruction into the format-erased [`Operands`] view:
    /// class-aware registers, immediate and CSR address, each present
    /// exactly when the instruction's format carries the slot.
    ///
    /// This is the single place where per-format field meanings are
    /// resolved; the executor, the disassembler and dataflow analyses all
    /// consume this view instead of re-interpreting the raw indices.
    #[must_use]
    pub fn operands(&self) -> Operands {
        Operands::project(
            self.opcode,
            self.rd,
            self.rs1,
            self.rs2,
            self.rs3,
            self.imm,
            self.csr_addr(),
        )
    }

    fn funct3_bits(&self) -> Result<u32, RiscvError> {
        match (self.opcode.encoding().funct3, self.rm) {
            (Some(f3), _) => Ok(u32::from(f3)),
            (None, Some(rm)) => Ok(u32::from(rm.to_bits())),
            (None, None) => Err(RiscvError::MalformedOperands {
                mnemonic: self.opcode.mnemonic(),
                detail: "missing rounding mode",
            }),
        }
    }

    /// Encode the instruction into its 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Construction already validates every operand, so this only fails on
    /// an internally inconsistent instruction (e.g. a missing rounding
    /// mode), which the typed constructors rule out.
    pub fn encode(&self) -> Result<u32, RiscvError> {
        self.encode_inner(false)
    }

    /// Best-effort encoding for diagnostics: identical to
    /// [`Instruction::encode`] for every well-formed instruction, but an
    /// internally inconsistent one (missing rounding mode) encodes the
    /// absent `rm` field as the dynamic mode instead of failing, so error
    /// paths always have a concrete machine word to report.
    #[must_use]
    pub fn encode_lossy(&self) -> u32 {
        match self.encode_inner(true) {
            Ok(word) => word,
            // Unreachable: `lossy` substitutes every fallible field. Fall
            // back to the bare major opcode rather than panicking.
            Err(_) => u32::from(self.opcode.encoding().opcode),
        }
    }

    /// The funct3 field, substituting the dynamic rounding mode for a
    /// missing one when `lossy` encoding was requested.
    fn funct3_or_dyn(&self, lossy: bool) -> Result<u32, RiscvError> {
        match self.funct3_bits() {
            Err(_) if lossy => Ok(u32::from(RoundingMode::Dyn.to_bits())),
            resolved => resolved,
        }
    }

    fn encode_inner(&self, lossy: bool) -> Result<u32, RiscvError> {
        let e = self.opcode.encoding();
        let base = u32::from(e.opcode);
        let rd = u32::from(self.rd) << 7;
        let rs1 = u32::from(self.rs1) << 15;
        let rs2 = u32::from(self.rs2) << 20;
        let fixed_f7 = || u32::from(e.funct7.unwrap_or(0)) << 25;
        let imm = self.imm as u64 as u32;
        let word = match self.opcode.format() {
            Format::R => base | rd | self.funct3_or_dyn(lossy)? << 12 | rs1 | rs2 | fixed_f7(),
            Format::I | Format::FpLoad => {
                base | rd | self.funct3_or_dyn(lossy)? << 12 | rs1 | (imm & 0xFFF) << 20
            }
            Format::S | Format::FpStore => {
                base | (imm & 0x1F) << 7
                    | self.funct3_or_dyn(lossy)? << 12
                    | rs1
                    | rs2
                    | ((imm >> 5) & 0x7F) << 25
            }
            Format::B => {
                base | ((imm >> 11) & 1) << 7
                    | ((imm >> 1) & 0xF) << 8
                    | self.funct3_or_dyn(lossy)? << 12
                    | rs1
                    | rs2
                    | ((imm >> 5) & 0x3F) << 25
                    | ((imm >> 12) & 1) << 31
            }
            Format::U => base | rd | (imm & 0xF_FFFF) << 12,
            Format::J => {
                base | rd
                    | ((imm >> 12) & 0xFF) << 12
                    | ((imm >> 11) & 1) << 20
                    | ((imm >> 1) & 0x3FF) << 21
                    | ((imm >> 20) & 1) << 31
            }
            Format::Shamt | Format::ShamtW => {
                base | rd | self.funct3_or_dyn(lossy)? << 12 | rs1 | (imm & 0x3F) << 20 | fixed_f7()
            }
            Format::Fence => base | self.funct3_or_dyn(lossy)? << 12 | (imm & 0xFF) << 20,
            Format::System => base | u32::from(e.rs2.unwrap_or(0)) << 20,
            Format::Csr | Format::CsrImm => {
                base | rd | self.funct3_or_dyn(lossy)? << 12 | rs1 | (imm & 0xFFF) << 20
            }
            Format::Amo => {
                base | rd
                    | self.funct3_or_dyn(lossy)? << 12
                    | rs1
                    | rs2
                    | u32::from(self.rl) << 25
                    | u32::from(self.aq) << 26
                    | u32::from(e.funct7.unwrap_or(0)) << 27
            }
            Format::R4 => {
                base | rd
                    | self.funct3_or_dyn(lossy)? << 12
                    | rs1
                    | rs2
                    | u32::from(e.funct7.unwrap_or(0)) << 25
                    | u32::from(self.rs3) << 27
            }
            Format::Fp => base | rd | self.funct3_or_dyn(lossy)? << 12 | rs1 | rs2 | fixed_f7(),
            Format::FpUnary => {
                base | rd
                    | self.funct3_or_dyn(lossy)? << 12
                    | rs1
                    | u32::from(e.rs2.unwrap_or(0)) << 20
                    | fixed_f7()
            }
        };
        Ok(word)
    }

    fn matches(opcode: Opcode, word: u32) -> bool {
        let e = opcode.encoding();
        if u32::from(e.opcode) != word & 0x7F {
            return false;
        }
        let f3 = ((word >> 12) & 0x7) as u8;
        let f7 = ((word >> 25) & 0x7F) as u8;
        let rs2f = ((word >> 20) & 0x1F) as u8;
        let f3_ok = e.funct3.is_none_or(|v| v == f3);
        match opcode.format() {
            Format::R | Format::Fp | Format::ShamtW => f3_ok && e.funct7 == Some(f7),
            Format::FpUnary => f3_ok && e.funct7 == Some(f7) && e.rs2 == Some(rs2f),
            // funct7 bit 0 is shamt[5] for 64-bit shifts.
            Format::Shamt => f3_ok && e.funct7 == Some(f7 & !1),
            Format::Amo => f3_ok && e.funct7 == Some(f7 >> 2) && e.rs2.is_none_or(|v| v == rs2f),
            Format::R4 => e.funct7 == Some(f7 & 0b11),
            Format::System => word == u32::from(e.rs2.unwrap_or(0)) << 20 | u32::from(e.opcode),
            Format::I
            | Format::S
            | Format::B
            | Format::FpLoad
            | Format::FpStore
            | Format::Csr
            | Format::CsrImm
            | Format::Fence => f3_ok,
            Format::U | Format::J => true,
        }
    }

    fn decode_rm(opcode: Opcode, word: u32) -> Result<Option<RoundingMode>, RiscvError> {
        if !opcode.uses_rm() {
            return Ok(None);
        }
        let bits = ((word >> 12) & 0x7) as u8;
        RoundingMode::from_bits(bits)
            .map(Some)
            .ok_or(RiscvError::InvalidRoundingMode { bits })
    }

    /// Decode a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`RiscvError::UnknownEncoding`] for words outside the
    /// modelled RV64 IMAFD+Zicsr subset, [`RiscvError::InvalidRoundingMode`]
    /// for FP instructions using the reserved `rm` encodings `0b101`/`0b110`
    /// (the paper's bug-scenario suite, scenario B2 — see
    /// [`RoundingMode::from_bits`]) and
    /// [`RiscvError::MisalignedImmediate`] for branch or jump targets that
    /// are not 4-byte aligned (this crate only models whole-instruction
    /// offsets).
    pub fn decode(word: u32) -> Result<Self, RiscvError> {
        let opcode = Opcode::ALL
            .iter()
            .copied()
            .find(|&op| Self::matches(op, word))
            .ok_or(RiscvError::UnknownEncoding { word })?;
        Self::from_word(opcode, word)
    }

    fn from_word(opcode: Opcode, word: u32) -> Result<Self, RiscvError> {
        let rdi = ((word >> 7) & 0x1F) as u8;
        let rs1i = ((word >> 15) & 0x1F) as u8;
        let rs2i = ((word >> 20) & 0x1F) as u8;
        let xd = Gpr::wrapping(rdi);
        let x1 = Gpr::wrapping(rs1i);
        let x2 = Gpr::wrapping(rs2i);
        let fd = Fpr::wrapping(rdi);
        let f1 = Fpr::wrapping(rs1i);
        let f2 = Fpr::wrapping(rs2i);
        let imm_i = sign_extend(u64::from(word >> 20), 12);
        let imm_s = sign_extend(u64::from((word >> 25) << 5 | (word >> 7) & 0x1F), 12);
        match opcode.format() {
            Format::R => Ok(Self::r_type(opcode, xd, x1, x2)),
            Format::I => Self::i_type(opcode, xd, x1, imm_i),
            Format::S => Self::s_type(opcode, x1, x2, imm_s),
            Format::B => {
                let raw = (word >> 31) << 12
                    | ((word >> 7) & 1) << 11
                    | ((word >> 25) & 0x3F) << 5
                    | ((word >> 8) & 0xF) << 1;
                let offset = BranchOffset::new(sign_extend(u64::from(raw), 13))?;
                Ok(Self::b_type(opcode, x1, x2, offset))
            }
            Format::U => Self::u_type(opcode, xd, sign_extend(u64::from(word >> 12), 20)),
            Format::J => {
                let raw = (word >> 31) << 20
                    | ((word >> 12) & 0xFF) << 12
                    | ((word >> 20) & 1) << 11
                    | ((word >> 21) & 0x3FF) << 1;
                let offset = JumpOffset::new(sign_extend(u64::from(raw), 21))?;
                Ok(Self::j_type(opcode, xd, offset))
            }
            Format::Shamt => Self::shift(opcode, xd, x1, ((word >> 20) & 0x3F) as u8),
            Format::ShamtW => Self::shift(opcode, xd, x1, rs2i),
            Format::Fence => {
                // fm, rd and rs1 must be zero: the crate cannot represent
                // `fence.tso` or the reserved hint encodings.
                if word >> 28 != 0 || rdi != 0 || rs1i != 0 {
                    return Err(RiscvError::UnknownEncoding { word });
                }
                Self::fence(((word >> 24) & 0xF) as u8, ((word >> 20) & 0xF) as u8)
            }
            Format::System => Ok(Self::system(opcode)),
            Format::Csr => Self::csr_reg(opcode, xd, CsrAddr((word >> 20) as u16 & 0xFFF), x1),
            Format::CsrImm => Self::csr_imm(opcode, xd, CsrAddr((word >> 20) as u16 & 0xFFF), rs1i),
            Format::Amo => {
                let aq = word >> 26 & 1 != 0;
                let rl = word >> 25 & 1 != 0;
                Self::amo(opcode, xd, x1, x2, aq, rl)
            }
            Format::R4 => {
                let rs3 = Fpr::wrapping((word >> 27) as u8);
                let rm = Self::decode_rm(opcode, word)?.expect("R4 opcodes always carry an rm");
                Ok(Self::r4_type(opcode, fd, f1, f2, rs3, rm))
            }
            Format::FpLoad => Self::fp_load(opcode, fd, x1, imm_i),
            Format::FpStore => Self::fp_store(opcode, x1, f2, imm_s),
            Format::Fp => {
                let rm = Self::decode_rm(opcode, word)?;
                if opcode.rd_is_fpr() {
                    Self::fp_r_type(opcode, fd, f1, f2, rm)
                } else {
                    Self::fp_compare(opcode, xd, f1, f2)
                }
            }
            Format::FpUnary => {
                let rm = Self::decode_rm(opcode, word)?;
                let rd = if opcode.rd_is_fpr() {
                    Reg::F(fd)
                } else {
                    Reg::X(xd)
                };
                let rs1 = if opcode.rs1_is_fpr() {
                    Reg::F(f1)
                } else {
                    Reg::X(x1)
                };
                Self::fp_unary(opcode, rd, rs1, rm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr;

    #[test]
    fn r_type_round_trip() {
        let insn = Instruction::r_type(
            Opcode::Add,
            Gpr::new(1).unwrap(),
            Gpr::new(2).unwrap(),
            Gpr::new(3).unwrap(),
        );
        let word = insn.encode().unwrap();
        assert_eq!(word, 0x0031_00B3);
        assert_eq!(Instruction::decode(word).unwrap(), insn);
    }

    #[test]
    fn nop_is_addi_zero() {
        assert_eq!(Instruction::nop().encode().unwrap(), 0x0000_0013);
    }

    #[test]
    fn i_type_rejects_oversized_immediate() {
        let err = Instruction::i_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, 2048).unwrap_err();
        assert!(matches!(
            err,
            RiscvError::ImmediateOutOfRange { bits: 12, .. }
        ));
    }

    #[test]
    fn wrong_format_is_rejected() {
        let err = Instruction::i_type(Opcode::Add, Gpr::ZERO, Gpr::ZERO, 0).unwrap_err();
        assert!(matches!(err, RiscvError::MalformedOperands { .. }));
    }

    #[test]
    #[should_panic(expected = "is not a r-format opcode")]
    fn r_type_panics_on_wrong_format() {
        let _ = Instruction::r_type(Opcode::Addi, Gpr::ZERO, Gpr::ZERO, Gpr::ZERO);
    }

    #[test]
    fn u_type_accepts_unsigned_spelling() {
        let a = Instruction::u_type(Opcode::Lui, Gpr::RA, 0xF_FFFF).unwrap();
        let b = Instruction::u_type(Opcode::Lui, Gpr::RA, -1).unwrap();
        assert_eq!(a, b);
        assert!(Instruction::u_type(Opcode::Lui, Gpr::RA, 0x10_0000).is_err());
    }

    #[test]
    fn lr_rejects_nonzero_rs2() {
        let err = Instruction::amo(
            Opcode::LrW,
            Gpr::RA,
            Gpr::SP,
            Gpr::new(3).unwrap(),
            false,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, RiscvError::MalformedOperands { .. }));
        assert!(Instruction::amo(Opcode::LrW, Gpr::RA, Gpr::SP, Gpr::ZERO, true, false).is_ok());
    }

    #[test]
    fn rm_presence_is_validated() {
        let f = Fpr::new(1).unwrap();
        assert!(Instruction::fp_r_type(Opcode::FaddS, f, f, f, None).is_err());
        assert!(Instruction::fp_r_type(Opcode::FsgnjS, f, f, f, Some(RoundingMode::Rne)).is_err());
        assert!(Instruction::fp_r_type(Opcode::FaddS, f, f, f, Some(RoundingMode::Rne)).is_ok());
    }

    #[test]
    fn fp_unary_register_classes_validated() {
        let x = Reg::X(Gpr::RA);
        let f = Reg::F(Fpr::new(2).unwrap());
        // fcvt.w.s reads FP, writes integer.
        assert!(Instruction::fp_unary(Opcode::FcvtWS, x, f, Some(RoundingMode::Rtz)).is_ok());
        assert!(Instruction::fp_unary(Opcode::FcvtWS, f, x, Some(RoundingMode::Rtz)).is_err());
    }

    #[test]
    fn reserved_rounding_mode_word_is_rejected() {
        // fadd.s f1, f2, f3 with rm=0b101 (reserved) — the paper's bug
        // scenario B2 decodes this to an error, never to Dyn.
        let word = 0x0031_00D3 | 0b101 << 12;
        assert_eq!(
            Instruction::decode(word),
            Err(RiscvError::InvalidRoundingMode { bits: 0b101 })
        );
    }

    #[test]
    fn unknown_word_is_rejected() {
        assert!(matches!(
            Instruction::decode(0xFFFF_FFFF),
            Err(RiscvError::UnknownEncoding { .. })
        ));
        // Slli with a funct6 that is neither logical nor arithmetic.
        assert!(matches!(
            Instruction::decode(0x4000_1013 | 1 << 30 | 1 << 27),
            Err(RiscvError::UnknownEncoding { .. })
        ));
    }

    #[test]
    fn misaligned_branch_word_is_rejected() {
        // beq x0, x0, +2: architecturally legal, but outside the 4-byte
        // aligned subset this crate models.
        let insn = Instruction::b_type(Opcode::Beq, Gpr::ZERO, Gpr::ZERO, BranchOffset::default());
        let word = insn.encode().unwrap() | 1 << 8;
        assert!(matches!(
            Instruction::decode(word),
            Err(RiscvError::MisalignedImmediate { .. })
        ));
    }

    #[test]
    fn csr_accessor_exposes_address() {
        let insn = Instruction::csr_reg(Opcode::Csrrw, Gpr::RA, csr::FCSR, Gpr::SP).unwrap();
        assert_eq!(insn.csr_addr(), Some(csr::FCSR));
        assert_eq!(Instruction::nop().csr_addr(), None);
    }

    #[test]
    fn fence_round_trips() {
        let insn = Instruction::fence(0b1111, 0b0011).unwrap();
        let word = insn.encode().unwrap();
        assert_eq!(Instruction::decode(word).unwrap(), insn);
        assert!(Instruction::fence(0x10, 0).is_err());
    }

    #[test]
    fn fence_with_reserved_fields_is_unknown() {
        let word = Instruction::fence(0xF, 0xF).unwrap().encode().unwrap();
        assert!(Instruction::decode(word | 1 << 7).is_err());
        assert!(Instruction::decode(word | 1 << 28).is_err());
    }
}
