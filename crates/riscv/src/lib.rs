//! RV64 instruction-set substrate for the TurboFuzz reproduction.
//!
//! This crate provides everything the fuzzer, the processor models and the
//! workload generators need to talk about RISC-V instructions:
//!
//! * [`Opcode`] — every supported mnemonic of RV64 I/M/A/F/D/Zicsr together
//!   with its encoding metadata ([`Format`], [`Extension`]).
//! * [`Instruction`] — a decoded instruction (opcode + operands) that can be
//!   encoded to its 32-bit machine form with [`Instruction::encode`] and
//!   recovered with [`Instruction::decode`].
//! * [`Operands`] — the format-erased operand view
//!   ([`Instruction::operands`]): class-aware `rd`/`rs1`/`rs2`/`rs3`
//!   registers, immediate and CSR address plus `defs()`/`uses()` dataflow
//!   sets, so executors and analyses never re-interpret per-format fields.
//! * [`Gpr`] / [`Fpr`] — newtypes for integer and floating-point register
//!   indices.
//! * [`csr`] — control-and-status-register addresses and field layouts used
//!   by the reference model and by the coverage models.
//! * [`InstructionLibrary`] — the dynamically configurable instruction
//!   repository from which the TurboFuzzer draws prime instructions
//!   (paper §IV-B2: categories can be activated or deactivated at run time).
//!
//! # Example
//!
//! ```
//! use tf_riscv::{Instruction, Opcode, Gpr};
//!
//! # fn main() -> Result<(), tf_riscv::RiscvError> {
//! let add = Instruction::r_type(Opcode::Add, Gpr::new(1)?, Gpr::new(2)?, Gpr::new(3)?);
//! let word = add.encode()?;
//! let back = Instruction::decode(word)?;
//! assert_eq!(add, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disasm;
mod error;
mod imm;
mod insn;
mod library;
mod opcode;
mod operands;
mod regs;

pub mod csr;

pub use error::RiscvError;
pub use imm::{fits_signed, fits_unsigned, sign_extend, BranchOffset, JumpOffset};
pub use insn::Instruction;
pub use library::{InstructionLibrary, LibraryConfig};
pub use opcode::{Encoding, Extension, Format, Opcode};
pub use operands::Operands;
pub use regs::{Fpr, Gpr, Reg, FPR_COUNT, GPR_COUNT};

/// Width in bytes of every (non-compressed) RV64 instruction handled by this
/// crate.
pub const INSTRUCTION_BYTES: u64 = 4;

/// Floating-point rounding modes as encoded in the `rm` field of FP
/// instructions and in `fcsr.frm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum RoundingMode {
    /// Round to nearest, ties to even.
    #[default]
    Rne,
    /// Round towards zero.
    Rtz,
    /// Round down (towards negative infinity).
    Rdn,
    /// Round up (towards positive infinity).
    Rup,
    /// Round to nearest, ties to max magnitude.
    Rmm,
    /// Use the dynamic rounding mode held in `fcsr.frm`.
    Dyn,
}

impl RoundingMode {
    /// All static rounding modes (excluding [`RoundingMode::Dyn`]).
    pub const STATIC: [RoundingMode; 5] = [
        RoundingMode::Rne,
        RoundingMode::Rtz,
        RoundingMode::Rdn,
        RoundingMode::Rup,
        RoundingMode::Rmm,
    ];

    /// Encode the rounding mode into the 3-bit `rm` field.
    #[must_use]
    pub fn to_bits(self) -> u8 {
        match self {
            RoundingMode::Rne => 0b000,
            RoundingMode::Rtz => 0b001,
            RoundingMode::Rdn => 0b010,
            RoundingMode::Rup => 0b011,
            RoundingMode::Rmm => 0b100,
            RoundingMode::Dyn => 0b111,
        }
    }

    /// Decode a 3-bit `rm` field.
    ///
    /// Returns `None` for the reserved encodings `0b101` and `0b110`, which
    /// the paper's bug-scenario suite (scenario B2: "FP instruction with an
    /// invalid `frm` does not raise an exception") exercises.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<Self> {
        match bits & 0b111 {
            0b000 => Some(RoundingMode::Rne),
            0b001 => Some(RoundingMode::Rtz),
            0b010 => Some(RoundingMode::Rdn),
            0b011 => Some(RoundingMode::Rup),
            0b100 => Some(RoundingMode::Rmm),
            0b111 => Some(RoundingMode::Dyn),
            _ => None,
        }
    }
}

impl std::fmt::Display for RoundingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoundingMode::Rne => "rne",
            RoundingMode::Rtz => "rtz",
            RoundingMode::Rdn => "rdn",
            RoundingMode::Rup => "rup",
            RoundingMode::Rmm => "rmm",
            RoundingMode::Dyn => "dyn",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_mode_round_trips() {
        for rm in RoundingMode::STATIC {
            assert_eq!(RoundingMode::from_bits(rm.to_bits()), Some(rm));
        }
        assert_eq!(RoundingMode::from_bits(0b111), Some(RoundingMode::Dyn));
    }

    #[test]
    fn reserved_rounding_modes_rejected() {
        assert_eq!(RoundingMode::from_bits(0b101), None);
        assert_eq!(RoundingMode::from_bits(0b110), None);
    }

    #[test]
    fn default_rounding_mode_is_rne() {
        assert_eq!(RoundingMode::default(), RoundingMode::Rne);
    }
}
