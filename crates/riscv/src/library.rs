//! The dynamically configurable instruction repository (paper §IV-B2).
//!
//! The TurboFuzzer draws its "prime instructions" from an
//! [`InstructionLibrary`]: the full opcode table filtered by a
//! [`LibraryConfig`] that activates or deactivates whole categories — ISA
//! [`Extension`]s and encoding [`Format`]s — at run time. Sampling is
//! deterministic: the library owns a seeded splitmix64 generator, so the
//! same seed and configuration always reproduce the same instruction
//! stream, which keeps fuzzing campaigns replayable.

use crate::csr;
use crate::imm::{sign_extend, BranchOffset, JumpOffset};
use crate::insn::Instruction;
use crate::opcode::{Extension, Format, Opcode};
use crate::regs::{Fpr, Gpr, Reg};
use crate::RoundingMode;

/// Which instruction categories the library may draw from.
///
/// Categories follow the paper's repository layout: an opcode is active iff
/// both its [`Extension`] and its [`Format`] are active. The default
/// configuration activates everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryConfig {
    extensions: u8,
    formats: u32,
}

impl LibraryConfig {
    /// Every extension and format active.
    #[must_use]
    pub fn all() -> Self {
        LibraryConfig {
            extensions: (1 << Extension::ALL.len()) - 1,
            formats: (1 << Format::ALL.len()) - 1,
        }
    }

    /// Nothing active; build up with the `activate_*` methods.
    #[must_use]
    pub fn none() -> Self {
        LibraryConfig {
            extensions: 0,
            formats: 0,
        }
    }

    /// Only the base integer extension (all formats).
    #[must_use]
    pub fn base_integer() -> Self {
        let mut config = Self::all();
        config.extensions = 1 << Extension::I as u8;
        config
    }

    /// Activate an extension.
    pub fn activate_extension(&mut self, ext: Extension) -> &mut Self {
        self.extensions |= 1 << ext as u8;
        self
    }

    /// Deactivate an extension.
    pub fn deactivate_extension(&mut self, ext: Extension) -> &mut Self {
        self.extensions &= !(1 << ext as u8);
        self
    }

    /// Activate an encoding format.
    pub fn activate_format(&mut self, format: Format) -> &mut Self {
        self.formats |= 1 << format as u8;
        self
    }

    /// Deactivate an encoding format.
    pub fn deactivate_format(&mut self, format: Format) -> &mut Self {
        self.formats &= !(1 << format as u8);
        self
    }

    /// True when the extension is active.
    #[must_use]
    pub fn extension_active(&self, ext: Extension) -> bool {
        self.extensions >> ext as u8 & 1 != 0
    }

    /// True when the format is active.
    #[must_use]
    pub fn format_active(&self, format: Format) -> bool {
        self.formats >> format as u8 & 1 != 0
    }

    /// True when the opcode's extension and format are both active.
    #[must_use]
    pub fn allows(&self, opcode: Opcode) -> bool {
        self.extension_active(opcode.extension()) && self.format_active(opcode.format())
    }
}

impl Default for LibraryConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// The instruction repository the fuzzer samples prime instructions from.
///
/// Holds the active opcode set (derived from a [`LibraryConfig`]) and a
/// deterministic seeded generator for sampling opcodes and fully-formed
/// random instructions.
#[derive(Debug, Clone)]
pub struct InstructionLibrary {
    config: LibraryConfig,
    active: Vec<Opcode>,
    state: u64,
}

impl InstructionLibrary {
    /// Build a library from a configuration and an RNG seed.
    #[must_use]
    pub fn new(config: LibraryConfig, seed: u64) -> Self {
        let mut lib = InstructionLibrary {
            config,
            active: Vec::new(),
            state: seed,
        };
        lib.rebuild();
        lib
    }

    fn rebuild(&mut self) {
        self.active = Opcode::ALL
            .iter()
            .copied()
            .filter(|&op| self.config.allows(op))
            .collect();
    }

    /// The current configuration.
    #[must_use]
    pub fn config(&self) -> &LibraryConfig {
        &self.config
    }

    /// Swap in a new configuration, rebuilding the active set. The RNG
    /// state is kept so a reconfigured library continues its deterministic
    /// stream.
    pub fn reconfigure(&mut self, config: LibraryConfig) {
        self.config = config;
        self.rebuild();
    }

    /// The current state of the sampling RNG.
    ///
    /// A library is a pure function of its configuration and this value:
    /// capturing it mid-stream and later rebuilding a library with the
    /// same configuration and [`set_rng_state`](Self::set_rng_state)
    /// resumes the exact sample sequence. Fuzzing-campaign checkpoints
    /// persist it so a resumed campaign replays bit-identically.
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.state
    }

    /// Restore the sampling RNG to a state captured by
    /// [`rng_state`](Self::rng_state).
    pub fn set_rng_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Activate an extension at run time.
    pub fn activate_extension(&mut self, ext: Extension) {
        self.config.activate_extension(ext);
        self.rebuild();
    }

    /// Deactivate an extension at run time.
    pub fn deactivate_extension(&mut self, ext: Extension) {
        self.config.deactivate_extension(ext);
        self.rebuild();
    }

    /// Activate an encoding format at run time.
    pub fn activate_format(&mut self, format: Format) {
        self.config.activate_format(format);
        self.rebuild();
    }

    /// Deactivate an encoding format at run time.
    pub fn deactivate_format(&mut self, format: Format) {
        self.config.deactivate_format(format);
        self.rebuild();
    }

    /// The active opcodes, in table order.
    #[must_use]
    pub fn opcodes(&self) -> &[Opcode] {
        &self.active
    }

    /// Number of active opcodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True when no opcode is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// True when the opcode is currently active.
    #[must_use]
    pub fn contains(&self, opcode: Opcode) -> bool {
        self.config.allows(opcode)
    }

    /// Next value of the deterministic splitmix64 stream.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gpr(&mut self) -> Gpr {
        Gpr::wrapping(self.next_u64() as u8)
    }

    fn fpr(&mut self) -> Fpr {
        Fpr::wrapping(self.next_u64() as u8)
    }

    fn rounding_mode(&mut self) -> RoundingMode {
        const MODES: [RoundingMode; 6] = [
            RoundingMode::Rne,
            RoundingMode::Rtz,
            RoundingMode::Rdn,
            RoundingMode::Rup,
            RoundingMode::Rmm,
            RoundingMode::Dyn,
        ];
        MODES[(self.next_u64() % MODES.len() as u64) as usize]
    }

    /// Uniformly sample an active opcode.
    ///
    /// Returns `None` — never panics — when every extension or format has
    /// been deactivated and the active set is empty.
    pub fn sample_opcode(&mut self) -> Option<Opcode> {
        if self.active.is_empty() {
            return None;
        }
        let i = (self.next_u64() % self.active.len() as u64) as usize;
        Some(self.active[i])
    }

    /// Sample a prime instruction: an active opcode with randomized,
    /// always-encodable operands.
    ///
    /// Returns `None` when the library is empty.
    pub fn sample(&mut self) -> Option<Instruction> {
        self.sample_opcode().map(|op| self.synthesize(op))
    }

    /// Sample a whole sequence of `len` prime instructions.
    ///
    /// Returns `None` when the library is empty, so callers never observe a
    /// partially filled program.
    pub fn sample_program(&mut self, len: usize) -> Option<Vec<Instruction>> {
        if self.is_empty() {
            return None;
        }
        Some((0..len).filter_map(|_| self.sample()).collect())
    }

    /// Build a random, always-encodable instruction for a specific opcode,
    /// regardless of whether it is active. Used by directed generation and
    /// by the round-trip property tests.
    pub fn synthesize(&mut self, opcode: Opcode) -> Instruction {
        match opcode.format() {
            Format::R => {
                let (rd, rs1, rs2) = (self.gpr(), self.gpr(), self.gpr());
                Instruction::r_type(opcode, rd, rs1, rs2)
            }
            Format::I => {
                let (rd, rs1) = (self.gpr(), self.gpr());
                let imm = sign_extend(self.next_u64() & 0xFFF, 12);
                Instruction::i_type(opcode, rd, rs1, imm).expect("12-bit immediate in range")
            }
            Format::S => {
                let (rs1, rs2) = (self.gpr(), self.gpr());
                let imm = sign_extend(self.next_u64() & 0xFFF, 12);
                Instruction::s_type(opcode, rs1, rs2, imm).expect("12-bit immediate in range")
            }
            Format::B => {
                let (rs1, rs2) = (self.gpr(), self.gpr());
                // 4-byte aligned target in -4096..=4092.
                let slots = 1i64 << (BranchOffset::BITS - 2);
                let offset = (self.next_u64() as i64).rem_euclid(slots) - slots / 2;
                let offset = BranchOffset::new(offset * 4).expect("aligned offset in range");
                Instruction::b_type(opcode, rs1, rs2, offset)
            }
            Format::U => {
                let rd = self.gpr();
                let imm = sign_extend(self.next_u64() & 0xF_FFFF, 20);
                Instruction::u_type(opcode, rd, imm).expect("20-bit immediate in range")
            }
            Format::J => {
                let rd = self.gpr();
                let slots = 1i64 << (JumpOffset::BITS - 2);
                let offset = (self.next_u64() as i64).rem_euclid(slots) - slots / 2;
                let offset = JumpOffset::new(offset * 4).expect("aligned offset in range");
                Instruction::j_type(opcode, rd, offset)
            }
            Format::Shamt => {
                let (rd, rs1) = (self.gpr(), self.gpr());
                let shamt = (self.next_u64() % 64) as u8;
                Instruction::shift(opcode, rd, rs1, shamt).expect("shamt below 64")
            }
            Format::ShamtW => {
                let (rd, rs1) = (self.gpr(), self.gpr());
                let shamt = (self.next_u64() % 32) as u8;
                Instruction::shift(opcode, rd, rs1, shamt).expect("shamt below 32")
            }
            Format::Fence => {
                let bits = self.next_u64();
                Instruction::fence((bits >> 4 & 0xF) as u8, (bits & 0xF) as u8)
                    .expect("4-bit ordering sets")
            }
            Format::System => Instruction::system(opcode),
            Format::Csr => {
                let (rd, rs1) = (self.gpr(), self.gpr());
                let addr = csr::FUZZABLE[(self.next_u64() % csr::FUZZABLE.len() as u64) as usize];
                Instruction::csr_reg(opcode, rd, addr, rs1).expect("fuzzable csr is valid")
            }
            Format::CsrImm => {
                let rd = self.gpr();
                let addr = csr::FUZZABLE[(self.next_u64() % csr::FUZZABLE.len() as u64) as usize];
                let zimm = (self.next_u64() % 32) as u8;
                Instruction::csr_imm(opcode, rd, addr, zimm).expect("5-bit zimm in range")
            }
            Format::Amo => {
                let (rd, rs1) = (self.gpr(), self.gpr());
                let rs2 = if opcode.encoding().rs2.is_some() {
                    // Load-reserved fixes the rs2 field.
                    Gpr::ZERO
                } else {
                    self.gpr()
                };
                let bits = self.next_u64();
                Instruction::amo(opcode, rd, rs1, rs2, bits & 1 != 0, bits & 2 != 0)
                    .expect("amo operands in range")
            }
            Format::R4 => {
                let (rd, rs1, rs2, rs3) = (self.fpr(), self.fpr(), self.fpr(), self.fpr());
                let rm = self.rounding_mode();
                Instruction::r4_type(opcode, rd, rs1, rs2, rs3, rm)
            }
            Format::FpLoad => {
                let (rd, rs1) = (self.fpr(), self.gpr());
                let imm = sign_extend(self.next_u64() & 0xFFF, 12);
                Instruction::fp_load(opcode, rd, rs1, imm).expect("12-bit immediate in range")
            }
            Format::FpStore => {
                let (rs1, rs2) = (self.gpr(), self.fpr());
                let imm = sign_extend(self.next_u64() & 0xFFF, 12);
                Instruction::fp_store(opcode, rs1, rs2, imm).expect("12-bit immediate in range")
            }
            Format::Fp => {
                let rm = opcode.uses_rm().then(|| self.rounding_mode());
                if opcode.rd_is_fpr() {
                    let (rd, rs1, rs2) = (self.fpr(), self.fpr(), self.fpr());
                    Instruction::fp_r_type(opcode, rd, rs1, rs2, rm)
                        .expect("matching rm and classes")
                } else {
                    let (rd, rs1, rs2) = (self.gpr(), self.fpr(), self.fpr());
                    Instruction::fp_compare(opcode, rd, rs1, rs2).expect("comparison operands")
                }
            }
            Format::FpUnary => {
                let rd = if opcode.rd_is_fpr() {
                    Reg::F(self.fpr())
                } else {
                    Reg::X(self.gpr())
                };
                let rs1 = if opcode.rs1_is_fpr() {
                    Reg::F(self.fpr())
                } else {
                    Reg::X(self.gpr())
                };
                let rm = opcode.uses_rm().then(|| self.rounding_mode());
                Instruction::fp_unary(opcode, rd, rs1, rm).expect("matching rm and classes")
            }
        }
    }
}

impl Default for InstructionLibrary {
    fn default() -> Self {
        Self::new(LibraryConfig::all(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_activates_whole_table() {
        let lib = InstructionLibrary::new(LibraryConfig::all(), 1);
        assert_eq!(lib.len(), Opcode::ALL.len());
        assert!(!lib.is_empty());
    }

    #[test]
    fn empty_config_yields_nothing() {
        let mut lib = InstructionLibrary::new(LibraryConfig::none(), 1);
        assert!(lib.is_empty());
        assert_eq!(lib.sample_opcode(), None);
        assert!(lib.sample().is_none());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = InstructionLibrary::new(LibraryConfig::all(), 42);
        let mut b = InstructionLibrary::new(LibraryConfig::all(), 42);
        for _ in 0..256 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = InstructionLibrary::new(LibraryConfig::all(), 1);
        let mut b = InstructionLibrary::new(LibraryConfig::all(), 2);
        let sa: Vec<_> = (0..32).map(|_| a.sample()).collect();
        let sb: Vec<_> = (0..32).map(|_| b.sample()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn base_integer_config_excludes_fp() {
        let config = LibraryConfig::base_integer();
        assert!(config.allows(Opcode::Add));
        assert!(!config.allows(Opcode::FaddD));
        assert!(!config.allows(Opcode::Csrrw));
    }

    #[test]
    fn deactivating_every_extension_yields_none_not_panic() {
        // Regression: a fully deactivated library must report `None` from
        // every sampling entry point instead of panicking.
        let mut lib = InstructionLibrary::default();
        for ext in Extension::ALL {
            lib.deactivate_extension(ext);
        }
        assert!(lib.is_empty());
        assert_eq!(lib.sample_opcode(), None);
        assert!(lib.sample().is_none());
        assert!(lib.sample_program(16).is_none());
    }

    #[test]
    fn deactivating_every_format_yields_none_not_panic() {
        let mut lib = InstructionLibrary::default();
        for fmt in Format::ALL {
            lib.deactivate_format(fmt);
        }
        assert!(lib.is_empty());
        assert_eq!(lib.sample_opcode(), None);
        assert!(lib.sample().is_none());
    }

    #[test]
    fn sample_program_is_complete_and_deterministic() {
        let mut a = InstructionLibrary::new(LibraryConfig::all(), 7);
        let mut b = InstructionLibrary::new(LibraryConfig::all(), 7);
        let pa = a.sample_program(100).unwrap();
        let pb = b.sample_program(100).unwrap();
        assert_eq!(pa.len(), 100);
        assert_eq!(pa, pb);
    }
}
