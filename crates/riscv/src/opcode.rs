//! The opcode table: every supported RV64 mnemonic with its encoding
//! metadata.
//!
//! The table is the single source of truth for encode ([`crate::Instruction::encode`]),
//! decode ([`crate::Instruction::decode`]), the disassembler and the
//! [`crate::InstructionLibrary`]. Each opcode carries its major opcode
//! (bits 6:0), the fixed `funct3`/`funct7` fields (when the format fixes
//! them) and, for single-source FP operations, the function code stored in
//! the `rs2` field.

/// ISA extension an opcode belongs to.
///
/// Extensions are the coarsest activation category of the
/// [`crate::InstructionLibrary`] (paper §IV-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Extension {
    /// Base integer instruction set (RV64I).
    I,
    /// Integer multiplication and division (RV64M).
    M,
    /// Atomic instructions (RV64A).
    A,
    /// Single-precision floating point (RV64F).
    F,
    /// Double-precision floating point (RV64D).
    D,
    /// CSR access instructions (Zicsr).
    Zicsr,
}

impl Extension {
    /// Every modelled extension.
    pub const ALL: [Extension; 6] = [
        Extension::I,
        Extension::M,
        Extension::A,
        Extension::F,
        Extension::D,
        Extension::Zicsr,
    ];
}

impl std::fmt::Display for Extension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Extension::I => "rv64i",
            Extension::M => "rv64m",
            Extension::A => "rv64a",
            Extension::F => "rv64f",
            Extension::D => "rv64d",
            Extension::Zicsr => "zicsr",
        };
        f.write_str(s)
    }
}

/// Encoding format of an instruction.
///
/// The six base formats (R/I/S/B/U/J) follow the unprivileged spec; the
/// remaining variants refine them where the operand shape differs enough to
/// matter for construction and decoding (shift amounts, CSR addresses,
/// atomics with acquire/release bits, the fused-multiply R4 format and the
/// FP register classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Format {
    /// Integer register-register (`add x1, x2, x3`).
    R,
    /// Register-immediate, loads and `jalr` (`addi x1, x2, -1`).
    I,
    /// Integer stores (`sd x3, 8(x2)`).
    S,
    /// Conditional branches (`beq x1, x2, -16`).
    B,
    /// Upper-immediate (`lui`, `auipc`).
    U,
    /// `jal`.
    J,
    /// 64-bit shifts with a 6-bit shift amount (`slli`, `srli`, `srai`).
    Shamt,
    /// 32-bit word shifts with a 5-bit shift amount (`slliw`, …).
    ShamtW,
    /// Memory ordering fence.
    Fence,
    /// `ecall` / `ebreak`.
    System,
    /// CSR access with a register source (`csrrw`, `csrrs`, `csrrc`).
    Csr,
    /// CSR access with a 5-bit immediate source (`csrrwi`, …).
    CsrImm,
    /// Atomics: `lr`/`sc`/`amo*` with acquire/release bits.
    Amo,
    /// Fused multiply-add family (`fmadd`, `fmsub`, `fnmsub`, `fnmadd`).
    R4,
    /// FP loads (`flw`, `fld`): FP destination, integer base address.
    FpLoad,
    /// FP stores (`fsw`, `fsd`): FP source, integer base address.
    FpStore,
    /// Two-source OP-FP operations (arithmetic, sign injection, min/max,
    /// comparisons).
    Fp,
    /// Single-source OP-FP operations with a function code in the `rs2`
    /// field (`fsqrt`, `fcvt.*`, `fmv.*`, `fclass`).
    FpUnary,
}

impl Format {
    /// Every encoding format.
    pub const ALL: [Format; 18] = [
        Format::R,
        Format::I,
        Format::S,
        Format::B,
        Format::U,
        Format::J,
        Format::Shamt,
        Format::ShamtW,
        Format::Fence,
        Format::System,
        Format::Csr,
        Format::CsrImm,
        Format::Amo,
        Format::R4,
        Format::FpLoad,
        Format::FpStore,
        Format::Fp,
        Format::FpUnary,
    ];
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Format::R => "r",
            Format::I => "i",
            Format::S => "s",
            Format::B => "b",
            Format::U => "u",
            Format::J => "j",
            Format::Shamt => "shamt",
            Format::ShamtW => "shamtw",
            Format::Fence => "fence",
            Format::System => "system",
            Format::Csr => "csr",
            Format::CsrImm => "csrimm",
            Format::Amo => "amo",
            Format::R4 => "r4",
            Format::FpLoad => "fpload",
            Format::FpStore => "fpstore",
            Format::Fp => "fp",
            Format::FpUnary => "fpunary",
        };
        f.write_str(s)
    }
}

/// Fixed encoding fields of an opcode.
///
/// Field semantics depend on the [`Format`]:
///
/// * `funct3` is `None` when the field carries a rounding mode (FP
///   arithmetic) instead of a function code.
/// * `funct7` holds the 5-bit `funct5` for [`Format::Amo`] and the 2-bit
///   `fmt` field for [`Format::R4`]; for [`Format::Shamt`] its lowest bit is
///   shared with `shamt[5]` and must be zero.
/// * `rs2` is the function code stored in the `rs2` field for
///   [`Format::FpUnary`] and [`Format::System`] opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Encoding {
    /// Major opcode (bits 6:0).
    pub opcode: u8,
    /// Fixed `funct3` field (bits 14:12), if the format fixes it.
    pub funct3: Option<u8>,
    /// Fixed high field (bits 31:25), if the format fixes it.
    pub funct7: Option<u8>,
    /// Fixed function code in the `rs2` field (bits 24:20), if any.
    pub rs2: Option<u8>,
}

macro_rules! opt {
    () => {
        None
    };
    ($v:literal) => {
        Some($v)
    };
}

macro_rules! opcodes {
    ($(
        $variant:ident : $mnemonic:literal, $ext:ident, $fmt:ident,
        op = $op:literal $(, f3 = $f3:literal)? $(, f7 = $f7:literal)? $(, rs2 = $rs2:literal)? ;
    )*) => {
        /// Every supported mnemonic of RV64 I/M/A/F/D/Zicsr.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub enum Opcode {
            $(#[doc = concat!("`", $mnemonic, "`")] $variant,)*
        }

        impl Opcode {
            /// All supported opcodes in table order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant,)*];

            /// Assembler mnemonic.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$variant => $mnemonic,)* }
            }

            /// ISA extension the opcode belongs to.
            #[must_use]
            pub fn extension(self) -> Extension {
                match self { $(Opcode::$variant => Extension::$ext,)* }
            }

            /// Encoding format.
            #[must_use]
            pub fn format(self) -> Format {
                match self { $(Opcode::$variant => Format::$fmt,)* }
            }

            /// Fixed encoding fields.
            #[must_use]
            pub fn encoding(self) -> Encoding {
                match self {
                    $(Opcode::$variant => Encoding {
                        opcode: $op,
                        funct3: opt!($($f3)?),
                        funct7: opt!($($f7)?),
                        rs2: opt!($($rs2)?),
                    },)*
                }
            }
        }
    };
}

opcodes! {
    // ---- RV64I: upper immediates and jumps -----------------------------
    Lui    : "lui",    I, U, op = 0x37;
    Auipc  : "auipc",  I, U, op = 0x17;
    Jal    : "jal",    I, J, op = 0x6F;
    Jalr   : "jalr",   I, I, op = 0x67, f3 = 0b000;
    // ---- RV64I: conditional branches -----------------------------------
    Beq    : "beq",    I, B, op = 0x63, f3 = 0b000;
    Bne    : "bne",    I, B, op = 0x63, f3 = 0b001;
    Blt    : "blt",    I, B, op = 0x63, f3 = 0b100;
    Bge    : "bge",    I, B, op = 0x63, f3 = 0b101;
    Bltu   : "bltu",   I, B, op = 0x63, f3 = 0b110;
    Bgeu   : "bgeu",   I, B, op = 0x63, f3 = 0b111;
    // ---- RV64I: loads ---------------------------------------------------
    Lb     : "lb",     I, I, op = 0x03, f3 = 0b000;
    Lh     : "lh",     I, I, op = 0x03, f3 = 0b001;
    Lw     : "lw",     I, I, op = 0x03, f3 = 0b010;
    Ld     : "ld",     I, I, op = 0x03, f3 = 0b011;
    Lbu    : "lbu",    I, I, op = 0x03, f3 = 0b100;
    Lhu    : "lhu",    I, I, op = 0x03, f3 = 0b101;
    Lwu    : "lwu",    I, I, op = 0x03, f3 = 0b110;
    // ---- RV64I: stores --------------------------------------------------
    Sb     : "sb",     I, S, op = 0x23, f3 = 0b000;
    Sh     : "sh",     I, S, op = 0x23, f3 = 0b001;
    Sw     : "sw",     I, S, op = 0x23, f3 = 0b010;
    Sd     : "sd",     I, S, op = 0x23, f3 = 0b011;
    // ---- RV64I: register-immediate -------------------------------------
    Addi   : "addi",   I, I, op = 0x13, f3 = 0b000;
    Slti   : "slti",   I, I, op = 0x13, f3 = 0b010;
    Sltiu  : "sltiu",  I, I, op = 0x13, f3 = 0b011;
    Xori   : "xori",   I, I, op = 0x13, f3 = 0b100;
    Ori    : "ori",    I, I, op = 0x13, f3 = 0b110;
    Andi   : "andi",   I, I, op = 0x13, f3 = 0b111;
    Slli   : "slli",   I, Shamt, op = 0x13, f3 = 0b001, f7 = 0x00;
    Srli   : "srli",   I, Shamt, op = 0x13, f3 = 0b101, f7 = 0x00;
    Srai   : "srai",   I, Shamt, op = 0x13, f3 = 0b101, f7 = 0x20;
    // ---- RV64I: 32-bit word register-immediate -------------------------
    Addiw  : "addiw",  I, I, op = 0x1B, f3 = 0b000;
    Slliw  : "slliw",  I, ShamtW, op = 0x1B, f3 = 0b001, f7 = 0x00;
    Srliw  : "srliw",  I, ShamtW, op = 0x1B, f3 = 0b101, f7 = 0x00;
    Sraiw  : "sraiw",  I, ShamtW, op = 0x1B, f3 = 0b101, f7 = 0x20;
    // ---- RV64I: register-register --------------------------------------
    Add    : "add",    I, R, op = 0x33, f3 = 0b000, f7 = 0x00;
    Sub    : "sub",    I, R, op = 0x33, f3 = 0b000, f7 = 0x20;
    Sll    : "sll",    I, R, op = 0x33, f3 = 0b001, f7 = 0x00;
    Slt    : "slt",    I, R, op = 0x33, f3 = 0b010, f7 = 0x00;
    Sltu   : "sltu",   I, R, op = 0x33, f3 = 0b011, f7 = 0x00;
    Xor    : "xor",    I, R, op = 0x33, f3 = 0b100, f7 = 0x00;
    Srl    : "srl",    I, R, op = 0x33, f3 = 0b101, f7 = 0x00;
    Sra    : "sra",    I, R, op = 0x33, f3 = 0b101, f7 = 0x20;
    Or     : "or",     I, R, op = 0x33, f3 = 0b110, f7 = 0x00;
    And    : "and",    I, R, op = 0x33, f3 = 0b111, f7 = 0x00;
    // ---- RV64I: 32-bit word register-register --------------------------
    Addw   : "addw",   I, R, op = 0x3B, f3 = 0b000, f7 = 0x00;
    Subw   : "subw",   I, R, op = 0x3B, f3 = 0b000, f7 = 0x20;
    Sllw   : "sllw",   I, R, op = 0x3B, f3 = 0b001, f7 = 0x00;
    Srlw   : "srlw",   I, R, op = 0x3B, f3 = 0b101, f7 = 0x00;
    Sraw   : "sraw",   I, R, op = 0x3B, f3 = 0b101, f7 = 0x20;
    // ---- RV64I: fence and system ---------------------------------------
    Fence  : "fence",  I, Fence, op = 0x0F, f3 = 0b000;
    Ecall  : "ecall",  I, System, op = 0x73, f3 = 0b000, f7 = 0x00, rs2 = 0b00000;
    Ebreak : "ebreak", I, System, op = 0x73, f3 = 0b000, f7 = 0x00, rs2 = 0b00001;
    // ---- RV64M ---------------------------------------------------------
    Mul    : "mul",    M, R, op = 0x33, f3 = 0b000, f7 = 0x01;
    Mulh   : "mulh",   M, R, op = 0x33, f3 = 0b001, f7 = 0x01;
    Mulhsu : "mulhsu", M, R, op = 0x33, f3 = 0b010, f7 = 0x01;
    Mulhu  : "mulhu",  M, R, op = 0x33, f3 = 0b011, f7 = 0x01;
    Div    : "div",    M, R, op = 0x33, f3 = 0b100, f7 = 0x01;
    Divu   : "divu",   M, R, op = 0x33, f3 = 0b101, f7 = 0x01;
    Rem    : "rem",    M, R, op = 0x33, f3 = 0b110, f7 = 0x01;
    Remu   : "remu",   M, R, op = 0x33, f3 = 0b111, f7 = 0x01;
    Mulw   : "mulw",   M, R, op = 0x3B, f3 = 0b000, f7 = 0x01;
    Divw   : "divw",   M, R, op = 0x3B, f3 = 0b100, f7 = 0x01;
    Divuw  : "divuw",  M, R, op = 0x3B, f3 = 0b101, f7 = 0x01;
    Remw   : "remw",   M, R, op = 0x3B, f3 = 0b110, f7 = 0x01;
    Remuw  : "remuw",  M, R, op = 0x3B, f3 = 0b111, f7 = 0x01;
    // ---- RV64A (funct7 holds funct5; aq/rl are operands) ---------------
    LrW      : "lr.w",      A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b00010, rs2 = 0b00000;
    ScW      : "sc.w",      A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b00011;
    AmoswapW : "amoswap.w", A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b00001;
    AmoaddW  : "amoadd.w",  A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b00000;
    AmoxorW  : "amoxor.w",  A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b00100;
    AmoandW  : "amoand.w",  A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b01100;
    AmoorW   : "amoor.w",   A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b01000;
    AmominW  : "amomin.w",  A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b10000;
    AmomaxW  : "amomax.w",  A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b10100;
    AmominuW : "amominu.w", A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b11000;
    AmomaxuW : "amomaxu.w", A, Amo, op = 0x2F, f3 = 0b010, f7 = 0b11100;
    LrD      : "lr.d",      A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b00010, rs2 = 0b00000;
    ScD      : "sc.d",      A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b00011;
    AmoswapD : "amoswap.d", A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b00001;
    AmoaddD  : "amoadd.d",  A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b00000;
    AmoxorD  : "amoxor.d",  A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b00100;
    AmoandD  : "amoand.d",  A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b01100;
    AmoorD   : "amoor.d",   A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b01000;
    AmominD  : "amomin.d",  A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b10000;
    AmomaxD  : "amomax.d",  A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b10100;
    AmominuD : "amominu.d", A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b11000;
    AmomaxuD : "amomaxu.d", A, Amo, op = 0x2F, f3 = 0b011, f7 = 0b11100;
    // ---- RV64F ---------------------------------------------------------
    Flw     : "flw",       F, FpLoad,  op = 0x07, f3 = 0b010;
    Fsw     : "fsw",       F, FpStore, op = 0x27, f3 = 0b010;
    FmaddS  : "fmadd.s",   F, R4, op = 0x43, f7 = 0b00;
    FmsubS  : "fmsub.s",   F, R4, op = 0x47, f7 = 0b00;
    FnmsubS : "fnmsub.s",  F, R4, op = 0x4B, f7 = 0b00;
    FnmaddS : "fnmadd.s",  F, R4, op = 0x4F, f7 = 0b00;
    FaddS   : "fadd.s",    F, Fp, op = 0x53, f7 = 0x00;
    FsubS   : "fsub.s",    F, Fp, op = 0x53, f7 = 0x04;
    FmulS   : "fmul.s",    F, Fp, op = 0x53, f7 = 0x08;
    FdivS   : "fdiv.s",    F, Fp, op = 0x53, f7 = 0x0C;
    FsqrtS  : "fsqrt.s",   F, FpUnary, op = 0x53, f7 = 0x2C, rs2 = 0b00000;
    FsgnjS  : "fsgnj.s",   F, Fp, op = 0x53, f3 = 0b000, f7 = 0x10;
    FsgnjnS : "fsgnjn.s",  F, Fp, op = 0x53, f3 = 0b001, f7 = 0x10;
    FsgnjxS : "fsgnjx.s",  F, Fp, op = 0x53, f3 = 0b010, f7 = 0x10;
    FminS   : "fmin.s",    F, Fp, op = 0x53, f3 = 0b000, f7 = 0x14;
    FmaxS   : "fmax.s",    F, Fp, op = 0x53, f3 = 0b001, f7 = 0x14;
    FcvtWS  : "fcvt.w.s",  F, FpUnary, op = 0x53, f7 = 0x60, rs2 = 0b00000;
    FcvtWuS : "fcvt.wu.s", F, FpUnary, op = 0x53, f7 = 0x60, rs2 = 0b00001;
    FcvtLS  : "fcvt.l.s",  F, FpUnary, op = 0x53, f7 = 0x60, rs2 = 0b00010;
    FcvtLuS : "fcvt.lu.s", F, FpUnary, op = 0x53, f7 = 0x60, rs2 = 0b00011;
    FmvXW   : "fmv.x.w",   F, FpUnary, op = 0x53, f3 = 0b000, f7 = 0x70, rs2 = 0b00000;
    FclassS : "fclass.s",  F, FpUnary, op = 0x53, f3 = 0b001, f7 = 0x70, rs2 = 0b00000;
    FeqS    : "feq.s",     F, Fp, op = 0x53, f3 = 0b010, f7 = 0x50;
    FltS    : "flt.s",     F, Fp, op = 0x53, f3 = 0b001, f7 = 0x50;
    FleS    : "fle.s",     F, Fp, op = 0x53, f3 = 0b000, f7 = 0x50;
    FcvtSW  : "fcvt.s.w",  F, FpUnary, op = 0x53, f7 = 0x68, rs2 = 0b00000;
    FcvtSWu : "fcvt.s.wu", F, FpUnary, op = 0x53, f7 = 0x68, rs2 = 0b00001;
    FcvtSL  : "fcvt.s.l",  F, FpUnary, op = 0x53, f7 = 0x68, rs2 = 0b00010;
    FcvtSLu : "fcvt.s.lu", F, FpUnary, op = 0x53, f7 = 0x68, rs2 = 0b00011;
    FmvWX   : "fmv.w.x",   F, FpUnary, op = 0x53, f3 = 0b000, f7 = 0x78, rs2 = 0b00000;
    // ---- RV64D ---------------------------------------------------------
    Fld     : "fld",       D, FpLoad,  op = 0x07, f3 = 0b011;
    Fsd     : "fsd",       D, FpStore, op = 0x27, f3 = 0b011;
    FmaddD  : "fmadd.d",   D, R4, op = 0x43, f7 = 0b01;
    FmsubD  : "fmsub.d",   D, R4, op = 0x47, f7 = 0b01;
    FnmsubD : "fnmsub.d",  D, R4, op = 0x4B, f7 = 0b01;
    FnmaddD : "fnmadd.d",  D, R4, op = 0x4F, f7 = 0b01;
    FaddD   : "fadd.d",    D, Fp, op = 0x53, f7 = 0x01;
    FsubD   : "fsub.d",    D, Fp, op = 0x53, f7 = 0x05;
    FmulD   : "fmul.d",    D, Fp, op = 0x53, f7 = 0x09;
    FdivD   : "fdiv.d",    D, Fp, op = 0x53, f7 = 0x0D;
    FsqrtD  : "fsqrt.d",   D, FpUnary, op = 0x53, f7 = 0x2D, rs2 = 0b00000;
    FsgnjD  : "fsgnj.d",   D, Fp, op = 0x53, f3 = 0b000, f7 = 0x11;
    FsgnjnD : "fsgnjn.d",  D, Fp, op = 0x53, f3 = 0b001, f7 = 0x11;
    FsgnjxD : "fsgnjx.d",  D, Fp, op = 0x53, f3 = 0b010, f7 = 0x11;
    FminD   : "fmin.d",    D, Fp, op = 0x53, f3 = 0b000, f7 = 0x15;
    FmaxD   : "fmax.d",    D, Fp, op = 0x53, f3 = 0b001, f7 = 0x15;
    FcvtSD  : "fcvt.s.d",  D, FpUnary, op = 0x53, f7 = 0x20, rs2 = 0b00001;
    FcvtDS  : "fcvt.d.s",  D, FpUnary, op = 0x53, f7 = 0x21, rs2 = 0b00000;
    FeqD    : "feq.d",     D, Fp, op = 0x53, f3 = 0b010, f7 = 0x51;
    FltD    : "flt.d",     D, Fp, op = 0x53, f3 = 0b001, f7 = 0x51;
    FleD    : "fle.d",     D, Fp, op = 0x53, f3 = 0b000, f7 = 0x51;
    FclassD : "fclass.d",  D, FpUnary, op = 0x53, f3 = 0b001, f7 = 0x71, rs2 = 0b00000;
    FcvtWD  : "fcvt.w.d",  D, FpUnary, op = 0x53, f7 = 0x61, rs2 = 0b00000;
    FcvtWuD : "fcvt.wu.d", D, FpUnary, op = 0x53, f7 = 0x61, rs2 = 0b00001;
    FcvtLD  : "fcvt.l.d",  D, FpUnary, op = 0x53, f7 = 0x61, rs2 = 0b00010;
    FcvtLuD : "fcvt.lu.d", D, FpUnary, op = 0x53, f7 = 0x61, rs2 = 0b00011;
    FcvtDW  : "fcvt.d.w",  D, FpUnary, op = 0x53, f7 = 0x69, rs2 = 0b00000;
    FcvtDWu : "fcvt.d.wu", D, FpUnary, op = 0x53, f7 = 0x69, rs2 = 0b00001;
    FcvtDL  : "fcvt.d.l",  D, FpUnary, op = 0x53, f7 = 0x69, rs2 = 0b00010;
    FcvtDLu : "fcvt.d.lu", D, FpUnary, op = 0x53, f7 = 0x69, rs2 = 0b00011;
    FmvXD   : "fmv.x.d",   D, FpUnary, op = 0x53, f3 = 0b000, f7 = 0x71, rs2 = 0b00000;
    FmvDX   : "fmv.d.x",   D, FpUnary, op = 0x53, f3 = 0b000, f7 = 0x79, rs2 = 0b00000;
    // ---- Zicsr ---------------------------------------------------------
    Csrrw  : "csrrw",  Zicsr, Csr,    op = 0x73, f3 = 0b001;
    Csrrs  : "csrrs",  Zicsr, Csr,    op = 0x73, f3 = 0b010;
    Csrrc  : "csrrc",  Zicsr, Csr,    op = 0x73, f3 = 0b011;
    Csrrwi : "csrrwi", Zicsr, CsrImm, op = 0x73, f3 = 0b101;
    Csrrsi : "csrrsi", Zicsr, CsrImm, op = 0x73, f3 = 0b110;
    Csrrci : "csrrci", Zicsr, CsrImm, op = 0x73, f3 = 0b111;
}

impl Opcode {
    /// True when the instruction carries a rounding mode in its `funct3`
    /// field (FP arithmetic, conversions and the fused-multiply family).
    #[must_use]
    pub fn uses_rm(self) -> bool {
        match self.format() {
            Format::R4 => true,
            Format::Fp | Format::FpUnary => self.encoding().funct3.is_none(),
            _ => false,
        }
    }

    /// True when the instruction reads memory through the `rs1` base
    /// register (integer and FP loads, excluding atomics).
    #[must_use]
    pub fn is_load(self) -> bool {
        self.format() == Format::FpLoad
            || matches!(
                self,
                Opcode::Lb
                    | Opcode::Lh
                    | Opcode::Lw
                    | Opcode::Ld
                    | Opcode::Lbu
                    | Opcode::Lhu
                    | Opcode::Lwu
            )
    }

    /// True when the instruction writes memory through the `rs1` base
    /// register (integer and FP stores, excluding atomics).
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self.format(), Format::S | Format::FpStore)
    }

    /// True when the destination register is a floating-point register.
    #[must_use]
    pub fn rd_is_fpr(self) -> bool {
        match self.format() {
            Format::R4 | Format::FpLoad => true,
            Format::Fp | Format::FpUnary => !matches!(
                self,
                Opcode::FeqS
                    | Opcode::FltS
                    | Opcode::FleS
                    | Opcode::FeqD
                    | Opcode::FltD
                    | Opcode::FleD
                    | Opcode::FclassS
                    | Opcode::FclassD
                    | Opcode::FcvtWS
                    | Opcode::FcvtWuS
                    | Opcode::FcvtLS
                    | Opcode::FcvtLuS
                    | Opcode::FcvtWD
                    | Opcode::FcvtWuD
                    | Opcode::FcvtLD
                    | Opcode::FcvtLuD
                    | Opcode::FmvXW
                    | Opcode::FmvXD
            ),
            _ => false,
        }
    }

    /// True when the first source register is a floating-point register.
    #[must_use]
    pub fn rs1_is_fpr(self) -> bool {
        match self.format() {
            Format::R4 | Format::Fp => true,
            Format::FpUnary => !matches!(
                self,
                Opcode::FcvtSW
                    | Opcode::FcvtSWu
                    | Opcode::FcvtSL
                    | Opcode::FcvtSLu
                    | Opcode::FcvtDW
                    | Opcode::FcvtDWu
                    | Opcode::FcvtDL
                    | Opcode::FcvtDLu
                    | Opcode::FmvWX
                    | Opcode::FmvDX
            ),
            _ => false,
        }
    }

    /// True when the second source register is a floating-point register.
    #[must_use]
    pub fn rs2_is_fpr(self) -> bool {
        matches!(self.format(), Format::R4 | Format::Fp | Format::FpStore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_nonempty_and_mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
        assert!(
            Opcode::ALL.len() >= 140,
            "expected the full RV64 IMAFD+Zicsr table"
        );
    }

    #[test]
    fn encodings_are_unambiguous() {
        // No two opcodes may claim the same fixed-field combination.
        for (i, a) in Opcode::ALL.iter().enumerate() {
            for b in &Opcode::ALL[i + 1..] {
                let (ea, eb) = (a.encoding(), b.encoding());
                if ea.opcode != eb.opcode {
                    continue;
                }
                let same_f3 = match (ea.funct3, eb.funct3) {
                    (Some(x), Some(y)) => x == y,
                    // A `None` funct3 carries a rounding mode and collides
                    // with any value of the field.
                    _ => true,
                };
                let same_f7 = match (ea.funct7, eb.funct7) {
                    (Some(x), Some(y)) => x == y,
                    (None, None) => true,
                    _ => true,
                };
                let same_rs2 = match (ea.rs2, eb.rs2) {
                    (Some(x), Some(y)) => x == y,
                    (None, None) => true,
                    _ => true,
                };
                assert!(
                    !(same_f3 && same_f7 && same_rs2),
                    "{} and {} share an encoding",
                    a.mnemonic(),
                    b.mnemonic()
                );
            }
        }
    }

    #[test]
    fn shift_funct7_low_bit_is_clear() {
        // Format::Shamt shares funct7 bit 0 with shamt[5]; the table value
        // must leave it clear.
        for op in Opcode::ALL {
            if op.format() == Format::Shamt {
                let f7 = op.encoding().funct7.expect("shifts fix funct7");
                assert_eq!(f7 & 1, 0, "{} funct7 collides with shamt[5]", op.mnemonic());
            }
        }
    }

    #[test]
    fn fp_register_classes_are_consistent() {
        assert!(Opcode::FaddD.rd_is_fpr());
        assert!(!Opcode::FeqD.rd_is_fpr());
        assert!(!Opcode::FcvtWS.rd_is_fpr());
        assert!(Opcode::FcvtDW.rd_is_fpr());
        assert!(!Opcode::FcvtDW.rs1_is_fpr());
        assert!(Opcode::FcvtWD.rs1_is_fpr());
        assert!(!Opcode::FmvDX.rs1_is_fpr());
        assert!(Opcode::FmvXD.rs1_is_fpr());
        assert!(!Opcode::Add.rd_is_fpr());
        assert!(Opcode::Fsd.rs2_is_fpr());
        assert!(!Opcode::Fsd.rs1_is_fpr());
    }

    #[test]
    fn rm_usage_matches_format() {
        assert!(Opcode::FaddS.uses_rm());
        assert!(Opcode::FmaddD.uses_rm());
        assert!(Opcode::FcvtWS.uses_rm());
        assert!(Opcode::FsqrtD.uses_rm());
        assert!(!Opcode::FsgnjS.uses_rm());
        assert!(!Opcode::FeqD.uses_rm());
        assert!(!Opcode::FmvXW.uses_rm());
        assert!(!Opcode::Add.uses_rm());
    }
}
